#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
#
# Everything builds offline (see README "Building offline"): the
# external dev-dependencies resolve to the vendored shims under
# vendor/, so no network or registry cache is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "ci.sh: all green"
