#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
#
# Everything builds offline (see README "Building offline"): the
# external dev-dependencies resolve to the vendored shims under
# vendor/, so no network or registry cache is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (perf lints, deny warnings)"
cargo clippy --workspace --all-targets -- -W clippy::perf -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> fault-scenario smoke run"
# Fixed seed: loss-free and fully event-reconciled at a zero fault
# rate, lossy-but-terminating at a high rate (exits 1 on violation).
cargo run -q -p bench --release --bin faults -- --mode smoke --duration-ms 8000

echo "==> farm smoke run"
# Fixed seed: serial and threaded executors bit-identical for every
# routing policy, redirect events reconciled against the outcome
# counter, every arrival accounted for, and least-loaded routing
# shedding strictly less than hash under overload (exits 1 on
# violation).
cargo run -q -p bench --release --bin farm -- --mode smoke --duration-ms 10000

echo "==> daemon smoke run"
# Seeded churn script at the overloaded operating point: the daemon's
# quiescent prefix bit-identical to the batch farm, a mid-run drain
# migrating its backlog with the ledger still closed, the limping
# member quarantined by the supervisor, traced events reconciled
# against the daemon's counters, and two identical runs bit-identical
# (exits 1 on violation).
cargo run -q -p bench --release --bin daemon -- --mode smoke

echo "==> scenario smoke run"
# Million-session closed-loop population (diurnal base + flash crowd,
# mixed VoD/NewsByte tenants) streamed through the farm daemon in
# bounded memory: exact ledger closure, the admission gate and bounded
# queues both exercised by the surge, reduced-scale bit-identity, and
# the cascade's measured batch seek converging monotonically onto the
# analytic closed form (exits 1 on violation).
cargo run -q -p bench --release --bin scenario -- --mode smoke

echo "==> ctrl smoke run"
# Overloaded farm started from a detuned static configuration, run with
# and without the live controller: the controlled run must beat the
# static deadline-miss rate, hold p99 response within the survivorship
# slack, and two controlled runs must be bit-identical down to the
# decision log (exits 1 on violation).
cargo run -q -p bench --release --bin ctrl -- --mode smoke

echo "==> ctrl convergence sweep"
# Exhaustive (f, R, w) grid scores vs the guided search on the same
# seeded overloaded trace: the search must land within 10% of the
# exhaustive optimum in at most 5% of the grid's evaluations,
# deterministically (exits 1 on violation).
cargo run -q -p bench --release --bin ctrl -- --mode sweep

echo "==> oracle smoke gate"
# Differential + metamorphic battery: optimized cascade, baselines and
# farm routing vs naive references on seeded workloads, one fuzz case
# per archetype, and the metamorphic quick pass (exits 1 on any
# divergence).
cargo run -q -p oracle --release --bin oracle -- --mode smoke

echo "==> oracle perf-parity gate"
# The optimized engine (LUT kernels, batched encapsulation, arena
# dispatcher) diffed against the naive reference on every committed
# corpus trace under all four dispatcher regimes (exits 1 on any
# divergence).
cargo run -q -p oracle --release --bin oracle -- --mode perf-parity --corpus tests/corpus

echo "==> oracle diff-batch gate"
# The vectorized fast paths diffed against their scalar references on
# every committed corpus trace: batched characterization elementwise
# against per-point, and batched/4-producer-concurrent enqueue against
# the serial loop under all four dispatcher regimes (exits 1 on any
# divergence).
cargo run -q -p oracle --release --bin oracle -- --mode diff-batch --corpus tests/corpus

echo "==> concurrency stress gate"
# The multi-producer ingest determinism suite in release mode: optimized
# codegen widens the thread-interleaving window the debug-mode workspace
# test run cannot reach.
cargo test --release -q -p sim --test concurrent_ingest

echo "==> perf regression gate"
# Fresh measurement against the committed BENCH_sched.json; exits 1
# when any gauge (dispatch, engine, routing, daemon, controller,
# closed-loop scenario session rate, batched characterization, 4-producer
# concurrent ingest, SFC mapping latency) regresses past 20%.
cargo run -q -p bench --release --bin perf -- --mode check --baseline BENCH_sched.json --tolerance 0.2

echo "==> telemetry smoke gate"
# Seeded overloaded farm run: windowed-vs-plain snapshots bit-for-bit,
# per-shard delta streams summing to the cumulative aggregate, and the
# flight recorder firing on the shed burst with every dump reconciling
# exactly against its delta counters (exits 1 on violation).
cargo run -q -p bench --release --bin obsreport -- --mode smoke

echo "==> telemetry overhead gate"
# Off-vs-on measurement in one process (NullSink vs live windowed
# sinks) on a near-saturation trace; exits 1 when instrumentation
# costs more than 5% of engine or dispatch throughput.
cargo run -q -p bench --release --bin perf -- --mode overhead --budget 0.05

echo "ci.sh: all green"
