//! Quickstart: build the paper's full three-stage Cascaded-SFC scheduler,
//! feed it a handful of multimedia requests, and watch the service order
//! it produces versus plain FCFS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cascaded_sfc::cascade::{CascadeConfig, CascadedSfc};
use cascaded_sfc::sched::{DiskScheduler, Fcfs, HeadState, QosVector, Request};

fn main() {
    // Three QoS dimensions (user priority, request value, stream class)
    // with 16 levels each, on the paper's 3832-cylinder disk.
    let config = CascadeConfig::paper_default(3, 3832);
    let mut cascade = CascadedSfc::new(config).expect("valid configuration");
    let mut fcfs = Fcfs::new();

    // A burst of requests: (priorities, deadline ms, cylinder).
    // Level 0 is the highest priority.
    let burst = [
        ("ftp download   ", [12, 14, 15], 2_000u64, 3600u32),
        ("video frame    ", [1, 2, 0], 180, 1200),
        ("audio chunk    ", [0, 3, 1], 150, 1250),
        ("thumbnail fetch", [8, 9, 7], 900, 300),
        ("video frame    ", [1, 2, 0], 200, 1190),
        ("editor preview ", [3, 1, 2], 400, 2400),
    ];

    let head = HeadState::new(1000, 0, 3832);
    println!("arrival order:");
    for (i, (label, qos, deadline_ms, cylinder)) in burst.iter().enumerate() {
        let req = Request::read(
            i as u64,
            0,
            deadline_ms * 1000,
            *cylinder,
            64 * 1024,
            QosVector::new(qos),
        );
        let v = cascade.encapsulator().characterize(&req, &head);
        println!("  [{i}] {label} qos={qos:?} deadline={deadline_ms}ms cyl={cylinder} -> v_c={v}");
        cascade.enqueue(req.clone(), &head);
        fcfs.enqueue(req, &head);
    }

    let drain = |s: &mut dyn DiskScheduler| {
        let mut order = Vec::new();
        while let Some(r) = s.dequeue(&head) {
            order.push(r.id);
        }
        order
    };

    println!("\nfcfs service order:         {:?}", drain(&mut fcfs));
    println!("cascaded-sfc service order: {:?}", drain(&mut cascade));
    println!(
        "\nThe cascade serves the urgent, high-priority audio/video requests \
         first and pushes the bulk FTP transfer to the back — while still \
         grouping nearby cylinders."
    );
}
