//! Scheduler-from-a-spec: the paper's claim that SFC scheduling lets you
//! *generate* schedulers the way parser generators generate parsers (§1,
//! advantage 4). Pass a spec on the command line (or rely on the default)
//! and the same binary becomes a different disk scheduler.
//!
//! ```text
//! cargo run --release --example spec_driven
//! cargo run --release --example spec_driven -- \
//!     'sfc2 = weighted : f=8, horizon=700ms; dispatch = batch'
//! cargo run --release --example spec_driven -- \
//!     'sfc3 = r=1 : cylinders=3832, circular; dispatch = batch'  # ≈ C-SCAN
//! ```

use cascaded_sfc::cascade::{spec, CascadedSfc};
use cascaded_sfc::sim::{simulate, DiskService, SimOptions};
use cascaded_sfc::workload::PoissonConfig;

const DEFAULT_SPEC: &str = "
    # The paper's full Cascaded-SFC scheduler.
    sfc1 = diagonal : dims=3, levels=8
    sfc2 = weighted : f=1, horizon=700ms
    sfc3 = r=3 : cylinders=3832
    dispatch = conditional : w=10%, sp, er=2
";

fn main() {
    let spec_text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_SPEC.to_string());
    let config = match spec::parse(&spec_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("spec error: {e}");
            std::process::exit(2);
        }
    };
    println!("spec:\n{}", spec_text.trim());
    println!("\nparsed configuration:\n{config:#?}\n");

    let mut scheduler = match CascadedSfc::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("configuration error: {e}");
            std::process::exit(2);
        }
    };

    let mut wl = PoissonConfig::figure8(10_000);
    wl.mean_interarrival_us = 22_000;
    let trace = wl.generate(23);
    let mut service = DiskService::table1();
    let m = simulate(
        &mut scheduler,
        &trace,
        &mut service,
        SimOptions::with_shape(3, 8).dropping(),
    );
    println!("requests      {}", m.requests_total());
    println!(
        "losses        {} ({:.1}%)",
        m.losses_total(),
        m.loss_ratio() * 100.0
    );
    println!(
        "mean seek     {:.2} ms",
        m.seek_us as f64 / 1000.0 / m.served.max(1) as f64
    );
    println!("mean response {:.1} ms", m.mean_response_us() / 1000.0);
    println!("inversions    {}", m.inversions_total());
}
