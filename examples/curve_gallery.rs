//! Gallery of the paper's Figure-1 space-filling curves: draws each 2-D
//! curve on an 8x8 grid as ASCII art (cell labels are curve positions in
//! hex) and prints the geometric quality measures that explain their
//! scheduling behaviour.
//!
//! ```text
//! cargo run --release --example curve_gallery
//! ```

use cascaded_sfc::sfc::{quality, CurveKind, SpaceFillingCurve};

fn draw(curve: &dyn SpaceFillingCurve) {
    let side = curve.side();
    // Print y from top (side-1) to bottom (0) so the origin is bottom-left.
    for y in (0..side).rev() {
        let mut line = String::new();
        for x in 0..side {
            let i = curve.index(&[x, y]);
            line.push_str(&format!("{i:3x}"));
        }
        println!("  {line}");
    }
}

fn main() {
    for kind in CurveKind::ALL {
        // Peano needs a radix-3 grid: order 2 gives 9x9; everything else
        // gets 8x8 (order 3).
        let order = if kind == CurveKind::Peano { 2 } else { 3 };
        let curve = kind.build(2, order).expect("2-D curves always build");
        println!("== {} ({}x{} grid) ==", kind, curve.side(), curve.side());
        draw(curve.as_ref());

        let cont = quality::continuity(curve.as_ref()).expect("small grid");
        let bias = quality::dimension_bias(curve.as_ref(), 4000);
        println!(
            "  continuous: {}   max jump: {}   mean jump: {:.2}",
            cont.is_continuous(),
            cont.max_jump,
            cont.mean_jump
        );
        println!(
            "  pairwise inversion rate per dimension: x {:.2}, y {:.2}",
            bias.inversion_rate[0], bias.inversion_rate[1]
        );
        println!();
    }
    println!(
        "Reading the numbers: a curve that never inverts a dimension (rate \
         0.00) schedules it with absolute priority; the diagonal's equal \
         rates are why it is the paper's fairest priority curve; and the \
         continuous curves (scan, hilbert, spiral, peano) cluster nearby \
         values — the property SFC3 uses to cluster nearby cylinders."
    );
}
