//! Video-on-demand server scenario: a loaded disk receiving prioritized
//! real-time block requests, served by six different schedulers. Prints a
//! per-policy comparison of deadline losses, seek time, priority
//! inversion and response time — the trade-off space the paper's
//! Cascaded-SFC navigates.
//!
//! ```text
//! cargo run --release --example video_server [requests]
//! ```

use cascaded_sfc::cascade::{CascadeConfig, CascadedSfc};
use cascaded_sfc::obs::{SharedSink, Snapshot};
use cascaded_sfc::sched::{Batched, CScan, CostModel, DiskScheduler, Edf, Fcfs, ScanEdf, Sstf};
use cascaded_sfc::sim::{simulate, simulate_traced, DiskService, SimOptions};
use cascaded_sfc::workload::{DeadlineDist, PoissonConfig, Sizing};

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    // Prioritized real-time workload: 2 QoS dimensions, 8 levels,
    // 300-500 ms deadlines, 16-KB blocks, heavy load.
    let mut wl = PoissonConfig::figure8(requests);
    wl.dims = 2;
    wl.mean_interarrival_us = 9_000;
    wl.sizing = Sizing::Fixed(16 * 1024);
    wl.deadline = DeadlineDist::Uniform {
        lo_us: 300_000,
        hi_us: 500_000,
    };
    let trace = wl.generate(7);

    let mut schedulers: Vec<(&str, Box<dyn DiskScheduler>)> = vec![
        ("fcfs", Box::new(Fcfs::new())),
        ("sstf", Box::new(Sstf::new())),
        ("edf", Box::new(Edf::new())),
        ("scan-edf", Box::new(ScanEdf::new(50_000))),
        (
            "batch c-scan",
            Box::new(Batched::new(CScan::new(), "batched-c-scan")),
        ),
        (
            "cascaded-sfc",
            Box::new(CascadedSfc::new(CascadeConfig::paper_default(2, 3832)).unwrap()),
        ),
    ];
    // SCAN-RT needs a cost model; add it too.
    schedulers.push((
        "scan-rt",
        Box::new(cascaded_sfc::sched::ScanRt::new(CostModel::table1())),
    ));

    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "scheduler", "losses", "loss-%", "seek ms/req", "resp ms", "inversions"
    );
    for (name, mut s) in schedulers {
        let mut service = DiskService::table1();
        let m = simulate(
            s.as_mut(),
            &trace,
            &mut service,
            SimOptions::with_shape(2, 8).dropping(),
        );
        println!(
            "{:<14} {:>8} {:>9.1}% {:>12.2} {:>12.1} {:>12}",
            name,
            m.losses_total(),
            m.loss_ratio() * 100.0,
            m.seek_us as f64 / 1000.0 / m.served.max(1) as f64,
            m.mean_response_us() / 1000.0,
            m.inversions_total(),
        );
    }
    println!(
        "\nNote how EDF minimizes losses only while the disk keeps up, SSTF \
         minimizes seeks but ignores deadlines, and the Cascaded-SFC holds \
         losses low while also keeping inversions and seeks down."
    );

    // Beyond the means: rerun the cascade with a trace sink attached and
    // print the full response/seek/queue-depth distributions (the same
    // machinery `cargo run -p bench --bin trace` streams to JSONL).
    let sink = SharedSink::new(Snapshot::new());
    let mut s =
        CascadedSfc::with_sink(CascadeConfig::paper_default(2, 3832), sink.clone()).unwrap();
    let mut service = DiskService::table1();
    simulate_traced(
        &mut s,
        &trace,
        &mut service,
        SimOptions::with_shape(2, 8).dropping(),
        &mut sink.clone(),
    );
    println!("\ncascaded-sfc distributions (traced rerun):");
    sink.with(|snapshot| print!("{}", snapshot.report()));
}
