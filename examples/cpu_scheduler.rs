//! Beyond disks (§1, §4.1): the Cascaded-SFC framework as a *CPU / thread
//! scheduler*. When there is no seek time to optimize, SFC3 is simply
//! skipped — the cascade becomes a priority+deadline scheduler for
//! real-time tasks with multiple QoS dimensions (user priority, tenant
//! class, energy budget …).
//!
//! This example schedules a mixed real-time task set on one core and
//! compares the cascade against EDF on deadline misses *and* on which
//! tenants miss.
//!
//! ```text
//! cargo run --release --example cpu_scheduler
//! ```

use cascaded_sfc::cascade::{CascadeConfig, CascadedSfc, DispatchConfig, Stage2Combiner};
use cascaded_sfc::sched::{DiskScheduler, Edf, QosVector, Request};
use cascaded_sfc::sfc::CurveKind;
use cascaded_sfc::sim::{simulate, Metrics, SimOptions, TransferDominated};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A task set: bursts of jobs from 3 tenant classes × 4 urgency classes.
/// "Cylinder" is unused (single core, no spatial dimension); job cost is
/// carried in `bytes` (1 byte = 1 ns of CPU here).
fn task_set(seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::new();
    let mut id = 0;
    for burst in 0..200u64 {
        for _ in 0..12 {
            let arrival = burst * 40_000 + rng.gen_range(0..2_000);
            // Two QoS dimensions: tenant class (0 = platinum) and an
            // internal job class.
            let tenant = rng.gen_range(0..3u8) * 3; // 0, 3, 6 of 8 levels
            let class = rng.gen_range(0..8u8);
            let cost_us = rng.gen_range(1_000..8_000u64);
            let deadline = arrival + rng.gen_range(30_000..120_000);
            jobs.push(Request::read(
                id,
                arrival,
                deadline,
                0,
                cost_us * 1000, // ns
                QosVector::new(&[tenant, class]),
            ));
            id += 1;
        }
    }
    jobs.sort_by_key(|r| (r.arrival_us, r.id));
    jobs
}

fn run(s: &mut dyn DiskScheduler, jobs: &[Request]) -> Metrics {
    // 1 ns of CPU per "byte": a pure computation-time service model.
    let mut cpu = TransferDominated::scaled(0, 1, 1);
    simulate(s, jobs, &mut cpu, SimOptions::with_shape(2, 8).dropping())
}

fn main() {
    let jobs = task_set(17);
    println!(
        "CPU scheduling: {} jobs, 3 tenant classes, deadlines 30-120 ms\n",
        jobs.len()
    );

    // The cascade without SFC3 (no spatial dimension to optimize).
    let cascade_cfg = CascadeConfig::priority_deadline(
        CurveKind::Diagonal,
        2,
        3,
        Stage2Combiner::Weighted { f: 1.0 },
        120_000,
    )
    .with_dispatch(DispatchConfig::non_preemptive());

    let mut results = Vec::new();
    results.push(("edf", run(&mut Edf::new(), &jobs)));
    let mut cascade = CascadedSfc::new(cascade_cfg).unwrap();
    results.push(("cascaded-sfc", run(&mut cascade, &jobs)));

    println!(
        "{:<14} {:>8} {:>10}   misses by tenant class (platinum, gold, bronze)",
        "scheduler", "misses", "weighted"
    );
    for (name, m) in &results {
        let by_tenant: Vec<u64> = [0usize, 3, 6]
            .iter()
            .map(|&lvl| m.losses_by_dim_level[0][lvl])
            .collect();
        println!(
            "{:<14} {:>8} {:>10.2}   {:?}",
            name,
            m.losses_total(),
            m.weighted_loss(0, 11.0),
            by_tenant
        );
    }
    println!(
        "\nEDF is tenant-blind: platinum misses as often as bronze. The \
         cascade concentrates the unavoidable misses on the bronze class — \
         the same selectivity the paper shows for disks, with SFC3 simply \
         turned off."
    );
}
