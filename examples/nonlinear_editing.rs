//! The paper's §6 case study: the NewsByte5 non-linear editing server.
//! 80 broadcast users stream, ingest and edit MPEG-1 material with hard
//! per-block deadlines; blocks that miss are lost. Shows *who* loses
//! under each scheduler: the per-priority-level loss breakdown and the
//! weighted aggregate cost.
//!
//! ```text
//! cargo run --release --example nonlinear_editing [users]
//! ```

use cascaded_sfc::cascade::{
    CascadeConfig, CascadedSfc, DispatchConfig, Stage1, Stage2, Stage2Combiner,
};
use cascaded_sfc::sched::{DiskScheduler, Fcfs};
use cascaded_sfc::sfc::CurveKind;
use cascaded_sfc::sim::{simulate, DiskService, SimOptions};
use cascaded_sfc::workload::NewsByteConfig;

fn curve_scheduler(kind: CurveKind) -> CascadedSfc {
    let cfg = CascadeConfig {
        stage1: Some(Stage1 {
            curve: CurveKind::Sweep, // 1-D identity
            dims: 1,
            level_bits: 3,
        }),
        stage2: Some(Stage2 {
            combiner: Stage2Combiner::Curve(kind),
            horizon_us: 150_000,
            resolution_bits: 8,
        }),
        stage3: None,
        dispatch: DispatchConfig::non_preemptive(),
    };
    CascadedSfc::new(cfg).expect("valid configuration")
}

fn main() {
    let users: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);

    let mut wl = NewsByteConfig::paper(users);
    wl.duration_us = 45_000_000;
    let trace = wl.generate(11);
    println!(
        "NewsByte5 editing server: {users} users, {} requests over {} s, deadlines 75-150 ms\n",
        trace.len(),
        wl.duration_us / 1_000_000
    );

    let schedulers: Vec<(&str, Box<dyn DiskScheduler>)> = vec![
        ("fcfs", Box::new(Fcfs::new())),
        (
            "sweep-x (EDF-like)",
            Box::new(curve_scheduler(CurveKind::CScan)),
        ),
        (
            "sweep-y (multi-queue)",
            Box::new(curve_scheduler(CurveKind::Sweep)),
        ),
        ("hilbert", Box::new(curve_scheduler(CurveKind::Hilbert))),
        ("gray", Box::new(curve_scheduler(CurveKind::Gray))),
    ];

    println!(
        "{:<22} {:>7} {:>9}   losses per priority level 0(hi)..7(lo)",
        "scheduler", "lost-%", "weighted"
    );
    for (name, mut s) in schedulers {
        let mut service = DiskService::table1();
        let m = simulate(
            s.as_mut(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 8).dropping(),
        );
        let levels: Vec<String> = m.losses_by_dim_level[0]
            .iter()
            .map(|n| format!("{n:>5}"))
            .collect();
        println!(
            "{:<22} {:>6.1}% {:>9.2}   [{}]",
            name,
            m.loss_ratio() * 100.0,
            m.weighted_loss(0, 11.0),
            levels.join(" ")
        );
    }
    println!(
        "\nA good multimedia scheduler loses from the right side of the \
         bracket (low priorities). FCFS and the EDF-like sweep lose \
         indiscriminately; the priority-aware curves shift losses rightward."
    );
}
