//! The §5 micro-benchmark workload: Poisson arrivals over a QoS grid.

use crate::dist;
use crate::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::{Micros, QosVector, Request};

/// How priority levels are assigned per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelDist {
    /// Uniform over `0..levels` (the §5 experiments).
    Uniform,
    /// Truncated normal centred on the middle level (the §6 experiment).
    Normal,
}

/// How deadlines are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineDist {
    /// No real-time constraint (`deadline = ∞`) — the Figure 5–7 setting.
    Relaxed,
    /// Uniform offset from the arrival time, in µs — e.g. the paper's
    /// 500–700 ms (§5.2) or 75–150 ms (§6).
    Uniform {
        /// Smallest offset.
        lo_us: Micros,
        /// Largest offset (inclusive).
        hi_us: Micros,
    },
}

/// How request sizes are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sizing {
    /// Every request transfers the same number of bytes.
    Fixed(u64),
    /// §5.2's assumption: high-priority requests (audio/video chunks) are
    /// small, low-priority ones (FTP transfers) are large. The size is
    /// `base_bytes + level(dim 0) · per_level_bytes`.
    PriorityScaled {
        /// Size at the highest priority (level 0).
        base_bytes: u64,
        /// Extra bytes per priority level.
        per_level_bytes: u64,
    },
}

/// Configuration of the Poisson workload generator.
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Mean interarrival time (the paper uses 25 ms for "normal load").
    pub mean_interarrival_us: Micros,
    /// Number of requests to generate.
    pub count: usize,
    /// Number of priority-like QoS dimensions.
    pub dims: u32,
    /// Priority levels per dimension (the paper uses 16, or 8 in §5.2/§6).
    pub levels: u8,
    /// Level assignment distribution.
    pub level_dist: LevelDist,
    /// Deadline assignment.
    pub deadline: DeadlineDist,
    /// Number of disk cylinders (targets are uniform over them).
    pub cylinders: u32,
    /// Request sizing.
    pub sizing: Sizing,
}

impl PoissonConfig {
    /// The Figure 5–7 setting: relaxed deadlines, transfer-dominated
    /// blocks, 16 levels per dimension, 25 ms mean interarrival.
    pub fn figure5(dims: u32, count: usize) -> Self {
        PoissonConfig {
            mean_interarrival_us: 25_000,
            count,
            dims,
            levels: 16,
            level_dist: LevelDist::Uniform,
            deadline: DeadlineDist::Relaxed,
            cylinders: 3832,
            sizing: Sizing::Fixed(64 * 1024),
        }
    }

    /// The Figure 8–9 setting: three priority dimensions of 8 levels,
    /// deadlines 500–700 ms, priority-scaled request sizes.
    pub fn figure8(count: usize) -> Self {
        PoissonConfig {
            mean_interarrival_us: 25_000,
            count,
            dims: 3,
            levels: 8,
            level_dist: LevelDist::Uniform,
            deadline: DeadlineDist::Uniform {
                lo_us: 500_000,
                hi_us: 700_000,
            },
            cylinders: 3832,
            sizing: Sizing::PriorityScaled {
                base_bytes: 16 * 1024,
                per_level_bytes: 24 * 1024,
            },
        }
    }

    /// Generate the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.dims as usize <= sched::MAX_QOS_DIMS);
        assert!(self.levels > 0 && self.cylinders > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now: Micros = 0;
        let mut trace = Vec::with_capacity(self.count);
        for id in 0..self.count as u64 {
            now += dist::exp_us(&mut rng, self.mean_interarrival_us);
            let mut levels = [0u8; sched::MAX_QOS_DIMS];
            for slot in levels.iter_mut().take(self.dims as usize) {
                *slot = match self.level_dist {
                    LevelDist::Uniform => dist::uniform_level(&mut rng, self.levels),
                    LevelDist::Normal => dist::normal_level(&mut rng, self.levels),
                };
            }
            let qos = QosVector::new(&levels[..self.dims as usize]);
            let deadline = match self.deadline {
                DeadlineDist::Relaxed => Micros::MAX,
                DeadlineDist::Uniform { lo_us, hi_us } => {
                    now + rng.gen_range(lo_us..=hi_us.max(lo_us))
                }
            };
            let bytes = match self.sizing {
                Sizing::Fixed(b) => b,
                Sizing::PriorityScaled {
                    base_bytes,
                    per_level_bytes,
                } => base_bytes + qos.level(0) as u64 * per_level_bytes,
            };
            let cylinder = rng.gen_range(0..self.cylinders);
            trace.push(Request::read(id, now, deadline, cylinder, bytes, qos));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_trace;

    #[test]
    fn figure5_trace_shape() {
        let cfg = PoissonConfig::figure5(4, 2_000);
        let t = cfg.generate(7);
        assert_eq!(t.len(), 2_000);
        assert!(validate_trace(&t));
        assert!(t.iter().all(|r| r.qos.dims() == 4));
        assert!(t.iter().all(|r| !r.has_deadline()));
        assert!(t.iter().all(|r| r.cylinder < 3832));
        assert!(t.iter().all(|r| r.qos.levels().iter().all(|&l| l < 16)));
        // Mean interarrival ≈ 25 ms.
        let span = t.last().unwrap().arrival_us as f64;
        let mean = span / t.len() as f64;
        assert!((20_000.0..30_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn figure8_deadlines_and_sizes() {
        let cfg = PoissonConfig::figure8(1_000);
        let t = cfg.generate(11);
        for r in &t {
            let offset = r.deadline_us - r.arrival_us;
            assert!((500_000..=700_000).contains(&offset));
            let expected = 16 * 1024 + r.qos.level(0) as u64 * 24 * 1024;
            assert_eq!(r.bytes, expected);
        }
        // High priority (level 0) really is smaller than low (level 7).
        let small = t.iter().find(|r| r.qos.level(0) == 0).unwrap();
        let large = t.iter().find(|r| r.qos.level(0) == 7).unwrap();
        assert!(small.bytes < large.bytes);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let cfg = PoissonConfig::figure5(2, 100);
        assert_eq!(cfg.generate(1), cfg.generate(1));
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }
}
