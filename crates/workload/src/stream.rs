//! Streaming trace sources: pull-based request generation for horizons
//! too long to materialize.
//!
//! Every generator in this crate so far returns a [`crate::Trace`] — a
//! fully materialized `Vec<Request>`. That is fine for a 30-second
//! figure reproduction and hopeless for the ROADMAP's north star: a
//! farm serving **millions of sessions over multi-hour horizons**, where
//! the trace would be gigabytes. [`TraceSource`] is the pull-based
//! alternative: a time-ordered iterator of requests that the consumer
//! (the [`sim::EngineStepper`] pump or the farm daemon's ingest loop)
//! drains one arrival at a time, in bounded memory.
//!
//! Two sources are provided:
//!
//! * [`VecSource`] — the adapter: any materialized trace becomes a
//!   source, which is how the oracle proves the streaming ingest paths
//!   bit-identical to the batch engines.
//! * [`SessionSource`] — the **closed-loop client population**: stream
//!   sessions are born from a non-homogeneous Poisson process over a
//!   [`RateCurve`] (constant, diurnal, flash-crowd — curves compose by
//!   summing), live through a per-session playback loop (one block per
//!   period plus an exponential think gap), and die after a bounded
//!   number of blocks, freeing their state. Only *live* sessions occupy
//!   memory — a million-session day fits in a heap of a few hundred
//!   entries. Mixed tenancy (VoD playback vs. NewsByte-style editing
//!   bursts) is drawn per session, and the consumer can push back:
//!   [`TraceSource::observe`] reports its backlog, and the source
//!   stretches future think times in response — the closed loop the
//!   open-loop generators cannot express.
//!
//! Everything is deterministic given the seed *and* the observe
//! sequence: session birth times depend only on the seed (Poisson
//! thinning), per-session draws come from a splitmix-derived private
//! stream keyed by `(seed, session id)`, and backpressure only scales
//! think-time means going forward.
//!
//! [`sim::EngineStepper`]: ../sim/struct.EngineStepper.html

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::{Micros, OpKind, QosVector, Request};

use crate::dist;

/// A pull-based, time-ordered request source.
///
/// The iterator contract: `next()` yields requests with non-decreasing
/// `arrival_us` and densely increasing ids (the [`crate::validate_trace`]
/// invariant, streamed). The extra hook closes the loop: a consumer may
/// call [`TraceSource::observe`] after absorbing each arrival to report
/// how much work it still has queued, and adaptive sources slow their
/// clients down.
pub trait TraceSource: Iterator<Item = Request> {
    /// Backpressure feedback: the consumer's current backlog (queued +
    /// undelivered requests) after absorbing the latest arrival.
    /// Open-loop sources ignore it.
    fn observe(&mut self, _backlog: usize) {}
}

/// A materialized trace as a source — the batch/streaming bridge.
#[derive(Debug)]
pub struct VecSource {
    items: std::vec::IntoIter<Request>,
    last_us: Micros,
}

impl VecSource {
    /// Wrap a trace. The trace must be arrival-sorted (every generator
    /// in this crate produces that); violations panic at the offending
    /// element rather than desynchronizing a downstream engine.
    pub fn new(trace: crate::Trace) -> Self {
        VecSource {
            items: trace.into_iter(),
            last_us: 0,
        }
    }
}

impl Iterator for VecSource {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let r = self.items.next()?;
        assert!(
            r.arrival_us >= self.last_us,
            "VecSource requires an arrival-sorted trace: {} after {}",
            r.arrival_us,
            self.last_us
        );
        self.last_us = r.arrival_us;
        Some(r)
    }
}

impl TraceSource for VecSource {}

/// Session arrival-rate curve, in sessions per minute. Curves compose
/// by summation (a [`SessionConfig`] takes a list), so "diurnal base
/// plus a lunchtime flash crowd" is two entries.
#[derive(Debug, Clone, Copy)]
pub enum RateCurve {
    /// A flat rate.
    Constant {
        /// Sessions per minute.
        per_minute: f64,
    },
    /// A raised-cosine day/night cycle: the rate swings between `base`
    /// (at phase 0) and `peak` (half a period later).
    Diurnal {
        /// Trough rate (sessions per minute).
        base_per_minute: f64,
        /// Crest rate (sessions per minute).
        peak_per_minute: f64,
        /// Cycle length (µs) — 24 simulated hours for a true diurnal.
        period_us: u64,
    },
    /// A Gaussian surge centred at `at_us`: everyone shows up for the
    /// premiere.
    FlashCrowd {
        /// Extra sessions per minute at the crest.
        spike_per_minute: f64,
        /// Crest time (µs).
        at_us: u64,
        /// Standard deviation of the surge (µs).
        width_us: u64,
    },
}

impl RateCurve {
    /// Instantaneous rate at `t`, in sessions per µs.
    pub fn rate_per_us(&self, t: u64) -> f64 {
        const US_PER_MINUTE: f64 = 60_000_000.0;
        match *self {
            RateCurve::Constant { per_minute } => per_minute / US_PER_MINUTE,
            RateCurve::Diurnal {
                base_per_minute,
                peak_per_minute,
                period_us,
            } => {
                let phase = (t % period_us.max(1)) as f64 / period_us.max(1) as f64;
                let swing = 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                (base_per_minute + (peak_per_minute - base_per_minute) * swing) / US_PER_MINUTE
            }
            RateCurve::FlashCrowd {
                spike_per_minute,
                at_us,
                width_us,
            } => {
                let z = (t as f64 - at_us as f64) / width_us.max(1) as f64;
                spike_per_minute * (-0.5 * z * z).exp() / US_PER_MINUTE
            }
        }
    }

    /// An upper bound on [`RateCurve::rate_per_us`] over all `t` — the
    /// majorant the Poisson thinning rejects against.
    pub fn peak_per_us(&self) -> f64 {
        const US_PER_MINUTE: f64 = 60_000_000.0;
        match *self {
            RateCurve::Constant { per_minute } => per_minute / US_PER_MINUTE,
            RateCurve::Diurnal {
                base_per_minute,
                peak_per_minute,
                ..
            } => base_per_minute.max(peak_per_minute) / US_PER_MINUTE,
            RateCurve::FlashCrowd {
                spike_per_minute, ..
            } => spike_per_minute / US_PER_MINUTE,
        }
    }
}

/// Which tenant a session belongs to — the two workload families of the
/// paper, now sharing one farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tenant {
    /// VoD playback: one 64-KB block per MPEG-1 period, read-only,
    /// one-period deadlines, sequential cylinder walk.
    Vod,
    /// NewsByte-style editing: blocks on the striped period, tight
    /// 75–150 ms deadlines, a read/write mix, normal priority levels.
    NewsByte,
}

/// Configuration of the closed-loop session population.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Arrival-rate curves, summed. Must not be empty.
    pub curves: Vec<RateCurve>,
    /// Stop creating sessions after this many (the population cap).
    pub max_sessions: u64,
    /// No session is born at or after this time (µs); already-live
    /// sessions run to completion past it.
    pub horizon_us: u64,
    /// Fraction of sessions on the NewsByte editing tenant; the rest
    /// are VoD playback.
    pub newsbyte_fraction: f64,
    /// Blocks per session, drawn uniformly from this inclusive range.
    pub blocks: (u32, u32),
    /// Mean exponential think gap appended to each playback period (µs).
    pub think_mean_us: u64,
    /// Priority levels (QoS dimension 0).
    pub levels: u8,
    /// Cylinders on the target disk(s).
    pub cylinders: u32,
    /// Bytes per block request.
    pub block_bytes: u64,
    /// Backlog (requests) at which backpressure doubles think times;
    /// the stretch grows linearly with the reported backlog and is
    /// capped at 8×.
    pub backpressure_backlog: usize,
}

impl SessionConfig {
    /// A mixed-tenant population: a diurnal VoD/editing base with an
    /// evening flash crowd, sized so the cap of `max_sessions` binds
    /// before `horizon_us` (the curves overshoot by design — the cap is
    /// the contract, the curves are the shape).
    pub fn mixed(max_sessions: u64, horizon_us: u64) -> Self {
        // Average ~1.4× the rate that would spread max_sessions evenly
        // over the horizon, so the cap binds with margin.
        let per_minute = max_sessions as f64 / (horizon_us as f64 / 60_000_000.0) * 1.4;
        SessionConfig {
            curves: vec![
                RateCurve::Diurnal {
                    base_per_minute: per_minute * 0.4,
                    peak_per_minute: per_minute * 1.2,
                    period_us: horizon_us.max(2),
                },
                RateCurve::FlashCrowd {
                    spike_per_minute: per_minute * 2.0,
                    at_us: horizon_us / 2,
                    width_us: (horizon_us / 40).max(1),
                },
            ],
            max_sessions,
            horizon_us,
            newsbyte_fraction: 0.3,
            blocks: (2, 4),
            think_mean_us: 50_000,
            levels: 8,
            cylinders: 3832,
            block_bytes: 64 * 1024,
            backpressure_backlog: 1024,
        }
    }
}

/// One live session's playback state.
#[derive(Debug)]
struct Session {
    sid: u64,
    tenant: Tenant,
    level: u8,
    writes: bool,
    cylinder: u32,
    blocks_left: u32,
    block_index: u32,
    rng: StdRng,
}

/// Heap entry ordered by (time, session id); the session payload is
/// carried along but never compared (its RNG has no order).
struct Pending {
    at_us: Micros,
    session: Session,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.at_us, self.session.sid) == (other.at_us, other.session.sid)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at_us, other.session.sid).cmp(&(self.at_us, self.session.sid))
    }
}

/// MPEG-1 block period: 64 KB × 8 / 1.5 Mb/s ≈ 349.5 ms.
const VOD_PERIOD_US: Micros = 349_525;
/// The NewsByte on-disk period: one block in four lands here (RAID-5
/// striping over 4 data disks), so the per-disk period is 4× longer.
const NEWSBYTE_PERIOD_US: Micros = 1_398_101;

/// The closed-loop session population. See the module docs for the
/// model; drive it like any iterator, feeding [`TraceSource::observe`]
/// after each absorbed arrival to close the loop.
pub struct SessionSource {
    cfg: SessionConfig,
    seed: u64,
    /// The arrival process' own RNG (births only).
    births: StdRng,
    /// Next session birth, if the process is still running.
    next_birth_us: Option<Micros>,
    /// Live sessions keyed by their next request time.
    heap: BinaryHeap<Pending>,
    sessions_started: u64,
    peak_live: usize,
    emitted: u64,
    last_emitted_us: Micros,
    /// Current think-time stretch from consumer backpressure (≥ 1).
    pressure: f64,
}

impl SessionSource {
    /// Build the population. Panics on an empty curve list, a zero
    /// session cap, or a zero-rate curve sum (no session could ever be
    /// born).
    pub fn new(cfg: SessionConfig, seed: u64) -> Self {
        assert!(!cfg.curves.is_empty(), "at least one rate curve");
        assert!(cfg.max_sessions > 0, "a zero-session population");
        assert!(cfg.blocks.0 >= 1 && cfg.blocks.0 <= cfg.blocks.1);
        assert!(cfg.levels > 0 && cfg.cylinders > 0);
        let peak: f64 = cfg.curves.iter().map(RateCurve::peak_per_us).sum();
        assert!(peak > 0.0, "the summed rate curves never fire");
        let mut source = SessionSource {
            cfg,
            seed,
            births: StdRng::seed_from_u64(seed ^ 0x5e55_1055),
            next_birth_us: Some(0),
            heap: BinaryHeap::new(),
            sessions_started: 0,
            peak_live: 0,
            emitted: 0,
            last_emitted_us: 0,
            pressure: 1.0,
        };
        source.advance_birth(0);
        source
    }

    /// Sessions created so far.
    pub fn sessions_started(&self) -> u64 {
        self.sessions_started
    }

    /// Sessions currently holding playback state.
    pub fn live_sessions(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of simultaneously live sessions — the
    /// bounded-memory witness: this, not the total session count, is
    /// what the source keeps in memory.
    pub fn peak_live_sessions(&self) -> usize {
        self.peak_live
    }

    /// Requests emitted so far (also the next request id).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current think-time stretch factor (1.0 = no backpressure).
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    fn rate_per_us(&self, t: u64) -> f64 {
        self.cfg.curves.iter().map(|c| c.rate_per_us(t)).sum()
    }

    /// Advance the birth process past `from` by Poisson thinning: draw
    /// candidate gaps at the majorant rate, accept each with
    /// probability `rate(t)/peak`. Terminates at the horizon or the
    /// session cap.
    fn advance_birth(&mut self, from: Micros) {
        if self.sessions_started >= self.cfg.max_sessions {
            self.next_birth_us = None;
            return;
        }
        let peak: f64 = self.cfg.curves.iter().map(RateCurve::peak_per_us).sum();
        let mean_gap_us = (1.0 / peak).round().max(1.0) as u64;
        let mut t = from;
        loop {
            t = t.saturating_add(dist::exp_us(&mut self.births, mean_gap_us).max(1));
            if t >= self.cfg.horizon_us {
                self.next_birth_us = None;
                return;
            }
            if self.births.gen::<f64>() * peak <= self.rate_per_us(t) {
                self.next_birth_us = Some(t);
                return;
            }
        }
    }

    /// Create the session due at `at_us` and queue its first request.
    fn spawn(&mut self, at_us: Micros) {
        let sid = self.sessions_started;
        self.sessions_started += 1;
        // Private per-session stream: splitmix over (seed, sid) — the
        // session's draws never depend on sibling order.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ sid.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17),
        );
        let tenant = if rng.gen::<f64>() < self.cfg.newsbyte_fraction {
            Tenant::NewsByte
        } else {
            Tenant::Vod
        };
        let level = match tenant {
            Tenant::Vod => rng.gen_range(0..self.cfg.levels),
            Tenant::NewsByte => dist::normal_level(&mut rng, self.cfg.levels),
        };
        let writes = tenant == Tenant::NewsByte && rng.gen::<f64>() < 0.3;
        let session = Session {
            sid,
            tenant,
            level,
            writes,
            cylinder: rng.gen_range(0..self.cfg.cylinders),
            blocks_left: rng.gen_range(self.cfg.blocks.0..=self.cfg.blocks.1),
            block_index: 0,
            rng,
        };
        self.heap.push(Pending { at_us, session });
        self.peak_live = self.peak_live.max(self.heap.len());
        self.advance_birth(at_us);
    }

    /// Emit the pending session's next request, then either reschedule
    /// or retire the session.
    fn emit(&mut self, mut p: Pending) -> Request {
        let s = &mut p.session;
        let arrival = p.at_us;
        let period = match s.tenant {
            Tenant::Vod => VOD_PERIOD_US,
            Tenant::NewsByte => NEWSBYTE_PERIOD_US,
        };
        let deadline = match s.tenant {
            Tenant::Vod => arrival + period,
            Tenant::NewsByte => arrival + s.rng.gen_range(75_000..=150_000),
        };
        let cylinder = match s.tenant {
            Tenant::Vod => (s.cylinder + s.block_index) % self.cfg.cylinders,
            Tenant::NewsByte => (s.cylinder + s.block_index % 32) % self.cfg.cylinders,
        };
        let mut r = Request::read(
            self.emitted,
            arrival,
            deadline,
            cylinder,
            self.cfg.block_bytes,
            QosVector::single(s.level),
        )
        .with_stream(s.sid);
        if s.writes && s.block_index % 2 == 1 {
            r.kind = OpKind::Write;
        }
        self.emitted += 1;
        self.last_emitted_us = arrival;
        s.blocks_left -= 1;
        s.block_index += 1;
        if s.blocks_left > 0 {
            let think_mean = (self.cfg.think_mean_us as f64 * self.pressure).round() as u64;
            let think = if think_mean == 0 {
                0
            } else {
                dist::exp_us(&mut s.rng, think_mean)
            };
            p.at_us = arrival + period + think;
            self.heap.push(p);
        }
        // A retired session simply isn't pushed back: its slot is gone.
        r
    }
}

impl Iterator for SessionSource {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            match (self.next_birth_us, self.heap.peek()) {
                // Births at or before the next playback event happen
                // first, so a newborn's first request interleaves at its
                // true time.
                (Some(b), Some(top)) if b <= top.at_us => self.spawn(b),
                (Some(b), None) => self.spawn(b),
                (None, None) => return None,
                _ => {
                    let p = self.heap.pop().expect("peeked entry");
                    return Some(self.emit(p));
                }
            }
        }
    }
}

impl TraceSource for SessionSource {
    fn observe(&mut self, backlog: usize) {
        let stretch = 1.0 + backlog as f64 / self.cfg.backpressure_backlog.max(1) as f64;
        self.pressure = stretch.min(8.0);
    }
}

/// A seeded batch for the analytic seek oracle: `n` simultaneous
/// requests at time 0 with independently uniform cylinders, one shared
/// QoS level and relaxed deadlines — the population for which the
/// closed-form sweep expectation
/// (`sim::analysis::expected_sweep_seek`) holds exactly.
pub fn uniform_batch(seed: u64, n: u64, cylinders: u32) -> crate::Trace {
    assert!(cylinders > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Request::read(
                i,
                0,
                Micros::MAX,
                rng.gen_range(0..cylinders),
                64 * 1024,
                QosVector::single(0),
            )
            .with_stream(i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_trace;

    fn small() -> SessionConfig {
        SessionConfig::mixed(500, 600_000_000) // 500 sessions over 10 min
    }

    #[test]
    fn vec_source_streams_a_trace_verbatim() {
        let trace = crate::VodConfig::mpeg1(6).generate(3);
        let out: Vec<Request> = VecSource::new(trace.clone()).collect();
        assert_eq!(out, trace);
    }

    #[test]
    #[should_panic(expected = "arrival-sorted")]
    fn vec_source_rejects_unsorted_input() {
        let mut trace = crate::VodConfig::mpeg1(4).generate(1);
        let last = trace.len() - 1;
        trace.swap(0, last);
        let _: Vec<Request> = VecSource::new(trace).collect();
    }

    #[test]
    fn sessions_emit_a_valid_dense_sorted_stream() {
        let mut src = SessionSource::new(small(), 42);
        let trace: Vec<Request> = src.by_ref().collect();
        assert!(validate_trace(&trace), "sorted arrivals, dense ids");
        assert_eq!(src.sessions_started(), 500, "the cap binds");
        assert_eq!(src.emitted() as usize, trace.len());
        assert_eq!(src.live_sessions(), 0, "every session retired");
        // 2–4 blocks per session.
        assert!(
            trace.len() >= 1_000 && trace.len() <= 2_000,
            "{}",
            trace.len()
        );
    }

    #[test]
    fn deterministic_across_runs_and_seed_sensitive() {
        let a: Vec<Request> = SessionSource::new(small(), 7).collect();
        let b: Vec<Request> = SessionSource::new(small(), 7).collect();
        let c: Vec<Request> = SessionSource::new(small(), 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn live_population_is_bounded_far_below_total() {
        let mut cfg = SessionConfig::mixed(5_000, 3_600_000_000); // an hour
        cfg.blocks = (2, 3);
        let mut src = SessionSource::new(cfg, 11);
        let n = src.by_ref().count();
        assert!(n >= 10_000);
        assert_eq!(src.sessions_started(), 5_000);
        // Sessions last ~1–2 s against an hour-long horizon: the live
        // set must be orders of magnitude below the total population.
        assert!(
            src.peak_live_sessions() < 500,
            "peak live {} of 5000 total",
            src.peak_live_sessions()
        );
    }

    #[test]
    fn both_tenants_and_both_op_kinds_appear() {
        let trace: Vec<Request> = SessionSource::new(small(), 5).collect();
        let vod_deadlines = trace
            .iter()
            .filter(|r| r.deadline_us - r.arrival_us == VOD_PERIOD_US)
            .count();
        let editing_deadlines = trace
            .iter()
            .filter(|r| (75_000..=150_000).contains(&(r.deadline_us - r.arrival_us)))
            .count();
        assert!(vod_deadlines > 0, "VoD tenant missing");
        assert!(editing_deadlines > 0, "NewsByte tenant missing");
        assert!(trace.iter().any(|r| r.kind == OpKind::Write));
        assert!(trace.iter().any(|r| r.kind == OpKind::Read));
    }

    #[test]
    fn backpressure_stretches_think_times() {
        // Same seed, one run with a persistently swamped consumer: the
        // pressured run must spread the same sessions over a longer
        // span (think gaps scale with pressure).
        let mut relaxed = SessionSource::new(small(), 9);
        let mut swamped = SessionSource::new(small(), 9);
        let mut relaxed_last = 0;
        while let Some(r) = relaxed.next() {
            relaxed.observe(0);
            relaxed_last = r.arrival_us;
        }
        let mut swamped_last = 0;
        while let Some(r) = swamped.next() {
            swamped.observe(1 << 20); // way past the backlog knee
            swamped_last = r.arrival_us;
        }
        assert!(swamped.pressure() > relaxed.pressure());
        assert!(
            swamped_last > relaxed_last,
            "pressure must defer the tail: {swamped_last} vs {relaxed_last}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_births() {
        let horizon = 600_000_000u64;
        let cfg = SessionConfig {
            curves: vec![RateCurve::FlashCrowd {
                spike_per_minute: 2_000.0,
                at_us: horizon / 2,
                width_us: horizon / 40,
            }],
            ..SessionConfig::mixed(400, horizon)
        };
        let trace: Vec<Request> = SessionSource::new(cfg, 13).collect();
        // The crowd must cluster around the crest: at least 2/3 of
        // arrivals within ±3σ of it.
        let (lo, hi) = (
            horizon / 2 - 3 * (horizon / 40),
            horizon / 2 + 3 * (horizon / 40),
        );
        let inside = trace
            .iter()
            .filter(|r| (lo..=hi).contains(&r.arrival_us))
            .count();
        assert!(
            inside * 3 >= trace.len() * 2,
            "{inside} of {} inside the surge window",
            trace.len()
        );
    }

    #[test]
    fn uniform_batch_is_simultaneous_uniform_and_relaxed() {
        let batch = uniform_batch(21, 4_096, 3832);
        assert_eq!(batch.len(), 4_096);
        assert!(validate_trace(&batch));
        assert!(batch.iter().all(|r| r.arrival_us == 0));
        assert!(batch.iter().all(|r| r.deadline_us == Micros::MAX));
        assert!(batch.iter().all(|r| r.cylinder < 3832));
        // Coarse uniformity: each third of the disk gets a fair share.
        let third = 3832 / 3;
        let low = batch.iter().filter(|r| r.cylinder < third).count();
        let mid = batch
            .iter()
            .filter(|r| (third..2 * third).contains(&r.cylinder))
            .count();
        assert!((low as i64 - mid as i64).abs() < 400, "{low} vs {mid}");
    }
}
