//! Distribution primitives derived from a uniform source.
//!
//! Exponential (inverse transform), normal (Box–Muller), and truncated
//! discrete-normal level assignment — everything the paper's workloads
//! need, without pulling a distributions crate.

use rand::Rng;

/// Exponentially distributed duration with the given mean, in µs
/// (inverse-transform sampling). Used for Poisson interarrival gaps.
pub fn exp_us<R: Rng>(rng: &mut R, mean_us: u64) -> u64 {
    // Avoid ln(0); 1 - U is in (0, 1].
    let u: f64 = 1.0 - rng.gen::<f64>();
    let x = -(mean_us as f64) * u.ln();
    // Clamp at 100× the mean: the tail beyond is astronomically unlikely
    // and would distort integer time arithmetic.
    x.min(mean_us as f64 * 100.0).round() as u64
}

/// Standard-normal sample via the Box–Muller transform.
pub fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with mean `mu` and standard deviation `sigma`.
pub fn normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * std_normal(rng)
}

/// A priority level in `0..levels` following a (truncated, rounded) normal
/// distribution centred on the middle level — the paper's §6 setting
/// ("a normal distribution of requests across the different levels").
pub fn normal_level<R: Rng>(rng: &mut R, levels: u8) -> u8 {
    assert!(levels > 0);
    let mu = (levels as f64 - 1.0) / 2.0;
    // ±3σ spans the level range.
    let sigma = (levels as f64 / 6.0).max(0.5);
    let x = normal(rng, mu, sigma).round();
    x.clamp(0.0, levels as f64 - 1.0) as u8
}

/// A uniform priority level in `0..levels`.
pub fn uniform_level<R: Rng>(rng: &mut R, levels: u8) -> u8 {
    assert!(levels > 0);
    rng.gen_range(0..levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let mean = 25_000u64;
        let total: u64 = (0..n).map(|_| exp_us(&mut r, mean)).sum();
        let emp = total as f64 / n as f64;
        assert!(
            (emp - mean as f64).abs() < mean as f64 * 0.03,
            "empirical mean {emp}"
        );
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_levels_centred_and_bounded() {
        let mut r = rng();
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[normal_level(&mut r, 8) as usize] += 1;
        }
        // Middle levels dominate, edges are rare but present.
        assert!(counts[3] + counts[4] > counts[0] + counts[7]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn uniform_levels_flat() {
        let mut r = rng();
        let mut counts = [0u32; 16];
        for _ in 0..160_000 {
            counts[uniform_level(&mut r, 16) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut r = rng();
            (0..10).map(|_| exp_us(&mut r, 1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..10).map(|_| exp_us(&mut r, 1000)).collect()
        };
        assert_eq!(a, b);
    }
}
