//! The §6 workload: the NewsByte5 non-linear editing server.
//!
//! 68–91 users each play or record an MPEG-1 stream at 1.5 Mb/s, retrieved
//! in 64-KB file blocks. Blocks are striped over the RAID-5 group's four
//! data disks, so the *one* simulated disk sees every fourth block of each
//! stream; requests arrive in bursts at period boundaries ("users send
//! read or write requests periodically, and we assume that these requests
//! arrive in bursts"), carry one of 8 priority levels drawn from a normal
//! distribution, and must complete within a deadline drawn uniformly from
//! 75–150 ms.

use crate::dist;
use crate::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::{Micros, OpKind, QosVector, Request};

/// Configuration of the NewsByte5 editing workload.
#[derive(Debug, Clone)]
pub struct NewsByteConfig {
    /// Number of simultaneous users on this disk (the paper sweeps 68–91).
    pub users: u32,
    /// Per-stream bit rate (MPEG-1: 1.5 Mb/s).
    pub stream_bps: u64,
    /// File block size (64 KB).
    pub block_bytes: u64,
    /// Data disks the stream is striped over (RAID-5 4+1 ⇒ 4); this disk
    /// receives `1/stripe_width` of each stream's blocks.
    pub stripe_width: u32,
    /// Number of priority levels (8), assigned per *user* from a normal
    /// distribution.
    pub levels: u8,
    /// Deadline offset range after arrival (75–150 ms).
    pub deadline_lo_us: Micros,
    /// Upper end of the deadline offset range.
    pub deadline_hi_us: Micros,
    /// Simulated duration.
    pub duration_us: Micros,
    /// Cylinders on the disk.
    pub cylinders: u32,
    /// Fraction of write (ingest/save) requests; the rest are reads.
    pub write_fraction: f64,
    /// Number of burst groups the users are staggered into (1 = one big
    /// burst per period; 4 = quarter-period sub-bursts).
    pub burst_groups: u32,
}

impl NewsByteConfig {
    /// The paper's §6 setting for a given user count.
    pub fn paper(users: u32) -> Self {
        NewsByteConfig {
            users,
            stream_bps: 1_500_000,
            block_bytes: 64 * 1024,
            stripe_width: 4,
            levels: 8,
            deadline_lo_us: 75_000,
            deadline_hi_us: 150_000,
            duration_us: 60_000_000, // one simulated minute
            cylinders: 3832,
            write_fraction: 0.3,
            burst_groups: 4,
        }
    }

    /// Time between successive block requests of one user *on this disk*:
    /// `block_bits / rate`, stretched by the stripe width.
    pub fn period_us(&self) -> Micros {
        let bits = self.block_bytes * 8;
        let per_block_us = bits as f64 / self.stream_bps as f64 * 1e6;
        (per_block_us * self.stripe_width as f64).round() as Micros
    }

    /// Generate the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.users > 0 && self.levels > 0 && self.burst_groups > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let period = self.period_us().max(1);
        let group_offset = period / self.burst_groups as u64;

        // Per-user static properties.
        struct User {
            level: u8,
            offset: Micros,
            /// Streams are laid out contiguously: each user walks a
            /// cylinder neighbourhood.
            base_cylinder: u32,
            writes: bool,
        }
        let users: Vec<User> = (0..self.users)
            .map(|u| User {
                level: dist::normal_level(&mut rng, self.levels),
                offset: (u % self.burst_groups) as u64 * group_offset + rng.gen_range(0..500), // sub-millisecond burst jitter
                base_cylinder: rng.gen_range(0..self.cylinders),
                writes: rng.gen::<f64>() < self.write_fraction,
            })
            .collect();

        let mut trace = Vec::new();
        let mut id = 0u64;
        let mut tick = 0u64;
        loop {
            let burst_base = tick * period;
            if burst_base >= self.duration_us {
                break;
            }
            for (uid, user) in users.iter().enumerate() {
                let arrival = burst_base + user.offset;
                if arrival >= self.duration_us {
                    continue;
                }
                let deadline = arrival + rng.gen_range(self.deadline_lo_us..=self.deadline_hi_us);
                // Sequential layout with slight spread: tick-th block of
                // the stream sits a few cylinders along.
                let cylinder = (user.base_cylinder + (tick as u32 % 32)) % self.cylinders;
                let kind = if user.writes {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                trace.push(Request {
                    id,
                    arrival_us: arrival,
                    deadline_us: deadline,
                    cylinder,
                    bytes: self.block_bytes,
                    qos: QosVector::single(user.level),
                    kind,
                    stream: uid as u64,
                });
                id += 1;
            }
            tick += 1;
        }
        trace.sort_by_key(|r| (r.arrival_us, r.id));
        // Re-assign dense ids in arrival order (the trace invariant).
        for (i, r) in trace.iter_mut().enumerate() {
            r.id = i as u64;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_trace;

    #[test]
    fn period_matches_stream_rate() {
        let cfg = NewsByteConfig::paper(80);
        // 64 KB · 8 / 1.5 Mb/s ≈ 349.5 ms; ×4 stripe ≈ 1.398 s.
        let p = cfg.period_us();
        assert!((1_390_000..1_410_000).contains(&p), "period {p}");
    }

    #[test]
    fn trace_is_valid_and_sized() {
        let cfg = NewsByteConfig::paper(80);
        let t = cfg.generate(3);
        assert!(validate_trace(&t));
        // ~80 users × (60 s / 1.4 s) ≈ 3.4 k requests.
        assert!((3_000..4_000).contains(&t.len()), "len {}", t.len());
    }

    #[test]
    fn deadlines_in_window_and_levels_bounded() {
        let cfg = NewsByteConfig::paper(70);
        let t = cfg.generate(5);
        for r in &t {
            let off = r.deadline_us - r.arrival_us;
            assert!((75_000..=150_000).contains(&off));
            assert!(r.qos.level(0) < 8);
        }
        // Both reads and writes occur.
        assert!(t.iter().any(|r| r.kind == OpKind::Read));
        assert!(t.iter().any(|r| r.kind == OpKind::Write));
    }

    #[test]
    fn bursts_are_visible() {
        // Within one period there should be distinct arrival clusters, not
        // a uniform spread: check that inter-arrival gaps are bimodal
        // (many sub-millisecond gaps inside bursts).
        let cfg = NewsByteConfig::paper(80);
        let t = cfg.generate(9);
        let tiny_gaps = t
            .windows(2)
            .filter(|w| w[1].arrival_us - w[0].arrival_us < 1_000)
            .count();
        assert!(
            tiny_gaps > t.len() / 2,
            "bursty trace expected, {tiny_gaps}/{} tiny gaps",
            t.len()
        );
    }

    #[test]
    fn more_users_more_requests() {
        let small = NewsByteConfig::paper(68).generate(1).len();
        let large = NewsByteConfig::paper(91).generate(1).len();
        assert!(large > small);
    }
}
