//! Trace import/export as CSV — lets external tools generate workloads or
//! analyze ours, and lets an interesting generated trace be frozen into a
//! regression fixture.
//!
//! Column format (header required):
//!
//! ```text
//! id,arrival_us,deadline_us,cylinder,bytes,kind,qos,stream
//! 0,12500,512500,1200,65536,read,2|0|5,17
//! ```
//!
//! `deadline_us` may be `inf` for relaxed requests; `qos` is a
//! `|`-separated level list (empty for none); `stream` is the stream/user
//! the request belongs to. Traces written before the `stream` column
//! existed (the 7-column header) still parse: their requests default to
//! `stream = id`, matching [`sched::Request::read`].

use crate::Trace;
use sched::{Micros, OpKind, QosVector, Request};

/// A parse failure with its line number (1-based, counting the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Line where parsing failed.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Serialize a trace to CSV (with header).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("id,arrival_us,deadline_us,cylinder,bytes,kind,qos,stream\n");
    for r in trace {
        let deadline = if r.deadline_us == Micros::MAX {
            "inf".to_string()
        } else {
            r.deadline_us.to_string()
        };
        let kind = match r.kind {
            OpKind::Read => "read",
            OpKind::Write => "write",
        };
        let qos: Vec<String> = r.qos.levels().iter().map(|l| l.to_string()).collect();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.id,
            r.arrival_us,
            deadline,
            r.cylinder,
            r.bytes,
            kind,
            qos.join("|"),
            r.stream
        ));
    }
    out
}

/// Parse a CSV trace produced by [`to_csv`] (or by external tooling).
pub fn from_csv(text: &str) -> Result<Trace, TraceParseError> {
    let err = |line: usize, message: String| TraceParseError { line, message };
    let mut lines = text.lines().enumerate();
    let has_stream = match lines.next() {
        Some((_, header))
            if header.trim() == "id,arrival_us,deadline_us,cylinder,bytes,kind,qos,stream" =>
        {
            true
        }
        Some((_, header))
            if header.trim() == "id,arrival_us,deadline_us,cylinder,bytes,kind,qos" =>
        {
            false
        }
        Some((_, other)) => {
            return Err(err(1, format!("unexpected header {other:?}")));
        }
        None => return Ok(Vec::new()),
    };
    let expected_fields = if has_stream { 8 } else { 7 };
    let mut trace = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_fields {
            return Err(err(
                line_no,
                format!("expected {expected_fields} fields, got {}", fields.len()),
            ));
        }
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| err(line_no, format!("bad {what} {s:?}")))
        };
        let id = parse_u64(fields[0], "id")?;
        let arrival_us = parse_u64(fields[1], "arrival")?;
        let deadline_us = if fields[2] == "inf" {
            Micros::MAX
        } else {
            parse_u64(fields[2], "deadline")?
        };
        let cylinder = fields[3]
            .parse::<u32>()
            .map_err(|_| err(line_no, format!("bad cylinder {:?}", fields[3])))?;
        let bytes = parse_u64(fields[4], "bytes")?;
        let kind = match fields[5] {
            "read" => OpKind::Read,
            "write" => OpKind::Write,
            other => return Err(err(line_no, format!("bad kind {other:?}"))),
        };
        let qos = if fields[6].is_empty() {
            QosVector::none()
        } else {
            let mut levels = Vec::new();
            for part in fields[6].split('|') {
                levels.push(
                    part.parse::<u8>()
                        .map_err(|_| err(line_no, format!("bad qos level {part:?}")))?,
                );
            }
            if levels.len() > sched::MAX_QOS_DIMS {
                return Err(err(
                    line_no,
                    format!("too many qos dimensions ({})", levels.len()),
                ));
            }
            QosVector::new(&levels)
        };
        let stream = if has_stream {
            parse_u64(fields[7], "stream")?
        } else {
            id
        };
        trace.push(Request {
            id,
            arrival_us,
            deadline_us,
            cylinder,
            bytes,
            qos,
            kind,
            stream,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NewsByteConfig, PoissonConfig};

    #[test]
    fn roundtrip_poisson() {
        let trace = PoissonConfig::figure8(200).generate(5);
        let csv = to_csv(&trace);
        let back = from_csv(&csv).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn roundtrip_newsbyte_with_writes_and_relaxed() {
        let mut trace = NewsByteConfig::paper(70).generate(6);
        trace.truncate(300);
        // Mix in a relaxed, QoS-less request.
        trace[0].deadline_us = u64::MAX;
        trace[1].qos = QosVector::none();
        let back = from_csv(&to_csv(&trace)).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let good_header = "id,arrival_us,deadline_us,cylinder,bytes,kind,qos\n";
        for (body, needle) in [
            ("1,2,3,4,5,read\n", "expected 7 fields"),
            ("x,2,3,4,5,read,0\n", "bad id"),
            ("1,2,3,4,5,append,0\n", "bad kind"),
            ("1,2,3,4,5,read,9|x\n", "bad qos"),
        ] {
            let e = from_csv(&format!("{good_header}{body}")).unwrap_err();
            assert_eq!(e.line, 2, "{body:?}");
            assert!(e.message.contains(needle), "{body:?} -> {e}");
        }
        let e = from_csv("nope\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        assert!(from_csv("").unwrap().is_empty());
        assert!(
            from_csv("id,arrival_us,deadline_us,cylinder,bytes,kind,qos\n")
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn stream_column_roundtrips_and_legacy_defaults_to_id() {
        let trace = NewsByteConfig::paper(70).generate(6);
        // The generator assigns real per-user stream ids distinct from the
        // (reassigned) request ids, so a roundtrip proves the column.
        assert!(trace.iter().any(|r| r.stream != r.id));
        let back = from_csv(&to_csv(&trace)).unwrap();
        assert_eq!(trace, back);

        // A pre-stream trace parses with stream defaulting to id.
        let legacy = "id,arrival_us,deadline_us,cylinder,bytes,kind,qos\n\
                      7,2,3,4,5,read,0\n";
        let t = from_csv(legacy).unwrap();
        assert_eq!(t[0].stream, 7);
    }
}
