//! # workload — multimedia request-stream generators
//!
//! Synthetic workloads matching the paper's experimental setups:
//!
//! * [`PoissonConfig`] — the §5 micro-benchmarks: Poisson arrivals with a
//!   configurable mean interarrival time, `D` priority dimensions with
//!   uniform or normal level assignment, uniform deadline windows, uniform
//!   cylinders, and priority-dependent request sizes ("high priority
//!   requests are smaller", §5.2).
//! * [`VodConfig`] — classic video-on-demand: free-running periodic
//!   streams with sequential layout and one-period deadlines.
//! * [`NewsByteConfig`] — the §6 non-linear-editing server: 68–91 users
//!   each streaming MPEG-1 at 1.5 Mb/s in periodic bursts of 64-KB block
//!   requests (striped over a 4-data-disk RAID-5, so one simulated disk
//!   sees a quarter of the blocks), 8 priority levels with a normal
//!   distribution, deadlines uniform in 75–150 ms, and a read/write mix.
//! * [`stream`] — pull-based sources for horizons too long to
//!   materialize: [`SessionSource`] grows a closed-loop population of
//!   mixed VoD/NewsByte sessions (diurnal and flash-crowd arrival
//!   curves, think times, consumer backpressure) in memory proportional
//!   to the *live* session count, and [`VecSource`] adapts any batch
//!   trace to the same [`TraceSource`] iterator interface.
//!
//! All generators are fully deterministic given a seed. The distribution
//! primitives in [`dist`] are derived from `rand`'s uniform source, so no
//! extra distribution crates are needed.
//!
//! ```
//! use workload::{PoissonConfig, validate_trace};
//!
//! let trace = PoissonConfig::figure5(4, 100).generate(42);
//! assert_eq!(trace.len(), 100);
//! assert!(validate_trace(&trace));
//! assert_eq!(trace, PoissonConfig::figure5(4, 100).generate(42)); // deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod io;
mod newsbyte;
mod poisson;
pub mod stream;
mod vod;

pub use newsbyte::NewsByteConfig;
pub use poisson::{DeadlineDist, LevelDist, PoissonConfig, Sizing};
pub use stream::{uniform_batch, RateCurve, SessionConfig, SessionSource, TraceSource, VecSource};
pub use vod::VodConfig;

use sched::Request;

/// A generated trace: requests sorted by arrival time.
pub type Trace = Vec<Request>;

/// Check a trace invariant used across the test-suite: arrivals sorted,
/// ids unique and dense.
pub fn validate_trace(trace: &Trace) -> bool {
    trace.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us)
        && trace.iter().enumerate().all(|(i, r)| r.id == i as u64)
}

/// Merge several traces into one (mixed workloads, e.g. VoD streams plus
/// best-effort FTP): arrivals interleave by time and ids are re-assigned
/// densely in the merged order. Stable: equal arrival times keep the
/// input-trace order.
pub fn merge_traces(traces: Vec<Trace>) -> Trace {
    let mut merged: Vec<Request> = traces.into_iter().flatten().collect();
    merged.sort_by_key(|r| r.arrival_us);
    for (i, r) in merged.iter_mut().enumerate() {
        r.id = i as u64;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_interleaves_and_renumbers() {
        let vod = VodConfig::mpeg1(4).generate(1);
        let pois = {
            let mut cfg = PoissonConfig::figure5(2, 200);
            cfg.mean_interarrival_us = 100_000;
            cfg.generate(2)
        };
        let total = vod.len() + pois.len();
        let merged = merge_traces(vec![vod, pois]);
        assert_eq!(merged.len(), total);
        assert!(validate_trace(&merged));
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_traces(vec![]).is_empty());
        assert!(merge_traces(vec![vec![], vec![]]).is_empty());
    }
}
