//! Video-on-demand workload: continuous periodic streams.
//!
//! Unlike the bursty NewsByte5 editing workload (§6), a classic VoD
//! server's streams free-run: each client fetches its next block one
//! period after the previous one, so arrivals are spread almost uniformly
//! in time while each *stream* remains strictly periodic. Streams read
//! sequentially laid-out files, so consecutive requests of one stream
//! walk neighbouring cylinders — the locality a SCAN-family scheduler
//! exploits.

use crate::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::{Micros, QosVector, Request};

/// Configuration of the VoD stream workload.
#[derive(Debug, Clone)]
pub struct VodConfig {
    /// Number of concurrent streams.
    pub streams: u32,
    /// Per-stream bit rate (e.g. MPEG-1 at 1.5 Mb/s).
    pub stream_bps: u64,
    /// Block size fetched per request.
    pub block_bytes: u64,
    /// Priority levels; each stream is assigned one uniformly.
    pub levels: u8,
    /// Per-request deadline: the next block is needed one period after
    /// the fetch is issued, scaled by this safety factor (e.g. 1.0 = one
    /// period, the double-buffering bound).
    pub deadline_periods: f64,
    /// Simulated duration (µs).
    pub duration_us: Micros,
    /// Cylinders on the disk.
    pub cylinders: u32,
    /// Cylinders a stream's file advances per block (sequential layout).
    pub cylinders_per_block: u32,
}

impl VodConfig {
    /// A typical single-disk VoD setting: MPEG-1 streams, 64-KB blocks,
    /// 4 priority levels, one-period deadlines.
    pub fn mpeg1(streams: u32) -> Self {
        VodConfig {
            streams,
            stream_bps: 1_500_000,
            block_bytes: 64 * 1024,
            levels: 4,
            deadline_periods: 1.0,
            duration_us: 30_000_000,
            cylinders: 3832,
            cylinders_per_block: 1,
        }
    }

    /// Time between successive block requests of one stream.
    pub fn period_us(&self) -> Micros {
        (self.block_bytes as f64 * 8.0 / self.stream_bps as f64 * 1e6).round() as Micros
    }

    /// Generate the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.streams > 0 && self.levels > 0);
        assert!(self.deadline_periods > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let period = self.period_us().max(1);
        let deadline_off = (period as f64 * self.deadline_periods).round() as Micros;

        struct Stream {
            level: u8,
            phase: Micros,
            cylinder: u32,
        }
        let mut streams: Vec<Stream> = (0..self.streams)
            .map(|_| Stream {
                level: rng.gen_range(0..self.levels),
                // Free-running phases spread arrivals across the period.
                phase: rng.gen_range(0..period),
                cylinder: rng.gen_range(0..self.cylinders),
            })
            .collect();

        let mut trace = Vec::new();
        let mut id = 0u64;
        for tick in 0.. {
            let base = tick * period;
            if base >= self.duration_us {
                break;
            }
            for (sid, s) in streams.iter_mut().enumerate() {
                let arrival = base + s.phase;
                if arrival >= self.duration_us {
                    continue;
                }
                trace.push(
                    Request::read(
                        id,
                        arrival,
                        arrival + deadline_off,
                        s.cylinder,
                        self.block_bytes,
                        QosVector::single(s.level),
                    )
                    .with_stream(sid as u64),
                );
                id += 1;
                // Sequential layout: the next block sits a little inward.
                s.cylinder = (s.cylinder + self.cylinders_per_block) % self.cylinders;
            }
        }
        trace.sort_by_key(|r| (r.arrival_us, r.id));
        for (i, r) in trace.iter_mut().enumerate() {
            r.id = i as u64;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_trace;

    #[test]
    fn period_matches_rate() {
        let cfg = VodConfig::mpeg1(10);
        // 64 KB * 8 / 1.5 Mb/s ≈ 349.5 ms.
        assert!((349_000..350_500).contains(&cfg.period_us()));
    }

    #[test]
    fn trace_is_valid_and_spread() {
        let cfg = VodConfig::mpeg1(40);
        let t = cfg.generate(3);
        assert!(validate_trace(&t));
        // ~40 streams × (30 s / 0.35 s) ≈ 3.4 k requests.
        assert!((3_000..3_800).contains(&t.len()), "len {}", t.len());
        // Arrivals are spread: few sub-millisecond gaps, unlike NewsByte.
        let tiny_gaps = t
            .windows(2)
            .filter(|w| w[1].arrival_us - w[0].arrival_us < 100)
            .count();
        assert!(
            tiny_gaps < t.len() / 2,
            "VoD should not be bursty: {tiny_gaps}/{}",
            t.len()
        );
    }

    #[test]
    fn streams_are_periodic_and_sequential() {
        let cfg = VodConfig::mpeg1(3);
        let t = cfg.generate(7);
        let period = cfg.period_us();
        // Group requests by (level, phase-class): every stream's arrivals
        // are exactly one period apart. Reconstruct per-stream sequences
        // by arrival mod period.
        use std::collections::HashMap;
        let mut by_phase: HashMap<u64, Vec<&sched::Request>> = HashMap::new();
        for r in &t {
            by_phase.entry(r.arrival_us % period).or_default().push(r);
        }
        assert_eq!(by_phase.len(), 3, "three distinct stream phases");
        for seq in by_phase.values() {
            for w in seq.windows(2) {
                assert_eq!(w[1].arrival_us - w[0].arrival_us, period);
                // Sequential layout: cylinders advance by one per block.
                let expected = (w[0].cylinder + 1) % cfg.cylinders;
                assert_eq!(w[1].cylinder, expected);
            }
        }
    }

    #[test]
    fn deadline_is_one_period() {
        let cfg = VodConfig::mpeg1(5);
        let t = cfg.generate(9);
        for r in &t {
            assert_eq!(r.deadline_us - r.arrival_us, cfg.period_us());
        }
    }
}
