//! Property tests for the `workload::dist` samplers: empirical moments
//! inside a seeded tolerance for *any* seed and parameterization, and
//! bit-identical determinism across two same-seed runs. The unit tests
//! in `dist.rs` pin one seed; these sweep the input space.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::dist::{exp_us, normal, normal_level, std_normal, uniform_level};

/// Samples per property case — enough that a 5-sigma band on the
/// empirical mean is a few percent, small enough to keep the suite
/// quick at 16 cases per property.
const N: usize = 4_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exp_mean_and_variance_within_tolerance(
        seed in any::<u64>(),
        mean_us in 1_000u64..100_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<u64> = (0..N).map(|_| exp_us(&mut rng, mean_us)).collect();
        let m = mean_us as f64;
        let emp_mean = xs.iter().sum::<u64>() as f64 / N as f64;
        // sem = m/sqrt(N) ≈ 0.016 m; a 6-sigma band passes every seed.
        prop_assert!(
            (emp_mean - m).abs() < 0.1 * m,
            "mean {emp_mean} vs {m}"
        );
        // Var[exp] = m²; the variance estimator's own relative sd is
        // sqrt(8/N) ≈ 0.045, so 0.3 is a comfortable band.
        let emp_var = xs
            .iter()
            .map(|&x| (x as f64 - emp_mean).powi(2))
            .sum::<f64>()
            / N as f64;
        prop_assert!(
            (emp_var - m * m).abs() < 0.3 * m * m,
            "var {emp_var} vs {}",
            m * m
        );
    }

    #[test]
    fn exp_is_deterministic_across_same_seed_runs(
        seed in any::<u64>(),
        mean_us in 1u64..1_000_000,
    ) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let run_a: Vec<u64> = (0..64).map(|_| exp_us(&mut a, mean_us)).collect();
        let run_b: Vec<u64> = (0..64).map(|_| exp_us(&mut b, mean_us)).collect();
        prop_assert_eq!(run_a, run_b);
    }

    #[test]
    fn normal_moments_within_tolerance(
        seed in any::<u64>(),
        mu in -50.0f64..50.0,
        sigma in 0.5f64..20.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..N).map(|_| normal(&mut rng, mu, sigma)).collect();
        let emp_mean = xs.iter().sum::<f64>() / N as f64;
        let emp_var =
            xs.iter().map(|x| (x - emp_mean).powi(2)).sum::<f64>() / N as f64;
        // sem = sigma/sqrt(N) ≈ 0.016 sigma.
        prop_assert!((emp_mean - mu).abs() < 0.15 * sigma, "mean {emp_mean} vs {mu}");
        prop_assert!(
            (emp_var.sqrt() - sigma).abs() < 0.1 * sigma,
            "sd {} vs {sigma}",
            emp_var.sqrt()
        );
    }

    #[test]
    fn std_normal_is_deterministic_and_standard(seed in any::<u64>()) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let run_a: Vec<f64> = (0..N).map(|_| std_normal(&mut a)).collect();
        let run_b: Vec<f64> = (0..N).map(|_| std_normal(&mut b)).collect();
        prop_assert_eq!(&run_a, &run_b);
        let mean = run_a.iter().sum::<f64>() / N as f64;
        prop_assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_levels_bounded_centred_and_deterministic(
        seed in any::<u64>(),
        levels in 2u8..=16,
    ) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let run_a: Vec<u8> = (0..N).map(|_| normal_level(&mut a, levels)).collect();
        let run_b: Vec<u8> = (0..N).map(|_| normal_level(&mut b, levels)).collect();
        prop_assert_eq!(&run_a, &run_b);
        prop_assert!(run_a.iter().all(|&l| l < levels));
        // The truncated normal is centred: the empirical mean sits near
        // the middle level, well inside half a level either way.
        let mid = (levels as f64 - 1.0) / 2.0;
        let mean = run_a.iter().map(|&l| l as f64).sum::<f64>() / N as f64;
        prop_assert!((mean - mid).abs() < 0.5, "mean {mean} vs mid {mid}");
    }

    #[test]
    fn uniform_levels_bounded_flat_and_deterministic(
        seed in any::<u64>(),
        levels in 2u8..=16,
    ) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let run_a: Vec<u8> = (0..N).map(|_| uniform_level(&mut a, levels)).collect();
        let run_b: Vec<u8> = (0..N).map(|_| uniform_level(&mut b, levels)).collect();
        prop_assert_eq!(&run_a, &run_b);
        prop_assert!(run_a.iter().all(|&l| l < levels));
        // Uniform mean is (levels−1)/2 with sd ≈ 0.29·levels; the band
        // below is ~7 sems at the widest `levels`.
        let mid = (levels as f64 - 1.0) / 2.0;
        let mean = run_a.iter().map(|&l| l as f64).sum::<f64>() / N as f64;
        prop_assert!(
            (mean - mid).abs() < 0.1 * levels as f64 + 0.05,
            "mean {mean} vs mid {mid}"
        );
    }

    #[test]
    fn different_seeds_decorrelate(seed in any::<u64>()) {
        // Not a moment property but the flip side of determinism: a
        // different seed must change the stream (collision odds over 64
        // draws are negligible).
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed.wrapping_add(1));
        let run_a: Vec<u64> = (0..64).map(|_| exp_us(&mut a, 10_000)).collect();
        let run_b: Vec<u64> = (0..64).map(|_| exp_us(&mut b, 10_000)).collect();
        prop_assert_ne!(run_a, run_b);
    }
}
