//! Golden snapshot of the trace CSV wire format.
//!
//! The `.case` corpus under `tests/corpus/` and any externally generated
//! trace both depend on this exact byte layout, so a format drift must
//! fail loudly here — not as a mysterious corpus parse error later.

use sched::{Micros, OpKind, QosVector, Request};
use workload::io::{from_csv, to_csv};

fn fixture() -> Vec<Request> {
    // One row per encoding corner: multi-dim QoS, relaxed deadline,
    // empty QoS, a write, and a stream distinct from the id.
    let mut relaxed = Request::read(
        1,
        12_500,
        Micros::MAX,
        1200,
        65_536,
        QosVector::new(&[2, 0]),
    );
    relaxed.stream = 17;
    let plain = Request::read(2, 13_000, 512_500, 0, 4_096, QosVector::none());
    let mut write = Request::read(
        3,
        14_250,
        600_000,
        3831,
        131_072,
        QosVector::new(&[7, 3, 15]),
    );
    write.kind = OpKind::Write;
    write.stream = 4;
    vec![relaxed, plain, write]
}

/// The 8-column output format, pinned byte-for-byte.
#[test]
fn golden_eight_column_snapshot() {
    let golden = "\
id,arrival_us,deadline_us,cylinder,bytes,kind,qos,stream\n\
1,12500,inf,1200,65536,read,2|0,17\n\
2,13000,512500,0,4096,read,,2\n\
3,14250,600000,3831,131072,write,7|3|15,4\n";
    assert_eq!(to_csv(&fixture()), golden);
    // And the snapshot parses back to the identical trace.
    assert_eq!(from_csv(golden).unwrap(), fixture());
}

/// The pre-`stream` 7-column format still parses, with `stream`
/// defaulting to the request id.
#[test]
fn golden_legacy_seven_column_parse() {
    let legacy = "\
id,arrival_us,deadline_us,cylinder,bytes,kind,qos\n\
9,100,inf,50,8192,read,1|2\n\
10,200,900000,3000,65536,write,\n";
    let trace = from_csv(legacy).unwrap();
    assert_eq!(trace.len(), 2);

    assert_eq!(trace[0].id, 9);
    assert_eq!(trace[0].stream, 9, "legacy rows default stream to id");
    assert_eq!(trace[0].deadline_us, Micros::MAX);
    assert_eq!(trace[0].qos, QosVector::new(&[1, 2]));

    assert_eq!(trace[1].stream, 10);
    assert_eq!(trace[1].kind, OpKind::Write);
    assert_eq!(trace[1].qos, QosVector::none());

    // Re-serializing upgrades legacy rows to the 8-column format.
    let upgraded = to_csv(&trace);
    assert!(upgraded.starts_with("id,arrival_us,deadline_us,cylinder,bytes,kind,qos,stream\n"));
    assert_eq!(from_csv(&upgraded).unwrap(), trace);
}
