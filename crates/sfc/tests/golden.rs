//! Golden tests: the exact cell orders of every catalogue curve on small
//! grids, written out by hand. These pin the curve *conventions*
//! (dimension significance, serpentine direction, spiral start corner) so
//! a refactor cannot silently rotate or mirror a curve — which would
//! silently change every scheduling experiment downstream.

use sfc::CurveKind;

/// Walk a 2-D curve and return the visit order as (x, y) pairs.
fn walk2(kind: CurveKind, order: u32) -> Vec<(u64, u64)> {
    let c = kind.build(2, order).unwrap();
    let side = c.side();
    let mut cells: Vec<(u128, (u64, u64))> = Vec::new();
    for x in 0..side {
        for y in 0..side {
            cells.push((c.index(&[x, y]), (x, y)));
        }
    }
    cells.sort_unstable_by_key(|&(i, _)| i);
    cells.into_iter().map(|(_, p)| p).collect()
}

#[test]
fn sweep_4x4() {
    // Vertical strokes: x major, y ascending.
    let expected: Vec<(u64, u64)> = (0..4).flat_map(|x| (0..4).map(move |y| (x, y))).collect();
    assert_eq!(walk2(CurveKind::Sweep, 2), expected);
}

#[test]
fn cscan_4x4() {
    // Horizontal rows with fly-back: y major, x ascending.
    let expected: Vec<(u64, u64)> = (0..4).flat_map(|y| (0..4).map(move |x| (x, y))).collect();
    assert_eq!(walk2(CurveKind::CScan, 2), expected);
}

#[test]
fn scan_4x4() {
    // Serpentine rows: y major, x alternating.
    let expected: Vec<(u64, u64)> = vec![
        (0, 0),
        (1, 0),
        (2, 0),
        (3, 0),
        (3, 1),
        (2, 1),
        (1, 1),
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 2),
        (3, 2),
        (3, 3),
        (2, 3),
        (1, 3),
        (0, 3),
    ];
    assert_eq!(walk2(CurveKind::Scan, 2), expected);
}

#[test]
fn diagonal_4x4() {
    // Anti-diagonals by coordinate sum; lexicographic within even sums,
    // reversed within odd sums (the zigzag).
    let expected: Vec<(u64, u64)> = vec![
        (0, 0), // s=0
        (1, 0),
        (0, 1), // s=1 (reversed)
        (0, 2),
        (1, 1),
        (2, 0), // s=2
        (3, 0),
        (2, 1),
        (1, 2),
        (0, 3), // s=3 (reversed)
        (1, 3),
        (2, 2),
        (3, 1), // s=4
        (3, 2),
        (2, 3), // s=5 (reversed)
        (3, 3), // s=6
    ];
    assert_eq!(walk2(CurveKind::Diagonal, 2), expected);
}

#[test]
fn gray_4x4_first_quadrant() {
    // The Gray curve's first four cells walk the low quadrant's Gray
    // cycle: (0,0),(0,1),(1,1),(1,0).
    let w = walk2(CurveKind::Gray, 2);
    assert_eq!(&w[..4], &[(0, 0), (0, 1), (1, 1), (1, 0)]);
    // ...and the walk ends in the x-high, y-low quadrant.
    assert!(w[15].0 >= 2 && w[15].1 < 2, "ends at {:?}", w[15]);
}

#[test]
fn hilbert_4x4() {
    // The canonical order-2 Hilbert walk produced by the Skilling
    // transform with our interleave convention.
    let w = walk2(CurveKind::Hilbert, 2);
    assert_eq!(w[0], (0, 0));
    assert_eq!(w[15], (3, 0), "Hilbert ends at the opposite corner of x");
    // Every step is a unit step (continuity pinned elsewhere, but the
    // golden shape matters here too).
    for pair in w.windows(2) {
        let d = pair[0].0.abs_diff(pair[1].0) + pair[0].1.abs_diff(pair[1].1);
        assert_eq!(d, 1);
    }
}

#[test]
fn spiral_4x4() {
    // Core block loop then one perimeter ring, exactly as documented.
    let expected: Vec<(u64, u64)> = vec![
        (1, 1),
        (1, 2),
        (2, 2),
        (2, 1), // core loop
        (3, 1),
        (3, 2),
        (3, 3), // right edge up
        (2, 3),
        (1, 3),
        (0, 3), // top leftward
        (0, 2),
        (0, 1),
        (0, 0), // left edge down
        (1, 0),
        (2, 0),
        (3, 0), // bottom rightward
    ];
    assert_eq!(walk2(CurveKind::Spiral, 2), expected);
}

#[test]
fn zorder_4x4() {
    let expected: Vec<(u64, u64)> = vec![
        (0, 0),
        (0, 1),
        (1, 0),
        (1, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 0),
        (2, 1),
        (3, 0),
        (3, 1),
        (2, 2),
        (2, 3),
        (3, 2),
        (3, 3),
    ];
    assert_eq!(walk2(CurveKind::ZOrder, 2), expected);
}

#[test]
fn peano_9x9_opening_and_corners() {
    // Order-2 Peano opens with the level-1 serpentine inside the first
    // 3x3 sub-square, then climbs into the one above; it ends at the far
    // corner (8,8).
    let c = CurveKind::Peano.build(2, 2).unwrap();
    let side = c.side();
    assert_eq!(side, 9);
    let mut cells: Vec<(u128, (u64, u64))> = Vec::new();
    for x in 0..side {
        for y in 0..side {
            cells.push((c.index(&[x, y]), (x, y)));
        }
    }
    cells.sort_unstable_by_key(|&(i, _)| i);
    let w: Vec<(u64, u64)> = cells.into_iter().map(|(_, p)| p).collect();
    assert_eq!(
        &w[..9],
        &[
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 1),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2)
        ]
    );
    // The 10th cell steps up into the next 3x3 block: continuity across
    // sub-squares.
    assert_eq!(w[9], (2, 3));
    assert_eq!(w[80], (8, 8));
}

#[test]
fn all_walks_are_permutations() {
    for kind in CurveKind::ALL {
        let order = if kind == CurveKind::Peano { 1 } else { 2 };
        let c = kind.build(2, order).unwrap();
        let side = c.side();
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let i = c.index(&[x, y]) as usize;
                assert!(!seen[i], "{kind}: duplicate index {i}");
                seen[i] = true;
            }
        }
    }
}
