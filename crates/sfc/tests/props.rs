//! Property-based tests of the space-filling-curve invariants.
//!
//! Every curve must be a bijection between grid cells and `0..cells`;
//! invertible curves must round-trip; continuous curves must take unit
//! steps. The properties are exercised over randomly drawn curve shapes
//! and points.

use proptest::prelude::*;
use sfc::{quality, CurveKind, InvertibleCurve, SpaceFillingCurve};

/// Build a curve through its concrete constructor so the exact inverse
/// is available (`CurveKind::build` erases it to `SpaceFillingCurve`).
fn build_invertible(kind: CurveKind, dims: u32, order: u32) -> Box<dyn InvertibleCurve> {
    match kind {
        CurveKind::Sweep => Box::new(sfc::Sweep::new(dims, order).unwrap()),
        CurveKind::CScan => Box::new(sfc::CScan::new(dims, order).unwrap()),
        CurveKind::Scan => Box::new(sfc::Scan::new(dims, order).unwrap()),
        CurveKind::Gray => Box::new(sfc::Gray::new(dims, order).unwrap()),
        CurveKind::Hilbert => Box::new(sfc::Hilbert::new(dims, order).unwrap()),
        CurveKind::Spiral => Box::new(sfc::Spiral::new(dims, order).unwrap()),
        CurveKind::Diagonal => Box::new(sfc::Diagonal::new(dims, order).unwrap()),
        CurveKind::Peano => Box::new(sfc::Peano::new(dims, order).unwrap()),
        CurveKind::ZOrder => Box::new(sfc::ZOrder::new(dims, order).unwrap()),
    }
}

/// Strategy: a curve kind, dimensionality and order small enough to test
/// exhaustively.
fn small_shape() -> impl Strategy<Value = (CurveKind, u32, u32)> {
    (
        prop::sample::select(CurveKind::ALL.to_vec()),
        1u32..=3,
        1u32..=3,
    )
        .prop_filter("keep grids small", |(kind, dims, order)| {
            let side: u64 = if *kind == CurveKind::Peano {
                3u64.pow(*order)
            } else {
                1 << *order
            };
            side.pow(*dims) <= 4096
        })
}

/// Strategy: shapes with a monomorphized kernel fast path, up to the
/// largest orders the scheduler builds (dims * order capped at 62 bits so
/// indices stay easy to sample).
fn fast_shape() -> impl Strategy<Value = (CurveKind, u32, u32)> {
    (
        prop::sample::select(vec![CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::Gray]),
        2u32..=3,
        1u32..=31,
    )
        .prop_filter("index must fit comfortably", |(_, dims, order)| {
            dims * order <= 62
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn curves_are_bijective((kind, dims, order) in small_shape()) {
        let curve = kind.build(dims, order).unwrap();
        prop_assert!(quality::is_bijective(curve.as_ref()).unwrap(),
            "{kind} dims={dims} order={order}");
    }

    #[test]
    fn index_is_in_range(
        (kind, dims, order) in small_shape(),
        raw in prop::collection::vec(0u64..4096, 1..=3),
    ) {
        let curve = kind.build(dims, order).unwrap();
        let side = curve.side();
        let point: Vec<u64> = (0..dims as usize)
            .map(|i| raw.get(i).copied().unwrap_or(0) % side)
            .collect();
        let idx = curve.index(&point);
        prop_assert!(idx < curve.cells());
    }

    #[test]
    fn distinct_points_distinct_indices(
        (kind, dims, order) in small_shape(),
        a in prop::collection::vec(0u64..4096, 3),
        b in prop::collection::vec(0u64..4096, 3),
    ) {
        let curve = kind.build(dims, order).unwrap();
        let side = curve.side();
        let pa: Vec<u64> = (0..dims as usize).map(|i| a[i] % side).collect();
        let pb: Vec<u64> = (0..dims as usize).map(|i| b[i] % side).collect();
        if pa != pb {
            prop_assert_ne!(curve.index(&pa), curve.index(&pb));
        } else {
            prop_assert_eq!(curve.index(&pa), curve.index(&pb));
        }
    }

    #[test]
    fn continuous_curves_take_unit_steps((dims, order) in (2u32..=3, 1u32..=3)) {
        for kind in [CurveKind::Scan, CurveKind::Hilbert, CurveKind::Peano] {
            let order = if kind == CurveKind::Peano { order.min(2) } else { order };
            let curve = kind.build(dims, order).unwrap();
            if curve.cells() > 4096 {
                continue;
            }
            let rep = quality::continuity(curve.as_ref()).unwrap();
            prop_assert!(rep.is_continuous(), "{kind} dims={dims} order={order}: {rep:?}");
        }
    }

    #[test]
    fn hilbert_roundtrips(
        dims in 2u32..=4,
        order in 1u32..=3,
        seed in 0u64..1000,
    ) {
        let h = sfc::Hilbert::new(dims, order).unwrap();
        let idx = (seed as u128 * 2654435761) % h.cells();
        let mut p = vec![0u64; dims as usize];
        h.point(idx, &mut p);
        prop_assert_eq!(h.index(&p), idx);
    }

    #[test]
    fn gray_roundtrips(
        dims in 1u32..=4,
        order in 1u32..=4,
        seed in 0u64..1000,
    ) {
        let g = sfc::Gray::new(dims, order).unwrap();
        let idx = (seed as u128 * 2654435761) % g.cells();
        let mut p = vec![0u64; dims as usize];
        g.point(idx, &mut p);
        prop_assert_eq!(g.index(&p), idx);
    }

    #[test]
    fn diagonal_is_sum_monotone(
        dims in 1u32..=3,
        order in 1u32..=4,
        a in prop::collection::vec(0u64..4096, 3),
        b in prop::collection::vec(0u64..4096, 3),
    ) {
        let d = sfc::Diagonal::new(dims, order).unwrap();
        let side = d.side();
        let pa: Vec<u64> = (0..dims as usize).map(|i| a[i] % side).collect();
        let pb: Vec<u64> = (0..dims as usize).map(|i| b[i] % side).collect();
        let sa: u64 = pa.iter().sum();
        let sb: u64 = pb.iter().sum();
        if sa < sb {
            prop_assert!(d.index(&pa) < d.index(&pb));
        }
    }

    #[test]
    fn diagonal_roundtrips(
        dims in 1u32..=4,
        order in 1u32..=3,
        seed in 0u64..1000,
    ) {
        let d = sfc::Diagonal::new(dims, order).unwrap();
        let idx = (seed as u128 * 2654435761) % d.cells();
        let mut p = vec![0u64; dims as usize];
        d.point(idx, &mut p);
        prop_assert_eq!(d.index(&p), idx);
    }

    #[test]
    fn spiral_is_ring_monotone(
        order in 1u32..=4,
        a in prop::collection::vec(0u64..4096, 2),
        b in prop::collection::vec(0u64..4096, 2),
    ) {
        let s = sfc::Spiral::new(2, order).unwrap();
        let side = s.side();
        let pa = [a[0] % side, a[1] % side];
        let pb = [b[0] % side, b[1] % side];
        let ring = |p: &[u64; 2]| -> u64 {
            let c_hi = side / 2;
            let c_lo = c_hi - 1;
            p.iter()
                .map(|&c| {
                    if c < c_lo { c_lo - c } else { c.saturating_sub(c_hi) }
                })
                .max()
                .unwrap()
        };
        if ring(&pa) < ring(&pb) {
            prop_assert!(s.index(&pa) < s.index(&pb));
        }
    }

    #[test]
    fn weighted_diagonal_matches_float_order(
        f in 0.0f64..64.0,
        x1 in 0u64..1024,
        y1 in 0u64..1024,
        x2 in 0u64..1024,
        y2 in 0u64..1024,
    ) {
        let w = sfc::WeightedDiagonal::new(f);
        let exact1 = x1 as f64 + f * y1 as f64;
        let exact2 = x2 as f64 + f * y2 as f64;
        // Strict float order must be preserved (up to fixed-point epsilon).
        if exact1 + 1e-6 < exact2 {
            prop_assert!(w.value(x1, y1) < w.value(x2, y2),
                "f={f}: ({x1},{y1}) vs ({x2},{y2})");
        }
    }

    #[test]
    fn every_curve_roundtrips((kind, dims, order) in small_shape(), seed in 0u64..1000) {
        // index ∘ point must be the identity for the whole catalogue,
        // not just the curves with bespoke tests above.
        let curve = build_invertible(kind, dims, order);
        let idx = (seed as u128 * 2654435761) % curve.cells();
        let mut p = vec![0u64; dims as usize];
        curve.point(idx, &mut p);
        prop_assert_eq!(curve.index(&p), idx, "{} dims={} order={}", kind, dims, order);

        // And point itself must invert index on an arbitrary grid point.
        let side = curve.side();
        let raw: Vec<u64> = (0..dims as u64).map(|i| (seed.wrapping_mul(31).wrapping_add(i * 7)) % side).collect();
        let mut back = vec![0u64; dims as usize];
        curve.point(curve.index(&raw), &mut back);
        prop_assert_eq!(back, raw, "{} dims={} order={}", kind, dims, order);
    }

    #[test]
    fn walk_covers_grid_within_jump_bounds((kind, dims, order) in small_shape()) {
        // quality::walk must enumerate every cell exactly once, and each
        // consecutive step's Manhattan jump must stay within the largest
        // move the grid geometry allows.
        let curve = kind.build(dims, order).unwrap();
        let walk = quality::walk(curve.as_ref()).unwrap();
        prop_assert_eq!(walk.len() as u128, curve.cells());
        let mut seen: Vec<&Vec<u64>> = walk.iter().collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len() as u128, curve.cells(), "{} revisits a cell", kind);

        let side = curve.side();
        let max_jump = dims as u64 * (side - 1);
        let continuous = matches!(kind, CurveKind::Scan | CurveKind::Hilbert | CurveKind::Peano);
        for pair in walk.windows(2) {
            let jump: u64 = pair[0].iter().zip(&pair[1]).map(|(a, b)| a.abs_diff(*b)).sum();
            prop_assert!(jump >= 1 && jump <= max_jump.max(1),
                "{kind}: jump {jump} outside 1..={max_jump}");
            if continuous {
                prop_assert_eq!(jump, 1, "{} must take unit steps", kind);
            }
        }
    }

    #[test]
    fn fast_kernels_match_dyn_on_full_domain_roundtrips(
        (kind, dims, order) in fast_shape(),
        seed in 0u64..u64::MAX,
    ) {
        // The monomorphized LUT kernels must agree with the generic
        // catalogue curve over the *whole* domain, not just the small
        // grids the exhaustive unit tests walk: draw a curve index from
        // the full range, invert it through the generic point(), and map
        // back through the kernel.
        let kernel = sfc::CurveKernel::build(kind, dims, order).unwrap();
        let curve = build_invertible(kind, dims, order);
        let idx = (seed as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15) % curve.cells();
        let mut p = vec![0u64; dims as usize];
        curve.point(idx, &mut p);
        prop_assert_eq!(kernel.index(&p), idx, "{} dims={} order={} p={:?}", kind, dims, order, p);
        // And on an arbitrary grid point the kernel equals the dyn path.
        let side = kernel.side();
        let q: Vec<u64> = (0..dims as u64)
            .map(|i| seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
                % side)
            .collect();
        prop_assert_eq!(kernel.index(&q), curve.index(&q),
            "{} dims={} order={} q={:?}", kind, dims, order, q);
    }

    #[test]
    fn peano_roundtrips(
        dims in 1u32..=3,
        order in 1u32..=2,
        seed in 0u64..1000,
    ) {
        // Radix-3: side 3^order, so the bit-twiddling shortcuts of the
        // power-of-two curves don't apply.
        let p = sfc::Peano::new(dims, order).unwrap();
        prop_assert_eq!(p.side(), 3u64.pow(order));
        let idx = (seed as u128 * 2654435761) % p.cells();
        let mut point = vec![0u64; dims as usize];
        p.point(idx, &mut point);
        prop_assert_eq!(p.index(&point), idx);
    }

    #[test]
    fn spiral_roundtrips(
        dims in 2u32..=3,
        order in 1u32..=3,
        seed in 0u64..1000,
    ) {
        let s = sfc::Spiral::new(dims, order).unwrap();
        let idx = (seed as u128 * 2654435761) % s.cells();
        let mut point = vec![0u64; dims as usize];
        s.point(idx, &mut point);
        prop_assert_eq!(s.index(&point), idx);
    }

    #[test]
    fn index_batch_matches_index_across_the_catalogue(
        (kind, dims, order) in small_shape(),
        len in 0usize..40,
        seed in 0u64..u64::MAX,
    ) {
        // Both the kernel CurveKernel::build selects (fast variant or
        // SmallLut) and the forced-Dyn wrapper must satisfy
        // index_batch == index elementwise, over batch lengths straddling
        // the 8-lane width (including empty) and with a max-coordinate
        // edge point planted mid-batch.
        let fast = sfc::CurveKernel::build(kind, dims, order).unwrap();
        let dynk = sfc::CurveKernel::from_dyn(kind.build(dims, order).unwrap());
        let side = fast.side();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % side
        };
        macro_rules! check_d {
            ($d:literal) => {{
                let mut pts = vec![[0u64; $d]; len];
                for p in pts.iter_mut() {
                    for c in p.iter_mut() { *c = next(); }
                }
                if len > 3 { pts[3] = [side - 1; $d]; }
                let mut out_fast = vec![0u128; len];
                let mut out_dyn = vec![0u128; len];
                fast.index_batch(&pts, &mut out_fast);
                dynk.index_batch(&pts, &mut out_dyn);
                for (p, (&vf, &vd)) in pts.iter().zip(out_fast.iter().zip(&out_dyn)) {
                    let want = fast.index(&p[..]);
                    prop_assert_eq!(vf, want, "{} dims={} order={} p={:?}", kind, dims, order, p);
                    prop_assert_eq!(vd, want, "{} dims={} order={} p={:?}", kind, dims, order, p);
                }
            }};
        }
        match dims {
            1 => check_d!(1),
            2 => check_d!(2),
            _ => check_d!(3),
        }
    }

    #[test]
    fn index_batch_matches_index_on_large_fast_shapes(
        (kind, dims, order) in fast_shape(),
        seed in 0u64..u64::MAX,
    ) {
        // The lane-stepped automata at scheduler-sized orders, where the
        // widened byte tables (and the odd-level peel) actually engage.
        let kernel = sfc::CurveKernel::build(kind, dims, order).unwrap();
        let side = kernel.side();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % side
        };
        macro_rules! check_d {
            ($d:literal) => {{
                let mut pts = vec![[0u64; $d]; 19];
                for p in pts.iter_mut() {
                    for c in p.iter_mut() { *c = next(); }
                }
                pts[5] = [side - 1; $d];
                pts[6] = [0; $d];
                let mut out = vec![0u128; 19];
                kernel.index_batch(&pts, &mut out);
                for (p, &v) in pts.iter().zip(&out) {
                    prop_assert_eq!(v, kernel.index(&p[..]),
                        "{} dims={} order={} p={:?}", kind, dims, order, p);
                }
            }};
        }
        if dims == 2 { check_d!(2) } else { check_d!(3) }
    }

    #[test]
    fn lexicographic_transpose_duality(
        order in 1u32..=4,
        x in 0u64..4096,
        y in 0u64..4096,
    ) {
        // Sweep(x,y) == CScan(y,x): the two curves are transposes.
        let sweep = sfc::Sweep::new(2, order).unwrap();
        let cscan = sfc::CScan::new(2, order).unwrap();
        let side = sweep.side();
        let (x, y) = (x % side, y % side);
        prop_assert_eq!(sweep.index(&[x, y]), cscan.index(&[y, x]));
    }
}
