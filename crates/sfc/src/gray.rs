//! The reflected Gray-code curve.
//!
//! Coordinates are bit-interleaved into a single word `w` (dimension 0
//! contributes the most significant bit of each group, as in a Z-order /
//! Morton code), and the curve index is the *rank* of `w` in the binary
//! reflected Gray code: `index = gray⁻¹(w)`.
//!
//! Stepping along the curve flips exactly one bit of the interleaved word,
//! so consecutive cells differ in exactly one coordinate by a power of two
//! — strong clustering, but not unit-step continuity (paper [18,19]).

use crate::curve::{check_point, check_radix2, InvertibleCurve, SfcError, SpaceFillingCurve};

/// The reflected Gray-code curve. See module docs.
#[derive(Debug, Clone)]
pub struct Gray {
    dims: u32,
    bits: u32,
    side: u64,
}

impl Gray {
    /// Build a Gray curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Ok(Gray { dims, bits, side })
    }

    /// Interleave coordinate bits, dimension 0 most significant within each
    /// bit level, the highest bit level first.
    fn interleave(&self, point: &[u64]) -> u128 {
        match *point {
            // Byte-wise spread tables for the shapes the scheduler builds.
            [x, y] => crate::kernels::morton2(x, y, self.bits),
            [x, y, z] => crate::kernels::morton3(x, y, z, self.bits),
            _ => {
                let mut w: u128 = 0;
                for level in (0..self.bits).rev() {
                    for &c in point {
                        w = (w << 1) | ((c >> level) & 1) as u128;
                    }
                }
                w
            }
        }
    }

    fn deinterleave(&self, w: u128, out: &mut [u64]) {
        out.iter_mut().for_each(|c| *c = 0);
        let total = self.bits * self.dims;
        let mut pos = total;
        for level in (0..self.bits).rev() {
            for c in out.iter_mut() {
                pos -= 1;
                *c |= (((w >> pos) & 1) as u64) << level;
            }
        }
    }
}

/// Binary reflected Gray code of `b`.
#[inline]
pub(crate) fn gray(b: u128) -> u128 {
    b ^ (b >> 1)
}

/// Inverse of the binary reflected Gray code.
#[inline]
pub(crate) fn gray_inverse(mut g: u128) -> u128 {
    let mut shift = 1u32;
    while shift < 128 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

impl SpaceFillingCurve for Gray {
    fn name(&self) -> &'static str {
        "gray"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("gray", self.dims, self.side, point);
        gray_inverse(self.interleave(point))
    }
}

impl InvertibleCurve for Gray {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "gray: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        self.deinterleave(gray(index), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_basics() {
        let seq: Vec<u128> = (0..8).map(gray).collect();
        assert_eq!(seq, vec![0, 1, 3, 2, 6, 7, 5, 4]);
        for b in 0..1024u128 {
            assert_eq!(gray_inverse(gray(b)), b);
        }
    }

    #[test]
    fn consecutive_cells_differ_in_one_coordinate() {
        let c = Gray::new(3, 2).unwrap();
        let mut prev = vec![0u64; 3];
        let mut cur = vec![0u64; 3];
        for i in 1..c.cells() {
            c.point(i - 1, &mut prev);
            c.point(i, &mut cur);
            let changed = prev.iter().zip(&cur).filter(|(a, b)| a != b).count();
            assert_eq!(changed, 1, "step {i}: {prev:?} -> {cur:?}");
            // ... and the change is a power of two.
            let delta = prev
                .iter()
                .zip(&cur)
                .map(|(&a, &b)| a.abs_diff(b))
                .max()
                .unwrap();
            assert!(delta.is_power_of_two());
        }
    }

    #[test]
    fn roundtrip_2d() {
        let c = Gray::new(2, 4).unwrap();
        let mut p = vec![0u64; 2];
        for i in 0..c.cells() {
            c.point(i, &mut p);
            assert_eq!(c.index(&p), i);
        }
    }

    #[test]
    fn order_one_gray_equals_two_cell_walk() {
        // With one bit per dimension the Gray curve walks the hypercube's
        // Gray-code Hamiltonian cycle.
        let c = Gray::new(2, 1).unwrap();
        assert_eq!(c.index(&[0, 0]), 0);
        assert_eq!(c.index(&[0, 1]), 1);
        assert_eq!(c.index(&[1, 1]), 2);
        assert_eq!(c.index(&[1, 0]), 3);
    }
}
