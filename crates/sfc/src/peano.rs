//! The Peano curve: the original 1890 space-filling curve, radix 3.
//!
//! The grid side is `3^order`. At every recursion level the `3^d` sub-cells
//! are visited in serpentine (reflected lexicographic) order, and each
//! sub-cell hosts a copy of the curve reflected in dimension `j` exactly
//! when the sum of the level's digits of the *other* dimensions is odd.
//! That reflection rule — unlike Hilbert's rotations — uses mirror images
//! only, and it makes consecutive cells grid neighbours at every order
//! (verified exhaustively by the tests).
//!
//! Because the scheduling grids of the Cascaded-SFC paper are powers of
//! two, Peano is part of the library catalogue but not of the scheduler's
//! Figure-1 set; see `DESIGN.md`.

use crate::curve::{check_point, InvertibleCurve, SfcError, SpaceFillingCurve};

/// The Peano curve (side `3^order`). See module docs.
#[derive(Debug, Clone)]
pub struct Peano {
    dims: u32,
    order: u32,
    side: u64,
}

impl Peano {
    /// Build a Peano curve over `dims` dimensions with side `3^order`.
    pub fn new(dims: u32, order: u32) -> Result<Self, SfcError> {
        if dims == 0 {
            return Err(SfcError::ZeroDims);
        }
        if order == 0 {
            return Err(SfcError::ZeroOrder);
        }
        // side = 3^order must fit u64 and side^dims must fit u128.
        let side = 3u64
            .checked_pow(order)
            .ok_or(SfcError::TooLarge { dims, order })?;
        let mut cells: u128 = 1;
        for _ in 0..dims {
            cells = cells
                .checked_mul(side as u128)
                .ok_or(SfcError::TooLarge { dims, order })?;
        }
        Ok(Peano { dims, order, side })
    }

    /// Base-3 digit of `v` at `level` (0 = least significant).
    #[inline]
    fn digit(v: u64, level: u32) -> u64 {
        (v / 3u64.pow(level)) % 3
    }
}

impl SpaceFillingCurve for Peano {
    fn name(&self) -> &'static str {
        "peano"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("peano", self.dims, self.side, point);
        let d = self.dims as usize;
        let mut flip = vec![false; d];
        let mut idx: u128 = 0;
        for level in (0..self.order).rev() {
            // Undo the accumulated reflections to get the sub-cell
            // coordinates in the local frame, then undo the serpentine to
            // get the raw index digits.
            let mut qsum: u64 = 0; // sum of raw digits q_0..q_{j-1}
            let mut q = vec![0u64; d];
            for j in 0..d {
                let c = Self::digit(point[j], level);
                let t = if flip[j] { 2 - c } else { c };
                let qj = if qsum & 1 == 1 { 2 - t } else { t };
                q[j] = qj;
                qsum += qj;
            }
            // Accumulate the index digits (dimension 0 most significant).
            for &qj in &q {
                idx = idx * 3 + qj as u128;
            }
            // Update reflections: dimension j toggles when the sum of the
            // *other* dimensions' raw digits at this level is odd.
            let total: u64 = q.iter().sum();
            for j in 0..d {
                if (total - q[j]) & 1 == 1 {
                    flip[j] = !flip[j];
                }
            }
        }
        idx
    }
}

impl InvertibleCurve for Peano {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "peano: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        let d = self.dims as usize;
        out.iter_mut().for_each(|c| *c = 0);
        let mut flip = vec![false; d];
        // Extract digit groups, most significant first.
        let digits_total = self.order * self.dims;
        let mut q = vec![0u64; d];
        for level in (0..self.order).rev() {
            // The group for this level sits at base-3 positions
            // [level*d, (level+1)*d) counted from the least significant.
            let group_pos = level * self.dims;
            let mut rest = index / pow3_u128(group_pos);
            // rest's lowest d digits are q_{d-1} .. q_0 (dimension 0 most
            // significant within the group).
            for j in (0..d).rev() {
                q[j] = (rest % 3) as u64;
                rest /= 3;
            }
            let _ = digits_total;
            // Serpentine + reflections: derive the coordinate digits.
            let mut qsum: u64 = 0;
            for j in 0..d {
                let t = if qsum & 1 == 1 { 2 - q[j] } else { q[j] };
                let c = if flip[j] { 2 - t } else { t };
                out[j] += c * 3u64.pow(level);
                qsum += q[j];
            }
            let total: u64 = q.iter().sum();
            for j in 0..d {
                if (total - q[j]) & 1 == 1 {
                    flip[j] = !flip[j];
                }
            }
        }
    }
}

fn pow3_u128(exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc *= 3;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_2d_serpentine() {
        let c = Peano::new(2, 1).unwrap();
        let expected = [
            [0u64, 0],
            [0, 1],
            [0, 2],
            [1, 2],
            [1, 1],
            [1, 0],
            [2, 0],
            [2, 1],
            [2, 2],
        ];
        for (i, pt) in expected.iter().enumerate() {
            assert_eq!(c.index(pt), i as u128, "point {pt:?}");
        }
    }

    #[test]
    fn unit_steps() {
        for (dims, order) in [(2u32, 1u32), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1)] {
            let c = Peano::new(dims, order).unwrap();
            let mut prev = vec![0u64; dims as usize];
            let mut cur = vec![0u64; dims as usize];
            c.point(0, &mut prev);
            for i in 1..c.cells() {
                c.point(i, &mut cur);
                let d: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
                assert_eq!(
                    d, 1,
                    "dims={dims} order={order} step {i}: {prev:?} -> {cur:?}"
                );
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    }

    #[test]
    fn roundtrip() {
        for (dims, order) in [(2u32, 3u32), (3, 2), (5, 1)] {
            let c = Peano::new(dims, order).unwrap();
            let mut p = vec![0u64; dims as usize];
            for i in 0..c.cells() {
                c.point(i, &mut p);
                assert_eq!(c.index(&p), i, "dims={dims} order={order}");
            }
        }
    }

    #[test]
    fn starts_at_origin_ends_at_far_corner() {
        let c = Peano::new(2, 2).unwrap();
        let mut p = vec![0u64; 2];
        c.point(0, &mut p);
        assert_eq!(p, vec![0, 0]);
        c.point(c.cells() - 1, &mut p);
        assert_eq!(p, vec![8, 8]);
    }

    #[test]
    fn rejects_huge() {
        assert!(matches!(Peano::new(4, 25), Err(SfcError::TooLarge { .. })));
    }
}
