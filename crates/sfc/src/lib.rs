//! # sfc — space-filling curves for QoS scheduling
//!
//! A self-contained library of discrete space-filling curves (SFCs) over
//! `d`-dimensional grids, built as the substrate for the Cascaded-SFC
//! multimedia disk scheduler (Mokbel, Aref, Elbassioni, Kamel — ICDE 2004).
//!
//! An SFC assigns every cell of a finite grid a unique one-dimensional
//! *index* (its position along the curve), so the curve defines a total
//! order over multi-dimensional points. The scheduler exploits exactly this:
//! a disk request described by several QoS parameters becomes a grid point,
//! and the curve index becomes its scheduling priority.
//!
//! ## Curve catalogue
//!
//! The eight curves of the authors' catalogue (CIKM 2001; GeoInformatica
//! 2003) are provided, each in `n` dimensions where the construction
//! generalizes:
//!
//! | Curve | Order | Character |
//! |---|---|---|
//! | [`Sweep`] | lexicographic, dimension 0 most significant | favors dim 0 absolutely |
//! | [`CScan`] | lexicographic, last dimension most significant, fly-back | favors the last dim |
//! | [`Scan`] | boustrophedon (serpentine) | continuous, favors the last dim |
//! | [`Diagonal`] | by coordinate sum, serpentine within anti-diagonals | symmetric in all dims |
//! | [`Gray`] | reflected Gray code over interleaved bits | one interleaved bit flips per step |
//! | [`Hilbert`] | Hilbert curve (Skilling/Butz transform) | continuous, strong locality |
//! | [`Spiral`] | rings around the grid center, outward | favors mid-range values |
//! | [`Peano`] | radix-3 serpentine recursion | continuous, needs side `3^k` |
//! | [`ZOrder`] | Morton bit-interleave | cheapest mapping, long jumps |
//!
//! ## Quick example
//!
//! ```
//! use sfc::{CurveKind, SpaceFillingCurve};
//!
//! // A 2-D Hilbert curve on a 16x16 grid (4 bits per dimension).
//! let h = CurveKind::Hilbert.build(2, 4).unwrap();
//! let a = h.index(&[3, 5]);
//! let b = h.index(&[3, 6]);
//! assert_ne!(a, b);
//! assert!(a < h.cells());
//! ```
//!
//! All indices are `u128`; constructors reject configurations whose grids
//! exceed `2^128` cells. Curves are object-safe (`Box<dyn
//! SpaceFillingCurve>`), cheap to build for scheduling-sized grids, and
//! deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod diagonal;
mod fast;
mod gray;
mod hilbert;
mod kernels;
mod lexicographic;
mod peano;
pub mod quality;
mod simd;
mod spiral;
mod zorder;

pub use curve::{CurveKind, InvertibleCurve, SfcError, SpaceFillingCurve};
pub use diagonal::{Diagonal, WeightedDiagonal};
pub use fast::{CurveKernel, KernelGrid, BATCH_LANES, SMALL_LUT_MAX_CELLS};
pub use gray::Gray;
pub use hilbert::Hilbert;
pub use lexicographic::{CScan, Scan, Sweep};
pub use peano::Peano;
pub use spiral::Spiral;
pub use zorder::ZOrder;
