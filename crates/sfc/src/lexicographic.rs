//! The three "linear" curves of the catalogue: Sweep, C-Scan and Scan.
//!
//! All three visit the grid stripe by stripe. They differ in which
//! dimension drives the stripes and whether the inner traversal reverses
//! direction (serpentine) or flies back:
//!
//! * [`Sweep`] — lexicographic order with **dimension 0 most significant**.
//!   In 2-D this draws vertical strokes, always bottom-to-top.
//! * [`CScan`] — lexicographic order with the **last dimension most
//!   significant**, every stripe traversed in the same direction with a
//!   fly-back jump: the shape of the circular-SCAN disk policy.
//! * [`Scan`] — like C-Scan but serpentine (boustrophedon): each stripe
//!   reverses direction so consecutive cells are always grid neighbours.
//!
//! Scheduling consequence (paper §5.1): a lexicographic curve *never*
//! inverts the priority of its most-significant dimension, at the price of
//! high inversion in all other dimensions — the worst fairness of the
//! catalogue, but ideal when one QoS parameter must dominate.

use crate::curve::{check_point, check_radix2, InvertibleCurve, SfcError, SpaceFillingCurve};

/// Lexicographic curve, dimension 0 most significant. See module docs.
#[derive(Debug, Clone)]
pub struct Sweep {
    dims: u32,
    bits: u32,
    side: u64,
}

impl Sweep {
    /// Build a Sweep curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Ok(Sweep { dims, bits, side })
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl SpaceFillingCurve for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("sweep", self.dims, self.side, point);
        let mut idx: u128 = 0;
        for &c in point {
            idx = (idx << self.bits) | c as u128;
        }
        idx
    }
}

impl InvertibleCurve for Sweep {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "sweep: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        let mask = (self.side - 1) as u128;
        let mut rest = index;
        for c in out.iter_mut().rev() {
            *c = (rest & mask) as u64;
            rest >>= self.bits;
        }
    }
}

/// Lexicographic curve, **last** dimension most significant, with fly-back.
/// See module docs.
#[derive(Debug, Clone)]
pub struct CScan {
    dims: u32,
    bits: u32,
    side: u64,
}

impl CScan {
    /// Build a C-Scan curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Ok(CScan { dims, bits, side })
    }
}

impl SpaceFillingCurve for CScan {
    fn name(&self) -> &'static str {
        "c-scan"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("c-scan", self.dims, self.side, point);
        let mut idx: u128 = 0;
        for &c in point.iter().rev() {
            idx = (idx << self.bits) | c as u128;
        }
        idx
    }
}

impl InvertibleCurve for CScan {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "c-scan: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        let mask = (self.side - 1) as u128;
        let mut rest = index;
        for c in out.iter_mut() {
            *c = (rest & mask) as u64;
            rest >>= self.bits;
        }
    }
}

/// Boustrophedon curve: C-Scan with serpentine stripes. See module docs.
#[derive(Debug, Clone)]
pub struct Scan {
    dims: u32,
    bits: u32,
    side: u64,
}

impl Scan {
    /// Build a Scan curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Ok(Scan { dims, bits, side })
    }
}

impl SpaceFillingCurve for Scan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("scan", self.dims, self.side, point);
        // Most significant digit is the last dimension. Each lower digit is
        // reflected when the sum of the more-significant *original* digits
        // is odd, which makes consecutive cells grid neighbours.
        let mut idx: u128 = 0;
        let mut higher_sum: u64 = 0;
        for &c in point.iter().rev() {
            let digit = if higher_sum & 1 == 1 {
                self.side - 1 - c
            } else {
                c
            };
            idx = (idx << self.bits) | digit as u128;
            higher_sum = higher_sum.wrapping_add(c);
        }
        idx
    }
}

impl InvertibleCurve for Scan {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "scan: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        let mask = (self.side - 1) as u128;
        let mut higher_sum: u64 = 0;
        let d = self.dims as usize;
        for j in (0..d).rev() {
            // Digit for dimension j sits at bit offset j*bits (dimension
            // d-1 is most significant).
            let digit = ((index >> (self.bits * j as u32)) & mask) as u64;
            let orig = if higher_sum & 1 == 1 {
                self.side - 1 - digit
            } else {
                digit
            };
            out[j] = orig;
            higher_sum = higher_sum.wrapping_add(orig);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_2d_order() {
        let c = Sweep::new(2, 2).unwrap();
        // index = x*4 + y: vertical strokes.
        assert_eq!(c.index(&[0, 0]), 0);
        assert_eq!(c.index(&[0, 3]), 3);
        assert_eq!(c.index(&[1, 0]), 4);
        assert_eq!(c.index(&[3, 3]), 15);
    }

    #[test]
    fn cscan_2d_order() {
        let c = CScan::new(2, 2).unwrap();
        // index = y*4 + x: horizontal rows, always left-to-right.
        assert_eq!(c.index(&[0, 0]), 0);
        assert_eq!(c.index(&[3, 0]), 3);
        assert_eq!(c.index(&[0, 1]), 4);
        assert_eq!(c.index(&[3, 3]), 15);
    }

    #[test]
    fn scan_2d_serpentine() {
        let c = Scan::new(2, 2).unwrap();
        // Row 0 left-to-right, row 1 right-to-left, ...
        assert_eq!(c.index(&[0, 0]), 0);
        assert_eq!(c.index(&[3, 0]), 3);
        assert_eq!(c.index(&[3, 1]), 4);
        assert_eq!(c.index(&[0, 1]), 7);
        assert_eq!(c.index(&[0, 2]), 8);
    }

    #[test]
    fn scan_consecutive_cells_are_neighbours() {
        let c = Scan::new(3, 2).unwrap();
        let mut prev = vec![0u64; 3];
        let mut cur = vec![0u64; 3];
        for i in 1..c.cells() {
            c.point(i - 1, &mut prev);
            c.point(i, &mut cur);
            let dist: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert_eq!(dist, 1, "step {i} jumps from {prev:?} to {cur:?}");
        }
    }

    #[test]
    fn inverses_roundtrip() {
        let sweep = Sweep::new(3, 3).unwrap();
        let cscan = CScan::new(3, 3).unwrap();
        let scan = Scan::new(3, 3).unwrap();
        let mut p = vec![0u64; 3];
        for i in 0..sweep.cells() {
            sweep.point(i, &mut p);
            assert_eq!(sweep.index(&p), i);
            cscan.point(i, &mut p);
            assert_eq!(cscan.index(&p), i);
            scan.point(i, &mut p);
            assert_eq!(scan.index(&p), i);
        }
    }

    #[test]
    fn one_dimensional_all_identical() {
        // In 1-D all three degenerate to the identity.
        for i in 0..8u64 {
            assert_eq!(Sweep::new(1, 3).unwrap().index(&[i]), i as u128);
            assert_eq!(CScan::new(1, 3).unwrap().index(&[i]), i as u128);
            assert_eq!(Scan::new(1, 3).unwrap().index(&[i]), i as u128);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sweep_rejects_out_of_range() {
        let c = Sweep::new(2, 2).unwrap();
        c.index(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn sweep_rejects_wrong_arity() {
        let c = Sweep::new(2, 2).unwrap();
        c.index(&[1, 2, 3]);
    }
}
