//! Table-driven bit kernels for the 2-D and 3-D radix-2 curves.
//!
//! The catalogue implementations ([`crate::Hilbert`], [`crate::ZOrder`],
//! [`crate::Gray`]) are dimension-generic and pay for it on the hot path:
//! per-point `Vec` staging and a per-bit Skilling transpose. The encapsulator
//! only ever builds 2-D and 3-D stage curves, so those shapes get
//! monomorphized kernels here, in the Butz/Lawder LUT style:
//!
//! * **Morton spread tables** — a byte of one coordinate is interleaved in a
//!   single 256-entry lookup (`SPREAD2`: bit `j` → bit `2j`, `SPREAD3`:
//!   bit `j` → bit `3j`), so a full interleave is one table fetch per
//!   coordinate byte instead of one shift-or per coordinate *bit*.
//! * **Hilbert state tables** — the Skilling/Butz transform is re-expressed
//!   as an MSB-first digit automaton: in state `s`, input digit `d` (one bit
//!   per dimension, dimension 0 most significant) emits output digit
//!   `OUT[s][d]` and moves to state `NXT[s][d]`. The 2-D machine has 4
//!   states, the 3-D machine 24 (the orientation group of the cube). The
//!   per-digit tables are then widened into byte-wise step tables
//!   ([`H2_STEP`]: 4 digits per lookup, [`H3_STEP`]: 2 digits per lookup)
//!   packing `(next_state << 8) | output_bits` into a `u16`.
//!
//! The automata were derived from, and are exercised against, the generic
//! Skilling implementation: `tests/props.rs` checks full-domain equality at
//! small orders and sampled equality up to the maximum order, and the golden
//! tests pin the published orderings. The machines are valid for `bits >= 2`;
//! order-1 curves keep the catalogue path.

/// Byte spread for 2-D Morton interleave: bit `j` of the byte moves to bit
/// `2j` of the result.
pub(crate) const SPREAD2: [u16; 256] = build_spread2();

/// Byte spread for 3-D Morton interleave: bit `j` of the byte moves to bit
/// `3j` of the result (22 bits used).
pub(crate) const SPREAD3: [u32; 256] = build_spread3();

const fn build_spread2() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut j = 0;
        while j < 8 {
            v |= (((b >> j) & 1) as u16) << (2 * j);
            j += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
}

const fn build_spread3() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u32;
        let mut j = 0;
        while j < 8 {
            v |= (((b >> j) & 1) as u32) << (3 * j);
            j += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
}

/// Morton word of a 2-D point: level-`L` pair `(x_L, y_L)` lands at bits
/// `(2L+1, 2L)` — dimension 0 most significant, matching the catalogue
/// interleave convention.
#[inline]
pub(crate) fn morton2(x: u64, y: u64, bits: u32) -> u128 {
    let nbytes = bits.div_ceil(8);
    let mut w = 0u128;
    let mut k = 0;
    while k < nbytes {
        let shift = 8 * k;
        let wx = SPREAD2[((x >> shift) & 0xff) as usize] as u128;
        let wy = SPREAD2[((y >> shift) & 0xff) as usize] as u128;
        w |= ((wx << 1) | wy) << (2 * shift);
        k += 1;
    }
    w
}

/// Morton word of a 3-D point: level-`L` triple lands at bits
/// `(3L+2, 3L+1, 3L)`, dimension 0 most significant.
#[inline]
pub(crate) fn morton3(x: u64, y: u64, z: u64, bits: u32) -> u128 {
    let nbytes = bits.div_ceil(8);
    let mut w = 0u128;
    let mut k = 0;
    while k < nbytes {
        let shift = 8 * k;
        let wx = SPREAD3[((x >> shift) & 0xff) as usize] as u128;
        let wy = SPREAD3[((y >> shift) & 0xff) as usize] as u128;
        let wz = SPREAD3[((z >> shift) & 0xff) as usize] as u128;
        w |= ((wx << 2) | (wy << 1) | wz) << (3 * shift);
        k += 1;
    }
    w
}

/// 2-D Hilbert digit automaton (4 states). Digit `d = (x_bit << 1) | y_bit`.
pub(crate) const H2_OUT: [[u8; 4]; 4] = [[0, 1, 3, 2], [0, 3, 1, 2], [2, 1, 3, 0], [2, 3, 1, 0]];
pub(crate) const H2_NXT: [[u8; 4]; 4] = [[1, 0, 2, 0], [0, 3, 1, 1], [2, 2, 0, 3], [3, 1, 3, 2]];

/// 3-D Hilbert digit automaton (24 states = orientation group of the cube).
/// Digit `d = (x0_bit << 2) | (x1_bit << 1) | x2_bit`.
#[rustfmt::skip]
pub(crate) const H3_OUT: [[u8; 8]; 24] = [
    [0, 1, 3, 2, 7, 6, 4, 5], [0, 7, 1, 6, 3, 4, 2, 5], [0, 1, 7, 6, 3, 2, 4, 5],
    [6, 1, 5, 2, 7, 0, 4, 3], [4, 3, 5, 2, 7, 0, 6, 1], [4, 5, 3, 2, 7, 6, 0, 1],
    [0, 7, 3, 4, 1, 6, 2, 5], [0, 3, 7, 4, 1, 2, 6, 5], [4, 7, 3, 0, 5, 6, 2, 1],
    [0, 3, 1, 2, 7, 4, 6, 5], [4, 7, 5, 6, 3, 0, 2, 1], [6, 7, 1, 0, 5, 4, 2, 3],
    [4, 3, 7, 0, 5, 2, 6, 1], [4, 5, 7, 6, 3, 2, 0, 1], [6, 1, 7, 0, 5, 2, 4, 3],
    [6, 5, 1, 2, 7, 4, 0, 3], [2, 1, 5, 6, 3, 0, 4, 7], [6, 7, 5, 4, 1, 0, 2, 3],
    [2, 3, 5, 4, 1, 0, 6, 7], [2, 5, 3, 4, 1, 6, 0, 7], [2, 5, 1, 6, 3, 4, 0, 7],
    [6, 5, 7, 4, 1, 2, 0, 3], [2, 1, 3, 0, 5, 6, 4, 7], [2, 3, 1, 0, 5, 4, 6, 7],
];
#[rustfmt::skip]
pub(crate) const H3_NXT: [[u8; 8]; 24] = [
    [1, 2, 3, 0, 4, 5, 6, 0], [7, 8, 9, 10, 11, 2, 1, 1], [6, 0, 12, 13, 14, 2, 1, 2],
    [15, 16, 3, 3, 9, 10, 17, 0], [18, 5, 4, 4, 15, 16, 9, 10], [19, 5, 4, 5, 3, 0, 20, 13],
    [9, 10, 17, 0, 7, 8, 6, 6], [0, 21, 13, 9, 6, 7, 12, 7], [22, 17, 10, 23, 8, 6, 8, 12],
    [2, 15, 1, 9, 5, 7, 4, 9], [16, 11, 10, 1, 8, 18, 10, 4], [17, 6, 23, 12, 11, 14, 11, 1],
    [23, 13, 21, 22, 12, 12, 7, 8], [20, 13, 14, 2, 12, 13, 19, 5], [21, 22, 7, 8, 14, 14, 11, 2],
    [3, 15, 20, 15, 0, 21, 13, 9], [16, 3, 16, 20, 22, 17, 10, 23], [11, 1, 17, 3, 18, 4, 17, 6],
    [18, 19, 18, 4, 17, 3, 23, 20], [19, 19, 18, 5, 21, 22, 15, 16], [20, 20, 15, 16, 23, 13, 21, 22],
    [14, 21, 2, 15, 19, 21, 5, 7], [22, 14, 16, 11, 22, 19, 8, 18], [23, 20, 11, 14, 23, 12, 18, 19],
];

/// Widened 2-D step table: one lookup advances the automaton through a whole
/// Morton byte (4 digits). Entry packs `(next_state << 8) | output_byte`.
pub(crate) static H2_STEP: [[u16; 256]; 4] = build_h2_step();

const fn build_h2_step() -> [[u16; 256]; 4] {
    let mut table = [[0u16; 256]; 4];
    let mut s = 0usize;
    while s < 4 {
        let mut b = 0usize;
        while b < 256 {
            let mut state = s;
            let mut out = 0u16;
            let mut k = 4usize;
            while k > 0 {
                k -= 1;
                let d = (b >> (2 * k)) & 3;
                out = (out << 2) | H2_OUT[state][d] as u16;
                state = H2_NXT[state][d] as usize;
            }
            table[s][b] = ((state as u16) << 8) | out;
            b += 1;
        }
        s += 1;
    }
    table
}

/// Widened 3-D step table: one lookup advances the automaton through two
/// Morton digits (6 bits). Entry packs `(next_state << 8) | output_bits`.
pub(crate) static H3_STEP: [[u16; 64]; 24] = build_h3_step();

const fn build_h3_step() -> [[u16; 64]; 24] {
    let mut table = [[0u16; 64]; 24];
    let mut s = 0usize;
    while s < 24 {
        let mut b = 0usize;
        while b < 64 {
            let mut state = s;
            let mut out = 0u16;
            let mut k = 2usize;
            while k > 0 {
                k -= 1;
                let d = (b >> (3 * k)) & 7;
                out = (out << 3) | H3_OUT[state][d] as u16;
                state = H3_NXT[state][d] as usize;
            }
            table[s][b] = ((state as u16) << 8) | out;
            b += 1;
        }
        s += 1;
    }
    table
}

/// [`H3_STEP`] flattened for the lane kernels in [`crate::simd`]: row
/// `s` lives at offset `s * 64`, and each entry packs
/// `(next_state * 64) << 6 | output_bits`, so the automaton chain is one
/// add and one masked load per step — the next-state row offset comes out
/// of the entry pre-scaled, with no bounds check (the table is padded to
/// the power-of-two 2048 slots; offsets 24·64.. are zero and unreachable
/// because every `next_state` the automaton emits is `< 24`).
pub(crate) static H3_STEP_FLAT: [u32; 2048] = build_h3_step_flat();

const fn build_h3_step_flat() -> [u32; 2048] {
    let base = build_h3_step();
    let mut table = [0u32; 2048];
    let mut s = 0usize;
    while s < 24 {
        let mut b = 0usize;
        while b < 64 {
            let e = base[s][b] as u32;
            table[s * 64 + b] = ((e >> 8) * 64) << 6 | (e & 0x3f);
            b += 1;
        }
        s += 1;
    }
    table
}

/// 2-D Hilbert index of `(x, y)` on a `2^bits`-sided grid. Requires
/// `bits >= 2` (order 1 is the Gray walk, handled by the caller) and
/// coordinates already range-checked.
#[inline]
pub(crate) fn hilbert2(x: u64, y: u64, bits: u32) -> u128 {
    let w = morton2(x, y, bits);
    let mut state = 0usize;
    let mut h = 0u128;
    let mut level = bits;
    // Peel leading digits until the remaining depth is byte-aligned.
    while !level.is_multiple_of(4) {
        level -= 1;
        let d = ((w >> (2 * level)) & 3) as usize;
        h = (h << 2) | H2_OUT[state][d] as u128;
        state = H2_NXT[state][d] as usize;
    }
    while level > 0 {
        level -= 4;
        let entry = H2_STEP[state][((w >> (2 * level)) & 0xff) as usize];
        h = (h << 8) | (entry & 0xff) as u128;
        state = (entry >> 8) as usize;
    }
    h
}

/// 3-D Hilbert index of `(x, y, z)` on a `2^bits`-sided grid. Requires
/// `bits >= 2` and coordinates already range-checked.
#[inline]
pub(crate) fn hilbert3(x: u64, y: u64, z: u64, bits: u32) -> u128 {
    let w = morton3(x, y, z, bits);
    let mut state = 0usize;
    let mut h = 0u128;
    let mut level = bits;
    if !level.is_multiple_of(2) {
        level -= 1;
        let d = ((w >> (3 * level)) & 7) as usize;
        h = (h << 3) | H3_OUT[state][d] as u128;
        state = H3_NXT[state][d] as usize;
    }
    while level > 0 {
        level -= 2;
        let entry = H3_STEP[state][((w >> (3 * level)) & 0x3f) as usize];
        h = (h << 6) | (entry & 0x3f) as u128;
        state = (entry >> 8) as usize;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_tables_interleave_bytes() {
        assert_eq!(SPREAD2[0b1011], 0b1000101);
        assert_eq!(SPREAD3[0b101], 0b1000001);
        assert_eq!(morton2(0b10, 0b01, 2), 0b1001);
        assert_eq!(morton3(1, 0, 1, 1), 0b101);
    }

    #[test]
    fn widened_tables_agree_with_single_digit_stepping() {
        for (s, row) in H2_STEP.iter().enumerate() {
            for (b, &packed) in row.iter().enumerate() {
                let mut state = s;
                let mut out = 0u16;
                for k in (0..4).rev() {
                    let d = (b >> (2 * k)) & 3;
                    out = (out << 2) | H2_OUT[state][d] as u16;
                    state = H2_NXT[state][d] as usize;
                }
                assert_eq!(packed, ((state as u16) << 8) | out);
            }
        }
        for (s, row) in H3_STEP.iter().enumerate() {
            for (b, &packed) in row.iter().enumerate() {
                let mut state = s;
                let mut out = 0u16;
                for k in (0..2).rev() {
                    let d = (b >> (3 * k)) & 7;
                    out = (out << 3) | H3_OUT[state][d] as u16;
                    state = H3_NXT[state][d] as usize;
                }
                assert_eq!(packed, ((state as u16) << 8) | out);
            }
        }
    }

    #[test]
    fn kernels_trace_unit_step_bijections() {
        // Any Hilbert curve is a bijective walk taking unit steps; the
        // bit-identity with the generic Skilling path is pinned in
        // `hilbert.rs` and `tests/props.rs`.
        for bits in 2..=4u32 {
            let side = 1u64 << bits;
            let mut cells = vec![None; (side * side) as usize];
            for x in 0..side {
                for y in 0..side {
                    let h = hilbert2(x, y, bits) as usize;
                    assert!(cells[h].is_none(), "collision at index {h}");
                    cells[h] = Some((x, y));
                }
            }
            for pair in cells.windows(2) {
                let (ax, ay) = pair[0].unwrap();
                let (bx, by) = pair[1].unwrap();
                assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1);
            }
        }
        let side = 1u64 << 2;
        let mut cells = vec![None; (side * side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let h = hilbert3(x, y, z, 2) as usize;
                    assert!(cells[h].is_none(), "collision at index {h}");
                    cells[h] = Some((x, y, z));
                }
            }
        }
        for pair in cells.windows(2) {
            let (ax, ay, az) = pair[0].unwrap();
            let (bx, by, bz) = pair[1].unwrap();
            assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by) + az.abs_diff(bz), 1);
        }
    }
}
