//! Devirtualized curve dispatch for the scheduler hot path.
//!
//! The encapsulator used to hold every stage curve as a `Box<dyn
//! SpaceFillingCurve>`, paying a virtual call (and, for Hilbert, a `Vec`
//! round-trip) per stage per request. [`CurveKernel`] resolves the curve
//! *shape* once at construction: the 2-D/3-D radix-2 curves the stages
//! actually build become direct calls into the LUT kernels of
//! [`crate::kernels`], and everything else falls back to the boxed trait
//! object. `CurveKernel::index` is bit-identical to the catalogue curve it
//! replaces — same value, same out-of-range panics (pinned by
//! `tests/props.rs`).

use crate::curve::{check_point, CurveKind, SfcError, SpaceFillingCurve};
use crate::kernels;
use crate::simd::{self, LANES};

/// Shape of a monomorphized kernel's grid.
#[derive(Debug, Clone, Copy)]
pub struct KernelGrid {
    /// Bits per dimension.
    pub bits: u32,
    /// Side length, `2^bits`.
    pub side: u64,
}

/// A curve handle resolved at construction: monomorphized LUT kernels for
/// the shapes the scheduler builds, `Box<dyn SpaceFillingCurve>` otherwise.
pub enum CurveKernel {
    /// 2-D Hilbert through the 4-state byte automaton (`bits >= 2`).
    Hilbert2(KernelGrid),
    /// 3-D Hilbert through the 24-state automaton (`bits >= 2`).
    Hilbert3(KernelGrid),
    /// 2-D Z-order through the byte spread tables.
    ZOrder2(KernelGrid),
    /// 3-D Z-order through the byte spread tables.
    ZOrder3(KernelGrid),
    /// 2-D Gray: byte-spread interleave, then the Gray rank.
    Gray2(KernelGrid),
    /// 3-D Gray: byte-spread interleave, then the Gray rank.
    Gray3(KernelGrid),
    /// Dense rank table for a tiny grid (at most [`SMALL_LUT_MAX_CELLS`]
    /// cells): the whole curve, whatever its family, collapses to one
    /// array lookup. This is what the scheduler's stage-1 shapes hit —
    /// e.g. the paper-default Diagonal over 16^3 QoS levels — where the
    /// catalogue object would re-derive anti-diagonal ranks per request.
    SmallLut {
        /// `lut[off]` is the curve index of the point whose mixed-radix
        /// offset is `off = Σ pⱼ·sideʲ`.
        lut: Box<[u16]>,
        /// Cells per dimension (not necessarily a power of two: Peano
        /// grids are 3-adic).
        side: u64,
        /// Number of grid dimensions.
        dims: u32,
        /// Curve name, kept for error parity with the catalogue object.
        name: &'static str,
    },
    /// Any other curve or shape: the dimension-generic catalogue object.
    Dyn(Box<dyn SpaceFillingCurve>),
}

/// Largest grid (in cells) that [`CurveKernel::build`] will flatten into a
/// dense `SmallLut` table. 4096 cells = 8 KiB of `u16` ranks — covers the
/// paper-default stage-1 grid (16^3) while keeping construction cost and
/// cache footprint negligible.
pub const SMALL_LUT_MAX_CELLS: u128 = 1 << 12;

/// Lane width of [`CurveKernel::index_batch`]: points are processed this
/// many at a time by the batched kernels, with a scalar tail. Callers that
/// stage their own lane arrays (the scheduler's encapsulator) size them
/// with this.
pub const BATCH_LANES: usize = LANES;

impl CurveKernel {
    /// Build the kernel for `kind` over `dims` dimensions at the given
    /// order, choosing a monomorphized fast path when one exists.
    pub fn build(kind: CurveKind, dims: u32, order: u32) -> Result<CurveKernel, SfcError> {
        // Validate through the catalogue constructor so error cases are
        // identical to `CurveKind::build`.
        let curve = kind.build(dims, order)?;
        let grid = KernelGrid {
            bits: order,
            side: curve.side(),
        };
        Ok(match (kind, dims) {
            // Order-1 Hilbert is the Gray walk special case; keep it off
            // the automaton path (it needs bits >= 2).
            (CurveKind::Hilbert, 2) if order >= 2 => CurveKernel::Hilbert2(grid),
            (CurveKind::Hilbert, 3) if order >= 2 => CurveKernel::Hilbert3(grid),
            (CurveKind::ZOrder, 2) => CurveKernel::ZOrder2(grid),
            (CurveKind::ZOrder, 3) => CurveKernel::ZOrder3(grid),
            (CurveKind::Gray, 2) => CurveKernel::Gray2(grid),
            (CurveKind::Gray, 3) => CurveKernel::Gray3(grid),
            _ if curve.cells() <= SMALL_LUT_MAX_CELLS => Self::small_lut(curve),
            _ => CurveKernel::Dyn(curve),
        })
    }

    /// Flatten a tiny catalogue curve into a dense rank table.
    fn small_lut(curve: Box<dyn SpaceFillingCurve>) -> CurveKernel {
        let side = curve.side();
        let dims = curve.dims();
        let mut p = vec![0u64; dims as usize];
        let mut lut = vec![0u16; curve.cells() as usize].into_boxed_slice();
        for (off, slot) in lut.iter_mut().enumerate() {
            let mut rem = off as u64;
            for c in p.iter_mut() {
                *c = rem % side;
                rem /= side;
            }
            *slot = curve.index(&p) as u16;
        }
        CurveKernel::SmallLut {
            lut,
            side,
            dims,
            name: curve.name(),
        }
    }

    /// Wrap an already-built catalogue curve without a fast path.
    pub fn from_dyn(curve: Box<dyn SpaceFillingCurve>) -> CurveKernel {
        CurveKernel::Dyn(curve)
    }

    /// Map a grid point to its curve index. Panics exactly like the
    /// catalogue curve on a wrong-arity or out-of-range point.
    #[inline]
    pub fn index(&self, point: &[u64]) -> u128 {
        match self {
            CurveKernel::Hilbert2(g) => {
                check_point("hilbert", 2, g.side, point);
                kernels::hilbert2(point[0], point[1], g.bits)
            }
            CurveKernel::Hilbert3(g) => {
                check_point("hilbert", 3, g.side, point);
                kernels::hilbert3(point[0], point[1], point[2], g.bits)
            }
            CurveKernel::ZOrder2(g) => {
                check_point("z-order", 2, g.side, point);
                kernels::morton2(point[0], point[1], g.bits)
            }
            CurveKernel::ZOrder3(g) => {
                check_point("z-order", 3, g.side, point);
                kernels::morton3(point[0], point[1], point[2], g.bits)
            }
            CurveKernel::Gray2(g) => {
                check_point("gray", 2, g.side, point);
                crate::gray::gray_inverse(kernels::morton2(point[0], point[1], g.bits))
            }
            CurveKernel::Gray3(g) => {
                check_point("gray", 3, g.side, point);
                crate::gray::gray_inverse(kernels::morton3(point[0], point[1], point[2], g.bits))
            }
            CurveKernel::SmallLut {
                lut,
                side,
                dims,
                name,
            } => {
                check_point(name, *dims, *side, point);
                let mut off = 0u64;
                for &c in point.iter().rev() {
                    off = off * side + c;
                }
                lut[off as usize] as u128
            }
            CurveKernel::Dyn(c) => c.index(point),
        }
    }

    /// Map a batch of grid points to their curve indices:
    /// `index_batch(pts, out)` leaves `out[i] == index(&pts[i])` for every
    /// `i`, including the same panics (first offending point wins) when a
    /// point is out of range or the arity `D` does not match the curve.
    ///
    /// Points run through the 8-wide lane kernels of [`crate::simd`] in
    /// chunks, with a scalar tail for the remainder; kernels without a
    /// batched form ([`CurveKernel::Dyn`], or a `D` that does not match
    /// the kernel shape) fall back to the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if `pts.len() != out.len()`, or exactly like [`Self::index`]
    /// on the first invalid point in `pts` order.
    pub fn index_batch<const D: usize>(&self, pts: &[[u64; D]], out: &mut [u128]) {
        assert_eq!(
            pts.len(),
            out.len(),
            "index_batch: {} points but {} output slots",
            pts.len(),
            out.len()
        );
        match self {
            CurveKernel::Hilbert2(g) if D == 2 => {
                let bits = g.bits;
                self.batch_chunks2(pts, out, g.side, |xs, ys| {
                    simd::hilbert2_batch8(xs, ys, bits)
                });
            }
            CurveKernel::Hilbert3(g) if D == 3 => {
                let bits = g.bits;
                self.batch_chunks3(pts, out, g.side, |xs, ys, zs| {
                    simd::hilbert3_batch8(xs, ys, zs, bits)
                });
            }
            CurveKernel::ZOrder2(g) if D == 2 => {
                let bits = g.bits;
                self.batch_chunks2(pts, out, g.side, |xs, ys| {
                    simd::morton2_batch8(xs, ys, bits)
                });
            }
            CurveKernel::ZOrder3(g) if D == 3 => {
                let bits = g.bits;
                self.batch_chunks3(pts, out, g.side, |xs, ys, zs| {
                    simd::morton3_batch8(xs, ys, zs, bits)
                });
            }
            CurveKernel::Gray2(g) if D == 2 => {
                let bits = g.bits;
                self.batch_chunks2(pts, out, g.side, |xs, ys| simd::gray2_batch8(xs, ys, bits));
            }
            CurveKernel::Gray3(g) if D == 3 => {
                let bits = g.bits;
                self.batch_chunks3(pts, out, g.side, |xs, ys, zs| {
                    simd::gray3_batch8(xs, ys, zs, bits)
                });
            }
            CurveKernel::SmallLut {
                lut, side, dims, ..
            } if D as u32 == *dims => {
                let side = *side;
                self.batch_chunks(pts, out, side, |c| {
                    // Gather: mixed-radix offset per lane, then one table
                    // fetch per lane.
                    let mut offs = [0u64; LANES];
                    for (lane, p) in c.iter().enumerate() {
                        let mut off = 0u64;
                        for &coord in p.iter().rev() {
                            off = off * side + coord;
                        }
                        offs[lane] = off;
                    }
                    let mut o = [0u128; LANES];
                    for lane in 0..LANES {
                        o[lane] = lut[offs[lane] as usize] as u128;
                    }
                    o
                });
            }
            // `Dyn`, or a point arity that does not match the kernel shape
            // (the scalar path raises the exact arity panic).
            _ => {
                for (p, slot) in pts.iter().zip(out.iter_mut()) {
                    *slot = self.index(p);
                }
            }
        }
    }

    /// Drive a 2-D lane kernel over `pts` in chunks of [`LANES`]: one
    /// fused pass transposes each chunk into lane arrays while OR-folding
    /// the coordinates (the grid side is a power of two, so any
    /// out-of-range coordinate shows as a high bit in the fold). A chunk
    /// holding an out-of-range coordinate re-runs scalar so the panic
    /// lands on the first offending point with the catalogue message. The
    /// tail runs scalar.
    #[inline]
    fn batch_chunks2<const D: usize>(
        &self,
        pts: &[[u64; D]],
        out: &mut [u128],
        side: u64,
        kernel: impl Fn(&[u64; LANES], &[u64; LANES]) -> [u128; LANES],
    ) {
        debug_assert!(side.is_power_of_two(), "grid kernels have pow2 sides");
        let mut chunks = pts.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (chunk, slot) in (&mut chunks).zip(&mut outs) {
            let mut xs = [0u64; LANES];
            let mut ys = [0u64; LANES];
            let mut fold = 0u64;
            for (lane, p) in chunk.iter().enumerate() {
                let p: &[u64] = p;
                xs[lane] = p[0];
                ys[lane] = p[1];
                fold |= p[0] | p[1];
            }
            if fold >= side {
                for (p, s) in chunk.iter().zip(slot.iter_mut()) {
                    *s = self.index(p);
                }
            } else {
                slot.copy_from_slice(&kernel(&xs, &ys));
            }
        }
        for (p, slot) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.index(p);
        }
    }

    /// The 3-D sibling of [`Self::batch_chunks2`].
    #[inline]
    fn batch_chunks3<const D: usize>(
        &self,
        pts: &[[u64; D]],
        out: &mut [u128],
        side: u64,
        kernel: impl Fn(&[u64; LANES], &[u64; LANES], &[u64; LANES]) -> [u128; LANES],
    ) {
        debug_assert!(side.is_power_of_two(), "grid kernels have pow2 sides");
        let mut chunks = pts.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (chunk, slot) in (&mut chunks).zip(&mut outs) {
            let mut xs = [0u64; LANES];
            let mut ys = [0u64; LANES];
            let mut zs = [0u64; LANES];
            let mut fold = 0u64;
            for (lane, p) in chunk.iter().enumerate() {
                let p: &[u64] = p;
                xs[lane] = p[0];
                ys[lane] = p[1];
                zs[lane] = p[2];
                fold |= p[0] | p[1] | p[2];
            }
            if fold >= side {
                for (p, s) in chunk.iter().zip(slot.iter_mut()) {
                    *s = self.index(p);
                }
            } else {
                slot.copy_from_slice(&kernel(&xs, &ys, &zs));
            }
        }
        for (p, slot) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.index(p);
        }
    }

    /// Drive a lane kernel over `pts` in chunks of [`LANES`], validating
    /// each chunk with one max-fold; a chunk holding an out-of-range
    /// coordinate re-runs scalar so the panic lands on the first offending
    /// point with the catalogue message. The tail runs scalar. (The
    /// [`CurveKernel::SmallLut`] driver — grid kernels use the fused
    /// transpose in [`Self::batch_chunks2`]/[`Self::batch_chunks3`].)
    #[inline]
    fn batch_chunks<const D: usize>(
        &self,
        pts: &[[u64; D]],
        out: &mut [u128],
        side: u64,
        mut kernel: impl FnMut(&[[u64; D]; LANES]) -> [u128; LANES],
    ) {
        let mut chunks = pts.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (chunk, slot) in (&mut chunks).zip(&mut outs) {
            let chunk: &[[u64; D]; LANES] = chunk.try_into().expect("exact chunk");
            let mut max = 0u64;
            for p in chunk {
                for &c in p {
                    max = max.max(c);
                }
            }
            if max >= side {
                for (p, s) in chunk.iter().zip(slot.iter_mut()) {
                    *s = self.index(p);
                }
            } else {
                slot.copy_from_slice(&kernel(chunk));
            }
        }
        for (p, slot) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.index(p);
        }
    }

    /// Number of grid dimensions.
    pub fn dims(&self) -> u32 {
        match self {
            CurveKernel::Hilbert2(_) | CurveKernel::ZOrder2(_) | CurveKernel::Gray2(_) => 2,
            CurveKernel::Hilbert3(_) | CurveKernel::ZOrder3(_) | CurveKernel::Gray3(_) => 3,
            CurveKernel::SmallLut { dims, .. } => *dims,
            CurveKernel::Dyn(c) => c.dims(),
        }
    }

    /// Cells per dimension.
    pub fn side(&self) -> u64 {
        match self {
            CurveKernel::Hilbert2(g)
            | CurveKernel::Hilbert3(g)
            | CurveKernel::ZOrder2(g)
            | CurveKernel::ZOrder3(g)
            | CurveKernel::Gray2(g)
            | CurveKernel::Gray3(g) => g.side,
            CurveKernel::SmallLut { side, .. } => *side,
            CurveKernel::Dyn(c) => c.side(),
        }
    }

    /// Total number of cells, `side^dims`.
    pub fn cells(&self) -> u128 {
        let mut n: u128 = 1;
        for _ in 0..self.dims() {
            n = n.saturating_mul(self.side() as u128);
        }
        n
    }

    /// Curve name, matching `SpaceFillingCurve::name`.
    pub fn name(&self) -> &'static str {
        match self {
            CurveKernel::Hilbert2(_) | CurveKernel::Hilbert3(_) => "hilbert",
            CurveKernel::ZOrder2(_) | CurveKernel::ZOrder3(_) => "z-order",
            CurveKernel::Gray2(_) | CurveKernel::Gray3(_) => "gray",
            CurveKernel::SmallLut { name, .. } => name,
            CurveKernel::Dyn(c) => c.name(),
        }
    }
}

impl std::fmt::Debug for CurveKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CurveKernel::SmallLut {
                name, dims, side, ..
            } => write!(f, "CurveKernel::SmallLut({name}, {dims}d, side {side})"),
            CurveKernel::Dyn(c) => write!(f, "CurveKernel::Dyn({})", c.name()),
            fast => write!(
                f,
                "CurveKernel::{}{}(order {})",
                fast.name(),
                fast.dims(),
                fast.side().trailing_zeros()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_matches_its_catalogue_curve() {
        for kind in CurveKind::ALL {
            for dims in 1..=3u32 {
                for order in 1..=3u32 {
                    let kernel = CurveKernel::build(kind, dims, order).unwrap();
                    let curve = kind.build(dims, order).unwrap();
                    assert_eq!(kernel.dims(), curve.dims());
                    assert_eq!(kernel.side(), curve.side());
                    assert_eq!(kernel.cells(), curve.cells());
                    assert_eq!(kernel.name(), curve.name());
                    let side = curve.side();
                    let mut p = vec![0u64; dims as usize];
                    // Exhaustive odometer walk of the whole grid.
                    loop {
                        assert_eq!(
                            kernel.index(&p),
                            curve.index(&p),
                            "{kind} dims={dims} order={order} p={p:?}"
                        );
                        let mut j = dims as usize;
                        loop {
                            if j == 0 {
                                break;
                            }
                            j -= 1;
                            p[j] += 1;
                            if p[j] < side {
                                break;
                            }
                            p[j] = 0;
                        }
                        if p.iter().all(|&c| c == 0) {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fast_variants_are_actually_selected() {
        assert!(matches!(
            CurveKernel::build(CurveKind::Hilbert, 2, 4).unwrap(),
            CurveKernel::Hilbert2(_)
        ));
        assert!(matches!(
            CurveKernel::build(CurveKind::Hilbert, 3, 2).unwrap(),
            CurveKernel::Hilbert3(_)
        ));
        // Order-1 Hilbert skips the automaton but is tiny enough for the
        // dense table.
        assert!(matches!(
            CurveKernel::build(CurveKind::Hilbert, 2, 1).unwrap(),
            CurveKernel::SmallLut { .. }
        ));
        assert!(matches!(
            CurveKernel::build(CurveKind::Gray, 2, 10).unwrap(),
            CurveKernel::Gray2(_)
        ));
        assert!(matches!(
            CurveKernel::build(CurveKind::ZOrder, 3, 5).unwrap(),
            CurveKernel::ZOrder3(_)
        ));
        // The paper-default stage-1 shape: Diagonal over 16^3 QoS levels.
        assert!(matches!(
            CurveKernel::build(CurveKind::Diagonal, 3, 4).unwrap(),
            CurveKernel::SmallLut { .. }
        ));
        // Too many cells for the table: back to the catalogue object.
        assert!(matches!(
            CurveKernel::build(CurveKind::Diagonal, 2, 10).unwrap(),
            CurveKernel::Dyn(_)
        ));
    }

    #[test]
    fn index_batch_matches_index_on_every_shape() {
        let mut s = 0x5eedu64;
        let mut next = move |side: u64| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) % side
        };
        for kind in CurveKind::ALL {
            for order in [2u32, 4] {
                let kernel = CurveKernel::build(kind, 3, order).unwrap();
                let side = kernel.side();
                // Lengths around the lane width: empty, sub-lane, exact,
                // exact+tail, several chunks.
                for n in [0usize, 1, 7, 8, 9, 37] {
                    let mut pts = vec![[0u64; 3]; n];
                    for p in pts.iter_mut() {
                        *p = [next(side), next(side), next(side)];
                    }
                    if n > 2 {
                        pts[2] = [side - 1; 3];
                    }
                    let mut out = vec![0u128; n];
                    kernel.index_batch(&pts, &mut out);
                    for (p, &v) in pts.iter().zip(&out) {
                        assert_eq!(v, kernel.index(p), "{kind} order={order} p={p:?}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_batch_panics_on_the_offending_point() {
        let kernel = CurveKernel::build(CurveKind::Hilbert, 2, 4).unwrap();
        let mut pts = [[1u64, 2]; 16];
        pts[11] = [16, 0]; // out of range mid-chunk
        let mut out = [0u128; 16];
        kernel.index_batch(&pts, &mut out);
    }

    #[test]
    #[should_panic(expected = "curve has 2 dims")]
    fn index_batch_panics_on_arity_mismatch() {
        let kernel = CurveKernel::build(CurveKind::Hilbert, 2, 4).unwrap();
        let pts = [[1u64, 2, 3]; 4];
        let mut out = [0u128; 4];
        kernel.index_batch(&pts, &mut out);
    }

    #[test]
    #[should_panic(expected = "output slots")]
    fn index_batch_panics_on_length_mismatch() {
        let kernel = CurveKernel::build(CurveKind::Hilbert, 2, 4).unwrap();
        let pts = [[1u64, 2]; 4];
        let mut out = [0u128; 3];
        kernel.index_batch(&pts, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn small_lut_panics_like_the_catalogue() {
        let kernel = CurveKernel::build(CurveKind::Diagonal, 3, 4).unwrap();
        kernel.index(&[16, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fast_path_panics_like_the_catalogue() {
        let kernel = CurveKernel::build(CurveKind::Hilbert, 2, 2).unwrap();
        kernel.index(&[4, 0]);
    }
}
