//! 8-wide lane-stepped variants of the [`crate::kernels`] fast paths.
//!
//! The scalar kernels are latency-bound: each table lookup of the Hilbert
//! automaton depends on the state produced by the previous one, so a single
//! point can never go faster than the chain of L1 loads. These variants
//! run **eight independent points side by side** — the per-level loop body
//! touches all eight lanes before advancing, so the eight dependency
//! chains interleave and the loads pipeline. Everything is written as
//! fixed-size-array lane code over the same `SPREAD2`/`SPREAD3`/
//! `H2_STEP`/`H3_STEP` tables the scalar kernels use: no intrinsics, no
//! new dependencies, and the bit-spread loops are plain enough for the
//! autovectorizer while the state-table gathers win on instruction-level
//! parallelism alone.
//!
//! Two further batch-only tricks make the lane loops dense:
//!
//! * **64-bit accumulators.** Whenever the Morton word and the output
//!   index fit in 64 bits (`dims * bits <= 64` — every realistic shape:
//!   3-D up to order 21, 2-D up to order 32), the whole lane pipeline
//!   runs on `u64` instead of the scalar kernels' `u128`, halving the
//!   shift/or work per level and letting eight lanes fit the vector
//!   units. Indices widen to `u128` only on the way out.
//! * **Bounds-check-free gathers.** The 3-D lane state travels as a
//!   pre-scaled row offset into [`kernels::H3_STEP_FLAT`] (the step table
//!   flattened and padded to a power-of-two 2048 slots) masked with
//!   `& 2047`, and the 2-D state indexes `H2_STEP`'s four rows masked
//!   with `& 3`, so the compiler drops the per-gather bounds check; the
//!   masks are semantic no-ops because the automata never emit a state
//!   outside the table.
//!
//! Every function here is bit-identical, lane for lane, to its scalar
//! counterpart (pinned by the tests below and by `tests/props.rs` through
//! [`crate::CurveKernel::index_batch`]). Callers are responsible for range
//! checks (`coord < 2^bits` per lane); like the scalar kernels, the
//! Hilbert automata require `bits >= 2`.

use crate::kernels::{
    H2_NXT, H2_OUT, H2_STEP, H3_NXT, H3_OUT, H3_STEP, H3_STEP_FLAT, SPREAD2, SPREAD3,
};

/// Number of points processed side by side by the batch kernels.
pub(crate) const LANES: usize = 8;

/// Widen a lane vector of `u64` indices to the public `u128` shape.
#[inline]
fn widen(w: [u64; LANES]) -> [u128; LANES] {
    let mut out = [0u128; LANES];
    for lane in 0..LANES {
        out[lane] = w[lane] as u128;
    }
    out
}

/// Spread a ≤32-bit value so its bits land in the even positions — the
/// shift-mask ladder equivalent of [`SPREAD2`], with no table loads so
/// eight lanes vectorize cleanly.
#[inline]
fn spread2_u64(v: u64) -> u64 {
    let v = (v | v << 16) & 0x0000_FFFF_0000_FFFF;
    let v = (v | v << 8) & 0x00FF_00FF_00FF_00FF;
    let v = (v | v << 4) & 0x0F0F_0F0F_0F0F_0F0F;
    let v = (v | v << 2) & 0x3333_3333_3333_3333;
    (v | v << 1) & 0x5555_5555_5555_5555
}

/// Spread a ≤21-bit value so its bits land in every third position — the
/// shift-mask ladder equivalent of [`SPREAD3`].
#[inline]
fn spread3_u64(v: u64) -> u64 {
    let v = (v | v << 32) & 0x001F_0000_0000_FFFF;
    let v = (v | v << 16) & 0x001F_0000_FF00_00FF;
    let v = (v | v << 8) & 0x100F_00F0_0F00_F00F;
    let v = (v | v << 4) & 0x10C3_0C30_C30C_30C3;
    (v | v << 2) & 0x1249_2492_4924_9249
}

/// `u64` 2-D Morton lanes (`2 * bits <= 64`, coordinates `< 2^bits`).
#[inline]
fn morton2_lanes64(xs: &[u64; LANES], ys: &[u64; LANES]) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for lane in 0..LANES {
        out[lane] = (spread2_u64(xs[lane]) << 1) | spread2_u64(ys[lane]);
    }
    out
}

/// `u64` 3-D Morton lanes (`3 * bits <= 64`, coordinates `< 2^bits`).
#[inline]
fn morton3_lanes64(xs: &[u64; LANES], ys: &[u64; LANES], zs: &[u64; LANES]) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for lane in 0..LANES {
        out[lane] =
            (spread3_u64(xs[lane]) << 2) | (spread3_u64(ys[lane]) << 1) | spread3_u64(zs[lane]);
    }
    out
}

/// Lane-parallel 2-D Morton interleave: `out[l] = morton2(xs[l], ys[l])`.
#[inline]
pub(crate) fn morton2_batch8(xs: &[u64; LANES], ys: &[u64; LANES], bits: u32) -> [u128; LANES] {
    if 2 * bits <= 64 {
        return widen(morton2_lanes64(xs, ys));
    }
    let nbytes = bits.div_ceil(8);
    let mut out = [0u128; LANES];
    let mut k = 0;
    while k < nbytes {
        let shift = 8 * k;
        for lane in 0..LANES {
            let wx = SPREAD2[((xs[lane] >> shift) & 0xff) as usize] as u128;
            let wy = SPREAD2[((ys[lane] >> shift) & 0xff) as usize] as u128;
            out[lane] |= ((wx << 1) | wy) << (2 * shift);
        }
        k += 1;
    }
    out
}

/// Lane-parallel 3-D Morton interleave.
#[inline]
pub(crate) fn morton3_batch8(
    xs: &[u64; LANES],
    ys: &[u64; LANES],
    zs: &[u64; LANES],
    bits: u32,
) -> [u128; LANES] {
    if 3 * bits <= 64 {
        return widen(morton3_lanes64(xs, ys, zs));
    }
    let nbytes = bits.div_ceil(8);
    let mut out = [0u128; LANES];
    let mut k = 0;
    while k < nbytes {
        let shift = 8 * k;
        for lane in 0..LANES {
            let wx = SPREAD3[((xs[lane] >> shift) & 0xff) as usize] as u128;
            let wy = SPREAD3[((ys[lane] >> shift) & 0xff) as usize] as u128;
            let wz = SPREAD3[((zs[lane] >> shift) & 0xff) as usize] as u128;
            out[lane] |= ((wx << 2) | (wy << 1) | wz) << (3 * shift);
        }
        k += 1;
    }
    out
}

/// Eight 2-D Hilbert automata stepped in lockstep (`bits >= 2`).
#[inline]
pub(crate) fn hilbert2_batch8(xs: &[u64; LANES], ys: &[u64; LANES], bits: u32) -> [u128; LANES] {
    if 2 * bits <= 64 {
        let w = morton2_lanes64(xs, ys);
        let mut state = [0usize; LANES];
        let mut h = [0u64; LANES];
        let mut level = bits;
        // Peel leading digits until the remaining depth is byte-aligned.
        while !level.is_multiple_of(4) {
            level -= 1;
            for lane in 0..LANES {
                let d = ((w[lane] >> (2 * level)) & 3) as usize;
                h[lane] = (h[lane] << 2) | H2_OUT[state[lane] & 3][d] as u64;
                state[lane] = H2_NXT[state[lane] & 3][d] as usize;
            }
        }
        while level > 0 {
            level -= 4;
            for lane in 0..LANES {
                let entry = H2_STEP[state[lane] & 3][((w[lane] >> (2 * level)) & 0xff) as usize];
                h[lane] = (h[lane] << 8) | (entry & 0xff) as u64;
                state[lane] = (entry >> 8) as usize;
            }
        }
        return widen(h);
    }
    let w = morton2_batch8(xs, ys, bits);
    let mut state = [0usize; LANES];
    let mut h = [0u128; LANES];
    let mut level = bits;
    while !level.is_multiple_of(4) {
        level -= 1;
        for lane in 0..LANES {
            let d = ((w[lane] >> (2 * level)) & 3) as usize;
            h[lane] = (h[lane] << 2) | H2_OUT[state[lane] & 3][d] as u128;
            state[lane] = H2_NXT[state[lane] & 3][d] as usize;
        }
    }
    while level > 0 {
        level -= 4;
        for lane in 0..LANES {
            let entry = H2_STEP[state[lane] & 3][((w[lane] >> (2 * level)) & 0xff) as usize];
            h[lane] = (h[lane] << 8) | (entry & 0xff) as u128;
            state[lane] = (entry >> 8) as usize;
        }
    }
    h
}

/// Eight 3-D Hilbert automata stepped in lockstep (`bits >= 2`).
#[inline]
pub(crate) fn hilbert3_batch8(
    xs: &[u64; LANES],
    ys: &[u64; LANES],
    zs: &[u64; LANES],
    bits: u32,
) -> [u128; LANES] {
    if 3 * bits <= 64 {
        let w = morton3_lanes64(xs, ys, zs);
        // The automaton is gather code, not vector code: splitting the
        // eight chains into two four-lane halves keeps each half's
        // (word, state, index) live set inside the integer register file,
        // which measures noticeably faster than one spilling 8-lane loop.
        let lo = hilbert3_automaton4([w[0], w[1], w[2], w[3]], bits);
        let hi = hilbert3_automaton4([w[4], w[5], w[6], w[7]], bits);
        let mut out = [0u128; LANES];
        for lane in 0..4 {
            out[lane] = lo[lane] as u128;
            out[lane + 4] = hi[lane] as u128;
        }
        return out;
    }
    let w = morton3_batch8(xs, ys, zs, bits);
    let mut state = [0usize; LANES];
    let mut h = [0u128; LANES];
    let mut level = bits;
    if !level.is_multiple_of(2) {
        level -= 1;
        for lane in 0..LANES {
            let d = ((w[lane] >> (3 * level)) & 7) as usize;
            h[lane] = H3_OUT[0][d] as u128;
            state[lane] = H3_NXT[0][d] as usize;
        }
    }
    while level > 0 {
        level -= 2;
        for lane in 0..LANES {
            let entry = H3_STEP[state[lane]][((w[lane] >> (3 * level)) & 0x3f) as usize];
            h[lane] = (h[lane] << 6) | (entry & 0x3f) as u128;
            state[lane] = (entry >> 8) as usize;
        }
    }
    h
}

/// Four 3-D Hilbert automata over pre-interleaved `u64` Morton words
/// (`3 * bits <= 64`, `bits >= 2`). States travel as pre-scaled row
/// offsets into [`H3_STEP_FLAT`], so each step is one add and one masked
/// load per lane.
#[inline]
fn hilbert3_automaton4(w: [u64; 4], bits: u32) -> [u64; 4] {
    let mut off = [0usize; 4];
    let mut h = [0u64; 4];
    let mut level = bits;
    if !level.is_multiple_of(2) {
        // The odd leading digit is consumed from the automaton's start
        // state, which is 0 in every lane.
        level -= 1;
        for lane in 0..4 {
            let d = ((w[lane] >> (3 * level)) & 7) as usize;
            h[lane] = H3_OUT[0][d] as u64;
            off[lane] = H3_NXT[0][d] as usize * 64;
        }
    }
    while level > 0 {
        level -= 2;
        for lane in 0..4 {
            let d = ((w[lane] >> (3 * level)) & 0x3f) as usize;
            let entry = H3_STEP_FLAT[(off[lane] + d) & 2047];
            h[lane] = (h[lane] << 6) | (entry & 0x3f) as u64;
            off[lane] = (entry >> 6) as usize;
        }
    }
    h
}

/// Lane-parallel 2-D Gray rank: Morton interleave, then the Gray inverse
/// prefix-XOR per lane.
#[inline]
pub(crate) fn gray2_batch8(xs: &[u64; LANES], ys: &[u64; LANES], bits: u32) -> [u128; LANES] {
    if 2 * bits <= 64 {
        let mut w = morton2_lanes64(xs, ys);
        for lane in w.iter_mut() {
            *lane = gray_inverse64(*lane);
        }
        return widen(w);
    }
    let mut w = morton2_batch8(xs, ys, bits);
    for lane in w.iter_mut() {
        *lane = crate::gray::gray_inverse(*lane);
    }
    w
}

/// Lane-parallel 3-D Gray rank.
#[inline]
pub(crate) fn gray3_batch8(
    xs: &[u64; LANES],
    ys: &[u64; LANES],
    zs: &[u64; LANES],
    bits: u32,
) -> [u128; LANES] {
    if 3 * bits <= 64 {
        let mut w = morton3_lanes64(xs, ys, zs);
        for lane in w.iter_mut() {
            *lane = gray_inverse64(*lane);
        }
        return widen(w);
    }
    let mut w = morton3_batch8(xs, ys, zs, bits);
    for lane in w.iter_mut() {
        *lane = crate::gray::gray_inverse(*lane);
    }
    w
}

/// [`crate::gray::gray_inverse`] restricted to 64 bits: one fewer
/// doubling step, and the whole prefix-XOR ladder runs on vector-friendly
/// `u64` lanes.
#[inline]
fn gray_inverse64(mut g: u64) -> u64 {
    let mut shift = 1u32;
    while shift < 64 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn lanes(seed: u64, side: u64) -> ([u64; LANES], [u64; LANES], [u64; LANES]) {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) % side
        };
        let mut xs = [0u64; LANES];
        let mut ys = [0u64; LANES];
        let mut zs = [0u64; LANES];
        for l in 0..LANES {
            xs[l] = next();
            ys[l] = next();
            zs[l] = next();
        }
        // Exercise the corner in a fixed lane.
        xs[3] = side - 1;
        ys[3] = side - 1;
        zs[3] = side - 1;
        (xs, ys, zs)
    }

    #[test]
    fn batch_kernels_match_scalar_lane_for_lane() {
        // 2..=16 walks the peel shapes; 21/22 straddle the 3-D u64/u128
        // boundary, 32/33 the 2-D one.
        for bits in (2..=16u32).chain([21, 22, 32, 33]) {
            let side = 1u64 << bits.min(40);
            for seed in 0..8u64 {
                let (xs, ys, zs) = lanes(seed.wrapping_mul(0x9e3779b9) + bits as u64, side);
                let m2 = morton2_batch8(&xs, &ys, bits);
                let m3 = morton3_batch8(&xs, &ys, &zs, bits);
                let h2 = hilbert2_batch8(&xs, &ys, bits);
                let h3 = hilbert3_batch8(&xs, &ys, &zs, bits);
                let g2 = gray2_batch8(&xs, &ys, bits);
                let g3 = gray3_batch8(&xs, &ys, &zs, bits);
                for l in 0..LANES {
                    assert_eq!(m2[l], kernels::morton2(xs[l], ys[l], bits));
                    assert_eq!(m3[l], kernels::morton3(xs[l], ys[l], zs[l], bits));
                    assert_eq!(h2[l], kernels::hilbert2(xs[l], ys[l], bits));
                    assert_eq!(h3[l], kernels::hilbert3(xs[l], ys[l], zs[l], bits));
                    assert_eq!(
                        g2[l],
                        crate::gray::gray_inverse(kernels::morton2(xs[l], ys[l], bits))
                    );
                    assert_eq!(
                        g3[l],
                        crate::gray::gray_inverse(kernels::morton3(xs[l], ys[l], zs[l], bits))
                    );
                }
            }
        }
    }

    #[test]
    fn flat_step_table_matches_the_base_rows() {
        for s in 0..24usize {
            for b in 0..64usize {
                let e = kernels::H3_STEP[s][b];
                let flat = H3_STEP_FLAT[s * 64 + b];
                assert_eq!(flat & 0x3f, (e & 0x3f) as u32, "output at [{s}][{b}]");
                assert_eq!(flat >> 6, (e >> 8) as u32 * 64, "offset at [{s}][{b}]");
            }
        }
        for (slot, &pad) in H3_STEP_FLAT.iter().enumerate().skip(24 * 64) {
            assert_eq!(pad, 0, "padding at {slot}");
        }
    }
}
