//! Core trait and constructor plumbing shared by every curve.

use std::fmt;

/// Errors reported by curve constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfcError {
    /// `dims` was zero.
    ZeroDims,
    /// `order` (bits or base-3 digits per dimension) was zero.
    ZeroOrder,
    /// The requested grid has more than `2^128` cells and indices would not
    /// fit in `u128`.
    TooLarge {
        /// Number of dimensions requested.
        dims: u32,
        /// Order (bits per dimension, or base-3 digits for Peano).
        order: u32,
    },
}

impl fmt::Display for SfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfcError::ZeroDims => write!(f, "a space-filling curve needs at least one dimension"),
            SfcError::ZeroOrder => write!(f, "a space-filling curve needs order >= 1"),
            SfcError::TooLarge { dims, order } => write!(
                f,
                "grid with {dims} dims of order {order} exceeds 2^128 cells"
            ),
        }
    }
}

impl std::error::Error for SfcError {}

/// A discrete space-filling curve: a bijection between the cells of a finite
/// `dims()`-dimensional grid and the range `0..cells()`.
///
/// The grid is a hyper-cube with `side()` cells per dimension. Implementors
/// must be deterministic and must assign each cell a *unique* index — the
/// property-based test-suite checks bijectivity exhaustively on small grids.
pub trait SpaceFillingCurve: Send + Sync {
    /// Human-readable curve name (e.g. `"hilbert"`).
    fn name(&self) -> &'static str;

    /// Number of grid dimensions.
    fn dims(&self) -> u32;

    /// Cells per dimension (the side length of the grid hyper-cube).
    fn side(&self) -> u64;

    /// Total number of cells, `side()^dims()`.
    fn cells(&self) -> u128 {
        let mut n: u128 = 1;
        for _ in 0..self.dims() {
            n = n.saturating_mul(self.side() as u128);
        }
        n
    }

    /// Map a grid point to its position along the curve.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != dims()` or any coordinate is `>= side()`.
    /// Scheduling code quantizes coordinates before calling this, so an
    /// out-of-range coordinate is a logic error, not an input error.
    fn index(&self, point: &[u64]) -> u128;
}

/// A curve that also exposes the exact inverse mapping (index → point).
pub trait InvertibleCurve: SpaceFillingCurve {
    /// Recover the grid point at position `index` along the curve.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cells()` or `out.len() != dims()`.
    fn point(&self, index: u128, out: &mut [u64]);
}

/// Validate the common `(dims, order)` constructor arguments for a radix-2
/// grid (side `2^order`). Returns the side length.
pub(crate) fn check_radix2(dims: u32, bits: u32) -> Result<u64, SfcError> {
    if dims == 0 {
        return Err(SfcError::ZeroDims);
    }
    if bits == 0 {
        return Err(SfcError::ZeroOrder);
    }
    // `side` must fit in u64 (bits <= 63) and the index in u128.
    if bits > 63 || (dims as u64) * (bits as u64) > 128 {
        return Err(SfcError::TooLarge { dims, order: bits });
    }
    Ok(1u64 << bits)
}

/// Assert a point is inside the grid; used by every `index()` implementation.
#[inline]
pub(crate) fn check_point(name: &str, dims: u32, side: u64, point: &[u64]) {
    assert_eq!(
        point.len(),
        dims as usize,
        "{name}: point has {} coordinates, curve has {dims} dims",
        point.len()
    );
    for (i, &c) in point.iter().enumerate() {
        assert!(
            c < side,
            "{name}: coordinate {i} = {c} out of range (side = {side})"
        );
    }
}

/// The curve families of the paper's Figure 1, as a runtime-selectable enum.
///
/// `CurveKind` is the configuration surface of the scheduler: the
/// Cascaded-SFC encapsulator is parameterized by one `CurveKind` per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurveKind {
    /// Lexicographic order, dimension 0 most significant.
    Sweep,
    /// Boustrophedon (serpentine) order, last dimension most significant.
    Scan,
    /// Fly-back scan: lexicographic with the *last* dimension most
    /// significant — the shape of the disk C-SCAN policy.
    CScan,
    /// Order by coordinate sum (anti-diagonals).
    Diagonal,
    /// Reflected Gray-code order over bit-interleaved coordinates.
    Gray,
    /// Hilbert curve.
    Hilbert,
    /// Outward spiral around the grid center.
    Spiral,
    /// Peano curve (radix 3: the side length is `3^order`).
    Peano,
    /// Z-order (Morton) curve: plain bit-interleaving.
    ZOrder,
}

impl CurveKind {
    /// All catalogue members, in the paper's Figure-1 order (the extras,
    /// Peano and Z-order, last).
    pub const ALL: [CurveKind; 9] = [
        CurveKind::Sweep,
        CurveKind::CScan,
        CurveKind::Scan,
        CurveKind::Gray,
        CurveKind::Hilbert,
        CurveKind::Spiral,
        CurveKind::Diagonal,
        CurveKind::Peano,
        CurveKind::ZOrder,
    ];

    /// The seven curves used by the paper's scheduling experiments
    /// (Peano is excluded there because the scheduling grids are powers of
    /// two while Peano needs a power-of-three side).
    pub const FIGURE1: [CurveKind; 7] = [
        CurveKind::Sweep,
        CurveKind::CScan,
        CurveKind::Scan,
        CurveKind::Gray,
        CurveKind::Hilbert,
        CurveKind::Spiral,
        CurveKind::Diagonal,
    ];

    /// Stable lowercase name (matches `SpaceFillingCurve::name`).
    pub fn name(self) -> &'static str {
        match self {
            CurveKind::Sweep => "sweep",
            CurveKind::Scan => "scan",
            CurveKind::CScan => "c-scan",
            CurveKind::Diagonal => "diagonal",
            CurveKind::Gray => "gray",
            CurveKind::Hilbert => "hilbert",
            CurveKind::Spiral => "spiral",
            CurveKind::Peano => "peano",
            CurveKind::ZOrder => "z-order",
        }
    }

    /// Parse a curve name as produced by [`CurveKind::name`].
    pub fn parse(s: &str) -> Option<CurveKind> {
        match s.to_ascii_lowercase().as_str() {
            "sweep" => Some(CurveKind::Sweep),
            "scan" => Some(CurveKind::Scan),
            "c-scan" | "cscan" => Some(CurveKind::CScan),
            "diagonal" => Some(CurveKind::Diagonal),
            "gray" => Some(CurveKind::Gray),
            "hilbert" => Some(CurveKind::Hilbert),
            "spiral" => Some(CurveKind::Spiral),
            "peano" => Some(CurveKind::Peano),
            "z-order" | "zorder" | "morton" => Some(CurveKind::ZOrder),
            _ => None,
        }
    }

    /// Construct the curve over `dims` dimensions with the given per-
    /// dimension order. For every curve except [`CurveKind::Peano`] the
    /// grid side is `2^order`; for Peano it is `3^order`.
    pub fn build(self, dims: u32, order: u32) -> Result<Box<dyn SpaceFillingCurve>, SfcError> {
        Ok(match self {
            CurveKind::Sweep => Box::new(crate::Sweep::new(dims, order)?),
            CurveKind::Scan => Box::new(crate::Scan::new(dims, order)?),
            CurveKind::CScan => Box::new(crate::CScan::new(dims, order)?),
            CurveKind::Diagonal => Box::new(crate::Diagonal::new(dims, order)?),
            CurveKind::Gray => Box::new(crate::Gray::new(dims, order)?),
            CurveKind::Hilbert => Box::new(crate::Hilbert::new(dims, order)?),
            CurveKind::Spiral => Box::new(crate::Spiral::new(dims, order)?),
            CurveKind::Peano => Box::new(crate::Peano::new(dims, order)?),
            CurveKind::ZOrder => Box::new(crate::ZOrder::new(dims, order)?),
        })
    }
}

impl fmt::Display for CurveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix2_validation() {
        assert_eq!(check_radix2(2, 4), Ok(16));
        assert_eq!(check_radix2(0, 4), Err(SfcError::ZeroDims));
        assert_eq!(check_radix2(2, 0), Err(SfcError::ZeroOrder));
        assert!(matches!(
            check_radix2(3, 64),
            Err(SfcError::TooLarge { .. })
        ));
        // 63 bits per dimension is the largest representable side.
        assert_eq!(check_radix2(2, 63), Ok(1u64 << 63));
        assert!(matches!(
            check_radix2(2, 64),
            Err(SfcError::TooLarge { .. })
        ));
    }

    #[test]
    fn kind_roundtrip_names() {
        for k in CurveKind::ALL {
            assert_eq!(CurveKind::parse(k.name()), Some(k));
        }
        assert_eq!(CurveKind::parse("nope"), None);
        assert_eq!(CurveKind::parse("CSCAN"), Some(CurveKind::CScan));
    }

    #[test]
    fn build_all_small() {
        for k in CurveKind::ALL {
            let c = k.build(2, 2).unwrap();
            assert_eq!(c.dims(), 2);
            assert!(c.cells() >= 16);
            assert_eq!(c.name(), k.name());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(CurveKind::Hilbert.to_string(), "hilbert");
    }
}
