//! The Z-order (Morton) curve.
//!
//! Coordinates are bit-interleaved into the index directly — no Gray
//! re-coding, no Hilbert rotations. The curve draws the familiar
//! recursive "Z" / "N" shapes: excellent for index construction (the
//! mapping is a couple of shifts per bit) but with long diagonal jumps at
//! block boundaries, which is why the scheduling paper's catalogue favors
//! Gray and Hilbert for locality and the Diagonal for fairness. Included
//! here as the baseline the database-indexing literature always compares
//! against.

use crate::curve::{check_point, check_radix2, InvertibleCurve, SfcError, SpaceFillingCurve};

/// The Z-order (Morton) curve. See module docs.
#[derive(Debug, Clone)]
pub struct ZOrder {
    dims: u32,
    bits: u32,
    side: u64,
}

impl ZOrder {
    /// Build a Z-order curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Ok(ZOrder { dims, bits, side })
    }
}

impl SpaceFillingCurve for ZOrder {
    fn name(&self) -> &'static str {
        "z-order"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("z-order", self.dims, self.side, point);
        match *point {
            // Byte-wise spread tables for the shapes the scheduler builds.
            [x, y] => crate::kernels::morton2(x, y, self.bits),
            [x, y, z] => crate::kernels::morton3(x, y, z, self.bits),
            _ => {
                let mut w: u128 = 0;
                for level in (0..self.bits).rev() {
                    for &c in point {
                        w = (w << 1) | ((c >> level) & 1) as u128;
                    }
                }
                w
            }
        }
    }
}

impl InvertibleCurve for ZOrder {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "z-order: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        out.iter_mut().for_each(|c| *c = 0);
        let mut pos = self.bits * self.dims;
        for level in (0..self.bits).rev() {
            for c in out.iter_mut() {
                pos -= 1;
                *c |= (((index >> pos) & 1) as u64) << level;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_shape_2d() {
        // The canonical 2x2 Z: (0,0), (0,1), (1,0), (1,1) with dim 0 as
        // the most significant bit of each level.
        let z = ZOrder::new(2, 1).unwrap();
        assert_eq!(z.index(&[0, 0]), 0);
        assert_eq!(z.index(&[0, 1]), 1);
        assert_eq!(z.index(&[1, 0]), 2);
        assert_eq!(z.index(&[1, 1]), 3);
    }

    #[test]
    fn roundtrip_3d() {
        let z = ZOrder::new(3, 3).unwrap();
        let mut p = vec![0u64; 3];
        for i in 0..z.cells() {
            z.point(i, &mut p);
            assert_eq!(z.index(&p), i);
        }
    }

    #[test]
    fn bijective_4d() {
        let z = ZOrder::new(4, 2).unwrap();
        assert!(crate::quality::is_bijective(&z).unwrap());
    }

    #[test]
    fn has_the_famous_jumps() {
        // Z-order is not continuous: block boundaries jump diagonally.
        let z = ZOrder::new(2, 3).unwrap();
        let rep = crate::quality::continuity(&z).unwrap();
        assert!(!rep.is_continuous());
        assert!(rep.max_jump >= 4, "max jump {}", rep.max_jump);
    }

    #[test]
    fn relates_to_gray_curve() {
        // Gray = inverse-gray-code of the Morton word: same interleave,
        // different rank.
        let z = ZOrder::new(2, 2).unwrap();
        let g = crate::Gray::new(2, 2).unwrap();
        for x in 0..4u64 {
            for y in 0..4 {
                let zi = z.index(&[x, y]);
                let gi = g.index(&[x, y]);
                // gray(gi) == zi by construction.
                assert_eq!(crate::gray::gray(gi), zi, "at ({x},{y})");
            }
        }
    }
}
