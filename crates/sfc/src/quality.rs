//! Curve-quality analysis.
//!
//! One of the paper's arguments for SFC-based scheduling is that the
//! quality of the generated schedules can be *analyzed* instead of
//! guessed: the curve's geometric properties (continuity, jump sizes,
//! dimension bias) translate directly into scheduling properties
//! (seek behaviour, priority-inversion bias). This module provides those
//! measurements for any [`SpaceFillingCurve`], by exhaustive enumeration of
//! small grids.

use crate::curve::SpaceFillingCurve;

/// Hard cap on the number of cells `walk`-based analyses will enumerate.
pub const MAX_ANALYZED_CELLS: u128 = 1 << 22;

/// Error returned when a grid is too large to analyze exhaustively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridTooLarge {
    /// Number of cells in the offending grid.
    pub cells: u128,
}

impl std::fmt::Display for GridTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grid with {} cells exceeds the exhaustive-analysis cap of {}",
            self.cells, MAX_ANALYZED_CELLS
        )
    }
}

impl std::error::Error for GridTooLarge {}

/// Walk every cell of the curve's grid in curve order.
///
/// Works for *any* curve (no inverse needed): enumerates all grid points,
/// computes their indices, and sorts. `O(N log N)` in the number of cells.
pub fn walk(curve: &dyn SpaceFillingCurve) -> Result<Vec<Vec<u64>>, GridTooLarge> {
    let cells = curve.cells();
    if cells > MAX_ANALYZED_CELLS {
        return Err(GridTooLarge { cells });
    }
    let d = curve.dims() as usize;
    let side = curve.side();
    // Tag each cell with its odometer ordinal (last dimension fastest) and
    // materialize points only after the sort: the pre-sort pass stays
    // allocation-free instead of cloning every point.
    let mut order: Vec<(u128, u64)> = Vec::with_capacity(cells as usize);
    let mut p = vec![0u64; d];
    let mut ordinal = 0u64;
    loop {
        order.push((curve.index(&p), ordinal));
        ordinal += 1;
        // Odometer increment.
        let mut j = d;
        loop {
            if j == 0 {
                return finish(order, cells, d, side);
            }
            j -= 1;
            p[j] += 1;
            if p[j] < side {
                break;
            }
            p[j] = 0;
        }
    }

    fn finish(
        mut order: Vec<(u128, u64)>,
        cells: u128,
        d: usize,
        side: u64,
    ) -> Result<Vec<Vec<u64>>, GridTooLarge> {
        order.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(order.len() as u128, cells);
        Ok(order
            .into_iter()
            .map(|(_, ordinal)| {
                let mut p = vec![0u64; d];
                let mut o = ordinal;
                for c in p.iter_mut().rev() {
                    *c = o % side;
                    o /= side;
                }
                p
            })
            .collect())
    }
}

/// Check that the curve assigns every cell of its grid a distinct index in
/// `0..cells()` — i.e. that it really is a space-filling bijection.
pub fn is_bijective(curve: &dyn SpaceFillingCurve) -> Result<bool, GridTooLarge> {
    let cells = curve.cells();
    if cells > MAX_ANALYZED_CELLS {
        return Err(GridTooLarge { cells });
    }
    let d = curve.dims() as usize;
    let side = curve.side();
    let mut seen = vec![false; cells as usize];
    let mut p = vec![0u64; d];
    loop {
        let i = curve.index(&p);
        if i >= cells || seen[i as usize] {
            return Ok(false);
        }
        seen[i as usize] = true;
        let mut j = d;
        loop {
            if j == 0 {
                return Ok(true);
            }
            j -= 1;
            p[j] += 1;
            if p[j] < side {
                break;
            }
            p[j] = 0;
        }
    }
}

/// Geometric statistics of one full traversal of the curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuityReport {
    /// Number of steps taken (`cells - 1`).
    pub steps: u128,
    /// Steps that move to a Manhattan-distance-1 grid neighbour.
    pub unit_steps: u128,
    /// Largest Manhattan jump along the traversal.
    pub max_jump: u64,
    /// Mean Manhattan jump.
    pub mean_jump: f64,
}

impl ContinuityReport {
    /// A curve is *continuous* when every step is a unit step.
    pub fn is_continuous(&self) -> bool {
        self.steps == self.unit_steps
    }
}

/// Measure the traversal continuity of a curve (exhaustive).
pub fn continuity(curve: &dyn SpaceFillingCurve) -> Result<ContinuityReport, GridTooLarge> {
    let cells = walk(curve)?;
    let mut unit_steps: u128 = 0;
    let mut max_jump: u64 = 0;
    let mut total_jump: u128 = 0;
    for w in cells.windows(2) {
        let d: u64 = w[0].iter().zip(&w[1]).map(|(&a, &b)| a.abs_diff(b)).sum();
        if d == 1 {
            unit_steps += 1;
        }
        max_jump = max_jump.max(d);
        total_jump += d as u128;
    }
    let steps = (cells.len() - 1) as u128;
    Ok(ContinuityReport {
        steps,
        unit_steps,
        max_jump,
        mean_jump: if steps == 0 {
            0.0
        } else {
            total_jump as f64 / steps as f64
        },
    })
}

/// Per-dimension order bias of a curve.
///
/// For each dimension `k`, counts over all *ordered pairs* of cells `(a,
/// b)` with `index(a) < index(b)` how often `a` beats `b` in dimension `k`
/// (`a_k < b_k`) versus loses (`a_k > b_k`). A curve that never loses in a
/// dimension schedules that dimension with zero priority inversion — the
/// property the paper exploits when one QoS parameter must dominate.
///
/// Sampling keeps this tractable: `pairs` random pairs are drawn from a
/// deterministic LCG.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasReport {
    /// For each dimension: fraction of sampled ordered pairs where the
    /// earlier-on-curve cell has the *larger* coordinate ("inversions").
    pub inversion_rate: Vec<f64>,
}

/// Estimate per-dimension inversion rates by sampling `pairs` cell pairs.
pub fn dimension_bias(curve: &dyn SpaceFillingCurve, pairs: u32) -> BiasReport {
    let d = curve.dims() as usize;
    let side = curve.side();
    let mut inv = vec![0u64; d];
    let mut tot = vec![0u64; d];
    // SplitMix64 for deterministic sampling without external dependencies.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut a = vec![0u64; d];
    let mut b = vec![0u64; d];
    for _ in 0..pairs {
        for j in 0..d {
            a[j] = next() % side;
            b[j] = next() % side;
        }
        let (first, second) = if curve.index(&a) <= curve.index(&b) {
            (&a, &b)
        } else {
            (&b, &a)
        };
        for j in 0..d {
            if first[j] != second[j] {
                tot[j] += 1;
                if first[j] > second[j] {
                    inv[j] += 1;
                }
            }
        }
    }
    BiasReport {
        inversion_rate: inv
            .iter()
            .zip(&tot)
            .map(|(&i, &t)| if t == 0 { 0.0 } else { i as f64 / t as f64 })
            .collect(),
    }
}

/// Per-dimension irregularity (Mokbel & Aref, CIKM 2001): the number of
/// curve steps that move *backward* in each dimension.
///
/// A curve with zero irregularity in dimension `k` sweeps that dimension
/// monotonically; the companion paper shows irregularity predicts how a
/// curve behaves as a scheduler — a dimension with low irregularity is
/// "respected" (few priority inversions), one with high irregularity is
/// traded away for locality.
pub fn irregularity(curve: &dyn SpaceFillingCurve) -> Result<Vec<u64>, GridTooLarge> {
    let cells = walk(curve)?;
    let d = curve.dims() as usize;
    let mut backward = vec![0u64; d];
    for w in cells.windows(2) {
        for k in 0..d {
            if w[1][k] < w[0][k] {
                backward[k] += 1;
            }
        }
    }
    Ok(backward)
}

/// Clustering quality: the mean number of contiguous curve runs ("curve
/// segments", Moon et al.) needed to cover an axis-aligned query box.
///
/// One run means the box's cells are consecutive on the curve — ideal for
/// a scheduler, because requests that are close in QoS space are then
/// close in service order. The authors' companion papers (CIKM 2001,
/// GeoInformatica 2003) analyze exactly this measure; Hilbert is the
/// known champion.
///
/// `box_side` is the query box edge length; boxes are slid over every
/// position (exhaustive), so keep the grid small.
pub fn mean_clusters(curve: &dyn SpaceFillingCurve, box_side: u64) -> Result<f64, GridTooLarge> {
    let cells = curve.cells();
    if cells > MAX_ANALYZED_CELLS {
        return Err(GridTooLarge { cells });
    }
    let d = curve.dims() as usize;
    let side = curve.side();
    let box_side = box_side.min(side);
    let positions = side - box_side + 1;

    // Odometer increment; returns false on wrap-around (enumeration done).
    fn advance(digits: &mut [u64], limit: u64) -> bool {
        for d in digits.iter_mut().rev() {
            *d += 1;
            if *d < limit {
                return true;
            }
            *d = 0;
        }
        false
    }

    let mut total_clusters: u64 = 0;
    let mut boxes: u64 = 0;
    let mut origin = vec![0u64; d];
    let mut indices = Vec::with_capacity((box_side as usize).pow(d as u32));
    let mut p = vec![0u64; d];
    loop {
        // Collect the curve indices of every cell in the box at `origin`
        // and count the contiguous runs among them.
        indices.clear();
        let mut off = vec![0u64; d];
        loop {
            for j in 0..d {
                p[j] = origin[j] + off[j];
            }
            indices.push(curve.index(&p));
            if !advance(&mut off, box_side) {
                break;
            }
        }
        indices.sort_unstable();
        let runs = 1 + indices.windows(2).filter(|w| w[1] != w[0] + 1).count() as u64;
        total_clusters += runs;
        boxes += 1;
        if !advance(&mut origin, positions) {
            return Ok(total_clusters as f64 / boxes as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CurveKind;

    #[test]
    fn all_catalogue_curves_are_bijective() {
        for k in CurveKind::ALL {
            for dims in [1u32, 2, 3] {
                let c = k.build(dims, 2).unwrap();
                assert!(
                    is_bijective(c.as_ref()).unwrap(),
                    "{k} dims={dims} is not bijective"
                );
            }
        }
    }

    #[test]
    fn continuous_curves() {
        for k in [CurveKind::Scan, CurveKind::Hilbert, CurveKind::Peano] {
            let c = k.build(2, 2).unwrap();
            let rep = continuity(c.as_ref()).unwrap();
            assert!(rep.is_continuous(), "{k} should be continuous: {rep:?}");
        }
        let spiral = CurveKind::Spiral.build(2, 3).unwrap();
        assert!(continuity(spiral.as_ref()).unwrap().is_continuous());
    }

    #[test]
    fn discontinuous_curves_have_jumps() {
        for k in [CurveKind::Sweep, CurveKind::CScan, CurveKind::Gray] {
            let c = k.build(2, 3).unwrap();
            let rep = continuity(c.as_ref()).unwrap();
            assert!(!rep.is_continuous(), "{k} is unexpectedly continuous");
            assert!(rep.max_jump > 1);
        }
    }

    #[test]
    fn sweep_never_inverts_dimension_zero() {
        let c = CurveKind::Sweep.build(3, 3).unwrap();
        let bias = dimension_bias(c.as_ref(), 2000);
        assert_eq!(bias.inversion_rate[0], 0.0);
        assert!(bias.inversion_rate[1] > 0.1);
    }

    #[test]
    fn cscan_never_inverts_last_dimension() {
        let c = CurveKind::CScan.build(3, 3).unwrap();
        let bias = dimension_bias(c.as_ref(), 2000);
        assert_eq!(bias.inversion_rate[2], 0.0);
        assert!(bias.inversion_rate[0] > 0.1);
    }

    #[test]
    fn diagonal_is_symmetric() {
        let c = CurveKind::Diagonal.build(3, 3).unwrap();
        let bias = dimension_bias(c.as_ref(), 4000);
        let mean: f64 = bias.inversion_rate.iter().sum::<f64>() / 3.0;
        for r in &bias.inversion_rate {
            assert!(
                (r - mean).abs() < 0.05,
                "diagonal bias uneven: {:?}",
                bias.inversion_rate
            );
        }
    }

    #[test]
    fn too_large_grid_is_rejected() {
        let c = CurveKind::Hilbert.build(2, 20).unwrap();
        assert!(walk(c.as_ref()).is_err());
        assert!(is_bijective(c.as_ref()).is_err());
        assert!(mean_clusters(c.as_ref(), 4).is_err());
    }

    #[test]
    fn sweep_has_zero_irregularity_in_its_major_dimension() {
        let sweep = CurveKind::Sweep.build(2, 3).unwrap();
        let irr = irregularity(sweep.as_ref()).unwrap();
        // Dimension 0 is the major axis: never a backward step.
        assert_eq!(irr[0], 0);
        assert!(irr[1] > 0);
        let cscan = CurveKind::CScan.build(2, 3).unwrap();
        let irr = irregularity(cscan.as_ref()).unwrap();
        assert!(irr[0] > 0);
        assert_eq!(irr[1], 0);
    }

    #[test]
    fn diagonal_is_irregular_in_every_dimension() {
        // Step-level irregularity is *not* symmetric for the Diagonal (the
        // within-anti-diagonal tie-break is lexicographic) — its fairness
        // shows up in the pairwise bias, not the step statistics. What
        // must hold: no dimension is swept monotonically.
        let c = CurveKind::Diagonal.build(3, 2).unwrap();
        let irr = irregularity(c.as_ref()).unwrap();
        assert!(irr.iter().all(|&x| x > 0), "{irr:?}");
        // ...while the pairwise bias stays balanced (checked in
        // `diagonal_is_symmetric` above).
    }

    #[test]
    fn recursive_curves_are_irregular_everywhere() {
        for k in [CurveKind::Gray, CurveKind::Hilbert, CurveKind::ZOrder] {
            let c = k.build(2, 3).unwrap();
            let irr = irregularity(c.as_ref()).unwrap();
            assert!(irr.iter().all(|&x| x > 0), "{k}: {irr:?}");
        }
    }

    #[test]
    fn hilbert_clusters_better_than_sweep() {
        // The classic clustering result: Hilbert needs fewer contiguous
        // curve runs per query box than row-major orders.
        let hilbert = CurveKind::Hilbert.build(2, 4).unwrap();
        let sweep = CurveKind::Sweep.build(2, 4).unwrap();
        let h = mean_clusters(hilbert.as_ref(), 4).unwrap();
        let s = mean_clusters(sweep.as_ref(), 4).unwrap();
        assert!(h < s, "hilbert {h:.2} vs sweep {s:.2}");
    }

    #[test]
    fn full_grid_box_is_one_cluster() {
        // A box covering the whole grid is a single run for any
        // bijective curve.
        for k in CurveKind::FIGURE1 {
            let c = k.build(2, 2).unwrap();
            assert_eq!(mean_clusters(c.as_ref(), 4).unwrap(), 1.0, "{k}");
        }
    }

    #[test]
    fn unit_boxes_are_single_clusters() {
        let c = CurveKind::Gray.build(3, 2).unwrap();
        assert_eq!(mean_clusters(c.as_ref(), 1).unwrap(), 1.0);
    }
}
