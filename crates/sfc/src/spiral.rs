//! The Spiral curve: outward rings around the grid center.
//!
//! Cells are ordered by their Chebyshev (L∞) ring around the grid center,
//! innermost ring first. In two dimensions each ring is walked along its
//! perimeter and consecutive rings join at adjacent cells, so the curve is
//! the classic continuous rectangular spiral. In three or more dimensions
//! the cells of a ring (a hollow hyper-box shell) are ordered
//! lexicographically — a documented approximation, since no continuous
//! perimeter walk exists for a `d ≥ 3` shell ordering that also nests
//! rings.
//!
//! Scheduling character (paper §5.1): the spiral favors mid-range values in
//! every dimension, giving it middling fairness between the lexicographic
//! curves and the Diagonal.

use crate::curve::{check_point, check_radix2, InvertibleCurve, SfcError, SpaceFillingCurve};

/// The Spiral curve. See module docs.
#[derive(Debug, Clone)]
pub struct Spiral {
    dims: u32,
    side: u64,
    /// Central cell range: ring 0 is `[c_lo, c_hi]^d` (one cell per dim for
    /// odd sides, a 2^d block for even sides).
    c_lo: u64,
    c_hi: u64,
}

impl Spiral {
    /// Build a Spiral curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Self::with_side(dims, side)
    }

    /// Build over an arbitrary side length (odd sides get a single-cell
    /// core; even sides a `2^d` core block).
    pub fn with_side(dims: u32, side: u64) -> Result<Self, SfcError> {
        if dims == 0 {
            return Err(SfcError::ZeroDims);
        }
        if side == 0 {
            return Err(SfcError::ZeroOrder);
        }
        let mut cells: u128 = 1;
        for _ in 0..dims {
            cells = cells
                .checked_mul(side as u128)
                .ok_or(SfcError::TooLarge { dims, order: 0 })?;
        }
        let c_hi = side / 2;
        let c_lo = if side.is_multiple_of(2) {
            c_hi - 1
        } else {
            c_hi
        };
        Ok(Spiral {
            dims,
            side,
            c_lo,
            c_hi,
        })
    }

    /// L∞ ring of a point: 0 inside the core block, growing outward.
    fn ring(&self, point: &[u64]) -> u64 {
        point
            .iter()
            .map(|&c| {
                if c < self.c_lo {
                    self.c_lo - c
                } else {
                    c.saturating_sub(self.c_hi)
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Side length of the box enclosing rings `0..=r`.
    fn box_side(&self, r: u64) -> u64 {
        (self.c_hi - self.c_lo + 1) + 2 * r
    }

    /// Number of cells in rings `0..=r` (clamped to the grid — rings are
    /// never clipped because the core is centered and the grid is a cube).
    fn cells_within(&self, r: u64) -> u128 {
        pow_u128(self.box_side(r) as u128, self.dims)
    }

    /// Maximum ring index on this grid.
    fn max_ring(&self) -> u64 {
        self.c_lo
    }

    /// Rank of `point` inside ring `r` (2-D: perimeter walk; d≥3: lex).
    fn rank_in_ring(&self, point: &[u64], r: u64) -> u128 {
        let lo = self.c_lo - r;
        let hi = self.c_hi + r;
        if self.dims == 2 {
            return self.rank_perimeter_2d(point[0], point[1], r, lo, hi);
        }
        // Lexicographic rank among shell cells (at least one coordinate on
        // the boundary).
        let w = (hi - lo + 1) as u128;
        if r == 0 {
            // Core block: plain lexicographic rank inside the box.
            let mut rank: u128 = 0;
            for &c in point {
                rank = rank * w + (c - lo) as u128;
            }
            return rank;
        }
        let inner = w - 2; // width of the strictly-interior box (w >= 2 for r >= 1)
        let d = self.dims as usize;
        let mut rank: u128 = 0;
        let mut touched = false;
        for (j, &pj) in point.iter().enumerate() {
            let m = (d - j - 1) as u32;
            let full = pow_u128(w, m);
            let shell = full - pow_u128(inner, m);
            // Values v in [lo, pj): `lo` itself is a boundary value.
            let total_before = pj - lo;
            let boundary_before = u64::from(pj > lo); // only `lo`; `hi` can't precede pj
            let interior_before = total_before - boundary_before;
            rank += boundary_before as u128 * full;
            rank += interior_before as u128 * if touched { full } else { shell };
            touched |= pj == lo || pj == hi;
        }
        rank
    }

    /// Continuous perimeter rank for 2-D rings.
    ///
    /// Ring 0 (even side) walks its 4-cell core `(lo,lo) → (lo,hi) →
    /// (hi,hi) → (hi,lo)`; each ring `r ≥ 1` starts at `(hi, lo+1)`, walks
    /// up the right edge, left along the top, down the left edge and right
    /// along the bottom, ending at `(hi, lo)` — exactly one grid step from
    /// the next ring's start `(hi+1, lo)`.
    fn rank_perimeter_2d(&self, x: u64, y: u64, r: u64, lo: u64, hi: u64) -> u128 {
        if r == 0 {
            // Core: single cell (odd side) or the 4-cell loop (even side).
            if self.c_lo == self.c_hi {
                return 0;
            }
            return match (x == lo, y == lo) {
                (true, true) => 0,
                (true, false) => 1,
                (false, false) => 2,
                (false, true) => 3,
            };
        }
        let w = hi - lo + 1;
        let edge = (w - 1) as u128;
        if x == hi && y > lo {
            // Right edge, upward.
            (y - lo - 1) as u128
        } else if y == hi && x < hi {
            // Top edge, leftward.
            edge + (hi - 1 - x) as u128
        } else if x == lo && y < hi {
            // Left edge, downward.
            2 * edge + (hi - 1 - y) as u128
        } else {
            // Bottom edge, rightward (ends at (hi, lo)).
            3 * edge + (x - lo - 1) as u128
        }
    }
}

fn pow_u128(base: u128, exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc *= base;
    }
    acc
}

impl SpaceFillingCurve for Spiral {
    fn name(&self) -> &'static str {
        "spiral"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("spiral", self.dims, self.side, point);
        if self.dims == 1 {
            // 1-D spiral: alternate outward from the center.
            let r = self.ring(point);
            if r == 0 {
                return (point[0] - self.c_lo) as u128;
            }
            let base = self.cells_within(r - 1);
            // Lower side first, then upper.
            return if point[0] < self.c_lo { base } else { base + 1 };
        }
        let r = self.ring(point);
        let before = if r == 0 { 0 } else { self.cells_within(r - 1) };
        before + self.rank_in_ring(point, r)
    }
}

impl InvertibleCurve for Spiral {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "spiral: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        // Find the ring by binary search over cumulative counts.
        let (mut lo_r, mut hi_r) = (0u64, self.max_ring());
        while lo_r < hi_r {
            let mid = lo_r + (hi_r - lo_r) / 2;
            if self.cells_within(mid) > index {
                hi_r = mid;
            } else {
                lo_r = mid + 1;
            }
        }
        let r = lo_r;
        let before = if r == 0 { 0 } else { self.cells_within(r - 1) };
        let mut rank = index - before;
        let lo = self.c_lo - r;
        let hi = self.c_hi + r;

        if self.dims == 1 {
            out[0] = if r == 0 {
                self.c_lo + rank as u64
            } else if rank == 0 {
                lo
            } else {
                hi
            };
            return;
        }

        if self.dims == 2 {
            // Invert the perimeter walk.
            if r == 0 {
                if self.c_lo == self.c_hi {
                    out[0] = self.c_lo;
                    out[1] = self.c_lo;
                } else {
                    let (x, y) = match rank {
                        0 => (lo, lo),
                        1 => (lo, hi),
                        2 => (hi, hi),
                        _ => (hi, lo),
                    };
                    out[0] = x;
                    out[1] = y;
                }
                return;
            }
            let w = hi - lo + 1;
            let edge = (w - 1) as u128;
            let (x, y) = if rank < edge {
                (hi, lo + 1 + rank as u64)
            } else if rank < 2 * edge {
                (hi - 1 - (rank - edge) as u64, hi)
            } else if rank < 3 * edge {
                (lo, hi - 1 - (rank - 2 * edge) as u64)
            } else {
                (lo + 1 + (rank - 3 * edge) as u64, lo)
            };
            out[0] = x;
            out[1] = y;
            return;
        }

        // d >= 3: invert the lexicographic shell rank dimension by
        // dimension, scanning candidate values.
        let d = self.dims as usize;
        let w = (hi - lo + 1) as u128;
        let inner = w.saturating_sub(2);
        let mut touched = r == 0; // ring 0 is a full box, treat as touched
        for (j, out_j) in out.iter_mut().enumerate() {
            let m = (d - j - 1) as u32;
            let full = pow_u128(w, m);
            let shell = full - if r == 0 { full } else { pow_u128(inner, m) };
            let mut chosen = None;
            for v in lo..=hi {
                let is_boundary = r > 0 && (v == lo || v == hi);
                let block = if touched || is_boundary || r == 0 {
                    full
                } else {
                    shell
                };
                if rank < block {
                    chosen = Some((v, is_boundary));
                    break;
                }
                rank -= block;
            }
            let (v, is_boundary) = chosen.expect("spiral unrank overran the ring");
            *out_j = v;
            touched |= is_boundary;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_partition_even_grid() {
        let c = Spiral::new(2, 2).unwrap(); // 4x4
        assert_eq!(c.ring(&[1, 1]), 0);
        assert_eq!(c.ring(&[2, 2]), 0);
        assert_eq!(c.ring(&[0, 1]), 1);
        assert_eq!(c.ring(&[3, 3]), 1);
        assert_eq!(c.cells_within(0), 4);
        assert_eq!(c.cells_within(1), 16);
    }

    #[test]
    fn two_d_walk_is_continuous() {
        for bits in 1..=4u32 {
            let c = Spiral::new(2, bits).unwrap();
            let mut prev = vec![0u64; 2];
            let mut cur = vec![0u64; 2];
            c.point(0, &mut prev);
            for i in 1..c.cells() {
                c.point(i, &mut cur);
                let d: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
                assert_eq!(d, 1, "bits={bits} step {i}: {prev:?} -> {cur:?}");
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    }

    #[test]
    fn odd_side_center_first() {
        let c = Spiral::with_side(2, 5).unwrap();
        assert_eq!(c.index(&[2, 2]), 0);
        let mut seen = [false; 25];
        for x in 0..5 {
            for y in 0..5 {
                let i = c.index(&[x, y]) as usize;
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bijective_and_invertible_3d() {
        let c = Spiral::new(3, 2).unwrap();
        let mut seen = [false; 64];
        let mut p = vec![0u64; 3];
        for x in 0..4u64 {
            for y in 0..4 {
                for z in 0..4 {
                    let pt = [x, y, z];
                    let i = c.index(&pt);
                    assert!(!seen[i as usize], "duplicate at {pt:?}");
                    seen[i as usize] = true;
                    c.point(i, &mut p);
                    assert_eq!(p, pt);
                }
            }
        }
    }

    #[test]
    fn ring_monotone() {
        // Inner rings always precede outer rings.
        let c = Spiral::new(3, 3).unwrap();
        assert!(c.index(&[4, 4, 4]) < c.index(&[0, 4, 4]));
        assert!(c.index(&[3, 4, 3]) < c.index(&[7, 7, 7]));
    }

    #[test]
    fn one_dimensional_alternates() {
        let c = Spiral::with_side(1, 6).unwrap();
        // Core = {2,3}, then 1,4, then 0,5.
        assert_eq!(c.index(&[2]), 0);
        assert_eq!(c.index(&[3]), 1);
        assert_eq!(c.index(&[1]), 2);
        assert_eq!(c.index(&[4]), 3);
        assert_eq!(c.index(&[0]), 4);
        assert_eq!(c.index(&[5]), 5);
        let mut p = vec![0u64; 1];
        for i in 0..6 {
            c.point(i as u128, &mut p);
            assert_eq!(c.index(&p), i as u128);
        }
    }
}
