//! The Hilbert curve in `n` dimensions.
//!
//! Implementation of the compact Butz/Lawder algorithm in the "transpose"
//! formulation published by John Skilling ("Programming the Hilbert curve",
//! AIP Conf. Proc. 707, 2004). Coordinates are converted to/from the
//! *transpose* of the Hilbert index (the index's bits distributed across
//! `n` words), which bit-interleaves into the `u128` index.
//!
//! The Hilbert curve is the locality champion of the catalogue: every step
//! moves to a grid neighbour (unit-step continuity), verified exhaustively
//! by the tests below.

use crate::curve::{check_point, check_radix2, InvertibleCurve, SfcError, SpaceFillingCurve};

/// The Hilbert curve. See module docs.
#[derive(Debug, Clone)]
pub struct Hilbert {
    dims: u32,
    bits: u32,
    side: u64,
}

impl Hilbert {
    /// Build a Hilbert curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Ok(Hilbert { dims, bits, side })
    }

    /// Convert coordinate axes (in place) to the Hilbert transpose.
    fn axes_to_transpose(&self, x: &mut [u64]) {
        let n = x.len();
        let m = 1u64 << (self.bits - 1);

        // Inverse undo of the excess Gray-code work.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }

        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0;
        let mut q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Convert the Hilbert transpose (in place) back to coordinate axes.
    fn transpose_to_axes(&self, x: &mut [u64]) {
        let n = x.len();
        let m = 1u64 << (self.bits - 1);

        // Gray decode by H ^ (H/2).
        let mut t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;

        // Undo excess work.
        let mut q = 2u64;
        while q != m << 1 {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Bit-interleave the transpose into the scalar index. The transpose
    /// convention is: bit `b` of the index (counting from the most
    /// significant of `dims*bits`) is bit `bits-1-b/dims` of `x[b % dims]`.
    fn transpose_to_index(&self, x: &[u64]) -> u128 {
        let mut h: u128 = 0;
        for level in (0..self.bits).rev() {
            for &xi in x {
                h = (h << 1) | ((xi >> level) & 1) as u128;
            }
        }
        h
    }

    /// The dimension-generic Skilling transform. With `bits >= 2`,
    /// `dims * bits <= 128` bounds `dims` by 64, so the working copy lives
    /// in a fixed stack buffer instead of a per-call `Vec`.
    fn index_generic(&self, point: &[u64]) -> u128 {
        let mut buf = [0u64; 64];
        let x = &mut buf[..point.len()];
        x.copy_from_slice(point);
        self.axes_to_transpose(x);
        self.transpose_to_index(x)
    }

    fn index_to_transpose(&self, h: u128, x: &mut [u64]) {
        x.iter_mut().for_each(|xi| *xi = 0);
        let mut pos = self.bits * self.dims;
        for level in (0..self.bits).rev() {
            for xi in x.iter_mut() {
                pos -= 1;
                *xi |= (((h >> pos) & 1) as u64) << level;
            }
        }
    }
}

impl SpaceFillingCurve for Hilbert {
    fn name(&self) -> &'static str {
        "hilbert"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("hilbert", self.dims, self.side, point);
        if self.dims == 1 {
            return point[0] as u128;
        }
        if self.bits == 1 {
            // Degenerate single-level case: the transpose machinery needs
            // bits >= 2; order-1 Hilbert is the Gray-code walk.
            return crate::gray::gray_inverse(self.transpose_to_index(point));
        }
        match *point {
            [x, y] => crate::kernels::hilbert2(x, y, self.bits),
            [x, y, z] => crate::kernels::hilbert3(x, y, z, self.bits),
            _ => self.index_generic(point),
        }
    }
}

impl InvertibleCurve for Hilbert {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "hilbert: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        if self.dims == 1 {
            out[0] = index as u64;
            return;
        }
        if self.bits == 1 {
            self.index_to_transpose(crate::gray::gray(index), out);
            return;
        }
        self.index_to_transpose(index, out);
        self.transpose_to_axes(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(curve: &Hilbert) -> Vec<Vec<u64>> {
        // Decode straight into pre-sized rows: no per-cell clone.
        let mut pts = vec![vec![0u64; curve.dims() as usize]; curve.cells() as usize];
        for (i, p) in pts.iter_mut().enumerate() {
            curve.point(i as u128, p);
        }
        pts
    }

    #[test]
    fn hilbert_2d_order2_reference() {
        // The canonical 4x4 Hilbert curve (one of its 8 symmetries); verify
        // unit steps and the known property that start and end lie on
        // opposite corners of one axis.
        let c = Hilbert::new(2, 2).unwrap();
        let pts = walk(&c);
        assert_eq!(pts.len(), 16);
        assert_eq!(pts[0], vec![0, 0]);
        for w in pts.windows(2) {
            let d: u64 = w[0].iter().zip(&w[1]).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert_eq!(d, 1, "non-unit step {:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn unit_steps_in_higher_dims() {
        for (dims, bits) in [(2u32, 4u32), (3, 3), (4, 2), (5, 2)] {
            let c = Hilbert::new(dims, bits).unwrap();
            let mut prev = vec![0u64; dims as usize];
            let mut cur = vec![0u64; dims as usize];
            c.point(0, &mut prev);
            for i in 1..c.cells() {
                c.point(i, &mut cur);
                let d: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
                assert_eq!(d, 1, "dims={dims} bits={bits} step {i}");
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    }

    #[test]
    fn roundtrip() {
        for (dims, bits) in [(2u32, 5u32), (3, 3), (6, 2), (12, 1)] {
            let c = Hilbert::new(dims, bits).unwrap();
            let mut p = vec![0u64; dims as usize];
            // Exhaustive for small grids, strided for larger ones.
            let cells = c.cells();
            let stride = (cells / 4096).max(1);
            let mut i = 0u128;
            while i < cells {
                c.point(i, &mut p);
                assert_eq!(c.index(&p), i, "dims={dims} bits={bits} i={i}");
                i += stride;
            }
        }
    }

    #[test]
    fn lut_kernels_match_the_generic_skilling_path() {
        // Exhaustive at small orders, sampled at deep ones; this pins the
        // 2-D/3-D state-table kernels to the dimension-generic transform
        // they were derived from.
        for bits in 2..=6u32 {
            let c = Hilbert::new(2, bits).unwrap();
            for x in 0..c.side() {
                for y in 0..c.side() {
                    assert_eq!(c.index(&[x, y]), c.index_generic(&[x, y]), "2d bits={bits}");
                }
            }
        }
        for bits in 2..=3u32 {
            let c = Hilbert::new(3, bits).unwrap();
            for x in 0..c.side() {
                for y in 0..c.side() {
                    for z in 0..c.side() {
                        let p = [x, y, z];
                        assert_eq!(c.index(&p), c.index_generic(&p), "3d bits={bits}");
                    }
                }
            }
        }
        // Deep orders, pseudo-random sample (SplitMix64).
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for bits in [7u32, 10, 16, 31, 63] {
            let c = Hilbert::new(2, bits).unwrap();
            let mask = c.side() - 1;
            for _ in 0..200 {
                let p = [next() & mask, next() & mask];
                assert_eq!(c.index(&p), c.index_generic(&p), "2d deep bits={bits}");
            }
        }
        for bits in [5u32, 10, 21, 42] {
            let c = Hilbert::new(3, bits).unwrap();
            let mask = c.side() - 1;
            for _ in 0..200 {
                let p = [next() & mask, next() & mask, next() & mask];
                assert_eq!(c.index(&p), c.index_generic(&p), "3d deep bits={bits}");
            }
        }
    }

    #[test]
    fn one_dimensional_identity() {
        let c = Hilbert::new(1, 5).unwrap();
        for i in 0..32u64 {
            assert_eq!(c.index(&[i]), i as u128);
        }
    }
}
