//! The Diagonal curve: anti-diagonal (coordinate-sum) ordering.
//!
//! Cells are visited in increasing order of their coordinate sum
//! `s = Σᵢ pᵢ`; within one anti-diagonal the order is lexicographic
//! (dimension 0 most significant), reversed on odd `s` so the 2-D curve is
//! the classic zigzag.
//!
//! The Diagonal curve is *symmetric in all dimensions*, which is why it is
//! the paper's hero curve for the priority stage (SFC1): with equally
//! important QoS parameters it produces both the lowest total priority
//! inversion and the best fairness (§5.1), and the deadline stage's
//! explicit formula `v_c = priority + f·deadline` (§5.2) is exactly the
//! [`WeightedDiagonal`] generalization below.
//!
//! ## Ranking
//!
//! Dense ranks are computed exactly: the number of grid points with
//! coordinate sum `t` over `m` bounded dimensions, `N_m(t)`, is built once
//! at construction by an `O(d · s_max)` sliding-window DP, after which each
//! `index()` query is `O(d)` using prefix sums of `N_m`. For `d ≤ 2` the
//! closed forms are used and no tables are allocated.

use crate::curve::{check_point, check_radix2, InvertibleCurve, SfcError, SpaceFillingCurve};

/// Upper bound on the total DP-table entries `Diagonal::new` may allocate
/// (keeps the worst case around 256 MiB of `u128`s).
const MAX_TABLE_ENTRIES: u128 = 1 << 24;

/// The Diagonal (anti-diagonal) curve. See module docs.
#[derive(Debug, Clone)]
pub struct Diagonal {
    dims: u32,
    side: u64,
    /// `cum[m][t]` = Σ_{u ≤ t} N_m(u): points over `m` dims with sum ≤ t.
    /// Only populated for `dims >= 3`; index `m` runs 1..=dims (entry 0
    /// unused and empty).
    cum: Vec<Vec<u128>>,
}

impl Diagonal {
    /// Build a Diagonal curve over `dims` dimensions with side `2^bits`.
    pub fn new(dims: u32, bits: u32) -> Result<Self, SfcError> {
        let side = check_radix2(dims, bits)?;
        Self::with_side(dims, side)
    }

    /// Build over an arbitrary (not necessarily power-of-two) side length.
    /// Exposed because scheduling grids for priority levels are often not
    /// powers of two.
    pub fn with_side(dims: u32, side: u64) -> Result<Self, SfcError> {
        if dims == 0 {
            return Err(SfcError::ZeroDims);
        }
        if side == 0 {
            return Err(SfcError::ZeroOrder);
        }
        // Index must fit u128.
        let mut cells: u128 = 1;
        for _ in 0..dims {
            cells = cells
                .checked_mul(side as u128)
                .ok_or(SfcError::TooLarge { dims, order: 0 })?;
        }
        let mut cum = Vec::new();
        if dims >= 3 {
            let entries: u128 = (1..=dims as u128).map(|m| m * (side as u128 - 1) + 1).sum();
            if entries > MAX_TABLE_ENTRIES {
                return Err(SfcError::TooLarge { dims, order: 0 });
            }
            cum = build_tables(dims as usize, side);
        }
        Ok(Diagonal { dims, side, cum })
    }

    /// Σ_{u ≤ t} N_m(u) for `t` possibly negative (yields 0) or beyond the
    /// maximum sum (yields side^m).
    fn cum_m(&self, m: usize, t: i128) -> u128 {
        if t < 0 {
            return 0;
        }
        if m == 0 {
            return 1; // the empty point has sum 0 <= t
        }
        let n = self.side as i128;
        let tmax = m as i128 * (n - 1);
        let t = t.min(tmax);
        match m {
            1 => (t + 1) as u128,
            2 => {
                // N_2(u) = u+1 for u < n, 2n-1-u for u >= n.
                if t < n {
                    ((t + 1) * (t + 2) / 2) as u128
                } else {
                    let total = (n * n) as u128;
                    let r = tmax - t; // remaining sums above t
                    total - ((r * (r + 1)) / 2) as u128
                }
            }
            _ => self.cum[m][t as usize],
        }
    }

    /// Number of points over `m` dims with sum exactly `t`.
    fn count_m(&self, m: usize, t: i128) -> u128 {
        self.cum_m(m, t) - self.cum_m(m, t - 1)
    }

    /// Lexicographic rank of `point` within its own anti-diagonal.
    fn rank_in_diagonal(&self, point: &[u64], s: u64) -> u128 {
        let d = self.dims as usize;
        let mut rank: u128 = 0;
        let mut prefix: u64 = 0;
        for (j, &pj) in point.iter().enumerate() {
            let m = d - j - 1;
            let rem = (s - prefix) as i128;
            // Σ_{v < pj} N_m(rem - v) = C_m(rem) - C_m(rem - pj)
            rank += self.cum_m(m, rem) - self.cum_m(m, rem - pj as i128);
            prefix += pj;
        }
        rank
    }
}

/// Sliding-window DP for `cum[m][t]` over all m in 1..=d.
fn build_tables(d: usize, side: u64) -> Vec<Vec<u128>> {
    let n = side as usize;
    let mut cum: Vec<Vec<u128>> = Vec::with_capacity(d + 1);
    cum.push(Vec::new()); // m = 0 handled in closed form
                          // m = 1: N_1(t) = 1 for t in 0..n, cum = t+1.
    cum.push((1..=n as u128).collect());
    for m in 2..=d {
        let tmax = m * (n - 1);
        let prev = &cum[m - 1];
        let prev_total = *prev.last().unwrap();
        let mut cur = Vec::with_capacity(tmax + 1);
        // N_m(t) = C_{m-1}(t) - C_{m-1}(t - n); build cumulative directly.
        let mut acc: u128 = 0;
        for t in 0..=tmax {
            let hi = if t < prev.len() { prev[t] } else { prev_total };
            let lo = if t >= n {
                let u = t - n;
                if u < prev.len() {
                    prev[u]
                } else {
                    prev_total
                }
            } else {
                0
            };
            acc += hi - lo;
            cur.push(acc);
        }
        cum.push(cur);
    }
    cum
}

impl SpaceFillingCurve for Diagonal {
    fn name(&self) -> &'static str {
        "diagonal"
    }

    fn dims(&self) -> u32 {
        self.dims
    }

    fn side(&self) -> u64 {
        self.side
    }

    fn index(&self, point: &[u64]) -> u128 {
        check_point("diagonal", self.dims, self.side, point);
        let s: u64 = point.iter().sum();
        let before = self.cum_m(self.dims as usize, s as i128 - 1);
        let in_diag = self.count_m(self.dims as usize, s as i128);
        let lex = self.rank_in_diagonal(point, s);
        let rank = if s & 1 == 1 { in_diag - 1 - lex } else { lex };
        before + rank
    }
}

impl InvertibleCurve for Diagonal {
    fn point(&self, index: u128, out: &mut [u64]) {
        assert!(index < self.cells(), "diagonal: index out of range");
        assert_eq!(out.len(), self.dims as usize);
        let d = self.dims as usize;
        // Find the anti-diagonal: smallest s with C_d(s) > index.
        let smax = (self.side - 1) * self.dims as u64;
        let (mut lo, mut hi) = (0u64, smax);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cum_m(d, mid as i128) > index {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let s = lo;
        let before = self.cum_m(d, s as i128 - 1);
        let in_diag = self.count_m(d, s as i128);
        let mut lex = index - before;
        if s & 1 == 1 {
            lex = in_diag - 1 - lex;
        }
        // Unrank lexicographically within the anti-diagonal.
        let mut rem_sum = s as i128;
        for (j, out_j) in out.iter_mut().enumerate() {
            let m = d - j - 1;
            // Choose the smallest v such that the block of points with
            // coord j == v contains rank `lex`.
            let mut v: u64 = 0;
            loop {
                let block = self.count_m(m, rem_sum - v as i128);
                if lex < block {
                    break;
                }
                lex -= block;
                v += 1;
                debug_assert!(v < self.side, "diagonal unrank overran side");
            }
            *out_j = v;
            rem_sum -= v as i128;
        }
        debug_assert_eq!(rem_sum, 0);
    }
}

/// The weighted diagonal family of the paper's deadline stage (SFC2):
/// `v = x + f·y`.
///
/// * `f = 0` (ties → smaller `y`): lexicographic in `x` — a Sweep.
/// * `f = 1`: the Diagonal curve's anti-diagonal order.
/// * `f → ∞`: lexicographic in `y` — the transposed Sweep (C-Scan).
///
/// In the scheduler, `x` is the priority value from SFC1 and `y` the
/// deadline slack, so `f` dials between "respect priorities" (`f < 1`) and
/// "meet deadlines" (`f > 1`). This is a scheduling *order*, not a
/// space-filling bijection, so it does not implement
/// [`SpaceFillingCurve`]; [`WeightedDiagonal::value`] returns a fixed-point
/// composite that preserves the order `x + f·y` with deterministic
/// lexicographic tie-breaking on `x`.
#[derive(Debug, Clone, Copy)]
pub struct WeightedDiagonal {
    f: f64,
    /// `round(f * SCALE)`, fixed at construction so `value` is pure integer
    /// arithmetic (the float multiply + round per call was a measurable
    /// share of the encapsulator's stage-2 cost).
    fx: u128,
}

impl WeightedDiagonal {
    /// Fixed-point scale for the fractional part of `f`.
    const SCALE: u128 = 1 << 32;

    /// Create the order with balance factor `f >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative, NaN or infinite.
    pub fn new(f: f64) -> Self {
        assert!(
            f.is_finite() && f >= 0.0,
            "balance factor must be finite and >= 0"
        );
        let fx = (f * Self::SCALE as f64).round() as u128;
        WeightedDiagonal { f, fx }
    }

    /// The balance factor.
    pub fn f(&self) -> f64 {
        self.f
    }

    /// Composite value preserving the order of `x + f·y`, with ties broken
    /// by smaller `x` first (the paper breaks the `f = 0` tie by earliest
    /// deadline, i.e. smaller `y`; since `x + f·y` equal and `f = 0` make
    /// `x` equal, ordering on the composite achieves both conventions).
    pub fn value(&self, x: u64, y: u64) -> u128 {
        let main = (x as u128) * Self::SCALE + self.fx * y as u128;
        // Tie-break on x: shift the main term and append x.
        main << 32 | (x as u128 & 0xFFFF_FFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_2d() {
        let c = Diagonal::new(2, 1).unwrap();
        // 2x2: (0,0) s=0; s=1: odd -> reversed lex: (1,0) then (0,1)?
        // lex order within s=1 is (0,1),(1,0); reversed: (1,0),(0,1).
        assert_eq!(c.index(&[0, 0]), 0);
        assert_eq!(c.index(&[1, 0]), 1);
        assert_eq!(c.index(&[0, 1]), 2);
        assert_eq!(c.index(&[1, 1]), 3);
    }

    #[test]
    fn bijective_2d() {
        let c = Diagonal::new(2, 3).unwrap();
        let mut seen = [false; 64];
        for x in 0..8 {
            for y in 0..8 {
                let i = c.index(&[x, y]) as usize;
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bijective_and_invertible_4d() {
        let c = Diagonal::new(4, 2).unwrap();
        let mut p = vec![0u64; 4];
        let mut seen = vec![false; 256];
        for a in 0..4u64 {
            for b in 0..4 {
                for x in 0..4 {
                    for y in 0..4 {
                        let pt = [a, b, x, y];
                        let i = c.index(&pt);
                        assert!(!seen[i as usize]);
                        seen[i as usize] = true;
                        c.point(i, &mut p);
                        assert_eq!(p, pt);
                    }
                }
            }
        }
    }

    #[test]
    fn monotone_in_sum() {
        let c = Diagonal::new(3, 4).unwrap();
        // Any point with smaller coordinate sum precedes any with larger.
        assert!(c.index(&[5, 5, 5]) < c.index(&[15, 1, 0]));
        assert!(c.index(&[0, 0, 1]) < c.index(&[1, 1, 0]));
    }

    #[test]
    fn symmetric_across_dimensions() {
        // Swapping coordinates keeps the anti-diagonal (hence distance from
        // the start is bounded by the diagonal's size): the curve treats
        // dimensions interchangeably at the macro level.
        let c = Diagonal::new(3, 4).unwrap();
        let a = c.index(&[3, 7, 11]);
        let b = c.index(&[11, 3, 7]);
        let diag_size = {
            let s = 21i128;
            c.count_m(3, s)
        };
        assert!(a.abs_diff(b) < diag_size);
    }

    #[test]
    fn arbitrary_side() {
        let c = Diagonal::with_side(3, 5).unwrap();
        assert_eq!(c.cells(), 125);
        let mut seen = [false; 125];
        for a in 0..5u64 {
            for b in 0..5 {
                for x in 0..5 {
                    let i = c.index(&[a, b, x]) as usize;
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
    }

    #[test]
    fn rejects_oversized_tables() {
        assert!(matches!(
            Diagonal::with_side(12, 1 << 40),
            Err(SfcError::TooLarge { .. })
        ));
    }

    #[test]
    fn weighted_diagonal_orders() {
        let w0 = WeightedDiagonal::new(0.0);
        // f = 0: priority dominates, deadline ignored (ties on x broken by x).
        assert!(w0.value(1, 100) < w0.value(2, 0));
        let w1 = WeightedDiagonal::new(1.0);
        // f = 1: sum order.
        assert!(w1.value(2, 3) < w1.value(4, 2));
        let whuge = WeightedDiagonal::new(1e6);
        // huge f: deadline dominates.
        assert!(whuge.value(1000, 1) < whuge.value(0, 2));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn weighted_diagonal_rejects_nan() {
        WeightedDiagonal::new(f64::NAN);
    }
}
