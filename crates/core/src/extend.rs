//! §4.3 — extending *other* schedulers with cascade stages.
//!
//! The paper's extensibility claim: any scheduler that reduces a request
//! to one absolute priority value can be made disk-aware by feeding that
//! value into SFC3 ("to extend the BUCKET algorithm to deal with disk
//! utilization, we take the output of the BUCKET algorithm and enter it
//! into SFC3 with the cylinder position"). [`Sfc3Extended`] implements
//! exactly that composition for an arbitrary priority function, serving
//! in non-preemptive batches like the cascade's own dispatcher.
//!
//! The mirror-image extension — giving a single-priority scheduler
//! multiple priority dimensions via SFC1 — is provided by
//! [`sched::DeadlineDriven::with_priority`] together with [`sfc1_mapping`].

use crate::config::Stage3;
use crate::dispatcher::Dispatcher;
use crate::DispatchConfig;
use sched::{DiskScheduler, HeadState, Micros, Request};
use sfc::{CurveKind, SfcError};

/// An absolute-priority function: maps (request, now) to a scalar,
/// lower = served first.
pub type PriorityFn = Box<dyn Fn(&Request, Micros) -> u64 + Send>;

/// A priority mapping over the request alone (no time dependence), as
/// used by [`sched::DeadlineDriven::with_priority`].
pub type RequestKeyFn = Box<dyn Fn(&Request) -> u64 + Send>;

/// An external scheduler's priority function made seek-aware via SFC3.
pub struct Sfc3Extended {
    /// Maps (request, now) to an absolute priority, lower = first.
    priority: PriorityFn,
    /// Largest value `priority` can return (for quantization).
    max_priority: u64,
    stage3: Stage3,
    dispatcher: Dispatcher,
    name: &'static str,
}

impl Sfc3Extended {
    /// Wrap `priority` (bounded by `max_priority`) with the SFC3 stage.
    pub fn new(
        name: &'static str,
        priority: PriorityFn,
        max_priority: u64,
        stage3: Stage3,
    ) -> Self {
        let max_v = stage3_max(&stage3);
        Sfc3Extended {
            priority,
            max_priority: max_priority.max(1),
            stage3,
            dispatcher: Dispatcher::new(DispatchConfig::non_preemptive(), max_v),
            name,
        }
    }

    fn characterize(&self, req: &Request, head: &HeadState) -> u128 {
        let p = (self.priority)(req, head.now_us).min(self.max_priority) as u128;
        let max_x = (1u128 << self.stage3.resolution_bits) - 1;
        let x = p * max_x / self.max_priority as u128;
        let y = head.distance_to(req.cylinder) as u128;
        stage3_value(
            x,
            y,
            max_x + 1,
            self.stage3.cylinders.max(2) as u128,
            self.stage3.partitions,
        )
    }
}

/// The SFC3 formula, shared with the encapsulator (kept private there; a
/// small copy keeps the extension self-contained).
fn stage3_value(x: u128, y: u128, width_x: u128, height_y: u128, r: u32) -> u128 {
    let r = r.max(1) as u128;
    let p_s = (width_x / r).max(1);
    let p_n = (x / p_s).min(r - 1);
    height_y * p_s * p_n + y * p_s + (x - p_s * p_n)
}

fn stage3_max(s3: &Stage3) -> u128 {
    let max_x = (1u128 << s3.resolution_bits) - 1;
    let max_y = (s3.cylinders.max(2) - 1) as u128;
    stage3_value(max_x, max_y, max_x + 1, max_y + 1, s3.partitions)
}

impl DiskScheduler for Sfc3Extended {
    fn name(&self) -> &'static str {
        self.name
    }

    fn enqueue(&mut self, req: Request, head: &HeadState) {
        let v = self.characterize(&req, head);
        self.dispatcher.insert(req, v);
    }

    fn dequeue(&mut self, head: &HeadState) -> Option<Request> {
        let priority = &self.priority;
        let max_priority = self.max_priority;
        let stage3 = self.stage3;
        let mut refresh = |r: &Request| {
            let p = (priority)(r, head.now_us).min(max_priority) as u128;
            let max_x = (1u128 << stage3.resolution_bits) - 1;
            let x = p * max_x / max_priority as u128;
            let y = head.distance_to(r.cylinder) as u128;
            stage3_value(
                x,
                y,
                max_x + 1,
                stage3.cylinders.max(2) as u128,
                stage3.partitions,
            )
        };
        self.dispatcher.pop(Some(&mut refresh))
    }

    fn len(&self) -> usize {
        self.dispatcher.len()
    }

    fn for_each_pending(&self, f: &mut dyn FnMut(&Request)) {
        self.dispatcher.for_each_pending(f);
    }
}

/// Build an SFC1 mapping usable as the priority hook of a single-priority
/// scheduler (e.g. [`sched::DeadlineDriven::with_priority`]): folds the
/// request's whole QoS vector through `curve` into one absolute value.
pub fn sfc1_mapping(
    curve: CurveKind,
    dims: u32,
    level_bits: u32,
) -> Result<RequestKeyFn, SfcError> {
    let curve = curve.build(dims, level_bits)?;
    let side = curve.side();
    Ok(Box::new(move |r: &Request| {
        let mut point = [0u64; sched::MAX_QOS_DIMS];
        let d = curve.dims() as usize;
        for (j, slot) in point.iter_mut().enumerate().take(d) {
            let level = if j < r.qos.dims() {
                r.qos.level(j) as u64
            } else {
                side - 1
            };
            *slot = level.min(side - 1);
        }
        // SFC1 outputs fit u64 for any dims*bits <= 64 configuration.
        curve.index(&point[..d]) as u64
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistanceMode;
    use sched::{Bucket, QosVector};

    fn stage3(r: u32) -> Stage3 {
        Stage3 {
            partitions: r,
            resolution_bits: 8,
            cylinders: 3832,
            distance: DistanceMode::Absolute,
        }
    }

    fn value_deadline_priority(levels: u8) -> PriorityFn {
        // A BUCKET-style score: value (inverted level) dominates, urgency
        // refines. Lower = served first.
        Box::new(move |r: &Request, now: Micros| {
            let value = r.qos.level(0).min(levels - 1) as u64;
            let slack_ms = r.slack_us(now).min(10_000_000) / 1000;
            value * 100_000 + slack_ms
        })
    }

    fn req(id: u64, level: u8, cyl: u32) -> Request {
        Request::read(id, 0, 500_000, cyl, 4096, QosVector::single(level))
    }

    #[test]
    fn respects_the_external_priority_between_partitions() {
        let mut s = Sfc3Extended::new(
            "bucket+sfc3",
            value_deadline_priority(8),
            8 * 100_000,
            stage3(8),
        );
        let head = HeadState::new(0, 0, 3832);
        s.enqueue(req(1, 7, 10), &head); // low value, near
        s.enqueue(req(2, 0, 3800), &head); // high value, far
        assert_eq!(s.dequeue(&head).unwrap().id, 2);
    }

    #[test]
    fn r1_orders_by_seek_distance() {
        let mut s = Sfc3Extended::new(
            "bucket+sfc3",
            value_deadline_priority(8),
            8 * 100_000,
            stage3(1),
        );
        let head = HeadState::new(1000, 0, 3832);
        s.enqueue(req(1, 0, 3500), &head); // high value, far
        s.enqueue(req(2, 7, 1010), &head); // low value, near
        assert_eq!(s.dequeue(&head).unwrap().id, 2, "R=1 is seek-only");
    }

    #[test]
    fn bucket_with_sfc3_reduces_seeks_vs_plain_bucket() {
        use sim::{simulate, DiskService, SimOptions};
        use workload::PoissonConfig;
        let mut wl = PoissonConfig::figure8(3_000);
        wl.mean_interarrival_us = 10_000;
        let trace = wl.generate(41);

        let run = |s: &mut dyn DiskScheduler| {
            let mut service = DiskService::table1();
            simulate(s, &trace, &mut service, SimOptions::with_shape(3, 8))
        };
        let plain = run(&mut Bucket::new(1.0, 0.001, 8));
        let mut extended = Sfc3Extended::new(
            "bucket+sfc3",
            value_deadline_priority(8),
            8 * 100_000,
            stage3(3),
        );
        let ext = run(&mut extended);
        assert!(
            ext.seek_us < plain.seek_us,
            "SFC3 extension should reduce seeks: {} vs {}",
            ext.seek_us,
            plain.seek_us
        );
    }

    #[test]
    fn sfc1_mapping_orders_by_curve() {
        let map = sfc1_mapping(CurveKind::Diagonal, 3, 4).unwrap();
        let hi = Request::read(1, 0, u64::MAX, 0, 512, QosVector::new(&[0, 0, 0]));
        let lo = Request::read(2, 0, u64::MAX, 0, 512, QosVector::new(&[15, 15, 15]));
        assert!(map(&hi) < map(&lo));
    }

    #[test]
    fn sfc1_mapping_rejects_bad_config() {
        assert!(sfc1_mapping(CurveKind::Hilbert, 0, 4).is_err());
    }
}
