//! A textual scheduler specification — the paper's fourth advantage of
//! SFC-based scheduling (§1): *"the ability to automate the scheduler
//! development process in a fashion similar to automatic generation of
//! programming language compilers."* Instead of coding a scheduler, you
//! describe one:
//!
//! ```text
//! sfc1 = diagonal : dims=3, levels=16
//! sfc2 = weighted : f=1, horizon=1s
//! sfc3 = r=3 : cylinders=3832
//! dispatch = conditional : w=10%, sp, er=2
//! ```
//!
//! Grammar (one `key = value` clause per line or `;`-separated):
//!
//! * `sfc1 = <curve> : dims=<n>, levels=<n>` — omit the line to skip SFC1;
//! * `sfc2 = weighted : f=<x>, horizon=<dur>` or
//!   `sfc2 = <curve> : horizon=<dur>[, bits=<n>]` — omit to skip SFC2;
//! * `sfc3 = r=<n> : cylinders=<n>[, bits=<n>][, circular]` — omit to skip;
//! * `dispatch = fully | batch | conditional : w=<pct>%[, sp][, er=<e>]`
//!   (default: the paper's conditional dispatcher).
//!
//! Durations accept `us`, `ms`, `s` suffixes. Curve names are the
//! [`sfc::CurveKind`] names.

use crate::config::{
    CascadeConfig, DispatchConfig, DistanceMode, PreemptionMode, Stage1, Stage2, Stage2Combiner,
    Stage3,
};
use sched::Micros;
use sfc::CurveKind;

/// A parse failure, with the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
    /// The clause being parsed when it did.
    pub clause: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (in clause {:?})", self.message, self.clause)
    }
}

impl std::error::Error for SpecError {}

fn err(message: impl Into<String>, clause: &str) -> SpecError {
    SpecError {
        message: message.into(),
        clause: clause.to_string(),
    }
}

/// Parse a scheduler specification into a [`CascadeConfig`].
pub fn parse(spec: &str) -> Result<CascadeConfig, SpecError> {
    let mut config = CascadeConfig {
        stage1: None,
        stage2: None,
        stage3: None,
        dispatch: DispatchConfig::paper_default(),
    };
    for raw in spec.split(['\n', ';']) {
        let clause = raw.split('#').next().unwrap_or("").trim();
        if clause.is_empty() {
            continue;
        }
        let (key, rest) = clause
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`", clause))?;
        let rest = rest.trim();
        match key.trim() {
            "sfc1" => config.stage1 = Some(parse_stage1(rest, clause)?),
            "sfc2" => config.stage2 = Some(parse_stage2(rest, clause)?),
            "sfc3" => config.stage3 = Some(parse_stage3(rest, clause)?),
            "dispatch" => config.dispatch = parse_dispatch(rest, clause)?,
            other => return Err(err(format!("unknown section {other:?}"), clause)),
        }
    }
    Ok(config)
}

/// Split `head : k=v, k, …` into the head and its options.
fn head_and_opts(rest: &str) -> (&str, Vec<&str>) {
    match rest.split_once(':') {
        Some((head, opts)) => (
            head.trim(),
            opts.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect(),
        ),
        None => (rest.trim(), Vec::new()),
    }
}

fn opt_value<'a>(opt: &'a str, key: &str) -> Option<&'a str> {
    let (k, v) = opt.split_once('=')?;
    (k.trim() == key).then_some(v.trim())
}

fn parse_u32(v: &str, clause: &str) -> Result<u32, SpecError> {
    v.parse()
        .map_err(|_| err(format!("bad integer {v:?}"), clause))
}

fn parse_duration_us(v: &str, clause: &str) -> Result<Micros, SpecError> {
    let (num, mult) = if let Some(n) = v.strip_suffix("us") {
        (n, 1)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        (v, 1) // bare numbers are µs
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| err(format!("bad duration {v:?}"), clause))?;
    if !(x.is_finite() && x >= 0.0) {
        return Err(err(format!("bad duration {v:?}"), clause));
    }
    Ok((x * mult as f64).round() as Micros)
}

fn parse_stage1(rest: &str, clause: &str) -> Result<Stage1, SpecError> {
    let (head, opts) = head_and_opts(rest);
    let curve =
        CurveKind::parse(head).ok_or_else(|| err(format!("unknown curve {head:?}"), clause))?;
    let mut dims = 1u32;
    let mut level_bits = 4u32;
    for opt in opts {
        if let Some(v) = opt_value(opt, "dims") {
            dims = parse_u32(v, clause)?;
        } else if let Some(v) = opt_value(opt, "levels") {
            let levels = parse_u32(v, clause)?;
            if !levels.is_power_of_two() || levels < 2 {
                return Err(err(
                    format!("levels must be a power of two >= 2, got {levels}"),
                    clause,
                ));
            }
            level_bits = levels.trailing_zeros();
        } else {
            return Err(err(format!("unknown sfc1 option {opt:?}"), clause));
        }
    }
    Ok(Stage1 {
        curve,
        dims,
        level_bits,
    })
}

fn parse_stage2(rest: &str, clause: &str) -> Result<Stage2, SpecError> {
    let (head, opts) = head_and_opts(rest);
    let mut horizon_us: Micros = 1_000_000;
    let mut resolution_bits = 10u32;
    let mut f = 1.0f64;
    for opt in &opts {
        if let Some(v) = opt_value(opt, "f") {
            f = v.parse().map_err(|_| err(format!("bad f {v:?}"), clause))?;
        } else if let Some(v) = opt_value(opt, "horizon") {
            horizon_us = parse_duration_us(v, clause)?;
        } else if let Some(v) = opt_value(opt, "bits") {
            resolution_bits = parse_u32(v, clause)?;
        } else {
            return Err(err(format!("unknown sfc2 option {opt:?}"), clause));
        }
    }
    let combiner = if head == "weighted" {
        if !(f.is_finite() && f >= 0.0) {
            return Err(err("f must be finite and >= 0", clause));
        }
        Stage2Combiner::Weighted { f }
    } else {
        let curve = CurveKind::parse(head)
            .ok_or_else(|| err(format!("unknown sfc2 combiner {head:?}"), clause))?;
        Stage2Combiner::Curve(curve)
    };
    Ok(Stage2 {
        combiner,
        horizon_us,
        resolution_bits,
    })
}

fn parse_stage3(rest: &str, clause: &str) -> Result<Stage3, SpecError> {
    let (head, opts) = head_and_opts(rest);
    let partitions = opt_value(head, "r")
        .map(|v| parse_u32(v, clause))
        .transpose()?
        .ok_or_else(|| err("sfc3 head must be `r=<n>`", clause))?;
    if partitions == 0 {
        return Err(err("r must be >= 1", clause));
    }
    let mut cylinders = 0u32;
    let mut resolution_bits = 10u32;
    let mut distance = DistanceMode::Absolute;
    for opt in opts {
        if let Some(v) = opt_value(opt, "cylinders") {
            cylinders = parse_u32(v, clause)?;
        } else if let Some(v) = opt_value(opt, "bits") {
            resolution_bits = parse_u32(v, clause)?;
        } else if opt == "circular" {
            distance = DistanceMode::Circular;
        } else if opt == "absolute" {
            distance = DistanceMode::Absolute;
        } else {
            return Err(err(format!("unknown sfc3 option {opt:?}"), clause));
        }
    }
    if cylinders == 0 {
        return Err(err("sfc3 needs `cylinders=<n>`", clause));
    }
    Ok(Stage3 {
        partitions,
        resolution_bits,
        cylinders,
        distance,
    })
}

fn parse_dispatch(rest: &str, clause: &str) -> Result<DispatchConfig, SpecError> {
    let (head, opts) = head_and_opts(rest);
    let mut serve_promote = false;
    let mut expand_factor = None;
    let mut window = 0.10f64;
    for opt in &opts {
        if *opt == "sp" {
            serve_promote = true;
        } else if let Some(v) = opt_value(opt, "er") {
            let e: f64 = v
                .parse()
                .map_err(|_| err(format!("bad er factor {v:?}"), clause))?;
            if !(e.is_finite() && e > 1.0) {
                return Err(err("er factor must be > 1", clause));
            }
            expand_factor = Some(e);
        } else if let Some(v) = opt_value(opt, "w") {
            let v = v.strip_suffix('%').unwrap_or(v);
            let pct: f64 = v
                .parse()
                .map_err(|_| err(format!("bad window {v:?}"), clause))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(err("window must be 0-100%", clause));
            }
            window = pct / 100.0;
        } else {
            return Err(err(format!("unknown dispatch option {opt:?}"), clause));
        }
    }
    let mode = match head {
        "fully" => PreemptionMode::Fully,
        "batch" | "non-preemptive" => PreemptionMode::NonPreemptive,
        "conditional" => PreemptionMode::Conditional { window },
        other => return Err(err(format!("unknown dispatch mode {other:?}"), clause)),
    };
    Ok(DispatchConfig {
        mode,
        serve_promote,
        expand_factor,
        refresh_on_swap: !matches!(mode, PreemptionMode::Fully),
        max_queue: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CascadedSfc;

    const PAPER_SPEC: &str = "
        sfc1 = diagonal : dims=3, levels=16
        sfc2 = weighted : f=1, horizon=1s
        sfc3 = r=3 : cylinders=3832
        dispatch = conditional : w=10%, sp, er=2
    ";

    #[test]
    fn parses_the_paper_configuration() {
        let cfg = parse(PAPER_SPEC).unwrap();
        let s1 = cfg.stage1.unwrap();
        assert_eq!(s1.curve, CurveKind::Diagonal);
        assert_eq!(s1.dims, 3);
        assert_eq!(s1.level_bits, 4);
        let s2 = cfg.stage2.unwrap();
        assert!(matches!(s2.combiner, Stage2Combiner::Weighted { f } if f == 1.0));
        assert_eq!(s2.horizon_us, 1_000_000);
        let s3 = cfg.stage3.unwrap();
        assert_eq!(s3.partitions, 3);
        assert_eq!(s3.cylinders, 3832);
        assert_eq!(
            cfg.dispatch.mode,
            PreemptionMode::Conditional { window: 0.10 }
        );
        assert!(cfg.dispatch.serve_promote);
        assert_eq!(cfg.dispatch.expand_factor, Some(2.0));
        // And the whole thing builds into a live scheduler.
        assert!(CascadedSfc::new(cfg).is_ok());
    }

    #[test]
    fn semicolon_and_comment_syntax() {
        let cfg = parse("sfc1 = hilbert : dims=2 # locality\n; dispatch = fully").unwrap();
        assert_eq!(cfg.stage1.unwrap().curve, CurveKind::Hilbert);
        assert_eq!(cfg.dispatch.mode, PreemptionMode::Fully);
        assert!(cfg.stage2.is_none());
        assert!(cfg.stage3.is_none());
    }

    #[test]
    fn durations_parse_in_three_units() {
        let a = parse("sfc2 = weighted : horizon=250ms").unwrap();
        assert_eq!(a.stage2.unwrap().horizon_us, 250_000);
        let b = parse("sfc2 = weighted : horizon=700000us").unwrap();
        assert_eq!(b.stage2.unwrap().horizon_us, 700_000);
        let c = parse("sfc2 = weighted : horizon=2s").unwrap();
        assert_eq!(c.stage2.unwrap().horizon_us, 2_000_000);
    }

    #[test]
    fn curve_combiner_for_sfc2() {
        let cfg = parse("sfc2 = gray : horizon=150ms, bits=8").unwrap();
        let s2 = cfg.stage2.unwrap();
        assert!(matches!(
            s2.combiner,
            Stage2Combiner::Curve(CurveKind::Gray)
        ));
        assert_eq!(s2.resolution_bits, 8);
    }

    #[test]
    fn circular_distance_flag() {
        let cfg = parse("sfc3 = r=1 : cylinders=100, circular").unwrap();
        assert_eq!(cfg.stage3.unwrap().distance, DistanceMode::Circular);
    }

    #[test]
    fn error_cases_are_reported_with_their_clause() {
        for bad in [
            "nonsense",
            "sfc1 = klein : dims=2",
            "sfc1 = diagonal : levels=10", // not a power of two
            "sfc2 = weighted : f=-1",
            "sfc3 = r=0 : cylinders=10",
            "sfc3 = r=2", // missing cylinders
            "dispatch = sometimes",
            "dispatch = conditional : w=200%",
            "dispatch = conditional : er=0.5",
            "sfc3 = banana : cylinders=5",
        ] {
            let e = parse(bad).unwrap_err();
            assert!(!e.clause.is_empty(), "{bad:?} produced {e}");
        }
    }

    #[test]
    fn empty_spec_is_the_bare_dispatcher() {
        let cfg = parse("").unwrap();
        assert!(cfg.stage1.is_none() && cfg.stage2.is_none() && cfg.stage3.is_none());
        assert_eq!(cfg.dispatch, DispatchConfig::paper_default());
    }
}
