//! §4.2 — ready-made degenerate configurations: the Cascaded-SFC
//! scheduler *is* many classic schedulers under the right settings.
//!
//! Each preset returns a [`CascadeConfig`] whose behaviour matches the
//! named classic (the equivalences are pinned by `tests/generalization.rs`
//! and the unit tests below):
//!
//! | Preset | Classic | Construction |
//! |---|---|---|
//! | [`batch_cscan`] | batch C-SCAN | SFC3 only, `R = 1`, circular distance |
//! | [`batch_sstf`] | batch SSTF | SFC3 only, `R = 1`, absolute distance |
//! | [`edf`] | EDF (per batch) | SFC2 only, `f → ∞` |
//! | [`multi_queue`] | multi-queue priority | SFC1 only, 1 dimension |
//! | [`scan_edf`] | SCAN-EDF | SFC2 deadline-major + SFC3 `R = large`, circular |
//! | [`priority_sstf`] | multiple-priority scheduler of [2] | SFC1 + SFC3 |

use crate::config::{
    CascadeConfig, DispatchConfig, DistanceMode, Stage1, Stage2, Stage2Combiner, Stage3,
};
use sched::Micros;
use sfc::CurveKind;

/// Batch C-SCAN: one circular scan per queue swap.
pub fn batch_cscan(cylinders: u32) -> CascadeConfig {
    CascadeConfig {
        stage1: None,
        stage2: None,
        stage3: Some(Stage3 {
            partitions: 1,
            resolution_bits: 10,
            cylinders,
            distance: DistanceMode::Circular,
        }),
        dispatch: DispatchConfig::non_preemptive(),
    }
}

/// Batch SSTF: nearest-first from the batch-start head position.
pub fn batch_sstf(cylinders: u32) -> CascadeConfig {
    CascadeConfig {
        stage3: Some(Stage3 {
            partitions: 1,
            resolution_bits: 10,
            cylinders,
            distance: DistanceMode::Absolute,
        }),
        ..batch_cscan(cylinders)
    }
}

/// EDF over batches: deadline-only ordering.
pub fn edf(horizon_us: Micros) -> CascadeConfig {
    CascadeConfig {
        stage1: None,
        stage2: Some(Stage2 {
            combiner: Stage2Combiner::Weighted { f: 1e12 },
            horizon_us,
            resolution_bits: 16,
        }),
        stage3: None,
        dispatch: DispatchConfig::non_preemptive(),
    }
}

/// The multi-queue priority scheduler on QoS dimension 0: priority-only
/// ordering, fully preemptive (the classic runs one live queue per level).
pub fn multi_queue(levels_bits: u32) -> CascadeConfig {
    CascadeConfig {
        stage1: Some(Stage1 {
            curve: CurveKind::Sweep, // 1-D identity
            dims: 1,
            level_bits: levels_bits,
        }),
        stage2: None,
        stage3: None,
        dispatch: DispatchConfig::fully_preemptive(),
    }
}

/// SCAN-EDF: deadlines first; among near-equal deadlines, scan order.
/// Realized as a deadline-major SFC2 quantized to `batch_bits` buckets
/// feeding a circular SFC3 whose partitions equal the buckets — requests
/// in the same deadline bucket are served in one scan.
pub fn scan_edf(horizon_us: Micros, batch_bits: u32, cylinders: u32) -> CascadeConfig {
    CascadeConfig {
        stage1: None,
        stage2: Some(Stage2 {
            combiner: Stage2Combiner::Weighted { f: 1e12 },
            horizon_us,
            resolution_bits: batch_bits,
        }),
        stage3: Some(Stage3 {
            partitions: 1 << batch_bits,
            resolution_bits: batch_bits,
            cylinders,
            distance: DistanceMode::Circular,
        }),
        dispatch: DispatchConfig::non_preemptive(),
    }
}

/// The multiple-priority disk scheduler of Aref et al. [2]: priorities
/// fold through SFC1, seeks through SFC3 — no deadlines.
pub fn priority_sstf(
    curve: CurveKind,
    dims: u32,
    level_bits: u32,
    partitions: u32,
    cylinders: u32,
) -> CascadeConfig {
    CascadeConfig {
        stage1: Some(Stage1 {
            curve,
            dims,
            level_bits,
        }),
        stage2: None,
        stage3: Some(Stage3 {
            partitions,
            resolution_bits: 10,
            cylinders,
            distance: DistanceMode::Absolute,
        }),
        dispatch: DispatchConfig::non_preemptive(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CascadedSfc;
    use sched::{DiskScheduler, HeadState, QosVector, Request};

    fn head(cyl: u32) -> HeadState {
        HeadState::new(cyl, 0, 3832)
    }

    fn drain(s: &mut dyn DiskScheduler, h: &HeadState) -> Vec<u64> {
        let mut ids = Vec::new();
        while let Some(r) = s.dequeue(h) {
            ids.push(r.id);
        }
        ids
    }

    #[test]
    fn batch_cscan_sweeps_upward_with_wraparound() {
        let mut s = CascadedSfc::new(batch_cscan(3832)).unwrap();
        let h = head(1000);
        for (id, cyl) in [(1u64, 1500), (2, 500), (3, 3000), (4, 1100)] {
            s.enqueue(
                Request::read(id, 0, u64::MAX, cyl, 512, QosVector::none()),
                &h,
            );
        }
        // Up from 1000: 1100, 1500, 3000; wrap: 500.
        assert_eq!(drain(&mut s, &h), vec![4, 1, 3, 2]);
    }

    #[test]
    fn batch_sstf_serves_nearest_first() {
        let mut s = CascadedSfc::new(batch_sstf(3832)).unwrap();
        let h = head(1000);
        for (id, cyl) in [(1u64, 1500), (2, 900), (3, 3000)] {
            s.enqueue(
                Request::read(id, 0, u64::MAX, cyl, 512, QosVector::none()),
                &h,
            );
        }
        assert_eq!(drain(&mut s, &h), vec![2, 1, 3]);
    }

    #[test]
    fn edf_preset_orders_by_deadline() {
        let mut s = CascadedSfc::new(edf(1_000_000)).unwrap();
        let h = head(0);
        for (id, dl) in [(1u64, 700_000), (2, 100_000), (3, 400_000)] {
            s.enqueue(Request::read(id, 0, dl, 0, 512, QosVector::none()), &h);
        }
        assert_eq!(drain(&mut s, &h), vec![2, 3, 1]);
    }

    #[test]
    fn multi_queue_preset_orders_by_level() {
        let mut s = CascadedSfc::new(multi_queue(3)).unwrap();
        let h = head(0);
        for (id, lvl) in [(1u64, 5u8), (2, 0), (3, 3)] {
            s.enqueue(
                Request::read(id, 0, u64::MAX, 0, 512, QosVector::single(lvl)),
                &h,
            );
        }
        assert_eq!(drain(&mut s, &h), vec![2, 3, 1]);
    }

    #[test]
    fn scan_edf_preset_scans_within_deadline_buckets() {
        // 4 buckets over 1 s (250 ms each); within a bucket, circular-scan
        // order from the head.
        let mut s = CascadedSfc::new(scan_edf(1_000_000, 2, 3832)).unwrap();
        let h = head(1000);
        for (id, dl, cyl) in [
            (1u64, 900_000u64, 1100u32), // late bucket, near
            (2, 100_000, 3000),          // early bucket, far
            (3, 200_000, 1200),          // early bucket, near
            (4, 800_000, 500),           // late bucket, behind (wraps)
        ] {
            s.enqueue(Request::read(id, 0, dl, cyl, 512, QosVector::none()), &h);
        }
        // Early bucket first (scan: 1200 then 3000), then late bucket
        // (scan: 1100 then wrap to 500).
        assert_eq!(drain(&mut s, &h), vec![3, 2, 1, 4]);
    }

    #[test]
    fn priority_sstf_balances_priority_and_seek() {
        let cfg = priority_sstf(CurveKind::Diagonal, 2, 3, 4, 3832);
        let mut s = CascadedSfc::new(cfg).unwrap();
        let h = head(0);
        s.enqueue(
            Request::read(1, 0, u64::MAX, 3800, 512, QosVector::new(&[0, 0])),
            &h,
        );
        s.enqueue(
            Request::read(2, 0, u64::MAX, 10, 512, QosVector::new(&[7, 7])),
            &h,
        );
        // Top-priority partition wins despite the long seek.
        assert_eq!(drain(&mut s, &h), vec![1, 2]);
    }
}
