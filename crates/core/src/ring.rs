//! Sharded multi-producer ingest ring for the dispatcher.
//!
//! The slot-arena [`crate::Dispatcher`] is single-threaded by design — its
//! preemption/SP/ER machinery is a serial state machine. What *can* run
//! concurrently is everything upstream of the heap: characterizing
//! arrivals is pure (`&Encapsulator`), so router threads can map their
//! slices of a chunk in parallel and only the final heap insertion needs
//! the scheduler. [`IngestRing`] is the hand-off point:
//!
//! * **Sharded lanes** — one lane per producer, each behind its own
//!   mutex, so producers never contend with each other (a producer only
//!   ever locks its own lane; the drain takes each lock once).
//! * **Per-producer sequence numbers** — every pushed entry is assigned
//!   the lane's next sequence number, and the drain verifies the stamps
//!   form exactly `0..n` per lane. A lost, duplicated, or reordered
//!   entry is a panic, not a silent reorder. Stamps are kept
//!   run-length-encoded — one `(start, len)` run per push call, merged
//!   when contiguous — so verification costs one comparison per push
//!   instead of one per entry, and the payload vector can be handed to
//!   the drain without a strip-the-stamps copy.
//! * **Deterministic drain order** — producer index first, sequence
//!   number second. Concurrency can change *when* entries land in a lane,
//!   never *where* they end up in the drained sequence. When producer `p`
//!   pushes the `p`-th contiguous slice of an arrival chunk in order, the
//!   drained sequence is exactly the original chunk order — which is what
//!   makes concurrent ingest provably bit-identical to serial insertion
//!   (see `sim::ingest_concurrent`).
//!
//! The payload is generic. Routed ingest (requests landing on arbitrary
//! shards) ships owned `(Request, v_c)` pairs — the default payload.
//! Chunked ingest, where each producer characterizes a *borrowed*
//! contiguous slice of one arrival chunk, ships only the `u128`
//! characterization values: the requests are zipped back from the
//! caller's chunk at drain time
//! ([`crate::CascadedSfc::drain_value_ring`]), so the hot hand-off moves
//! 16 bytes per request instead of a cloned 80-byte request tuple. The
//! sequencing and drain-order guarantees are payload-independent.

use sched::Request;
use std::sync::Mutex;

/// One producer's lane: payload items in push order, plus the sequence
/// stamps as `(start, len)` runs (one per non-contiguous push call) and
/// the next stamp to assign.
#[derive(Debug)]
struct Lane<T> {
    items: Vec<T>,
    runs: Vec<(u64, u64)>,
    next_seq: u64,
}

impl<T> Default for Lane<T> {
    fn default() -> Self {
        Lane {
            items: Vec::new(),
            runs: Vec::new(),
            next_seq: 0,
        }
    }
}

impl<T> Lane<T> {
    /// Record `len` new entries stamped `next_seq..next_seq + len`.
    fn stamp(&mut self, len: u64) {
        match self.runs.last_mut() {
            Some((start, run_len)) if *start + *run_len == self.next_seq => *run_len += len,
            _ => self.runs.push((self.next_seq, len)),
        }
        self.next_seq += len;
    }

    /// Verify the stamps cover exactly `0..items.len()` and reset the
    /// lane's sequencing for reuse, leaving `items` in place.
    fn verify_and_reset(&mut self, producer: usize) {
        let mut expect = 0u64;
        for &(start, len) in &self.runs {
            assert_eq!(
                start, expect,
                "ingest lane {producer}: sequence run starts at {start}, expected {expect}"
            );
            expect = start + len;
        }
        assert_eq!(
            expect,
            self.items.len() as u64,
            "ingest lane {producer}: stamps cover {expect} entries but {} are buffered",
            self.items.len()
        );
        self.runs.clear();
        self.next_seq = 0;
    }
}

/// A sharded MPSC hand-off ring with a fixed producer count and a
/// deterministic (producer-index, sequence) drain order. See the module
/// docs for the determinism argument and the choice of payload type.
#[derive(Debug)]
pub struct IngestRing<T = (Request, u128)> {
    lanes: Vec<Mutex<Lane<T>>>,
}

impl<T> IngestRing<T> {
    /// A ring with `producers` lanes (at least one).
    pub fn new(producers: usize) -> IngestRing<T> {
        IngestRing {
            lanes: (0..producers.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Number of producer lanes.
    pub fn producers(&self) -> usize {
        self.lanes.len()
    }

    /// Push one payload item onto `producer`'s lane. Callable through a
    /// shared reference from any thread; for a deterministic drain each
    /// lane should have a single pushing thread (its sequence stamps then
    /// record program order).
    ///
    /// # Panics
    ///
    /// Panics if `producer >= producers()`.
    pub fn push_item(&self, producer: usize, item: T) {
        let mut lane = self.lanes[producer].lock().expect("ingest lane poisoned");
        lane.items.push(item);
        lane.stamp(1);
    }

    /// Push a slice of payload items onto `producer`'s lane under one
    /// lock acquisition, preserving slice order.
    ///
    /// # Panics
    ///
    /// Panics if `producer >= producers()`.
    pub fn push_items(&self, producer: usize, items: &[T])
    where
        T: Clone,
    {
        let mut lane = self.lanes[producer].lock().expect("ingest lane poisoned");
        lane.items.extend_from_slice(items);
        lane.stamp(items.len() as u64);
    }

    /// Append items produced by `fill` directly into `producer`'s lane
    /// buffer, under its lock. Everything `fill` appends is stamped as
    /// one contiguous sequence run. Because lanes are single-producer,
    /// holding the lane lock for the duration of `fill` contends with
    /// nobody — this lets a producer run a whole batched
    /// characterization pass straight into the hand-off buffer without
    /// an intermediate copy.
    ///
    /// # Panics
    ///
    /// Panics if `producer >= producers()` or `fill` shrinks the buffer.
    pub fn push_with(&self, producer: usize, fill: impl FnOnce(&mut Vec<T>)) {
        let mut lane = self.lanes[producer].lock().expect("ingest lane poisoned");
        let before = lane.items.len();
        fill(&mut lane.items);
        let added = lane
            .items
            .len()
            .checked_sub(before)
            .expect("push_with fill must only append");
        lane.stamp(added as u64);
    }

    /// Entries currently buffered across all lanes.
    pub fn len(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("ingest lane poisoned").items.len())
            .sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take every lane's payload vector in producer-index order,
    /// verifying the sequence stamps and resetting the ring for reuse.
    /// This is the zero-copy drain: each vector comes back exactly as
    /// the producer pushed it (sequence order), with no per-entry work.
    ///
    /// # Panics
    ///
    /// Panics if any lane's stamps do not form exactly `0..n`.
    pub fn drain_lanes(&mut self) -> Vec<Vec<T>> {
        self.lanes
            .iter_mut()
            .enumerate()
            .map(|(p, slot)| {
                let lane = slot.get_mut().expect("ingest lane poisoned");
                lane.verify_and_reset(p);
                std::mem::take(&mut lane.items)
            })
            .collect()
    }

    /// Drain every lane in (producer-index, sequence) order, resetting
    /// the ring for reuse. The sequence stamps of each lane are verified
    /// to be exactly `0..n` — any gap or reorder panics. Carries an exact
    /// `size_hint` so the dispatcher's bulk path can reserve its arena
    /// and heap buffers in one shot instead of growing them
    /// geometrically.
    pub fn drain_items(&mut self) -> impl Iterator<Item = T> {
        let total = self.len();
        ExactHint {
            remaining: total,
            inner: self.drain_lanes().into_iter().flatten(),
        }
    }
}

impl IngestRing<(Request, u128)> {
    /// Push one characterized request onto `producer`'s lane.
    ///
    /// # Panics
    ///
    /// Panics if `producer >= producers()`.
    pub fn push(&self, producer: usize, req: Request, v: u128) {
        self.push_item(producer, (req, v));
    }

    /// Push a characterized chunk onto `producer`'s lane under one lock
    /// acquisition, preserving slice order.
    ///
    /// # Panics
    ///
    /// Panics if `producer >= producers()` or the slice lengths differ.
    pub fn push_chunk(&self, producer: usize, reqs: &[Request], vs: &[u128]) {
        assert_eq!(
            reqs.len(),
            vs.len(),
            "push_chunk: {} requests but {} values",
            reqs.len(),
            vs.len()
        );
        let mut lane = self.lanes[producer].lock().expect("ingest lane poisoned");
        lane.items.reserve(reqs.len());
        for (req, &v) in reqs.iter().zip(vs) {
            lane.items.push((req.clone(), v));
        }
        lane.stamp(reqs.len() as u64);
    }

    /// Drain every lane in (producer-index, sequence) order, resetting
    /// the ring for reuse. See [`IngestRing::drain_items`].
    pub fn drain(&mut self, mut f: impl FnMut(Request, u128)) {
        for (req, v) in self.drain_items() {
            f(req, v);
        }
    }
}

/// Wraps an iterator whose element count is known up front but whose
/// combinators (here `flatten`) erase it from `size_hint`.
struct ExactHint<I> {
    remaining: usize,
    inner: I,
}

impl<I: Iterator> Iterator for ExactHint<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.remaining -= 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::QosVector;

    fn req(id: u64) -> Request {
        Request::read(
            id,
            id * 10,
            500_000,
            (id % 100) as u32,
            65536,
            QosVector::new(&[1]),
        )
    }

    #[test]
    fn drains_in_producer_then_sequence_order() {
        let ring = IngestRing::new(3);
        // Interleave pushes across lanes in a scrambled order.
        ring.push(2, req(20), 20);
        ring.push(0, req(0), 0);
        ring.push(1, req(10), 10);
        ring.push(0, req(1), 1);
        ring.push(2, req(21), 21);
        assert_eq!(ring.len(), 5);
        let mut ring = ring;
        let mut seen = Vec::new();
        ring.drain(|r, v| seen.push((r.id, v)));
        assert_eq!(seen, vec![(0, 0), (1, 1), (10, 10), (20, 20), (21, 21)]);
        assert!(ring.is_empty());
        // Reusable after a drain: sequences restart at zero.
        ring.push(1, req(99), 99);
        let mut seen = Vec::new();
        ring.drain(|r, v| seen.push((r.id, v)));
        assert_eq!(seen, vec![(99, 99)]);
    }

    #[test]
    fn chunk_push_matches_singles() {
        let a = IngestRing::new(2);
        let b = IngestRing::new(2);
        let reqs: Vec<Request> = (0..5).map(req).collect();
        let vs: Vec<u128> = (0..5).collect();
        b.push_chunk(1, &reqs[..3], &vs[..3]);
        b.push_chunk(1, &reqs[3..], &vs[3..]);
        for (r, &v) in reqs.iter().zip(&vs) {
            a.push(1, r.clone(), v);
        }
        let (mut a, mut b) = (a, b);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.drain(|r, v| sa.push((r.id, v)));
        b.drain(|r, v| sb.push((r.id, v)));
        assert_eq!(sa, sb);
    }

    #[test]
    fn concurrent_producers_preserve_lane_order() {
        let ring = IngestRing::new(4);
        std::thread::scope(|scope| {
            for p in 0..4usize {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        ring.push(p, req(p as u64 * 1000 + i), i as u128);
                    }
                });
            }
        });
        let mut ring = ring;
        let mut seen = Vec::new();
        ring.drain(|r, v| seen.push((r.id, v)));
        let want: Vec<(u64, u128)> = (0..4u64)
            .flat_map(|p| (0..50u64).map(move |i| (p * 1000 + i, i as u128)))
            .collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn value_lanes_drain_in_chunk_order() {
        // A value-only ring: producers push slices of 0..20 and the drain
        // reassembles the original order with exact size information.
        let ring = IngestRing::<u128>::new(3);
        let vs: Vec<u128> = (0..20).collect();
        std::thread::scope(|scope| {
            let ring = &ring;
            let (a, b, c) = (&vs[..7], &vs[7..13], &vs[13..]);
            scope.spawn(move || ring.push_items(0, a));
            scope.spawn(move || ring.push_items(1, b));
            scope.spawn(move || ring.push_items(2, c));
        });
        assert_eq!(ring.len(), 20);
        let mut ring = ring;
        let it = ring.drain_items();
        assert_eq!(it.size_hint(), (20, Some(20)));
        assert_eq!(it.collect::<Vec<_>>(), (0..20).collect::<Vec<u128>>());
        assert!(ring.is_empty());
    }

    #[test]
    fn lanes_come_back_whole_and_in_producer_order() {
        let ring = IngestRing::<u128>::new(2);
        ring.push_items(1, &[30, 31]);
        ring.push_items(0, &[10]);
        ring.push_item(0, 11);
        let mut ring = ring;
        assert_eq!(ring.drain_lanes(), vec![vec![10, 11], vec![30, 31]]);
        // Sequencing restarts after the drain.
        ring.push_item(1, 77);
        assert_eq!(ring.drain_lanes(), vec![vec![], vec![77]]);
    }

    #[test]
    #[should_panic(expected = "5 requests but 4 values")]
    fn chunk_length_mismatch_panics() {
        let ring = IngestRing::new(1);
        let reqs: Vec<Request> = (0..5).map(req).collect();
        let vs = [0u128; 4];
        ring.push_chunk(0, &reqs, &vs);
    }
}
