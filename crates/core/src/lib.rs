//! # cascade — the Cascaded-SFC multimedia disk scheduler
//!
//! The primary contribution of *"Scalable Multimedia Disk Scheduling"*
//! (Mokbel, Aref, Elbassioni, Kamel — ICDE 2004), implemented as a
//! [`sched::DiskScheduler`].
//!
//! A disk request carrying `D` priority-like QoS parameters, a real-time
//! deadline, and a cylinder position is a point in `(D+2)`-dimensional
//! space. The **encapsulator** folds that point into a single
//! *characterization value* `v_c` through up to three cascaded
//! space-filling-curve stages:
//!
//! ```text
//!  D priorities ──SFC1──┐
//!                       ├──SFC2──┐
//!  deadline ────────────┘        ├──SFC3──► v_c ──► priority queue
//!  cylinder ─────────────────────┘
//! ```
//!
//! * **SFC1** — any catalogue curve ([`sfc::CurveKind`]) over the priority
//!   grid; the Diagonal minimizes total priority inversion, lexicographic
//!   curves protect one dimension absolutely (paper §5.1).
//! * **SFC2** — the weighted-diagonal family `v = priority + f·deadline`
//!   (or any 2-D catalogue curve); `f` dials between priority fidelity and
//!   deadline fidelity (§5.2).
//! * **SFC3** — the paper's partitioned sweep over (priority-deadline,
//!   cylinder distance), tuned by the scan-partition count `R` (§5.3).
//!
//! Every stage is optional (§4.1 flexibility): skip SFC2 when deadlines
//! are relaxed, SFC3 when transfers dominate seeks, SFC1 when there is a
//! single priority.
//!
//! The **dispatcher** serves requests in `v_c` order under one of three
//! regimes (§3.1): fully-preemptive, non-preemptive (double-queue swap),
//! or the paper's *conditionally-preemptive* scheduler with blocking
//! window `w`, the SP (Serve-and-Promote) anti-inversion policy, and the
//! ER (Expand-and-Reset) anti-starvation policy.
//!
//! ```
//! use cascade::{CascadeConfig, CascadedSfc};
//! use sched::{DiskScheduler, HeadState, QosVector, Request};
//!
//! // 3 QoS dimensions with 16 levels each, deadline horizon 1 s, f = 1,
//! // SFC3 with R = 3 over a 3832-cylinder disk.
//! let config = CascadeConfig::paper_default(3, 3832);
//! let mut sched = CascadedSfc::new(config).unwrap();
//!
//! let head = HeadState::new(0, 0, 3832);
//! let req = Request::read(1, 0, 500_000, 1200, 65536, QosVector::new(&[2, 0, 5]));
//! sched.enqueue(req, &head);
//! assert_eq!(sched.dequeue(&head).unwrap().id, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dispatcher;
mod encapsulator;
pub mod extend;
pub mod presets;
mod ring;
mod scheduler;
pub mod spec;

pub use config::{
    CascadeConfig, DispatchConfig, DistanceMode, PreemptionMode, Stage1, Stage2, Stage2Combiner,
    Stage3,
};
pub use dispatcher::Dispatcher;
pub use encapsulator::Encapsulator;
pub use ring::IngestRing;
pub use scheduler::CascadedSfc;
