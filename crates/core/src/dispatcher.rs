//! Part 2 of the Cascaded-SFC scheduler: the dispatcher.
//!
//! Serves requests in characterization-value order under one of the three
//! regimes of §3.1, with the SP (§3.2) and ER (§3.3) refinements:
//!
//! * **Fully-preemptive** — one priority queue; every arrival competes at
//!   once. Low priorities can starve.
//! * **Non-preemptive** — arrivals collect in a waiting queue `q'` while
//!   the active queue `q` drains; when `q` empties the queues swap.
//!   Starvation-free, but high-priority arrivals wait a whole batch.
//! * **Conditionally-preemptive** — an arrival enters `q` directly (a
//!   *preemption*) only when its value beats the in-service request's
//!   value by more than the blocking window `w`; otherwise it waits in
//!   `q'`.
//!   * **SP** (Serve-and-Promote): before each dispatch, any waiting
//!     request that beats the next candidate by more than `w` is promoted
//!     into `q`, bounding the priority inversion the window causes.
//!   * **ER** (Expand-and-Reset): each preemption multiplies `w` by the
//!     expansion factor `e`; when `q` drains and the queues swap, `w`
//!     resets. A sustained burst of high-priority arrivals therefore
//!     drives the scheduler toward non-preemptive behaviour, which is
//!     starvation-free.

use crate::config::{DispatchConfig, PreemptionMode};
use obs::{NullSink, TraceEvent, TraceSink};
use sched::Request;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Queue entry: a request tagged with its characterization value.
struct Entry {
    v: u128,
    req: Request,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.v == other.v && self.req.id == other.req.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    /// Max-heap order inverted: the *smallest* (v, id) is the maximum, so
    /// `BinaryHeap::pop` yields the highest-priority request.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.v, other.req.id).cmp(&(self.v, self.req.id))
    }
}

/// The dispatcher. Generic over nothing: values are `u128`
/// characterization values produced by the encapsulator.
pub struct Dispatcher {
    config: DispatchConfig,
    /// Active queue `q`.
    q: BinaryHeap<Entry>,
    /// Waiting queue `q'`.
    q_wait: BinaryHeap<Entry>,
    /// Base window in absolute value units.
    base_window: u128,
    /// Current (possibly ER-expanded) window.
    window: u128,
    /// Characterization value of the most recently dispatched request.
    current: Option<u128>,
    /// Counters for analysis.
    preemptions: u64,
    promotions: u64,
    swaps: u64,
    sheds: u64,
}

impl Dispatcher {
    /// Build a dispatcher; `max_value` is the size of the scheduling space
    /// (used to resolve the fractional window of
    /// [`PreemptionMode::Conditional`]).
    pub fn new(config: DispatchConfig, max_value: u128) -> Self {
        let base_window = match config.mode {
            PreemptionMode::Conditional { window } => {
                let w = window.clamp(0.0, 1.0);
                // max_value can exceed f64 precision; scale via integer
                // arithmetic on a per-mille basis.
                let permille = (w * 1000.0).round() as u128;
                max_value / 1000 * permille + (max_value % 1000) * permille / 1000
            }
            _ => 0,
        };
        Dispatcher {
            config,
            q: BinaryHeap::new(),
            q_wait: BinaryHeap::new(),
            base_window,
            window: base_window,
            current: None,
            preemptions: 0,
            promotions: 0,
            swaps: 0,
            sheds: 0,
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.q.len() + self.q_wait.len()
    }

    /// `true` when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depths of the active and waiting queues, `(q, q')`. Load-aware
    /// routers read this to steer arrivals toward lightly loaded shards.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.q.len(), self.q_wait.len())
    }

    /// (preemptions, SP promotions, queue swaps) since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.preemptions, self.promotions, self.swaps)
    }

    /// Requests shed by the bounded queue since construction.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// The current (possibly ER-expanded) blocking window.
    pub fn current_window(&self) -> u128 {
        self.window
    }

    /// Insert an arriving request with characterization value `v`.
    pub fn insert(&mut self, req: Request, v: u128) {
        self.insert_traced(req, v, 0, &mut NullSink);
    }

    /// [`Dispatcher::insert`], additionally reporting preemption and ER
    /// window events to `sink`, timestamped `now_us`. With
    /// [`obs::NullSink`] this compiles to exactly [`Dispatcher::insert`].
    pub fn insert_traced<S: TraceSink>(
        &mut self,
        req: Request,
        v: u128,
        now_us: u64,
        sink: &mut S,
    ) {
        let entry = Entry { v, req };
        // Bounded queue: a full dispatcher sheds the lowest-priority
        // pending request — possibly the arrival itself — before (or
        // instead of) inserting.
        let entry = if matches!(self.config.max_queue, Some(cap) if self.len() >= cap) {
            match self.shed_worst(entry, now_us, sink) {
                Some(e) => e,
                None => return, // the arrival itself was the victim
            }
        } else {
            entry
        };
        match self.config.mode {
            PreemptionMode::Fully => self.q.push(entry),
            PreemptionMode::NonPreemptive => self.q_wait.push(entry),
            PreemptionMode::Conditional { .. } => {
                let significantly_higher = match self.current {
                    // Idle disk: nothing to preempt, join the active queue.
                    None => true,
                    Some(cur) => v < cur.saturating_sub(self.window),
                };
                if significantly_higher {
                    if let Some(cur) = self.current {
                        self.preemptions += 1;
                        if S::ENABLED {
                            sink.emit(&TraceEvent::Preempt {
                                now_us,
                                preempted_v: cur,
                                by_v: v,
                            });
                        }
                        self.expand_window(now_us, sink);
                    }
                    self.q.push(entry);
                } else {
                    self.q_wait.push(entry);
                }
            }
        }
    }

    /// Dispatch the next request (the disk became idle).
    ///
    /// `refresh` (when configured via
    /// [`DispatchConfig::refresh_on_swap`]) recomputes characterization
    /// values for the whole waiting queue at the swap boundary,
    /// re-anchoring time-dependent coordinates.
    pub fn pop(&mut self, refresh: Option<&mut dyn FnMut(&Request) -> u128>) -> Option<Request> {
        self.pop_traced(refresh, 0, &mut NullSink)
    }

    /// [`Dispatcher::pop`], additionally reporting queue-swap, ER-reset
    /// and SP-promotion events to `sink`, timestamped `now_us`. With
    /// [`obs::NullSink`] this compiles to exactly [`Dispatcher::pop`].
    pub fn pop_traced<S: TraceSink>(
        &mut self,
        mut refresh: Option<&mut dyn FnMut(&Request) -> u128>,
        now_us: u64,
        sink: &mut S,
    ) -> Option<Request> {
        // Swap empty active queue with the waiting queue.
        if self.q.is_empty() {
            if self.q_wait.is_empty() {
                self.current = None;
                return None;
            }
            std::mem::swap(&mut self.q, &mut self.q_wait);
            self.swaps += 1;
            if S::ENABLED {
                sink.emit(&TraceEvent::QueueSwap {
                    now_us,
                    batch: self.q.len() as u64,
                });
            }
            // ER: the active queue turned over — reset the window.
            if S::ENABLED && self.config.expand_factor.is_some() && self.window != self.base_window
            {
                sink.emit(&TraceEvent::ErReset {
                    now_us,
                    window: self.base_window,
                });
            }
            self.window = self.base_window;
            if self.config.refresh_on_swap {
                if let Some(f) = refresh.as_mut() {
                    let entries = std::mem::take(&mut self.q).into_vec();
                    self.q = entries
                        .into_iter()
                        .map(|mut e| {
                            e.v = f(&e.req);
                            e
                        })
                        .collect();
                }
            }
        }

        // SP: promote waiting requests that now significantly beat the
        // next candidate.
        if self.config.serve_promote {
            loop {
                let next_v = self.q.peek().expect("q non-empty").v;
                let Some(wait_top) = self.q_wait.peek() else {
                    break;
                };
                if wait_top.v < next_v.saturating_sub(self.window) {
                    let e = self.q_wait.pop().expect("peeked");
                    self.promotions += 1;
                    if S::ENABLED {
                        sink.emit(&TraceEvent::SpPromote { now_us, v: e.v });
                    }
                    self.expand_window(now_us, sink);
                    self.q.push(e);
                } else {
                    break;
                }
            }
        }

        let entry = self.q.pop().expect("q non-empty");
        self.current = Some(entry.v);
        Some(entry.req)
    }

    /// Visit every pending request.
    pub fn for_each_pending(&self, f: &mut dyn FnMut(&Request)) {
        for e in self.q.iter().chain(self.q_wait.iter()) {
            f(&e.req);
        }
    }

    /// Overload victim selection: find the globally *worst* pending
    /// request (largest `(v, id)` — SFC2's victim-selection order, ties
    /// broken against the newer request) across both queues and the
    /// incoming entry. Returns `Some(incoming)` when a queued request was
    /// evicted to make room, `None` when the incoming entry itself is the
    /// victim. The eviction is O(queue) — shedding only happens under
    /// overload, where losing a little dispatcher time to save a disk
    /// service is the right trade.
    fn shed_worst<S: TraceSink>(
        &mut self,
        incoming: Entry,
        now_us: u64,
        sink: &mut S,
    ) -> Option<Entry> {
        let worst_of = |h: &BinaryHeap<Entry>| h.iter().map(|e| (e.v, e.req.id)).max();
        let worst_q = worst_of(&self.q);
        let worst_wait = worst_of(&self.q_wait);
        let worst_pending = worst_q.max(worst_wait);
        let record = |d: &mut Self, s: &mut S, victim_v: u128, victim_id: u64| {
            d.sheds += 1;
            if S::ENABLED {
                s.emit(&TraceEvent::Shed {
                    now_us,
                    req: victim_id,
                    v: victim_v,
                });
            }
        };
        match worst_pending {
            Some(worst) if worst > (incoming.v, incoming.req.id) => {
                // Evict the queued victim from whichever queue holds it.
                let heap = if worst_q == Some(worst) {
                    &mut self.q
                } else {
                    &mut self.q_wait
                };
                let mut entries = std::mem::take(heap).into_vec();
                let pos = entries
                    .iter()
                    .position(|e| (e.v, e.req.id) == worst)
                    .expect("victim came from this heap");
                entries.swap_remove(pos);
                *heap = entries.into();
                record(self, sink, worst.0, worst.1);
                Some(incoming)
            }
            _ => {
                // The arrival is the worst of the lot: shed it unqueued.
                record(self, sink, incoming.v, incoming.req.id);
                None
            }
        }
    }

    fn expand_window<S: TraceSink>(&mut self, now_us: u64, sink: &mut S) {
        if let Some(e) = self.config.expand_factor {
            let expanded = (self.window as f64 * e).min(u64::MAX as f64) as u128;
            self.window = expanded.max(self.window.saturating_add(1));
            if S::ENABLED {
                sink.emit(&TraceEvent::ErExpand {
                    now_us,
                    window: self.window,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{QosVector, Request};

    fn req(id: u64) -> Request {
        Request::read(id, 0, u64::MAX, 0, 512, QosVector::none())
    }

    fn fully() -> Dispatcher {
        Dispatcher::new(DispatchConfig::fully_preemptive(), 1000)
    }

    #[test]
    fn fully_preemptive_is_a_priority_queue() {
        let mut d = fully();
        d.insert(req(1), 50);
        d.insert(req(2), 10);
        d.insert(req(3), 99);
        assert_eq!(d.pop(None).unwrap().id, 2);
        d.insert(req(4), 5); // arrives mid-service, still competes
        assert_eq!(d.pop(None).unwrap().id, 4);
        assert_eq!(d.pop(None).unwrap().id, 1);
        assert_eq!(d.pop(None).unwrap().id, 3);
        assert!(d.pop(None).is_none());
    }

    #[test]
    fn non_preemptive_batches_by_swap() {
        let mut d = Dispatcher::new(DispatchConfig::non_preemptive(), 1000);
        d.insert(req(1), 50);
        d.insert(req(2), 80);
        assert_eq!(d.pop(None).unwrap().id, 1); // swap happened
        d.insert(req(3), 1); // much higher priority, but must wait
        assert_eq!(d.pop(None).unwrap().id, 2);
        assert_eq!(d.pop(None).unwrap().id, 3);
    }

    fn conditional(window: f64, sp: bool, er: Option<f64>) -> Dispatcher {
        Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window },
                serve_promote: sp,
                expand_factor: er,
                refresh_on_swap: false,
                max_queue: None,
            },
            1000,
        )
    }

    #[test]
    fn conditional_window_blocks_marginal_arrivals() {
        let mut d = conditional(0.1, false, None); // window = 100
        d.insert(req(1), 500);
        assert_eq!(d.pop(None).unwrap().id, 1); // current = 500
        d.insert(req(2), 450); // higher, but within the window
        d.insert(req(3), 350); // significantly higher: preempts
        assert_eq!(d.pop(None).unwrap().id, 3);
        assert_eq!(d.pop(None).unwrap().id, 2);
        assert_eq!(d.counters().0, 1); // one preemption
    }

    #[test]
    fn paper_example_figure4() {
        // Requests T1..T7 with priorities as in Figure 4; the published
        // service order is T1, T2, T5, T6, T3, T7, T4.
        // Priority line (lower = higher priority): T5 < T6 < T2 < T3 < T7
        // < T1 < T4, with T2, T3 within the window of T1, and T6 outside
        // the window of T3, T7 outside the window of T4.
        let w = 0.2; // window = 200 of 1000
        let mut d = conditional(w, true, None);
        let v = |id: u64| match id {
            1 => 600u128,
            2 => 450,
            3 => 500,
            4 => 800,
            5 => 100,
            6 => 250,
            7 => 400,
            _ => unreachable!(),
        };
        // T1 arrives on an idle disk and is served immediately.
        d.insert(req(1), v(1));
        assert_eq!(d.pop(None).unwrap().id, 1);
        // T2, T3, T4 arrive during T1's service; none beats 600-200.
        for id in [2, 3, 4] {
            d.insert(req(id), v(id));
        }
        // T1 done: swap, serve T2 (highest in the batch).
        assert_eq!(d.pop(None).unwrap().id, 2);
        // T5, T6, T7 arrive during T2; only T5 < 450-200 preempts.
        for id in [5, 6, 7] {
            d.insert(req(id), v(id));
        }
        assert_eq!(d.pop(None).unwrap().id, 5);
        // Before serving T3, SP promotes T6 (250 < 500-200).
        assert_eq!(d.pop(None).unwrap().id, 6);
        assert_eq!(d.pop(None).unwrap().id, 3);
        // Before serving T4, SP promotes T7 (400 < 800-200).
        assert_eq!(d.pop(None).unwrap().id, 7);
        assert_eq!(d.pop(None).unwrap().id, 4);
        assert!(d.pop(None).is_none());
    }

    #[test]
    fn er_expands_until_non_preemptive() {
        let mut d = conditional(0.05, false, Some(4.0)); // window 50, e=4
        d.insert(req(1), 900);
        assert_eq!(d.pop(None).unwrap().id, 1);
        // A stream of ever-higher priorities: each preemption expands w.
        d.insert(req(2), 700); // 700 < 900-50: preempts, w -> 200
        assert_eq!(d.pop(None).unwrap().id, 2); // current = 700
        d.insert(req(3), 480); // 480 < 700-200: preempts, w -> 800
        assert_eq!(d.pop(None).unwrap().id, 3); // current = 480
        d.insert(req(4), 1); // 1 > 480-800 (saturates to 0): blocked!
        assert_eq!(d.len(), 1);
        assert_eq!(d.counters().0, 2);
        // Queue drains, swap resets the window.
        assert_eq!(d.pop(None).unwrap().id, 4);
        assert_eq!(d.current_window(), d.base_window);
    }

    #[test]
    fn traced_events_reconcile_with_counters() {
        use obs::RingSink;
        let mut d = conditional(0.05, true, Some(4.0));
        let mut sink = RingSink::new(1024);
        let mut t = 0u64;
        // A descending-priority stream drives preemptions, promotions and
        // swaps; every counter increment must emit a matching event.
        let values = [900u128, 700, 480, 820, 10, 650, 5, 999, 300];
        for (i, &v) in values.iter().enumerate() {
            d.insert_traced(req(i as u64), v, t, &mut sink);
            t += 10;
            if i % 2 == 1 {
                let _ = d.pop_traced(None, t, &mut sink);
                t += 10;
            }
        }
        while d.pop_traced(None, t, &mut sink).is_some() {
            t += 10;
        }
        let (preempts, promotions, swaps) = d.counters();
        let count = |name: &str| sink.events().filter(|e| e.name() == name).count() as u64;
        assert_eq!(count("preempt"), preempts);
        assert_eq!(count("sp_promote"), promotions);
        assert_eq!(count("queue_swap"), swaps);
        assert!(preempts > 0 && swaps > 0, "workload too tame to test");
        // Each preemption/promotion expanded the window (e is set).
        assert_eq!(count("er_expand"), preempts + promotions);
        // Resets only happen at swaps after an expansion.
        assert!(count("er_reset") <= swaps);
    }

    #[test]
    fn untraced_and_traced_behave_identically() {
        let mut plain = conditional(0.1, true, Some(2.0));
        let mut traced = conditional(0.1, true, Some(2.0));
        let mut sink = obs::RingSink::new(256);
        let values = [500u128, 450, 350, 900, 20, 610];
        for (i, &v) in values.iter().enumerate() {
            plain.insert(req(i as u64), v);
            traced.insert_traced(req(i as u64), v, i as u64, &mut sink);
        }
        loop {
            let a = plain.pop(None);
            let b = traced.pop_traced(None, 0, &mut sink);
            assert_eq!(a.as_ref().map(|r| r.id), b.as_ref().map(|r| r.id));
            if a.is_none() {
                break;
            }
        }
        assert_eq!(plain.counters(), traced.counters());
    }

    #[test]
    fn window_fraction_resolution() {
        let d = Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window: 0.25 },
                serve_promote: false,
                expand_factor: None,
                refresh_on_swap: false,
                max_queue: None,
            },
            4000,
        );
        assert_eq!(d.current_window(), 1000);
    }

    #[test]
    fn bounded_queue_sheds_worst_victim() {
        let mut d = Dispatcher::new(DispatchConfig::fully_preemptive().with_max_queue(3), 1000);
        d.insert(req(1), 50);
        d.insert(req(2), 900); // the eventual victim
        d.insert(req(3), 10);
        assert_eq!(d.len(), 3);
        // Queue full: a better arrival evicts the worst pending request.
        d.insert(req(4), 200);
        assert_eq!(d.len(), 3);
        assert_eq!(d.sheds(), 1);
        // A worse-than-everything arrival is itself the victim.
        d.insert(req(5), 999);
        assert_eq!(d.len(), 3);
        assert_eq!(d.sheds(), 2);
        // What remains is exactly the best three, in priority order.
        let order: Vec<u64> = std::iter::from_fn(|| d.pop(None).map(|r| r.id)).collect();
        assert_eq!(order, vec![3, 1, 4]);
    }

    #[test]
    fn shed_ties_evict_the_newer_request() {
        let mut d = Dispatcher::new(DispatchConfig::fully_preemptive().with_max_queue(2), 1000);
        d.insert(req(1), 700);
        d.insert(req(2), 700);
        d.insert(req(3), 700); // same v: newest id loses
        assert_eq!(d.sheds(), 1);
        let order: Vec<u64> = std::iter::from_fn(|| d.pop(None).map(|r| r.id)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn shedding_spans_both_queues_of_the_conditional_mode() {
        use obs::RingSink;
        let mut d = Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window: 0.1 },
                serve_promote: false,
                expand_factor: None,
                refresh_on_swap: false,
                max_queue: Some(2),
            },
            1000,
        );
        let mut sink = RingSink::new(64);
        d.insert_traced(req(1), 500, 0, &mut sink);
        assert_eq!(d.pop_traced(None, 1, &mut sink).unwrap().id, 1);
        d.insert_traced(req(2), 300, 2, &mut sink); // preempts into q
        d.insert_traced(req(3), 800, 3, &mut sink); // waits in q'
                                                    // Full. A high-priority arrival evicts the q' victim (800).
        d.insert_traced(req(4), 100, 4, &mut sink);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sheds(), 1);
        // The shed event names the victim.
        let shed: Vec<_> = sink
            .events()
            .filter(|e| e.name() == "shed")
            .map(|e| e.req())
            .collect();
        assert_eq!(shed, vec![Some(3)]);
        let order: Vec<u64> = std::iter::from_fn(|| d.pop(None).map(|r| r.id)).collect();
        assert_eq!(order, vec![4, 2]);
    }

    #[test]
    fn unbounded_queue_never_sheds() {
        let mut d = fully();
        for i in 0..1000 {
            d.insert(req(i), (i as u128) % 97);
        }
        assert_eq!(d.sheds(), 0);
        assert_eq!(d.len(), 1000);
    }

    #[test]
    fn pending_iteration_covers_both_queues() {
        let mut d = conditional(0.0, false, None);
        d.insert(req(1), 10);
        assert_eq!(d.pop(None).unwrap().id, 1);
        d.insert(req(2), 5); // preempts into q (0 window, strictly higher)
        d.insert(req(3), 50); // waits
        let mut ids = Vec::new();
        d.for_each_pending(&mut |r| ids.push(r.id));
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
