//! Part 2 of the Cascaded-SFC scheduler: the dispatcher.
//!
//! Serves requests in characterization-value order under one of the three
//! regimes of §3.1, with the SP (§3.2) and ER (§3.3) refinements:
//!
//! * **Fully-preemptive** — one priority queue; every arrival competes at
//!   once. Low priorities can starve.
//! * **Non-preemptive** — arrivals collect in a waiting queue `q'` while
//!   the active queue `q` drains; when `q` empties the queues swap.
//!   Starvation-free, but high-priority arrivals wait a whole batch.
//! * **Conditionally-preemptive** — an arrival enters `q` directly (a
//!   *preemption*) only when its value beats the in-service request's
//!   value by more than the blocking window `w`; otherwise it waits in
//!   `q'`.
//!   * **SP** (Serve-and-Promote): before each dispatch, any waiting
//!     request that beats the next candidate by more than `w` is promoted
//!     into `q`, bounding the priority inversion the window causes.
//!   * **ER** (Expand-and-Reset): each preemption multiplies `w` by the
//!     expansion factor `e`; when `q` drains and the queues swap, `w`
//!     resets. A sustained burst of high-priority arrivals therefore
//!     drives the scheduler toward non-preemptive behaviour, which is
//!     starvation-free.

use crate::config::{DispatchConfig, PreemptionMode};
use obs::{NullSink, TraceEvent, TraceSink};
use sched::Request;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Queue entry: the characterization value, the request id (the ordering
/// tie-break), and the request's arena slot. Requests themselves live once
/// in the dispatcher's arena; the heaps sift these 32-byte entries instead
/// of whole `Request` structs.
#[derive(Clone, Copy)]
struct Entry {
    v: u128,
    id: u64,
    /// Arena slot holding the request.
    slot: u32,
    /// Slot generation at insertion. A mismatch with the slot's current
    /// generation marks the entry *stale* (its request was shed); stale
    /// entries are skipped lazily instead of rebuilding the heap.
    gen: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.v == other.v && self.id == other.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    /// Max-heap order inverted: the *smallest* (v, id) is the maximum, so
    /// `BinaryHeap::pop` yields the highest-priority request.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.v, other.id).cmp(&(self.v, self.id))
    }
}

/// One arena slot: the request (while pending) and the slot's generation,
/// bumped every time the slot is vacated.
struct Slot {
    req: Option<Request>,
    gen: u32,
}

/// Borrow the request an entry points at, or `None` if the entry is stale.
#[inline]
fn live_req<'a>(slots: &'a [Slot], e: &Entry) -> Option<&'a Request> {
    let s = &slots[e.slot as usize];
    if s.gen != e.gen {
        return None;
    }
    s.req.as_ref()
}

/// The dispatcher. Generic over nothing: values are `u128`
/// characterization values produced by the encapsulator.
///
/// Requests are stored once, in a slab arena (`slots` + `free` list); the
/// queues hold `(v, id, slot)` entries. Shedding marks a slot stale instead
/// of rebuilding the owning heap, and `q_live`/`qw_live` track the live
/// entry counts the public accessors report.
pub struct Dispatcher {
    config: DispatchConfig,
    /// Active queue `q`.
    q: BinaryHeap<Entry>,
    /// Waiting queue `q'`.
    q_wait: BinaryHeap<Entry>,
    /// Request arena and its free list.
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Live (non-stale) entries in `q` and `q_wait`.
    q_live: usize,
    qw_live: usize,
    /// Stale entries still sitting in either heap. Staleness only arises
    /// when a shed vacates a queued victim's slot, so while this is zero
    /// (always, for unbounded queues) the pop path skips every
    /// generation check — each one is a random-access load into the
    /// arena, and they dominate dequeue cost when they miss cache.
    stale: usize,
    /// Base window in absolute value units.
    base_window: u128,
    /// Current (possibly ER-expanded) window.
    window: u128,
    /// Characterization value of the most recently dispatched request.
    current: Option<u128>,
    /// Counters for analysis.
    preemptions: u64,
    promotions: u64,
    swaps: u64,
    sheds: u64,
}

impl Dispatcher {
    /// Build a dispatcher; `max_value` is the size of the scheduling space
    /// (used to resolve the fractional window of
    /// [`PreemptionMode::Conditional`]).
    pub fn new(config: DispatchConfig, max_value: u128) -> Self {
        let base_window = match config.mode {
            PreemptionMode::Conditional { window } => {
                let w = window.clamp(0.0, 1.0);
                // max_value can exceed f64 precision; scale via integer
                // arithmetic on a per-mille basis.
                let permille = (w * 1000.0).round() as u128;
                max_value / 1000 * permille + (max_value % 1000) * permille / 1000
            }
            _ => 0,
        };
        Dispatcher {
            config,
            q: BinaryHeap::new(),
            q_wait: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            q_live: 0,
            qw_live: 0,
            stale: 0,
            base_window,
            window: base_window,
            current: None,
            preemptions: 0,
            promotions: 0,
            swaps: 0,
            sheds: 0,
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.q_live + self.qw_live
    }

    /// `true` when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depths of the active and waiting queues, `(q, q')`. Load-aware
    /// routers read this to steer arrivals toward lightly loaded shards.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.q_live, self.qw_live)
    }

    /// Move a request into the arena, returning its slot and generation.
    fn alloc(&mut self, req: Request) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.req = Some(req);
            (slot, s.gen)
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                req: Some(req),
                gen: 0,
            });
            (slot, 0)
        }
    }

    /// Take the request out of a live slot, vacating it.
    fn take(&mut self, slot: u32) -> Request {
        let s = &mut self.slots[slot as usize];
        let req = s.req.take().expect("slot holds a live request");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        req
    }

    /// Vacate a shed victim's slot; its heap entry goes stale in place.
    fn vacate(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.req = None;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.stale += 1;
    }

    /// Pop stale entries off the heap top so `peek` sees a live entry.
    fn drop_stale_top(heap: &mut BinaryHeap<Entry>, slots: &[Slot], stale: &mut usize) {
        while let Some(e) = heap.peek() {
            if live_req(slots, e).is_some() {
                break;
            }
            heap.pop();
            *stale -= 1;
        }
    }

    /// (preemptions, SP promotions, queue swaps) since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.preemptions, self.promotions, self.swaps)
    }

    /// Inherit another dispatcher's lifetime counters. A runtime retune
    /// rebuilds the dispatcher from scratch; carrying the counters over
    /// keeps shed/preemption ledgers (and the event-vs-counter
    /// reconciliation built on them) continuous across the swap.
    pub(crate) fn carry_counters_from(&mut self, old: &Dispatcher) {
        self.preemptions = old.preemptions;
        self.promotions = old.promotions;
        self.swaps = old.swaps;
        self.sheds = old.sheds;
    }

    /// Requests shed by the bounded queue since construction.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// The current (possibly ER-expanded) blocking window.
    pub fn current_window(&self) -> u128 {
        self.window
    }

    /// Insert an arriving request with characterization value `v`.
    pub fn insert(&mut self, req: Request, v: u128) {
        self.insert_traced(req, v, 0, &mut NullSink);
    }

    /// [`Dispatcher::insert`], additionally reporting preemption and ER
    /// window events to `sink`, timestamped `now_us`. With
    /// [`obs::NullSink`] this compiles to exactly [`Dispatcher::insert`].
    pub fn insert_traced<S: TraceSink>(
        &mut self,
        req: Request,
        v: u128,
        now_us: u64,
        sink: &mut S,
    ) {
        // Bounded queue: a full dispatcher sheds the lowest-priority
        // pending request — possibly the arrival itself — before (or
        // instead of) inserting.
        if matches!(self.config.max_queue, Some(cap) if self.len() >= cap)
            && !self.shed_worst(v, req.id, now_us, sink)
        {
            return; // the arrival itself was the victim
        }
        let id = req.id;
        let (slot, gen) = self.alloc(req);
        let entry = Entry { v, id, slot, gen };
        match self.config.mode {
            PreemptionMode::Fully => {
                self.q.push(entry);
                self.q_live += 1;
            }
            PreemptionMode::NonPreemptive => {
                self.q_wait.push(entry);
                self.qw_live += 1;
            }
            PreemptionMode::Conditional { .. } => {
                let significantly_higher = match self.current {
                    // Idle disk: nothing to preempt, join the active queue.
                    None => true,
                    Some(cur) => v < cur.saturating_sub(self.window),
                };
                if significantly_higher {
                    if let Some(cur) = self.current {
                        self.preemptions += 1;
                        if S::ENABLED {
                            sink.emit(&TraceEvent::Preempt {
                                now_us,
                                preempted_v: cur,
                                by_v: v,
                            });
                        }
                        self.expand_window(now_us, sink);
                    }
                    self.q.push(entry);
                    self.q_live += 1;
                } else {
                    self.q_wait.push(entry);
                    self.qw_live += 1;
                }
            }
        }
    }

    /// Insert a characterized arrival chunk in one pass, each request
    /// timestamped at its own arrival.
    ///
    /// Routing replays exactly the serial [`Dispatcher::insert_traced`]
    /// sequence — the Conditional preemption decision, ER window
    /// expansion, counters, and trace events all observe the same state
    /// per entry, so the result is bit-identical to inserting the chunk
    /// one request at a time (pop order, counters, and the event stream;
    /// pinned by the `bulk_insert_*` tests and the oracle `diff_batch`
    /// gate). Only the heap pushes are deferred: each queue's entries are
    /// collected and merged with one O(n) heapify-append instead of n
    /// sift-ups, which is what makes draining a whole ingest ring cheaper
    /// than the serial enqueue loop. A bounded queue (`max_queue`) makes
    /// the shed decision depend on the live length at every arrival, so
    /// that configuration keeps the serial loop.
    pub fn insert_bulk_traced<S: TraceSink>(
        &mut self,
        items: impl Iterator<Item = (Request, u128)>,
        sink: &mut S,
    ) {
        if self.config.max_queue.is_some() {
            for (req, v) in items {
                let now = req.arrival_us;
                self.insert_traced(req, v, now, sink);
            }
            return;
        }
        let (lo, hi) = items.size_hint();
        let n = hi.unwrap_or(lo);
        // Grow the slot arena once for every entry the free list cannot
        // absorb: per-push geometric growth re-copies the arena log(n)
        // times, a cost the serial path cannot avoid but a sized bulk
        // insert can.
        self.slots.reserve(n.saturating_sub(self.free.len()));
        let mut to_q: Vec<Entry> = Vec::new();
        let mut to_qw: Vec<Entry> = Vec::new();
        match self.config.mode {
            PreemptionMode::NonPreemptive => to_qw.reserve(n),
            // Conditional arrivals land in the active queue while the
            // disk idles, which is the bulk-ingest common case.
            PreemptionMode::Fully | PreemptionMode::Conditional { .. } => to_q.reserve(n),
        }
        for (req, v) in items {
            let now_us = req.arrival_us;
            let id = req.id;
            let (slot, gen) = self.alloc(req);
            let entry = Entry { v, id, slot, gen };
            match self.config.mode {
                PreemptionMode::Fully => to_q.push(entry),
                PreemptionMode::NonPreemptive => to_qw.push(entry),
                PreemptionMode::Conditional { .. } => {
                    let significantly_higher = match self.current {
                        None => true,
                        Some(cur) => v < cur.saturating_sub(self.window),
                    };
                    if significantly_higher {
                        if let Some(cur) = self.current {
                            self.preemptions += 1;
                            if S::ENABLED {
                                sink.emit(&TraceEvent::Preempt {
                                    now_us,
                                    preempted_v: cur,
                                    by_v: v,
                                });
                            }
                            self.expand_window(now_us, sink);
                        }
                        to_q.push(entry);
                    } else {
                        to_qw.push(entry);
                    }
                }
            }
        }
        self.q_live += to_q.len();
        self.qw_live += to_qw.len();
        if !to_q.is_empty() {
            let mut add = BinaryHeap::from(to_q);
            self.q.append(&mut add);
        }
        if !to_qw.is_empty() {
            let mut add = BinaryHeap::from(to_qw);
            self.q_wait.append(&mut add);
        }
    }

    /// Dispatch the next request (the disk became idle).
    ///
    /// `refresh` (when configured via
    /// [`DispatchConfig::refresh_on_swap`]) recomputes characterization
    /// values for the whole waiting queue at the swap boundary,
    /// re-anchoring time-dependent coordinates.
    pub fn pop(&mut self, refresh: Option<&mut dyn FnMut(&Request) -> u128>) -> Option<Request> {
        self.pop_traced(refresh, 0, &mut NullSink)
    }

    /// [`Dispatcher::pop`], additionally reporting queue-swap, ER-reset
    /// and SP-promotion events to `sink`, timestamped `now_us`. With
    /// [`obs::NullSink`] this compiles to exactly [`Dispatcher::pop`].
    pub fn pop_traced<S: TraceSink>(
        &mut self,
        mut refresh: Option<&mut dyn FnMut(&Request) -> u128>,
        now_us: u64,
        sink: &mut S,
    ) -> Option<Request> {
        // Swap empty active queue with the waiting queue.
        if self.q_live == 0 {
            if self.qw_live == 0 {
                // Fully drained: clear any stale residue so the heaps
                // don't accumulate dead entries across idle periods.
                self.q.clear();
                self.q_wait.clear();
                self.stale = 0;
                self.current = None;
                return None;
            }
            self.q.clear();
            std::mem::swap(&mut self.q, &mut self.q_wait);
            std::mem::swap(&mut self.q_live, &mut self.qw_live);
            self.swaps += 1;
            if S::ENABLED {
                sink.emit(&TraceEvent::QueueSwap {
                    now_us,
                    batch: self.q_live as u64,
                });
            }
            // ER: the active queue turned over — reset the window.
            if S::ENABLED && self.config.expand_factor.is_some() && self.window != self.base_window
            {
                sink.emit(&TraceEvent::ErReset {
                    now_us,
                    window: self.base_window,
                });
            }
            self.window = self.base_window;
            if self.config.refresh_on_swap {
                if let Some(f) = refresh.as_mut() {
                    let entries = std::mem::take(&mut self.q).into_vec();
                    let mut rebuilt = Vec::with_capacity(self.q_live);
                    for mut e in entries {
                        let Some(req) = live_req(&self.slots, &e) else {
                            self.stale -= 1; // dropped during the rebuild
                            continue;
                        };
                        e.v = f(req);
                        rebuilt.push(e);
                    }
                    self.q = rebuilt.into();
                }
            }
        }

        // SP: promote waiting requests that now significantly beat the
        // next candidate.
        if self.config.serve_promote && self.qw_live > 0 {
            loop {
                if self.stale > 0 {
                    Self::drop_stale_top(&mut self.q, &self.slots, &mut self.stale);
                    Self::drop_stale_top(&mut self.q_wait, &self.slots, &mut self.stale);
                }
                let next_v = self.q.peek().expect("q non-empty").v;
                let Some(wait_top) = self.q_wait.peek() else {
                    break;
                };
                if wait_top.v < next_v.saturating_sub(self.window) {
                    let e = self.q_wait.pop().expect("peeked");
                    self.qw_live -= 1;
                    self.promotions += 1;
                    if S::ENABLED {
                        sink.emit(&TraceEvent::SpPromote { now_us, v: e.v });
                    }
                    self.expand_window(now_us, sink);
                    self.q.push(e);
                    self.q_live += 1;
                } else {
                    break;
                }
            }
        }

        let entry = if self.stale == 0 {
            self.q.pop().expect("q has a live entry")
        } else {
            loop {
                let e = self.q.pop().expect("q has a live entry");
                if live_req(&self.slots, &e).is_some() {
                    break e;
                }
                self.stale -= 1;
            }
        };
        self.q_live -= 1;
        self.current = Some(entry.v);
        Some(self.take(entry.slot))
    }

    /// Visit every pending request.
    pub fn for_each_pending(&self, f: &mut dyn FnMut(&Request)) {
        for e in self.q.iter().chain(self.q_wait.iter()) {
            if let Some(r) = live_req(&self.slots, e) {
                f(r);
            }
        }
    }

    /// Overload victim selection: find the globally *worst* live pending
    /// request (largest `(v, id)` — SFC2's victim-selection order, ties
    /// broken against the newer request) across both queues and the
    /// incoming `(v, id)`. Returns `true` when a queued request was
    /// evicted to make room, `false` when the arrival itself is the
    /// victim. Eviction just vacates the victim's arena slot — its heap
    /// entry goes stale and is skipped lazily — so shedding is O(queue)
    /// scan with no heap rebuild.
    fn shed_worst<S: TraceSink>(&mut self, v: u128, id: u64, now_us: u64, sink: &mut S) -> bool {
        let worst_of = |h: &BinaryHeap<Entry>, slots: &[Slot]| {
            h.iter()
                .filter(|e| live_req(slots, e).is_some())
                .map(|e| (e.v, e.id, e.slot))
                .max_by_key(|&(v, id, _)| (v, id))
        };
        let worst_q = worst_of(&self.q, &self.slots);
        let worst_wait = worst_of(&self.q_wait, &self.slots);
        // On a cross-queue tie prefer the q victim (matches the historical
        // eviction order; ties cannot actually occur — ids are unique).
        let (victim, from_q) = match (worst_q, worst_wait) {
            (Some(a), Some(b)) => {
                if (a.0, a.1) >= (b.0, b.1) {
                    (Some(a), true)
                } else {
                    (Some(b), false)
                }
            }
            (Some(a), None) => (Some(a), true),
            (None, b) => (b, false),
        };
        self.sheds += 1;
        match victim {
            Some((wv, wid, wslot)) if (wv, wid) > (v, id) => {
                self.vacate(wslot);
                if from_q {
                    self.q_live -= 1;
                } else {
                    self.qw_live -= 1;
                }
                if S::ENABLED {
                    sink.emit(&TraceEvent::Shed {
                        now_us,
                        req: wid,
                        v: wv,
                    });
                }
                true
            }
            _ => {
                // The arrival is the worst of the lot: shed it unqueued.
                if S::ENABLED {
                    sink.emit(&TraceEvent::Shed { now_us, req: id, v });
                }
                false
            }
        }
    }

    fn expand_window<S: TraceSink>(&mut self, now_us: u64, sink: &mut S) {
        if let Some(e) = self.config.expand_factor {
            let expanded = (self.window as f64 * e).min(u64::MAX as f64) as u128;
            self.window = expanded.max(self.window.saturating_add(1));
            if S::ENABLED {
                sink.emit(&TraceEvent::ErExpand {
                    now_us,
                    window: self.window,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{QosVector, Request};

    fn req(id: u64) -> Request {
        Request::read(id, 0, u64::MAX, 0, 512, QosVector::none())
    }

    fn fully() -> Dispatcher {
        Dispatcher::new(DispatchConfig::fully_preemptive(), 1000)
    }

    #[test]
    fn fully_preemptive_is_a_priority_queue() {
        let mut d = fully();
        d.insert(req(1), 50);
        d.insert(req(2), 10);
        d.insert(req(3), 99);
        assert_eq!(d.pop(None).unwrap().id, 2);
        d.insert(req(4), 5); // arrives mid-service, still competes
        assert_eq!(d.pop(None).unwrap().id, 4);
        assert_eq!(d.pop(None).unwrap().id, 1);
        assert_eq!(d.pop(None).unwrap().id, 3);
        assert!(d.pop(None).is_none());
    }

    #[test]
    fn non_preemptive_batches_by_swap() {
        let mut d = Dispatcher::new(DispatchConfig::non_preemptive(), 1000);
        d.insert(req(1), 50);
        d.insert(req(2), 80);
        assert_eq!(d.pop(None).unwrap().id, 1); // swap happened
        d.insert(req(3), 1); // much higher priority, but must wait
        assert_eq!(d.pop(None).unwrap().id, 2);
        assert_eq!(d.pop(None).unwrap().id, 3);
    }

    fn conditional(window: f64, sp: bool, er: Option<f64>) -> Dispatcher {
        Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window },
                serve_promote: sp,
                expand_factor: er,
                refresh_on_swap: false,
                max_queue: None,
            },
            1000,
        )
    }

    #[test]
    fn conditional_window_blocks_marginal_arrivals() {
        let mut d = conditional(0.1, false, None); // window = 100
        d.insert(req(1), 500);
        assert_eq!(d.pop(None).unwrap().id, 1); // current = 500
        d.insert(req(2), 450); // higher, but within the window
        d.insert(req(3), 350); // significantly higher: preempts
        assert_eq!(d.pop(None).unwrap().id, 3);
        assert_eq!(d.pop(None).unwrap().id, 2);
        assert_eq!(d.counters().0, 1); // one preemption
    }

    #[test]
    fn paper_example_figure4() {
        // Requests T1..T7 with priorities as in Figure 4; the published
        // service order is T1, T2, T5, T6, T3, T7, T4.
        // Priority line (lower = higher priority): T5 < T6 < T2 < T3 < T7
        // < T1 < T4, with T2, T3 within the window of T1, and T6 outside
        // the window of T3, T7 outside the window of T4.
        let w = 0.2; // window = 200 of 1000
        let mut d = conditional(w, true, None);
        let v = |id: u64| match id {
            1 => 600u128,
            2 => 450,
            3 => 500,
            4 => 800,
            5 => 100,
            6 => 250,
            7 => 400,
            _ => unreachable!(),
        };
        // T1 arrives on an idle disk and is served immediately.
        d.insert(req(1), v(1));
        assert_eq!(d.pop(None).unwrap().id, 1);
        // T2, T3, T4 arrive during T1's service; none beats 600-200.
        for id in [2, 3, 4] {
            d.insert(req(id), v(id));
        }
        // T1 done: swap, serve T2 (highest in the batch).
        assert_eq!(d.pop(None).unwrap().id, 2);
        // T5, T6, T7 arrive during T2; only T5 < 450-200 preempts.
        for id in [5, 6, 7] {
            d.insert(req(id), v(id));
        }
        assert_eq!(d.pop(None).unwrap().id, 5);
        // Before serving T3, SP promotes T6 (250 < 500-200).
        assert_eq!(d.pop(None).unwrap().id, 6);
        assert_eq!(d.pop(None).unwrap().id, 3);
        // Before serving T4, SP promotes T7 (400 < 800-200).
        assert_eq!(d.pop(None).unwrap().id, 7);
        assert_eq!(d.pop(None).unwrap().id, 4);
        assert!(d.pop(None).is_none());
    }

    #[test]
    fn er_expands_until_non_preemptive() {
        let mut d = conditional(0.05, false, Some(4.0)); // window 50, e=4
        d.insert(req(1), 900);
        assert_eq!(d.pop(None).unwrap().id, 1);
        // A stream of ever-higher priorities: each preemption expands w.
        d.insert(req(2), 700); // 700 < 900-50: preempts, w -> 200
        assert_eq!(d.pop(None).unwrap().id, 2); // current = 700
        d.insert(req(3), 480); // 480 < 700-200: preempts, w -> 800
        assert_eq!(d.pop(None).unwrap().id, 3); // current = 480
        d.insert(req(4), 1); // 1 > 480-800 (saturates to 0): blocked!
        assert_eq!(d.len(), 1);
        assert_eq!(d.counters().0, 2);
        // Queue drains, swap resets the window.
        assert_eq!(d.pop(None).unwrap().id, 4);
        assert_eq!(d.current_window(), d.base_window);
    }

    #[test]
    fn traced_events_reconcile_with_counters() {
        use obs::RingSink;
        let mut d = conditional(0.05, true, Some(4.0));
        let mut sink = RingSink::new(1024);
        let mut t = 0u64;
        // A descending-priority stream drives preemptions, promotions and
        // swaps; every counter increment must emit a matching event.
        let values = [900u128, 700, 480, 820, 10, 650, 5, 999, 300];
        for (i, &v) in values.iter().enumerate() {
            d.insert_traced(req(i as u64), v, t, &mut sink);
            t += 10;
            if i % 2 == 1 {
                let _ = d.pop_traced(None, t, &mut sink);
                t += 10;
            }
        }
        while d.pop_traced(None, t, &mut sink).is_some() {
            t += 10;
        }
        let (preempts, promotions, swaps) = d.counters();
        let count = |name: &str| sink.events().filter(|e| e.name() == name).count() as u64;
        assert_eq!(count("preempt"), preempts);
        assert_eq!(count("sp_promote"), promotions);
        assert_eq!(count("queue_swap"), swaps);
        assert!(preempts > 0 && swaps > 0, "workload too tame to test");
        // Each preemption/promotion expanded the window (e is set).
        assert_eq!(count("er_expand"), preempts + promotions);
        // Resets only happen at swaps after an expansion.
        assert!(count("er_reset") <= swaps);
    }

    #[test]
    fn untraced_and_traced_behave_identically() {
        let mut plain = conditional(0.1, true, Some(2.0));
        let mut traced = conditional(0.1, true, Some(2.0));
        let mut sink = obs::RingSink::new(256);
        let values = [500u128, 450, 350, 900, 20, 610];
        for (i, &v) in values.iter().enumerate() {
            plain.insert(req(i as u64), v);
            traced.insert_traced(req(i as u64), v, i as u64, &mut sink);
        }
        loop {
            let a = plain.pop(None);
            let b = traced.pop_traced(None, 0, &mut sink);
            assert_eq!(a.as_ref().map(|r| r.id), b.as_ref().map(|r| r.id));
            if a.is_none() {
                break;
            }
        }
        assert_eq!(plain.counters(), traced.counters());
    }

    #[test]
    fn window_fraction_resolution() {
        let d = Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window: 0.25 },
                serve_promote: false,
                expand_factor: None,
                refresh_on_swap: false,
                max_queue: None,
            },
            4000,
        );
        assert_eq!(d.current_window(), 1000);
    }

    #[test]
    fn bounded_queue_sheds_worst_victim() {
        let mut d = Dispatcher::new(DispatchConfig::fully_preemptive().with_max_queue(3), 1000);
        d.insert(req(1), 50);
        d.insert(req(2), 900); // the eventual victim
        d.insert(req(3), 10);
        assert_eq!(d.len(), 3);
        // Queue full: a better arrival evicts the worst pending request.
        d.insert(req(4), 200);
        assert_eq!(d.len(), 3);
        assert_eq!(d.sheds(), 1);
        // A worse-than-everything arrival is itself the victim.
        d.insert(req(5), 999);
        assert_eq!(d.len(), 3);
        assert_eq!(d.sheds(), 2);
        // What remains is exactly the best three, in priority order.
        let order: Vec<u64> = std::iter::from_fn(|| d.pop(None).map(|r| r.id)).collect();
        assert_eq!(order, vec![3, 1, 4]);
    }

    #[test]
    fn shed_ties_evict_the_newer_request() {
        let mut d = Dispatcher::new(DispatchConfig::fully_preemptive().with_max_queue(2), 1000);
        d.insert(req(1), 700);
        d.insert(req(2), 700);
        d.insert(req(3), 700); // same v: newest id loses
        assert_eq!(d.sheds(), 1);
        let order: Vec<u64> = std::iter::from_fn(|| d.pop(None).map(|r| r.id)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn shedding_spans_both_queues_of_the_conditional_mode() {
        use obs::RingSink;
        let mut d = Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window: 0.1 },
                serve_promote: false,
                expand_factor: None,
                refresh_on_swap: false,
                max_queue: Some(2),
            },
            1000,
        );
        let mut sink = RingSink::new(64);
        d.insert_traced(req(1), 500, 0, &mut sink);
        assert_eq!(d.pop_traced(None, 1, &mut sink).unwrap().id, 1);
        d.insert_traced(req(2), 300, 2, &mut sink); // preempts into q
        d.insert_traced(req(3), 800, 3, &mut sink); // waits in q'
                                                    // Full. A high-priority arrival evicts the q' victim (800).
        d.insert_traced(req(4), 100, 4, &mut sink);
        assert_eq!(d.len(), 2);
        assert_eq!(d.sheds(), 1);
        // The shed event names the victim.
        let shed: Vec<_> = sink
            .events()
            .filter(|e| e.name() == "shed")
            .map(|e| e.req())
            .collect();
        assert_eq!(shed, vec![Some(3)]);
        let order: Vec<u64> = std::iter::from_fn(|| d.pop(None).map(|r| r.id)).collect();
        assert_eq!(order, vec![4, 2]);
    }

    #[test]
    fn unbounded_queue_never_sheds() {
        let mut d = fully();
        for i in 0..1000 {
            d.insert(req(i), (i as u128) % 97);
        }
        assert_eq!(d.sheds(), 0);
        assert_eq!(d.len(), 1000);
    }

    #[test]
    fn pending_iteration_covers_both_queues() {
        let mut d = conditional(0.0, false, None);
        d.insert(req(1), 10);
        assert_eq!(d.pop(None).unwrap().id, 1);
        d.insert(req(2), 5); // preempts into q (0 window, strictly higher)
        d.insert(req(3), 50); // waits
        let mut ids = Vec::new();
        d.for_each_pending(&mut |r| ids.push(r.id));
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
