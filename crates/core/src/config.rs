//! Configuration surface of the Cascaded-SFC scheduler.
//!
//! The paper's tunables, in one place: the curve of each stage, the
//! deadline balance factor `f`, the scan-partition count `R`, and the
//! dispatcher's preemption regime with the SP/ER policies.

use sched::Micros;
use sfc::CurveKind;

/// Stage 1: the D-dimensional priority curve (SFC1).
#[derive(Debug, Clone, Copy)]
pub struct Stage1 {
    /// Which catalogue curve folds the priority vector.
    pub curve: CurveKind,
    /// Number of priority-like QoS dimensions consumed.
    pub dims: u32,
    /// Bits per dimension: each dimension has `2^level_bits` priority
    /// levels (the paper uses 16 levels = 4 bits).
    pub level_bits: u32,
}

impl Stage1 {
    /// The paper's default: the Diagonal curve over `dims` dimensions of
    /// 16 levels.
    pub fn paper_default(dims: u32) -> Self {
        Stage1 {
            curve: CurveKind::Diagonal,
            dims,
            level_bits: 4,
        }
    }
}

/// How stage 2 combines the priority value with the deadline.
#[derive(Debug, Clone, Copy)]
pub enum Stage2Combiner {
    /// The paper's explicit formula `v = priority + f·deadline` — the
    /// weighted Diagonal family. `f = 0` degenerates to priority-first
    /// (Sweep), `f = 1` to the Diagonal, `f → ∞` to deadline-first
    /// (the transposed Sweep / C-Scan).
    Weighted {
        /// Balance factor: `< 1` favors priority fidelity, `> 1` deadline
        /// fidelity.
        f: f64,
    },
    /// A 2-D catalogue curve over the (priority, deadline) grid
    /// (dimension 0 = priority, dimension 1 = deadline slack).
    Curve(CurveKind),
}

/// Stage 2: the priority × deadline curve (SFC2).
#[derive(Debug, Clone, Copy)]
pub struct Stage2 {
    /// Combining rule.
    pub combiner: Stage2Combiner,
    /// Deadline slacks are clamped to this horizon before quantization;
    /// anything farther out is "relaxed".
    pub horizon_us: Micros,
    /// Both axes are quantized to `2^resolution_bits` cells.
    pub resolution_bits: u32,
}

impl Stage2 {
    /// The paper's trade-off point: weighted combiner with `f = 1`,
    /// a one-second horizon, 10-bit resolution.
    pub fn paper_default() -> Self {
        Stage2 {
            combiner: Stage2Combiner::Weighted { f: 1.0 },
            horizon_us: 1_000_000,
            resolution_bits: 10,
        }
    }
}

/// How stage 3 measures the head-to-request distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMode {
    /// `|cylinder − head|`, as in the paper (§5.3): nearest requests
    /// first, direction-blind.
    Absolute,
    /// `(cylinder − head) mod cylinders`: a circular (C-SCAN-like) sweep
    /// order — an ablation extension; a queue sorted by this value is
    /// servable in exactly one upward scan.
    Circular,
}

/// Stage 3: the (priority-deadline) × cylinder curve (SFC3), the paper's
/// partitioned sweep tuned by `R`.
#[derive(Debug, Clone, Copy)]
pub struct Stage3 {
    /// Number of vertical partitions `R` of the priority-deadline axis.
    /// `R = 1` sorts on seek distance only; large `R` approaches pure
    /// priority order. The paper finds `R = 3` beats C-SCAN on all three
    /// metrics (§5.3).
    pub partitions: u32,
    /// The priority-deadline axis is quantized to `2^resolution_bits`
    /// cells (the paper's `Max_x`).
    pub resolution_bits: u32,
    /// Number of cylinders (the paper's `Max_y`).
    pub cylinders: u32,
    /// Distance measure along the cylinder axis.
    pub distance: DistanceMode,
}

impl Stage3 {
    /// The paper's best configuration: `R = 3`, 10-bit priority axis,
    /// absolute distance.
    pub fn paper_default(cylinders: u32) -> Self {
        Stage3 {
            partitions: 3,
            resolution_bits: 10,
            cylinders,
            distance: DistanceMode::Absolute,
        }
    }
}

/// Preemption regime of the dispatcher (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreemptionMode {
    /// One queue; every arrival competes immediately. Risks starvation of
    /// low priorities under sustained high-priority load.
    Fully,
    /// Double queue: arrivals wait in `q'` until the active queue drains.
    /// Starvation-free but inverts priorities across the swap boundary.
    NonPreemptive,
    /// The paper's compromise: an arrival preempts only when its
    /// characterization value beats the in-service request by more than a
    /// blocking window `w`, expressed here as a fraction of the scheduling
    /// space (`0.0` = fully-preemptive, `1.0` ≈ non-preemptive).
    Conditional {
        /// Window size as a fraction of `max v_c` (0.0 ..= 1.0).
        window: f64,
    },
}

/// Dispatcher configuration: preemption mode plus the SP and ER policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchConfig {
    /// Preemption regime.
    pub mode: PreemptionMode,
    /// SP (Serve-and-Promote, §3.2): before each dispatch, promote waiting
    /// requests that meanwhile attained significantly higher priority than
    /// the next candidate.
    pub serve_promote: bool,
    /// ER (Expand-and-Reset, §3.3): multiply the window by this factor on
    /// every preemption, reset when the active queue turns over. `None`
    /// disables ER.
    pub expand_factor: Option<f64>,
    /// Re-characterize the waiting queue when it is swapped in.
    ///
    /// The paper computes `v_c` at insertion; time-dependent coordinates
    /// (deadline slack, head distance) therefore age while a request
    /// waits. Refreshing at the swap boundary re-anchors the whole batch
    /// to one instant and one head position — which is exactly what makes
    /// the "each batch is one disk scan" property of SFC3 (§5.3) hold.
    /// Disable to study the stale-characterization ablation.
    pub refresh_on_swap: bool,
    /// Bounded-queue load shedding: when set, the dispatcher holds at
    /// most this many pending requests; an insert beyond the bound sheds
    /// the *lowest-priority* pending request (largest `v_c`, ties by
    /// newest id) — mirroring SFC2's victim-selection logic, so overload
    /// degrades the cheap requests first. `None` (the default) keeps the
    /// queue unbounded.
    pub max_queue: Option<usize>,
}

impl DispatchConfig {
    /// The paper's conditionally-preemptive dispatcher with SP and ER
    /// enabled (window 10 % of the space, expansion factor 2).
    pub fn paper_default() -> Self {
        DispatchConfig {
            mode: PreemptionMode::Conditional { window: 0.10 },
            serve_promote: true,
            expand_factor: Some(2.0),
            refresh_on_swap: true,
            max_queue: None,
        }
    }

    /// Plain fully-preemptive dispatch (a single priority queue).
    pub fn fully_preemptive() -> Self {
        DispatchConfig {
            mode: PreemptionMode::Fully,
            serve_promote: false,
            expand_factor: None,
            refresh_on_swap: false,
            max_queue: None,
        }
    }

    /// Plain non-preemptive dispatch (double-queue swap, batch
    /// re-characterization on swap).
    pub fn non_preemptive() -> Self {
        DispatchConfig {
            mode: PreemptionMode::NonPreemptive,
            serve_promote: false,
            expand_factor: None,
            refresh_on_swap: true,
            max_queue: None,
        }
    }

    /// Disable swap-time re-characterization (builder-style), for the
    /// stale-`v_c` ablation.
    pub fn without_refresh(mut self) -> Self {
        self.refresh_on_swap = false;
        self
    }

    /// Bound the pending queue at `cap` requests, shedding the
    /// lowest-priority victim on overflow (builder-style). A cap of 0 is
    /// treated as 1 — a queue that can hold nothing cannot schedule.
    pub fn with_max_queue(mut self, cap: usize) -> Self {
        self.max_queue = Some(cap.max(1));
        self
    }
}

/// Complete Cascaded-SFC configuration. Any stage may be `None` (§4.1):
/// without SFC1 the first priority level is used directly; without SFC2
/// deadlines are ignored; without SFC3 seek positions are ignored.
#[derive(Debug, Clone)]
pub struct CascadeConfig {
    /// Priority stage.
    pub stage1: Option<Stage1>,
    /// Deadline stage.
    pub stage2: Option<Stage2>,
    /// Seek stage.
    pub stage3: Option<Stage3>,
    /// Dispatcher policy.
    pub dispatch: DispatchConfig,
}

impl CascadeConfig {
    /// The paper's full three-stage scheduler over `dims` QoS dimensions
    /// on a disk with `cylinders` cylinders.
    pub fn paper_default(dims: u32, cylinders: u32) -> Self {
        CascadeConfig {
            stage1: Some(Stage1::paper_default(dims)),
            stage2: Some(Stage2::paper_default()),
            stage3: Some(Stage3::paper_default(cylinders)),
            dispatch: DispatchConfig::paper_default(),
        }
    }

    /// Priority-only configuration (Figure 5/6/7 setting: relaxed
    /// deadlines, transfer-dominated blocks — SFC2 and SFC3 skipped).
    pub fn priority_only(curve: CurveKind, dims: u32, level_bits: u32) -> Self {
        CascadeConfig {
            stage1: Some(Stage1 {
                curve,
                dims,
                level_bits,
            }),
            stage2: None,
            stage3: None,
            dispatch: DispatchConfig::fully_preemptive(),
        }
    }

    /// Priority + deadline configuration (Figure 8/9 setting: SFC3
    /// skipped because transfers dominate seeks).
    pub fn priority_deadline(
        stage1_curve: CurveKind,
        dims: u32,
        level_bits: u32,
        combiner: Stage2Combiner,
        horizon_us: Micros,
    ) -> Self {
        CascadeConfig {
            stage1: Some(Stage1 {
                curve: stage1_curve,
                dims,
                level_bits,
            }),
            stage2: Some(Stage2 {
                combiner,
                horizon_us,
                resolution_bits: 10,
            }),
            stage3: None,
            dispatch: DispatchConfig::non_preemptive(),
        }
    }

    /// Replace the dispatcher policy (builder-style).
    pub fn with_dispatch(mut self, dispatch: DispatchConfig) -> Self {
        self.dispatch = dispatch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_enables_all_stages() {
        let c = CascadeConfig::paper_default(3, 3832);
        assert!(c.stage1.is_some());
        assert!(c.stage2.is_some());
        assert!(c.stage3.is_some());
        assert!(c.dispatch.serve_promote);
    }

    #[test]
    fn priority_only_skips_later_stages() {
        let c = CascadeConfig::priority_only(CurveKind::Hilbert, 4, 4);
        assert!(c.stage2.is_none());
        assert!(c.stage3.is_none());
    }

    #[test]
    fn builder_replaces_dispatch() {
        let c =
            CascadeConfig::paper_default(2, 100).with_dispatch(DispatchConfig::non_preemptive());
        assert_eq!(c.dispatch.mode, PreemptionMode::NonPreemptive);
    }
}
