//! Part 1 of the Cascaded-SFC scheduler: the encapsulator.
//!
//! Folds a request's QoS vector, deadline slack, and cylinder distance
//! into one characterization value `v_c` through the configured cascade of
//! space-filling-curve stages. `v_c` is computed once, at insertion time,
//! exactly as in the paper (the deadline slack and head distance are
//! sampled when the request joins the queue).

use crate::config::{CascadeConfig, DistanceMode, Stage2Combiner};
use sched::{HeadState, Micros, Request};
use sfc::{CurveKernel, SfcError, WeightedDiagonal, BATCH_LANES as LANES};

/// The encapsulator: request → characterization value `v_c`.
///
/// Everything that does not depend on the individual request — curve
/// dispatch, stage maxima, quantization ranges, the SFC2 fixed-point
/// factor, the SFC3 strip geometry — is resolved once here, so
/// [`Encapsulator::characterize`] is straight-line integer arithmetic.
pub struct Encapsulator {
    config: CascadeConfig,
    /// SFC1 instance (when stage 1 is configured), devirtualized.
    curve1: Option<CurveKernel>,
    /// SFC2 catalogue-curve instance (when stage 2 uses `Curve`).
    curve2: Option<CurveKernel>,
    /// SFC2 weighted-diagonal order (when stage 2 uses `Weighted`), built
    /// once instead of per request.
    weighted2: Option<WeightedDiagonal>,
    /// Maximum possible output of the full cascade (stage maxima feeding
    /// the rescales live inside the precomputed quantizers below).
    max_vc: u128,
    /// Stage-3 strip geometry: grid maximum, strip width `p_s`, strip
    /// count `r`, and sweep height (`cylinders.max(2)`).
    s3_max_x: u128,
    s3_strip: u64,
    s3_r: u64,
    s3_height: u64,
    /// `true` when the whole SFC3 formula fits 64-bit arithmetic for every
    /// in-range input (the paper-default shapes by a wide margin).
    s3_fits_u64: bool,
    /// Precomputed quantizers (divisor reciprocals resolved once): stage-2
    /// priority axis, stage-2 slack axis, stage-3 priority-deadline axis.
    q2x: Quantizer,
    q2y: Quantizer,
    q3x: Quantizer,
    /// Reciprocal of the stage-3 strip width for the partition index.
    s3_strip_div: FixedDiv,
    /// Scratch buffer reused by [`Encapsulator::map_batch`].
    scratch: Vec<u128>,
}

/// Exact division by a fixed divisor via one widening multiply (the
/// round-up reciprocal method): with `m = ⌊2^64/d⌋ + 1` and
/// `e = m·d − 2^64 ∈ [1, d]`, `⌊n·m/2^64⌋ = ⌊n/d⌋` whenever `n·e < 2^64`.
/// Numerators beyond that certified range fall back to hardware division.
#[derive(Debug, Clone, Copy)]
struct FixedDiv {
    d: u64,
    m: u64,
    n_max: u64,
}

impl FixedDiv {
    fn new(d: u64) -> FixedDiv {
        let d = d.max(1);
        if d == 1 {
            return FixedDiv {
                d,
                m: 0,
                n_max: u64::MAX,
            };
        }
        let m = ((1u128 << 64) / d as u128 + 1) as u64;
        let e = (m as u128) * (d as u128) - (1u128 << 64);
        let n_max = ((1u128 << 64) / e).saturating_sub(1).min(u64::MAX as u128) as u64;
        FixedDiv { d, m, n_max }
    }

    #[inline]
    fn div(&self, n: u64) -> u64 {
        if self.d == 1 {
            n
        } else if n <= self.n_max {
            ((n as u128 * self.m as u128) >> 64) as u64
        } else {
            n / self.d
        }
    }
}

/// One stage's order-preserving rescale `[0, max_in] → [0, max_out]` with
/// the division strength-reduced at construction. `apply` is bit-identical
/// to [`quantize`] (pinned by the `quantizer_matches_quantize` test).
#[derive(Debug, Clone, Copy)]
struct Quantizer {
    max_in: u128,
    max_out: u128,
    /// Both bounds fit `u64`, so the hot multiply-divide path applies.
    fast: bool,
    div: FixedDiv,
}

impl Quantizer {
    fn new(max_in: u128, max_out: u128) -> Quantizer {
        let fast = max_in > 0 && max_in <= u64::MAX as u128 && max_out <= u64::MAX as u128;
        Quantizer {
            max_in,
            max_out,
            fast,
            div: FixedDiv::new(if fast { max_in as u64 } else { 1 }),
        }
    }

    #[inline]
    fn apply(&self, v: u128) -> u128 {
        if self.max_in == 0 {
            return 0;
        }
        let v = v.min(self.max_in);
        if self.fast {
            if let Some(prod) = (v as u64).checked_mul(self.max_out as u64) {
                return self.div.div(prod) as u128;
            }
        }
        quantize(v, self.max_in, self.max_out)
    }
}

impl Encapsulator {
    /// Build the encapsulator, instantiating the configured curves.
    pub fn new(config: CascadeConfig) -> Result<Self, SfcError> {
        let mut curve1 = None;
        let max_v1: u128 = if let Some(s1) = &config.stage1 {
            let c = CurveKernel::build(s1.curve, s1.dims, s1.level_bits)?;
            let max = c.cells() - 1;
            curve1 = Some(c);
            max
        } else {
            // Without SFC1 the first priority level is used directly.
            u8::MAX as u128
        };

        let mut curve2 = None;
        let mut weighted2 = None;
        let mut max_v2 = max_v1;
        let mut s2_grid_max = 0u128;
        let mut s2_horizon = 1u64;
        if let Some(s2) = &config.stage2 {
            s2_grid_max = (1u128 << s2.resolution_bits) - 1;
            s2_horizon = s2.horizon_us.max(1);
            max_v2 = match s2.combiner {
                Stage2Combiner::Weighted { f } => {
                    let w = WeightedDiagonal::new(f);
                    let max = w.value(s2_grid_max as u64, s2_grid_max as u64);
                    weighted2 = Some(w);
                    max
                }
                Stage2Combiner::Curve(kind) => {
                    let c = CurveKernel::build(kind, 2, s2.resolution_bits)?;
                    let cells = c.cells();
                    curve2 = Some(c);
                    cells - 1
                }
            };
        }

        let mut s3_max_x = 0u128;
        let mut s3_strip = 1u64;
        let mut s3_r = 1u64;
        let mut s3_height = 2u64;
        let mut s3_fits_u64 = false;
        let max_vc = if let Some(s3) = &config.stage3 {
            let max_x = (1u128 << s3.resolution_bits) - 1;
            let max_y = (s3.cylinders.max(2) - 1) as u128;
            let max = stage3_value(max_x, max_y, max_x + 1, max_y + 1, s3.partitions);
            s3_max_x = max_x;
            let r = s3.partitions.max(1) as u128;
            s3_strip = (((max_x + 1) / r).max(1)) as u64;
            s3_r = r as u64;
            s3_height = s3.cylinders.max(2) as u64;
            // Every term of the formula is bounded by the full-corner value,
            // so `max <= u64::MAX` makes 64-bit evaluation exact for all
            // in-range (x, y).
            s3_fits_u64 = max <= u64::MAX as u128;
            max
        } else {
            max_v2
        };

        Ok(Encapsulator {
            config,
            curve1,
            curve2,
            weighted2,
            max_vc,
            s3_max_x,
            s3_strip,
            s3_r,
            s3_height,
            s3_fits_u64,
            q2x: Quantizer::new(max_v1, s2_grid_max),
            q2y: Quantizer::new(s2_horizon as u128, s2_grid_max),
            q3x: Quantizer::new(max_v2, s3_max_x),
            s3_strip_div: FixedDiv::new(s3_strip),
            scratch: Vec::new(),
        })
    }

    /// The largest characterization value this configuration can emit.
    pub fn max_value(&self) -> u128 {
        self.max_vc
    }

    /// The configuration this encapsulator was built from.
    pub fn config(&self) -> &CascadeConfig {
        &self.config
    }

    /// Characterize a request at insertion time: lower `v_c` = served
    /// sooner.
    pub fn characterize(&self, req: &Request, head: &HeadState) -> u128 {
        let v1 = self.stage1_value(req);
        let v2 = self.stage2_value(v1, req, head.now_us);
        self.stage3_value_of(v2, req, head)
    }

    /// Characterize a batch of arrivals in one pass, reusing an internal
    /// scratch buffer: `map_batch(batch, head)[i]` is bit-identical to
    /// `characterize(&batch[i], head_i)` where `head_i` is `head`
    /// re-anchored to `batch[i].arrival_us` (the convention of
    /// [`sched::DiskScheduler::enqueue_batch`]). The returned slice is
    /// valid until the next call.
    pub fn map_batch(&mut self, batch: &[Request], head: &HeadState) -> &[u128] {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.map_batch_into(batch, head, &mut scratch);
        self.scratch = scratch;
        &self.scratch
    }

    /// [`Self::map_batch`] into a caller-owned buffer, through `&self` —
    /// the form concurrent producers share one encapsulator with (see
    /// `sim::ingest_concurrent`). Values are *appended* to `out`, so a
    /// producer can characterize straight into a hand-off buffer that
    /// already holds earlier batches (`IngestRing::push_with`).
    ///
    /// The whole cascade runs eight requests at a time: stage-1 points are
    /// transposed into lane arrays and mapped through
    /// [`CurveKernel::index_batch`], the stage-2/3 reciprocal rescales
    /// ([`Quantizer`]/[`FixedDiv`]) apply lane by lane, and the remainder
    /// tail takes the scalar path. Bit-identity with the scalar
    /// [`Self::characterize`] is pinned by the `map_batch_*` tests and the
    /// oracle `diff_batch` gate.
    pub fn map_batch_into(&self, batch: &[Request], head: &HeadState, out: &mut Vec<u128>) {
        out.reserve(batch.len());
        let mut chunks = batch.chunks_exact(LANES);
        for chunk in &mut chunks {
            let reqs: &[Request; LANES] = chunk.try_into().expect("exact chunk");
            out.extend_from_slice(&self.characterize8(reqs, head));
        }
        for req in chunks.remainder() {
            let at_arrival = HeadState::new(head.cylinder, req.arrival_us, head.cylinders);
            out.push(self.characterize(req, &at_arrival));
        }
    }

    /// Eight requests through the full cascade in lockstep, each anchored
    /// at its own arrival time.
    #[inline]
    fn characterize8(&self, reqs: &[Request; LANES], head: &HeadState) -> [u128; LANES] {
        let v1 = self.stage1_batch8(reqs);
        let v2 = self.stage2_batch8(v1, reqs);
        self.stage3_batch8(v2, reqs, head)
    }

    /// Lane-parallel stage 1: transpose the QoS vectors into grid points
    /// and run the batched curve kernel.
    #[inline]
    fn stage1_batch8(&self, reqs: &[Request; LANES]) -> [u128; LANES] {
        match (&self.config.stage1, &self.curve1) {
            (Some(s1), Some(curve)) => {
                let side = curve.side();
                match s1.dims {
                    1 => stage1_lanes::<1>(curve, side, reqs),
                    2 => stage1_lanes::<2>(curve, side, reqs),
                    3 => stage1_lanes::<3>(curve, side, reqs),
                    // Wider QoS grids than the stage shapes the scheduler
                    // builds: keep the scalar path per lane.
                    _ => {
                        let mut out = [0u128; LANES];
                        for (lane, req) in reqs.iter().enumerate() {
                            out[lane] = self.stage1_value(req);
                        }
                        out
                    }
                }
            }
            _ => {
                let mut out = [0u128; LANES];
                for (lane, req) in reqs.iter().enumerate() {
                    out[lane] = if req.qos.dims() > 0 {
                        req.qos.level(0) as u128
                    } else {
                        0
                    };
                }
                out
            }
        }
    }

    /// Lane-parallel stage 2: both reciprocal rescales across lanes, then
    /// the weighted-diagonal fold (pure integer, lane by lane) or the
    /// batched 2-D curve.
    #[inline]
    fn stage2_batch8(&self, v1: [u128; LANES], reqs: &[Request; LANES]) -> [u128; LANES] {
        let Some(s2) = &self.config.stage2 else {
            return v1;
        };
        let mut xs = [0u64; LANES];
        let mut ys = [0u64; LANES];
        for lane in 0..LANES {
            xs[lane] = self.q2x.apply(v1[lane]) as u64;
            let req = &reqs[lane];
            let slack = req.slack_us(req.arrival_us).min(s2.horizon_us);
            ys[lane] = self.q2y.apply(slack as u128) as u64;
        }
        let mut out = [0u128; LANES];
        match &self.weighted2 {
            Some(w) => {
                for lane in 0..LANES {
                    out[lane] = w.value(xs[lane], ys[lane]);
                }
            }
            None => {
                let curve = self
                    .curve2
                    .as_ref()
                    .expect("curve2 built for Curve combiner");
                let mut pts = [[0u64; 2]; LANES];
                for lane in 0..LANES {
                    pts[lane] = [xs[lane], ys[lane]];
                }
                curve.index_batch(&pts, &mut out);
            }
        }
        out
    }

    /// Lane-parallel stage 3: the strip formula with the hot `fits_u64`
    /// branch hoisted out of the lane loop.
    #[inline]
    fn stage3_batch8(
        &self,
        v2: [u128; LANES],
        reqs: &[Request; LANES],
        head: &HeadState,
    ) -> [u128; LANES] {
        let Some(s3) = &self.config.stage3 else {
            return v2;
        };
        let mut out = [0u128; LANES];
        let mut ys = [0u128; LANES];
        for lane in 0..LANES {
            ys[lane] = match s3.distance {
                DistanceMode::Absolute => head.distance_to(reqs[lane].cylinder) as u128,
                DistanceMode::Circular => {
                    let n = s3.cylinders as i64;
                    (((reqs[lane].cylinder as i64 - head.cylinder as i64) % n + n) % n) as u128
                }
            };
        }
        let height = self.s3_height as u128;
        if self.s3_fits_u64 && ys.iter().all(|&y| y < height) {
            let strip = self.s3_strip;
            for lane in 0..LANES {
                let x = self.q3x.apply(v2[lane]) as u64;
                let p_n = self.s3_strip_div.div(x).min(self.s3_r - 1);
                out[lane] = (strip * p_n * self.s3_height
                    + ys[lane] as u64 * strip
                    + (x - strip * p_n)) as u128;
            }
        } else {
            for lane in 0..LANES {
                out[lane] = self.stage3_value_of(v2[lane], &reqs[lane], head);
            }
        }
        out
    }

    /// Stage 1: priority vector → scalar.
    fn stage1_value(&self, req: &Request) -> u128 {
        match (&self.config.stage1, &self.curve1) {
            (Some(s1), Some(curve)) => {
                let side = curve.side();
                let mut point = [0u64; sched::MAX_QOS_DIMS];
                let dims = s1.dims as usize;
                for (j, slot) in point.iter_mut().enumerate().take(dims) {
                    // Missing dimensions default to the lowest priority;
                    // levels beyond the grid are clamped.
                    let level = if j < req.qos.dims() {
                        req.qos.level(j) as u64
                    } else {
                        side - 1
                    };
                    *slot = level.min(side - 1);
                }
                curve.index(&point[..dims])
            }
            _ => {
                if req.qos.dims() > 0 {
                    req.qos.level(0) as u128
                } else {
                    0
                }
            }
        }
    }

    /// Stage 2: fold the deadline slack in.
    fn stage2_value(&self, v1: u128, req: &Request, now: Micros) -> u128 {
        let Some(s2) = &self.config.stage2 else {
            return v1;
        };
        let x = self.q2x.apply(v1) as u64;
        let slack = req.slack_us(now).min(s2.horizon_us);
        let y = self.q2y.apply(slack as u128) as u64;
        match &self.weighted2 {
            Some(w) => w.value(x, y),
            None => self
                .curve2
                .as_ref()
                .expect("curve2 built for Curve combiner")
                .index(&[x, y]),
        }
    }

    /// Stage 3: fold the cylinder distance in (the paper's partitioned
    /// sweep, tuned by `R`).
    fn stage3_value_of(&self, v2: u128, req: &Request, head: &HeadState) -> u128 {
        let Some(s3) = &self.config.stage3 else {
            return v2;
        };
        let x = self.q3x.apply(v2);
        let y = match s3.distance {
            DistanceMode::Absolute => head.distance_to(req.cylinder) as u128,
            DistanceMode::Circular => {
                let n = s3.cylinders as i64;
                (((req.cylinder as i64 - head.cylinder as i64) % n + n) % n) as u128
            }
        };
        // 64-bit evaluation of the same formula when the corner value fits
        // (in-range y only: a cylinder beyond the configured disk keeps the
        // wide path).
        if self.s3_fits_u64 && y < self.s3_height as u128 {
            let x = x as u64;
            let strip = self.s3_strip;
            let p_n = self.s3_strip_div.div(x).min(self.s3_r - 1);
            // `strip * p_n` first: every partial product stays below the
            // corner value the fits-u64 flag certified.
            return (strip * p_n * self.s3_height + y as u64 * strip + (x - strip * p_n)) as u128;
        }
        stage3_value(
            x,
            y,
            self.s3_max_x + 1,
            self.s3_height as u128,
            s3.partitions,
        )
    }
}

/// Transpose eight requests' QoS vectors into `D`-dimensional grid points
/// and map them through the batched curve kernel. Missing dimensions
/// default to the lowest priority and levels beyond the grid clamp —
/// mirroring `Encapsulator::stage1_value` lane for lane.
#[inline]
fn stage1_lanes<const D: usize>(
    curve: &CurveKernel,
    side: u64,
    reqs: &[Request; LANES],
) -> [u128; LANES] {
    let mut pts = [[0u64; D]; LANES];
    for (lane, req) in reqs.iter().enumerate() {
        for (j, slot) in pts[lane].iter_mut().enumerate() {
            let level = if j < req.qos.dims() {
                req.qos.level(j) as u64
            } else {
                side - 1
            };
            *slot = level.min(side - 1);
        }
    }
    let mut out = [0u128; LANES];
    curve.index_batch(&pts, &mut out);
    out
}

/// The paper's SFC3 formula (§5.3): partition the X (priority-deadline)
/// axis into `r` vertical strips of width `p_s = max_x / r`; strips are
/// visited left to right, and within a strip cells are swept by Y
/// (cylinder distance) first:
///
/// ```text
/// v_c = max_y·p_s·p_n + y·p_s + (x − p_s·p_n)
/// ```
///
/// `r = 1` reduces to the plain sweep `v_c = y·max_x + x`.
fn stage3_value(x: u128, y: u128, width_x: u128, height_y: u128, r: u32) -> u128 {
    let r = r.max(1) as u128;
    let p_s = (width_x / r).max(1);
    let p_n = (x / p_s).min(r - 1);
    height_y * p_s * p_n + y * p_s + (x - p_s * p_n)
}

/// Scale `v ∈ [0, max_in]` to `[0, max_out]`, preserving order.
#[inline]
fn quantize(v: u128, max_in: u128, max_out: u128) -> u128 {
    if max_in == 0 {
        return 0;
    }
    let v = v.min(max_in);
    // All-64-bit operands (the common scheduling shapes): one hardware
    // multiply and divide instead of the soft u128 division.
    if let (Ok(v64), Ok(in64), Ok(out64)) = (
        u64::try_from(v),
        u64::try_from(max_in),
        u64::try_from(max_out),
    ) {
        if let Some(prod) = v64.checked_mul(out64) {
            return (prod / in64) as u128;
        }
    }
    // (v * max_out) may exceed u128 for extreme configs; split the scale.
    if let Some(prod) = v.checked_mul(max_out) {
        prod / max_in
    } else {
        // Fall back to f64: only reachable with >64-bit stage outputs,
        // where the 52-bit mantissa still preserves the quantized order.
        ((v as f64 / max_in as f64) * max_out as f64) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Stage3;
    use sched::QosVector;
    use sfc::CurveKind;

    fn head() -> HeadState {
        HeadState::new(1000, 0, 3832)
    }

    fn req(qos: &[u8], deadline: Micros, cyl: u32) -> Request {
        Request::read(1, 0, deadline, cyl, 65536, QosVector::new(qos))
    }

    #[test]
    fn stage1_only_orders_by_curve() {
        let e = Encapsulator::new(CascadeConfig::priority_only(CurveKind::Diagonal, 3, 4)).unwrap();
        let high = e.characterize(&req(&[0, 0, 0], u64::MAX, 0), &head());
        let low = e.characterize(&req(&[15, 15, 15], u64::MAX, 0), &head());
        assert!(high < low);
        assert_eq!(high, 0);
        assert_eq!(low, e.max_value());
    }

    #[test]
    fn no_stage1_uses_first_level() {
        let cfg = CascadeConfig {
            stage1: None,
            stage2: None,
            stage3: None,
            dispatch: crate::DispatchConfig::fully_preemptive(),
        };
        let e = Encapsulator::new(cfg).unwrap();
        assert_eq!(e.characterize(&req(&[7], u64::MAX, 0), &head()), 7);
        assert_eq!(e.characterize(&req(&[], u64::MAX, 0), &head()), 0);
    }

    #[test]
    fn stage2_weighted_orders_by_priority_plus_deadline() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 1.0 },
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        // Same priority: tighter deadline wins.
        let urgent = e.characterize(&req(&[3], 100_000, 0), &head());
        let lax = e.characterize(&req(&[3], 900_000, 0), &head());
        assert!(urgent < lax);
        // Same deadline: higher priority wins.
        let hi = e.characterize(&req(&[0], 500_000, 0), &head());
        let lo = e.characterize(&req(&[9], 500_000, 0), &head());
        assert!(hi < lo);
    }

    #[test]
    fn stage2_f_zero_ignores_deadline() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 0.0 },
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        let hi_late = e.characterize(&req(&[0], 999_000, 0), &head());
        let lo_urgent = e.characterize(&req(&[1], 1_000, 0), &head());
        assert!(hi_late < lo_urgent, "f = 0 must order on priority alone");
    }

    #[test]
    fn stage2_huge_f_orders_by_deadline() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 1e6 },
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        let lo_urgent = e.characterize(&req(&[15], 1_000, 0), &head());
        let hi_late = e.characterize(&req(&[0], 999_000, 0), &head());
        assert!(lo_urgent < hi_late, "huge f must order on deadline alone");
    }

    #[test]
    fn stage2_curve_combiner_works() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            2,
            4,
            Stage2Combiner::Curve(CurveKind::Hilbert),
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        let a = e.characterize(&req(&[0, 0], 1_000, 0), &head());
        let b = e.characterize(&req(&[15, 15], 999_000, 0), &head());
        assert!(a < b);
        assert!(b <= e.max_value());
    }

    #[test]
    fn stage3_r1_orders_by_distance_first() {
        let mut cfg = CascadeConfig::paper_default(1, 3832);
        cfg.stage3 = Some(Stage3 {
            partitions: 1,
            resolution_bits: 10,
            cylinders: 3832,
            distance: DistanceMode::Absolute,
        });
        let e = Encapsulator::new(cfg).unwrap();
        // Near low-priority beats far high-priority when R = 1.
        let near_lo = e.characterize(&req(&[15], 900_000, 1010), &head());
        let far_hi = e.characterize(&req(&[0], 100_000, 3000), &head());
        assert!(near_lo < far_hi, "R = 1 sorts on seek distance only");
    }

    #[test]
    fn stage3_large_r_orders_by_priority_first() {
        let mut cfg = CascadeConfig::paper_default(1, 3832);
        cfg.stage3 = Some(Stage3 {
            partitions: 1024,
            resolution_bits: 10,
            cylinders: 3832,
            distance: DistanceMode::Absolute,
        });
        let e = Encapsulator::new(cfg).unwrap();
        let near_lo = e.characterize(&req(&[15], 900_000, 1010), &head());
        let far_hi = e.characterize(&req(&[0], 100_000, 3000), &head());
        assert!(far_hi < near_lo, "large R sorts on priority first");
    }

    #[test]
    fn stage3_formula_reduces_at_r1() {
        // r = 1: v = y*max_x + x (the plain sweep).
        assert_eq!(stage3_value(5, 7, 16, 100, 1), 7 * 16 + 5);
        // r = 4 partitions of width 4: x = 5 is in partition 1.
        // v = 100*4*1 + 7*4 + (5-4) = 429.
        assert_eq!(stage3_value(5, 7, 16, 100, 4), 429);
    }

    #[test]
    fn circular_distance_mode() {
        let mut cfg = CascadeConfig::paper_default(1, 3832);
        cfg.stage3 = Some(Stage3 {
            partitions: 1,
            resolution_bits: 10,
            cylinders: 3832,
            distance: DistanceMode::Circular,
        });
        let e = Encapsulator::new(cfg).unwrap();
        // Head at 1000: cylinder 900 is "behind" (wraps: distance 3732),
        // cylinder 1100 is ahead (distance 100).
        let behind = e.characterize(&req(&[0], 500_000, 900), &head());
        let ahead = e.characterize(&req(&[0], 500_000, 1100), &head());
        assert!(ahead < behind);
    }

    #[test]
    fn characterization_bounded_by_max_value() {
        let e = Encapsulator::new(CascadeConfig::paper_default(3, 3832)).unwrap();
        for qos in [[0u8, 0, 0], [15, 15, 15], [7, 3, 12]] {
            for deadline in [1_000u64, 500_000, u64::MAX] {
                for cyl in [0u32, 1000, 3831] {
                    let v = e.characterize(&req(&qos, deadline, cyl), &head());
                    assert!(v <= e.max_value());
                }
            }
        }
    }

    /// The lane-parallel batch pass must be bit-identical to the scalar
    /// cascade per element, across configurations exercising every
    /// batched stage shape (SmallLut / Hilbert3 stage 1, weighted and
    /// curve stage-2 combiners, both distance modes) and batch lengths
    /// straddling the lane width.
    #[test]
    fn map_batch_matches_scalar_characterize() {
        let mut hilbert_s1 = CascadeConfig::paper_default(3, 3832);
        hilbert_s1.stage1 = Some(crate::config::Stage1 {
            curve: CurveKind::Hilbert,
            dims: 3,
            level_bits: 5, // 32^3 cells: past the SmallLut cap, automaton path
        });
        let mut circular = CascadeConfig::paper_default(2, 3832);
        circular.stage3.as_mut().unwrap().distance = DistanceMode::Circular;
        let configs = [
            CascadeConfig::paper_default(3, 3832),
            hilbert_s1,
            circular,
            CascadeConfig::priority_only(CurveKind::Diagonal, 2, 4),
            CascadeConfig::priority_deadline(
                CurveKind::Diagonal,
                2,
                4,
                Stage2Combiner::Curve(CurveKind::Hilbert),
                1_000_000,
            ),
        ];
        for (ci, cfg) in configs.into_iter().enumerate() {
            let mut e = Encapsulator::new(cfg).unwrap();
            for n in [0usize, 1, 7, 8, 9, 61] {
                let batch: Vec<Request> = (0..n as u64)
                    .map(|i| {
                        let s = i
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(ci as u64);
                        Request::read(
                            i,
                            i * 333,
                            if s % 5 == 0 {
                                u64::MAX
                            } else {
                                1_000 + s % 2_000_000
                            },
                            (s % 3832) as u32,
                            65536,
                            QosVector::new(&[(s % 16) as u8, (s % 33) as u8, (s % 7) as u8]),
                        )
                    })
                    .collect();
                let h = HeadState::new(1700, 0, 3832);
                let vs = e.map_batch(&batch, &h).to_vec();
                assert_eq!(vs.len(), n);
                for (req, &v) in batch.iter().zip(&vs) {
                    let at = HeadState::new(h.cylinder, req.arrival_us, h.cylinders);
                    assert_eq!(v, e.characterize(req, &at), "config {ci} req {}", req.id);
                }
                // The shared-reference form agrees with the &mut form.
                let mut out = Vec::new();
                e.map_batch_into(&batch, &h, &mut out);
                assert_eq!(out, vs);
            }
        }
    }

    #[test]
    fn fixed_div_is_exact_division() {
        let mut s = 0x9e37u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        for _ in 0..20_000 {
            let d = (next() % (1 << 21)).max(1);
            let fd = FixedDiv::new(d);
            // Numerators across the whole range, including around n_max.
            for n in [
                next() % (1 << 22),
                next(),
                fd.n_max,
                fd.n_max.wrapping_add(1),
                fd.n_max.saturating_sub(1),
                u64::MAX,
            ] {
                assert_eq!(fd.div(n), n / d, "d={d} n={n}");
            }
        }
    }

    #[test]
    fn quantizer_matches_quantize() {
        let mut s = 0xdeadu64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        for _ in 0..5_000 {
            let max_in = next() as u128 % (1u128 << 70);
            let max_out = next() as u128 % 4096;
            let q = Quantizer::new(max_in, max_out);
            for v in [
                0u128,
                next() as u128 % (max_in + 1),
                max_in,
                max_in + next() as u128, // clamped region
            ] {
                assert_eq!(
                    q.apply(v),
                    quantize(v, max_in, max_out),
                    "max_in={max_in} max_out={max_out} v={v}"
                );
            }
        }
    }

    #[test]
    fn quantize_preserves_order_and_bounds() {
        assert_eq!(quantize(0, 100, 15), 0);
        assert_eq!(quantize(100, 100, 15), 15);
        assert_eq!(quantize(200, 100, 15), 15); // clamped
        let a = quantize(30, 100, 1000);
        let b = quantize(60, 100, 1000);
        assert!(a < b);
    }
}
