//! Part 1 of the Cascaded-SFC scheduler: the encapsulator.
//!
//! Folds a request's QoS vector, deadline slack, and cylinder distance
//! into one characterization value `v_c` through the configured cascade of
//! space-filling-curve stages. `v_c` is computed once, at insertion time,
//! exactly as in the paper (the deadline slack and head distance are
//! sampled when the request joins the queue).

use crate::config::{CascadeConfig, DistanceMode, Stage2Combiner};
use sched::{HeadState, Micros, Request};
use sfc::{SfcError, SpaceFillingCurve, WeightedDiagonal};

/// The encapsulator: request → characterization value `v_c`.
pub struct Encapsulator {
    config: CascadeConfig,
    /// SFC1 instance (when stage 1 is configured).
    curve1: Option<Box<dyn SpaceFillingCurve>>,
    /// SFC2 catalogue-curve instance (when stage 2 uses `Curve`).
    curve2: Option<Box<dyn SpaceFillingCurve>>,
    /// Maximum possible output of each stage, used for quantization and
    /// for expressing the blocking window as a fraction of the space.
    max_v1: u128,
    max_v2: u128,
    max_vc: u128,
}

impl Encapsulator {
    /// Build the encapsulator, instantiating the configured curves.
    pub fn new(config: CascadeConfig) -> Result<Self, SfcError> {
        let mut curve1 = None;
        let max_v1: u128 = if let Some(s1) = &config.stage1 {
            let c = s1.curve.build(s1.dims, s1.level_bits)?;
            let max = c.cells() - 1;
            curve1 = Some(c);
            max
        } else {
            // Without SFC1 the first priority level is used directly.
            u8::MAX as u128
        };

        let mut curve2 = None;
        let mut max_v2 = max_v1;
        if let Some(s2) = &config.stage2 {
            let grid_max = (1u128 << s2.resolution_bits) - 1;
            max_v2 = match s2.combiner {
                Stage2Combiner::Weighted { f } => {
                    WeightedDiagonal::new(f).value(grid_max as u64, grid_max as u64)
                }
                Stage2Combiner::Curve(kind) => {
                    let c = kind.build(2, s2.resolution_bits)?;
                    let cells = c.cells();
                    curve2 = Some(c);
                    cells - 1
                }
            };
        }

        let max_vc = if let Some(s3) = &config.stage3 {
            let max_x = (1u128 << s3.resolution_bits) - 1;
            let max_y = (s3.cylinders.max(2) - 1) as u128;
            stage3_value(max_x, max_y, max_x + 1, max_y + 1, s3.partitions)
        } else {
            max_v2
        };

        Ok(Encapsulator {
            config,
            curve1,
            curve2,
            max_v1,
            max_v2,
            max_vc,
        })
    }

    /// The largest characterization value this configuration can emit.
    pub fn max_value(&self) -> u128 {
        self.max_vc
    }

    /// The configuration this encapsulator was built from.
    pub fn config(&self) -> &CascadeConfig {
        &self.config
    }

    /// Characterize a request at insertion time: lower `v_c` = served
    /// sooner.
    pub fn characterize(&self, req: &Request, head: &HeadState) -> u128 {
        let v1 = self.stage1_value(req);
        let v2 = self.stage2_value(v1, req, head.now_us);
        self.stage3_value_of(v2, req, head)
    }

    /// Stage 1: priority vector → scalar.
    fn stage1_value(&self, req: &Request) -> u128 {
        match (&self.config.stage1, &self.curve1) {
            (Some(s1), Some(curve)) => {
                let side = curve.side();
                let mut point = [0u64; sched::MAX_QOS_DIMS];
                let dims = s1.dims as usize;
                for (j, slot) in point.iter_mut().enumerate().take(dims) {
                    // Missing dimensions default to the lowest priority;
                    // levels beyond the grid are clamped.
                    let level = if j < req.qos.dims() {
                        req.qos.level(j) as u64
                    } else {
                        side - 1
                    };
                    *slot = level.min(side - 1);
                }
                curve.index(&point[..dims])
            }
            _ => {
                if req.qos.dims() > 0 {
                    req.qos.level(0) as u128
                } else {
                    0
                }
            }
        }
    }

    /// Stage 2: fold the deadline slack in.
    fn stage2_value(&self, v1: u128, req: &Request, now: Micros) -> u128 {
        let Some(s2) = &self.config.stage2 else {
            return v1;
        };
        let grid_max = (1u128 << s2.resolution_bits) - 1;
        let x = quantize(v1, self.max_v1, grid_max) as u64;
        let slack = req.slack_us(now).min(s2.horizon_us);
        let y = quantize(slack as u128, s2.horizon_us.max(1) as u128, grid_max) as u64;
        match s2.combiner {
            Stage2Combiner::Weighted { f } => WeightedDiagonal::new(f).value(x, y),
            Stage2Combiner::Curve(_) => self
                .curve2
                .as_ref()
                .expect("curve2 built for Curve combiner")
                .index(&[x, y]),
        }
    }

    /// Stage 3: fold the cylinder distance in (the paper's partitioned
    /// sweep, tuned by `R`).
    fn stage3_value_of(&self, v2: u128, req: &Request, head: &HeadState) -> u128 {
        let Some(s3) = &self.config.stage3 else {
            return v2;
        };
        let max_x = (1u128 << s3.resolution_bits) - 1;
        let x = quantize(v2, self.max_v2, max_x);
        let y = match s3.distance {
            DistanceMode::Absolute => head.distance_to(req.cylinder) as u128,
            DistanceMode::Circular => {
                let n = s3.cylinders as i64;
                (((req.cylinder as i64 - head.cylinder as i64) % n + n) % n) as u128
            }
        };
        stage3_value(x, y, max_x + 1, s3.cylinders.max(2) as u128, s3.partitions)
    }
}

/// The paper's SFC3 formula (§5.3): partition the X (priority-deadline)
/// axis into `r` vertical strips of width `p_s = max_x / r`; strips are
/// visited left to right, and within a strip cells are swept by Y
/// (cylinder distance) first:
///
/// ```text
/// v_c = max_y·p_s·p_n + y·p_s + (x − p_s·p_n)
/// ```
///
/// `r = 1` reduces to the plain sweep `v_c = y·max_x + x`.
fn stage3_value(x: u128, y: u128, width_x: u128, height_y: u128, r: u32) -> u128 {
    let r = r.max(1) as u128;
    let p_s = (width_x / r).max(1);
    let p_n = (x / p_s).min(r - 1);
    height_y * p_s * p_n + y * p_s + (x - p_s * p_n)
}

/// Scale `v ∈ [0, max_in]` to `[0, max_out]`, preserving order.
#[inline]
fn quantize(v: u128, max_in: u128, max_out: u128) -> u128 {
    if max_in == 0 {
        return 0;
    }
    let v = v.min(max_in);
    // (v * max_out) may exceed u128 for extreme configs; split the scale.
    if let Some(prod) = v.checked_mul(max_out) {
        prod / max_in
    } else {
        // Fall back to f64: only reachable with >64-bit stage outputs,
        // where the 52-bit mantissa still preserves the quantized order.
        ((v as f64 / max_in as f64) * max_out as f64) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Stage3;
    use sched::QosVector;
    use sfc::CurveKind;

    fn head() -> HeadState {
        HeadState::new(1000, 0, 3832)
    }

    fn req(qos: &[u8], deadline: Micros, cyl: u32) -> Request {
        Request::read(1, 0, deadline, cyl, 65536, QosVector::new(qos))
    }

    #[test]
    fn stage1_only_orders_by_curve() {
        let e = Encapsulator::new(CascadeConfig::priority_only(CurveKind::Diagonal, 3, 4)).unwrap();
        let high = e.characterize(&req(&[0, 0, 0], u64::MAX, 0), &head());
        let low = e.characterize(&req(&[15, 15, 15], u64::MAX, 0), &head());
        assert!(high < low);
        assert_eq!(high, 0);
        assert_eq!(low, e.max_value());
    }

    #[test]
    fn no_stage1_uses_first_level() {
        let cfg = CascadeConfig {
            stage1: None,
            stage2: None,
            stage3: None,
            dispatch: crate::DispatchConfig::fully_preemptive(),
        };
        let e = Encapsulator::new(cfg).unwrap();
        assert_eq!(e.characterize(&req(&[7], u64::MAX, 0), &head()), 7);
        assert_eq!(e.characterize(&req(&[], u64::MAX, 0), &head()), 0);
    }

    #[test]
    fn stage2_weighted_orders_by_priority_plus_deadline() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 1.0 },
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        // Same priority: tighter deadline wins.
        let urgent = e.characterize(&req(&[3], 100_000, 0), &head());
        let lax = e.characterize(&req(&[3], 900_000, 0), &head());
        assert!(urgent < lax);
        // Same deadline: higher priority wins.
        let hi = e.characterize(&req(&[0], 500_000, 0), &head());
        let lo = e.characterize(&req(&[9], 500_000, 0), &head());
        assert!(hi < lo);
    }

    #[test]
    fn stage2_f_zero_ignores_deadline() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 0.0 },
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        let hi_late = e.characterize(&req(&[0], 999_000, 0), &head());
        let lo_urgent = e.characterize(&req(&[1], 1_000, 0), &head());
        assert!(hi_late < lo_urgent, "f = 0 must order on priority alone");
    }

    #[test]
    fn stage2_huge_f_orders_by_deadline() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 1e6 },
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        let lo_urgent = e.characterize(&req(&[15], 1_000, 0), &head());
        let hi_late = e.characterize(&req(&[0], 999_000, 0), &head());
        assert!(lo_urgent < hi_late, "huge f must order on deadline alone");
    }

    #[test]
    fn stage2_curve_combiner_works() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            2,
            4,
            Stage2Combiner::Curve(CurveKind::Hilbert),
            1_000_000,
        );
        let e = Encapsulator::new(cfg).unwrap();
        let a = e.characterize(&req(&[0, 0], 1_000, 0), &head());
        let b = e.characterize(&req(&[15, 15], 999_000, 0), &head());
        assert!(a < b);
        assert!(b <= e.max_value());
    }

    #[test]
    fn stage3_r1_orders_by_distance_first() {
        let mut cfg = CascadeConfig::paper_default(1, 3832);
        cfg.stage3 = Some(Stage3 {
            partitions: 1,
            resolution_bits: 10,
            cylinders: 3832,
            distance: DistanceMode::Absolute,
        });
        let e = Encapsulator::new(cfg).unwrap();
        // Near low-priority beats far high-priority when R = 1.
        let near_lo = e.characterize(&req(&[15], 900_000, 1010), &head());
        let far_hi = e.characterize(&req(&[0], 100_000, 3000), &head());
        assert!(near_lo < far_hi, "R = 1 sorts on seek distance only");
    }

    #[test]
    fn stage3_large_r_orders_by_priority_first() {
        let mut cfg = CascadeConfig::paper_default(1, 3832);
        cfg.stage3 = Some(Stage3 {
            partitions: 1024,
            resolution_bits: 10,
            cylinders: 3832,
            distance: DistanceMode::Absolute,
        });
        let e = Encapsulator::new(cfg).unwrap();
        let near_lo = e.characterize(&req(&[15], 900_000, 1010), &head());
        let far_hi = e.characterize(&req(&[0], 100_000, 3000), &head());
        assert!(far_hi < near_lo, "large R sorts on priority first");
    }

    #[test]
    fn stage3_formula_reduces_at_r1() {
        // r = 1: v = y*max_x + x (the plain sweep).
        assert_eq!(stage3_value(5, 7, 16, 100, 1), 7 * 16 + 5);
        // r = 4 partitions of width 4: x = 5 is in partition 1.
        // v = 100*4*1 + 7*4 + (5-4) = 429.
        assert_eq!(stage3_value(5, 7, 16, 100, 4), 429);
    }

    #[test]
    fn circular_distance_mode() {
        let mut cfg = CascadeConfig::paper_default(1, 3832);
        cfg.stage3 = Some(Stage3 {
            partitions: 1,
            resolution_bits: 10,
            cylinders: 3832,
            distance: DistanceMode::Circular,
        });
        let e = Encapsulator::new(cfg).unwrap();
        // Head at 1000: cylinder 900 is "behind" (wraps: distance 3732),
        // cylinder 1100 is ahead (distance 100).
        let behind = e.characterize(&req(&[0], 500_000, 900), &head());
        let ahead = e.characterize(&req(&[0], 500_000, 1100), &head());
        assert!(ahead < behind);
    }

    #[test]
    fn characterization_bounded_by_max_value() {
        let e = Encapsulator::new(CascadeConfig::paper_default(3, 3832)).unwrap();
        for qos in [[0u8, 0, 0], [15, 15, 15], [7, 3, 12]] {
            for deadline in [1_000u64, 500_000, u64::MAX] {
                for cyl in [0u32, 1000, 3831] {
                    let v = e.characterize(&req(&qos, deadline, cyl), &head());
                    assert!(v <= e.max_value());
                }
            }
        }
    }

    #[test]
    fn quantize_preserves_order_and_bounds() {
        assert_eq!(quantize(0, 100, 15), 0);
        assert_eq!(quantize(100, 100, 15), 15);
        assert_eq!(quantize(200, 100, 15), 15); // clamped
        let a = quantize(30, 100, 1000);
        let b = quantize(60, 100, 1000);
        assert!(a < b);
    }
}
