//! The Cascaded-SFC scheduler: encapsulator + dispatcher behind the
//! workspace-wide [`DiskScheduler`] trait.

use crate::config::{CascadeConfig, PreemptionMode, Stage2Combiner};
use crate::dispatcher::Dispatcher;
use crate::encapsulator::Encapsulator;
use obs::{NullSink, Stage, StageSampler, TraceEvent, TraceSink};
use sched::{DiskScheduler, HeadState, Request, Retune};
use sfc::SfcError;

/// The Cascaded-SFC multimedia disk scheduler (see the crate docs for the
/// architecture).
///
/// The sink parameter defaults to [`obs::NullSink`], so existing code —
/// `CascadedSfc::new(config)` — is untraced and pays nothing. Pass a real
/// sink via [`CascadedSfc::with_sink`] to observe the dispatcher's
/// preemption/SP/ER/swap events.
pub struct CascadedSfc<S: TraceSink = NullSink> {
    encapsulator: Encapsulator,
    dispatcher: Dispatcher,
    sink: S,
    spans: Option<SchedulerSpans>,
}

/// Per-stage samplers for the scheduler's opt-in wall-clock spans.
struct SchedulerSpans {
    characterize: StageSampler,
    encapsulate: StageSampler,
}

impl CascadedSfc {
    /// Build the (untraced) scheduler from a configuration.
    pub fn new(config: CascadeConfig) -> Result<Self, SfcError> {
        Self::with_sink(config, NullSink)
    }
}

impl<S: TraceSink> CascadedSfc<S> {
    /// Build the scheduler with a trace sink receiving dispatcher events.
    pub fn with_sink(config: CascadeConfig, sink: S) -> Result<Self, SfcError> {
        let encapsulator = Encapsulator::new(config)?;
        let dispatcher = Dispatcher::new(
            encapsulator.config().dispatch,
            encapsulator.max_value().max(1),
        );
        Ok(CascadedSfc {
            encapsulator,
            dispatcher,
            sink,
            spans: None,
        })
    }

    /// Emit sampled wall-clock [`TraceEvent::StageSpan`]s (1-in-`2^shift`
    /// per stage) over the characterize (SFC mapping) and encapsulate
    /// (dispatcher insert) stages. Span durations are wall-clock and thus
    /// nondeterministic; span counts are a deterministic function of the
    /// request stream. A no-op with a [`NullSink`].
    pub fn with_stage_spans(mut self, shift: u32) -> Self {
        self.spans = Some(SchedulerSpans {
            characterize: StageSampler::every_pow2(shift),
            encapsulate: StageSampler::every_pow2(shift),
        });
        self
    }

    /// Start a wall clock for this stage occurrence if tracing is live
    /// and the sampler picks it.
    #[inline]
    fn span_clock(sampler: Option<&mut StageSampler>) -> Option<std::time::Instant> {
        if !S::ENABLED {
            return None;
        }
        let s = sampler?;
        if s.tick() {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// The encapsulator (e.g. to characterize hypothetical requests).
    pub fn encapsulator(&self) -> &Encapsulator {
        &self.encapsulator
    }

    /// Dispatcher counters: (preemptions, SP promotions, queue swaps).
    pub fn dispatch_counters(&self) -> (u64, u64, u64) {
        self.dispatcher.counters()
    }

    /// Requests shed by the bounded queue
    /// ([`crate::config::DispatchConfig::with_max_queue`]) since
    /// construction.
    pub fn sheds(&self) -> u64 {
        self.dispatcher.sheds()
    }

    /// Depths of the dispatcher's active and waiting queues, `(q, q')`.
    pub fn queue_depths(&self) -> (usize, usize) {
        self.dispatcher.queue_depths()
    }

    /// Rebuild the encapsulator and dispatcher around a mutated
    /// configuration, re-inserting the pending backlog in `(arrival, id)`
    /// order anchored at the current head position. Because the rebuilt
    /// dispatcher starts idle (`current == None`), every re-insert joins
    /// the active queue directly — exactly the state a *fresh* scheduler
    /// reaches when fed the same backlog, which is what makes a retune
    /// equivalent to restarting with the new values. Lifetime counters
    /// (preemptions/promotions/swaps/sheds) carry over so ledgers stay
    /// continuous. Returns `false` (leaving the scheduler untouched) when
    /// the mutated configuration is invalid.
    fn retune_with(&mut self, head: &HeadState, mutate: impl FnOnce(&mut CascadeConfig)) -> bool {
        let mut config = self.encapsulator.config().clone();
        mutate(&mut config);
        let Ok(encapsulator) = Encapsulator::new(config) else {
            return false;
        };
        let mut dispatcher = Dispatcher::new(
            encapsulator.config().dispatch,
            encapsulator.max_value().max(1),
        );
        dispatcher.carry_counters_from(&self.dispatcher);
        let mut backlog = Vec::with_capacity(self.dispatcher.len());
        self.dispatcher
            .for_each_pending(&mut |r| backlog.push(r.clone()));
        backlog.sort_by_key(|r| (r.arrival_us, r.id));
        self.encapsulator = encapsulator;
        self.dispatcher = dispatcher;
        for r in backlog {
            let h = HeadState::new(head.cylinder, r.arrival_us, head.cylinders);
            let v = self.encapsulator.characterize(&r, &h);
            self.dispatcher
                .insert_traced(r, v, head.now_us, &mut self.sink);
        }
        true
    }

    /// Retune SFC2's balance factor `f` at a safe epoch boundary.
    /// Returns `false` (no change) unless the configuration uses the
    /// weighted stage-2 combiner and `f` is finite and non-negative.
    /// Setting the current value is a no-op that still returns `true`.
    pub fn set_balance_factor(&mut self, f: f64, head: &HeadState) -> bool {
        if !f.is_finite() || f < 0.0 {
            return false;
        }
        match self.encapsulator.config().stage2.map(|s| s.combiner) {
            Some(Stage2Combiner::Weighted { f: cur }) => {
                cur == f
                    || self.retune_with(head, |c| {
                        c.stage2.as_mut().expect("stage2 present").combiner =
                            Stage2Combiner::Weighted { f };
                    })
            }
            _ => false,
        }
    }

    /// Retune SFC3's scan-partition count `R` at a safe epoch boundary.
    /// Returns `false` (no change) unless stage 3 is configured and
    /// `r >= 1`. Setting the current value is a no-op that returns `true`.
    pub fn set_scan_partitions(&mut self, r: u32, head: &HeadState) -> bool {
        if r == 0 {
            return false;
        }
        match self.encapsulator.config().stage3 {
            Some(s3) => {
                s3.partitions == r
                    || self.retune_with(head, |c| {
                        c.stage3.as_mut().expect("stage3 present").partitions = r;
                    })
            }
            None => false,
        }
    }

    /// Retune the conditional dispatcher's blocking window `w` (a
    /// fraction of the value space, `0.0..=1.0`) at a safe epoch
    /// boundary. Returns `false` (no change) unless the dispatcher runs
    /// in conditional mode and `w` is in range. Setting the current
    /// value is a no-op that returns `true`.
    pub fn set_window(&mut self, w: f64, head: &HeadState) -> bool {
        if !w.is_finite() || !(0.0..=1.0).contains(&w) {
            return false;
        }
        match self.encapsulator.config().dispatch.mode {
            PreemptionMode::Conditional { window } => {
                window == w
                    || self.retune_with(head, |c| {
                        c.dispatch.mode = PreemptionMode::Conditional { window: w };
                    })
            }
            _ => false,
        }
    }

    /// Insert a request whose characterization value was computed
    /// elsewhere (via [`Encapsulator::map_batch_into`] on a shared
    /// reference, typically by a producer thread). Anchored at the
    /// request's own arrival time — exactly the insertion
    /// [`DiskScheduler::enqueue_batch`] performs after `map_batch`, so a
    /// stream of `insert_characterized` calls in batch order is
    /// bit-identical to `enqueue_batch` on the concatenation.
    pub fn insert_characterized(&mut self, req: Request, v: u128) {
        let now = req.arrival_us;
        self.dispatcher.insert_traced(req, v, now, &mut self.sink);
    }

    /// Drain a multi-producer [`IngestRing`](crate::IngestRing) into the
    /// dispatcher in its deterministic (producer-index, sequence) order.
    /// When producers pushed contiguous slices of one arrival chunk, this
    /// is bit-identical to [`DiskScheduler::enqueue_batch`] on the whole
    /// chunk (pinned by `sim`'s concurrent-ingest tests and the oracle
    /// `diff_batch` gate).
    pub fn drain_ring(&mut self, ring: &mut crate::IngestRing) {
        self.dispatcher
            .insert_bulk_traced(ring.drain_items(), &mut self.sink);
    }

    /// Drain a value-only ingest ring against the arrival chunk its
    /// producers characterized. Producer `p` must have pushed the
    /// characterization values for the `p`-th contiguous slice of
    /// `chunk`, in slice order; the (producer-index, sequence) drain then
    /// reassembles exactly one value per request in chunk order, and the
    /// requests are cloned straight from `chunk` — the ring never carries
    /// them. Bit-identical to [`DiskScheduler::enqueue_batch`] on `chunk`
    /// (pinned by `sim`'s concurrent-ingest tests and the oracle
    /// `diff_batch` gate).
    ///
    /// # Panics
    ///
    /// Panics if the ring holds a different number of values than
    /// `chunk` has requests.
    pub fn drain_value_ring(&mut self, chunk: &[Request], ring: &mut crate::IngestRing<u128>) {
        assert_eq!(
            chunk.len(),
            ring.len(),
            "drain_value_ring: {} requests but {} characterization values",
            chunk.len(),
            ring.len()
        );
        let lanes = ring.drain_lanes();
        self.dispatcher.insert_bulk_traced(
            chunk
                .iter()
                .zip(lanes.into_iter().flatten())
                .map(|(r, v)| (r.clone(), v)),
            &mut self.sink,
        );
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consume the scheduler, returning its trace sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: TraceSink> DiskScheduler for CascadedSfc<S> {
    fn name(&self) -> &'static str {
        "cascaded-sfc"
    }

    fn enqueue(&mut self, req: Request, head: &HeadState) {
        let clock = Self::span_clock(self.spans.as_mut().map(|s| &mut s.characterize));
        let v = self.encapsulator.characterize(&req, head);
        if let Some(t0) = clock {
            self.sink.emit(&TraceEvent::StageSpan {
                now_us: head.now_us,
                stage: Stage::Characterize,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        let clock = Self::span_clock(self.spans.as_mut().map(|s| &mut s.encapsulate));
        self.dispatcher
            .insert_traced(req, v, head.now_us, &mut self.sink);
        if let Some(t0) = clock {
            self.sink.emit(&TraceEvent::StageSpan {
                now_us: head.now_us,
                stage: Stage::Encapsulate,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
    }

    fn enqueue_batch(&mut self, batch: &[Request], head: &HeadState) {
        // Characterize the whole chunk through the encapsulator's scratch
        // buffer (per-request stage invariants hoisted), then insert. Each
        // request is anchored at its own arrival time, exactly like the
        // trait's default loop.
        let clock = Self::span_clock(self.spans.as_mut().map(|s| &mut s.characterize));
        let vs = self.encapsulator.map_batch(batch, head);
        if let Some(t0) = clock {
            self.sink.emit(&TraceEvent::StageSpan {
                now_us: head.now_us,
                stage: Stage::Characterize,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        let clock = Self::span_clock(self.spans.as_mut().map(|s| &mut s.encapsulate));
        self.dispatcher.insert_bulk_traced(
            batch.iter().zip(vs).map(|(r, &v)| (r.clone(), v)),
            &mut self.sink,
        );
        if let Some(t0) = clock {
            self.sink.emit(&TraceEvent::StageSpan {
                now_us: head.now_us,
                stage: Stage::Encapsulate,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
    }

    fn dequeue(&mut self, head: &HeadState) -> Option<Request> {
        let enc = &self.encapsulator;
        if enc.config().dispatch.refresh_on_swap {
            let mut refresh = |r: &Request| enc.characterize(r, head);
            self.dispatcher
                .pop_traced(Some(&mut refresh), head.now_us, &mut self.sink)
        } else {
            self.dispatcher
                .pop_traced(None, head.now_us, &mut self.sink)
        }
    }

    fn len(&self) -> usize {
        self.dispatcher.len()
    }

    fn for_each_pending(&self, f: &mut dyn FnMut(&Request)) {
        self.dispatcher.for_each_pending(f);
    }

    fn sheds(&self) -> u64 {
        self.dispatcher.sheds()
    }

    fn queue_capacity(&self) -> Option<usize> {
        self.encapsulator.config().dispatch.max_queue
    }

    fn retune(&mut self, knob: &Retune, head: &HeadState) -> bool {
        match *knob {
            Retune::BalanceFactor(f) => self.set_balance_factor(f, head),
            Retune::ScanPartitions(r) => self.set_scan_partitions(r, head),
            Retune::Window(w) => self.set_window(w, head),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DispatchConfig, PreemptionMode, Stage2Combiner};
    use sched::{Edf, Micros, MultiQueue, QosVector};
    use sfc::CurveKind;

    fn head() -> HeadState {
        HeadState::new(0, 0, 3832)
    }

    fn req(id: u64, qos: &[u8], deadline: Micros, cyl: u32) -> Request {
        Request::read(id, 0, deadline, cyl, 65536, QosVector::new(qos))
    }

    /// §4.2 generalization: stage 2 only, f → ∞, fully-preemptive — the
    /// cascade orders a batch exactly like EDF.
    #[test]
    fn generalizes_edf() {
        let cfg = CascadeConfig::priority_deadline(
            CurveKind::Diagonal,
            1,
            4,
            Stage2Combiner::Weighted { f: 1e9 },
            1_000_000,
        )
        .with_dispatch(DispatchConfig::fully_preemptive());
        let mut cascade = CascadedSfc::new(cfg).unwrap();
        let mut edf = Edf::new();
        // All requests arrive at t = 0 so slack order = deadline order.
        let batch = [
            req(1, &[3], 700_000, 100),
            req(2, &[0], 200_000, 3000),
            req(3, &[9], 450_000, 50),
            req(4, &[1], 90_000, 2000),
        ];
        for r in &batch {
            cascade.enqueue(r.clone(), &head());
            edf.enqueue(r.clone(), &head());
        }
        for _ in 0..batch.len() {
            assert_eq!(
                cascade.dequeue(&head()).unwrap().id,
                edf.dequeue(&head()).unwrap().id
            );
        }
    }

    /// §4.2 generalization: stage 1 only on one dimension — the cascade
    /// orders a batch like the multi-queue priority scheduler (ignoring
    /// the intra-level SCAN refinement, which needs SFC3).
    #[test]
    fn generalizes_priority_order() {
        let cfg = CascadeConfig::priority_only(CurveKind::Diagonal, 1, 4);
        let mut cascade = CascadedSfc::new(cfg).unwrap();
        let mut mq = MultiQueue::new(0);
        let batch = [
            req(1, &[5], u64::MAX, 0),
            req(2, &[0], u64::MAX, 0),
            req(3, &[15], u64::MAX, 0),
            req(4, &[2], u64::MAX, 0),
        ];
        for r in &batch {
            cascade.enqueue(r.clone(), &head());
            mq.enqueue(r.clone(), &head());
        }
        for _ in 0..batch.len() {
            assert_eq!(
                cascade.dequeue(&head()).unwrap().id,
                mq.dequeue(&head()).unwrap().id
            );
        }
    }

    /// `queue_depths` exposes the `(q, q')` split of §3: arrivals that
    /// beat the in-service value land in the active queue, the rest wait.
    #[test]
    fn queue_depths_track_active_and_waiting() {
        let cfg =
            CascadeConfig::priority_only(CurveKind::Diagonal, 1, 4).with_dispatch(DispatchConfig {
                mode: PreemptionMode::Conditional { window: 0.0 },
                serve_promote: false,
                expand_factor: None,
                refresh_on_swap: false,
                max_queue: None,
            });
        let mut s = CascadedSfc::new(cfg).unwrap();
        assert_eq!(s.queue_depths(), (0, 0));

        // Idle: the arrival goes straight into the active queue.
        s.enqueue(req(1, &[5], u64::MAX, 100), &head());
        assert_eq!(s.queue_depths(), (1, 0));
        assert_eq!(s.dequeue(&head()).unwrap().id, 1);
        assert_eq!(s.queue_depths(), (0, 0));

        // Worse than the in-service level 5: waits in q'.
        s.enqueue(req(2, &[9], u64::MAX, 100), &head());
        assert_eq!(s.queue_depths(), (0, 1));
        // Better: preempts into the active queue.
        s.enqueue(req(3, &[2], u64::MAX, 100), &head());
        assert_eq!(s.queue_depths(), (1, 1));
        assert_eq!(s.len(), 2);

        // Draining serves the active queue first, then swaps q' in.
        assert_eq!(s.dequeue(&head()).unwrap().id, 3);
        assert_eq!(s.dequeue(&head()).unwrap().id, 2);
        assert_eq!(s.queue_depths(), (0, 0));
    }

    #[test]
    fn full_cascade_round_trips_requests() {
        let mut s = CascadedSfc::new(CascadeConfig::paper_default(3, 3832)).unwrap();
        for i in 0..50u64 {
            s.enqueue(
                req(
                    i,
                    &[(i % 16) as u8, ((i * 7) % 16) as u8, 3],
                    500_000,
                    (i * 71 % 3832) as u32,
                ),
                &head(),
            );
        }
        assert_eq!(s.len(), 50);
        let mut seen = Vec::new();
        while let Some(r) = s.dequeue(&head()) {
            seen.push(r.id);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batch_enqueue_matches_per_request_enqueue() {
        let cfg = CascadeConfig::paper_default(3, 3832);
        let mut one = CascadedSfc::new(cfg.clone()).unwrap();
        let mut batched = CascadedSfc::new(cfg).unwrap();
        let batch: Vec<Request> = (0..60u64)
            .map(|i| {
                Request::read(
                    i,
                    i * 250,
                    300_000 + i * 2_000,
                    (i * 97 % 3832) as u32,
                    65536,
                    QosVector::new(&[(i % 16) as u8, ((i * 11) % 16) as u8, 5]),
                )
            })
            .collect();
        let h = HeadState::new(1700, batch[0].arrival_us, 3832);
        for r in &batch {
            one.enqueue(
                r.clone(),
                &HeadState::new(h.cylinder, r.arrival_us, h.cylinders),
            );
        }
        batched.enqueue_batch(&batch, &h);
        assert_eq!(one.len(), batched.len());
        loop {
            let a = one.dequeue(&h);
            let b = batched.dequeue(&h);
            assert_eq!(a.as_ref().map(|r| r.id), b.as_ref().map(|r| r.id));
            if a.is_none() {
                break;
            }
        }
        assert_eq!(one.dispatch_counters(), batched.dispatch_counters());
    }

    #[test]
    fn sink_observes_dispatcher_events() {
        use obs::RingSink;
        let mut s =
            CascadedSfc::with_sink(CascadeConfig::paper_default(2, 3832), RingSink::new(4096))
                .unwrap();
        for i in 0..40u64 {
            let h = HeadState::new((i * 90 % 3832) as u32, i * 1_000, 3832);
            s.enqueue(
                req(
                    i,
                    &[(i % 16) as u8, ((i * 5) % 16) as u8],
                    200_000 + i * 1_000,
                    (i * 131 % 3832) as u32,
                ),
                &h,
            );
            if i % 3 == 0 {
                let _ = s.dequeue(&h);
            }
        }
        let (preempts, promotions, swaps) = s.dispatch_counters();
        let ring = s.into_sink();
        let count = |name: &str| ring.events().filter(|e| e.name() == name).count() as u64;
        assert_eq!(count("preempt"), preempts);
        assert_eq!(count("sp_promote"), promotions);
        assert_eq!(count("queue_swap"), swaps);
        assert!(swaps > 0, "no dispatch activity traced");
    }

    #[test]
    fn stage_spans_cover_characterize_and_encapsulate() {
        use obs::{RingSink, Stage};
        let mut s =
            CascadedSfc::with_sink(CascadeConfig::paper_default(2, 3832), RingSink::new(4096))
                .unwrap()
                .with_stage_spans(0);
        let batch: Vec<Request> = (0..20u64)
            .map(|i| {
                req(
                    i,
                    &[(i % 16) as u8, ((i * 5) % 16) as u8],
                    200_000,
                    (i * 131 % 3832) as u32,
                )
            })
            .collect();
        let h = head();
        for r in &batch[..10] {
            s.enqueue(r.clone(), &h);
        }
        s.enqueue_batch(&batch[10..], &h);
        let ring = s.into_sink();
        let stage_count = |want: Stage| {
            ring.events()
                .filter(|e| matches!(e, TraceEvent::StageSpan { stage, .. } if *stage == want))
                .count()
        };
        // Shift 0 samples every occurrence: one characterize + one
        // encapsulate span per enqueue call, and one of each for the
        // batch as a whole.
        assert_eq!(stage_count(Stage::Characterize), 11);
        assert_eq!(stage_count(Stage::Encapsulate), 11);
    }

    #[test]
    fn name_and_counters() {
        let s = CascadedSfc::new(CascadeConfig::paper_default(2, 100)).unwrap();
        assert_eq!(s.name(), "cascaded-sfc");
        assert_eq!(s.dispatch_counters(), (0, 0, 0));
    }

    /// Satellite: a mid-trace retune of all three knobs must behave
    /// exactly like a fresh scheduler constructed with the new values and
    /// fed the same queue state — and lifetime counters must survive the
    /// rebuild.
    #[test]
    fn mid_trace_retune_matches_fresh_scheduler() {
        let mut live = CascadedSfc::new(CascadeConfig::paper_default(3, 3832)).unwrap();
        // Drive the scheduler partway through a trace: 60 arrivals with a
        // wandering head, 20 interleaved dispatches, so both queues and
        // the ER window hold real state at the retune point.
        let mut hd = head();
        for i in 0..60u64 {
            let h = HeadState::new(hd.cylinder, i * 1_500, 3832);
            live.enqueue(
                req(
                    i,
                    &[(i % 16) as u8, ((i * 7) % 16) as u8, ((i * 3) % 16) as u8],
                    200_000 + i * 9_000,
                    (i * 173 % 3832) as u32,
                ),
                &h,
            );
            if i % 3 == 2 {
                if let Some(r) = live.dequeue(&HeadState::new(hd.cylinder, i * 1_500 + 700, 3832)) {
                    hd.cylinder = r.cylinder;
                }
            }
        }
        let at = HeadState::new(hd.cylinder, 120_000, 3832);
        let before = live.dispatch_counters();

        // Capture the queue state a fresh scheduler would be fed.
        let mut backlog = Vec::new();
        live.for_each_pending(&mut |r| backlog.push(r.clone()));
        backlog.sort_by_key(|r| (r.arrival_us, r.id));
        assert!(!backlog.is_empty(), "retune point must have a backlog");

        assert!(live.set_balance_factor(2.5, &at));
        assert!(live.set_scan_partitions(5, &at));
        assert!(live.set_window(0.25, &at));
        // Re-inserting an idle dispatcher cannot preempt or shed, so the
        // carried counters are exactly the pre-retune ones.
        assert_eq!(live.dispatch_counters(), before);

        let mut cfg = CascadeConfig::paper_default(3, 3832);
        cfg.stage2.as_mut().unwrap().combiner = Stage2Combiner::Weighted { f: 2.5 };
        cfg.stage3.as_mut().unwrap().partitions = 5;
        cfg.dispatch.mode = PreemptionMode::Conditional { window: 0.25 };
        let mut fresh = CascadedSfc::new(cfg).unwrap();
        for r in &backlog {
            fresh.enqueue(
                r.clone(),
                &HeadState::new(at.cylinder, r.arrival_us, at.cylinders),
            );
        }

        assert_eq!(live.len(), fresh.len());
        assert_eq!(live.queue_depths(), fresh.queue_depths());
        // Identical dequeue order down the same head walk.
        let mut h = at;
        loop {
            let a = live.dequeue(&h);
            let b = fresh.dequeue(&h);
            assert_eq!(a.as_ref().map(|r| r.id), b.as_ref().map(|r| r.id));
            match a {
                Some(r) => h.cylinder = r.cylinder,
                None => break,
            }
        }
    }

    /// Retuning a knob to its current value is a no-op: no rebuild, so
    /// the `(q, q')` split is untouched (a rebuild would collapse the
    /// waiting queue into the active one).
    #[test]
    fn retune_to_same_value_is_a_no_op() {
        let mut s = CascadedSfc::new(CascadeConfig::paper_default(2, 3832)).unwrap();
        for i in 0..24u64 {
            let h = HeadState::new((i * 53 % 3832) as u32, i * 1_000, 3832);
            s.enqueue(
                req(
                    i,
                    &[(i % 16) as u8, 3],
                    300_000 + i * 4_000,
                    (i * 211 % 3832) as u32,
                ),
                &h,
            );
            if i % 4 == 3 {
                let _ = s.dequeue(&h);
            }
        }
        let depths = s.queue_depths();
        assert!(depths.1 > 0, "need a waiting queue to observe the no-op");
        let at = HeadState::new(900, 30_000, 3832);
        // Paper defaults: f = 1.0, R = 3, w = 0.10.
        assert!(s.set_balance_factor(1.0, &at));
        assert!(s.set_scan_partitions(3, &at));
        assert!(s.set_window(0.10, &at));
        assert_eq!(s.queue_depths(), depths);
    }

    /// Knobs absent from the configuration (or invalid values) are
    /// refused and leave the scheduler untouched.
    #[test]
    fn retune_refuses_missing_knobs_and_bad_values() {
        let at = head();
        // Priority-only: no stage2, no stage3, fully-preemptive.
        let mut s =
            CascadedSfc::new(CascadeConfig::priority_only(CurveKind::Diagonal, 2, 4)).unwrap();
        assert!(!s.set_balance_factor(2.0, &at));
        assert!(!s.set_scan_partitions(4, &at));
        assert!(!s.set_window(0.5, &at));
        // Full cascade, but out-of-range values.
        let mut s = CascadedSfc::new(CascadeConfig::paper_default(2, 3832)).unwrap();
        assert!(!s.set_balance_factor(-1.0, &at));
        assert!(!s.set_balance_factor(f64::NAN, &at));
        assert!(!s.set_scan_partitions(0, &at));
        assert!(!s.set_window(1.5, &at));
        assert!(!s.set_window(f64::NAN, &at));
        // The trait hook routes to the same setters.
        assert!(s.retune(&Retune::BalanceFactor(2.0), &at));
        assert!(s.retune(&Retune::ScanPartitions(4), &at));
        assert!(s.retune(&Retune::Window(0.5), &at));
        assert!(!s.retune(&Retune::ScanPartitions(0), &at));
    }

    #[test]
    fn higher_priority_served_first_within_batch() {
        let mut s = CascadedSfc::new(
            CascadeConfig::paper_default(2, 3832).with_dispatch(DispatchConfig::fully_preemptive()),
        )
        .unwrap();
        // Identical deadline and cylinder: QoS decides.
        s.enqueue(req(1, &[12, 12], 500_000, 100), &head());
        s.enqueue(req(2, &[1, 1], 500_000, 100), &head());
        assert_eq!(s.dequeue(&head()).unwrap().id, 2);
    }
}
