//! Property-based tests of the encapsulator's scheduling monotonicity.
//!
//! With the paper's default configuration (Diagonal SFC1, weighted SFC2,
//! partitioned-sweep SFC3), making a request strictly "better" in any
//! single coordinate (a higher priority level, a tighter deadline, or a
//! closer cylinder) must never *increase* its characterization value.
//! With recursive curves like Hilbert in SFC1 this deliberately does not
//! hold — that non-monotonicity is the locality/fairness trade the paper
//! studies — so the properties pin the monotone configuration only.

use cascade::{CascadeConfig, Encapsulator};
use proptest::prelude::*;
use sched::{HeadState, QosVector, Request};

fn encapsulator() -> Encapsulator {
    Encapsulator::new(CascadeConfig::paper_default(3, 3832)).unwrap()
}

fn req(levels: [u8; 3], deadline_us: u64, cylinder: u32) -> Request {
    Request::read(0, 0, deadline_us, cylinder, 65536, QosVector::new(&levels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn raising_a_priority_never_raises_vc(
        l0 in 0u8..16, l1 in 0u8..16, l2 in 1u8..16,
        deadline in 1_000u64..2_000_000,
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        let worse = e.characterize(&req([l0, l1, l2], deadline, cyl), &head);
        let better = e.characterize(&req([l0, l1, l2 - 1], deadline, cyl), &head);
        prop_assert!(better <= worse,
            "raising dim2 priority {l2}->{} raised v_c {worse}->{better}", l2 - 1);
    }

    #[test]
    fn tightening_the_deadline_never_raises_vc(
        levels in prop::array::uniform3(0u8..16),
        d_tight in 1_000u64..500_000,
        extra in 1_000u64..500_000,
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        let lax = e.characterize(&req(levels, d_tight + extra, cyl), &head);
        let tight = e.characterize(&req(levels, d_tight, cyl), &head);
        prop_assert!(tight <= lax);
    }

    #[test]
    fn approaching_the_head_never_raises_vc(
        levels in prop::array::uniform3(0u8..16),
        deadline in 1_000u64..2_000_000,
        head_cyl in 0u32..3832,
        far in 0u32..3832,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        // `near` halves the distance to the head.
        let near = if far >= head_cyl {
            head_cyl + (far - head_cyl) / 2
        } else {
            head_cyl - (head_cyl - far) / 2
        };
        let v_far = e.characterize(&req(levels, deadline, far), &head);
        let v_near = e.characterize(&req(levels, deadline, near), &head);
        prop_assert!(v_near <= v_far);
    }

    #[test]
    fn vc_always_within_max_value(
        levels in prop::array::uniform3(0u8..16),
        deadline in prop::option::of(1_000u64..3_000_000),
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
        now in 0u64..1_000_000,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, now, 3832);
        let deadline = deadline.map(|d| now + d).unwrap_or(u64::MAX);
        let v = e.characterize(&req(levels, deadline, cyl), &head);
        prop_assert!(v <= e.max_value());
    }

    #[test]
    fn characterization_is_deterministic(
        levels in prop::array::uniform3(0u8..16),
        deadline in 1_000u64..2_000_000,
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
    ) {
        let e1 = encapsulator();
        let e2 = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        let r = req(levels, deadline, cyl);
        prop_assert_eq!(e1.characterize(&r, &head), e2.characterize(&r, &head));
    }

    #[test]
    fn map_batch_matches_per_request_characterize(
        kind_idx in 0usize..sfc::CurveKind::ALL.len(),
        stage_cfg in 0usize..3,
        seed in 0u64..u64::MAX,
        head_cyl in 0u32..3832,
        n in 1usize..40,
    ) {
        // The batched fast path must be bit-identical to the scalar path
        // for every catalogue curve in stage 1 and every stage depth:
        // stage 1 only, stages 1+2, and the full three-stage cascade.
        let kind = sfc::CurveKind::ALL[kind_idx];
        let cfg = match stage_cfg {
            0 => CascadeConfig::priority_only(kind, 3, 4),
            1 => CascadeConfig::priority_deadline(
                kind,
                3,
                4,
                cascade::Stage2Combiner::Weighted { f: 2.5 },
                1_000_000,
            ),
            _ => {
                let mut c = CascadeConfig::paper_default(3, 3832);
                if let Some(s1) = c.stage1.as_mut() {
                    s1.curve = kind;
                }
                c
            }
        };
        let mut batched = Encapsulator::new(cfg.clone()).unwrap();
        let scalar = Encapsulator::new(cfg).unwrap();
        // A splitmix64-derived batch with varied arrivals, deadlines,
        // cylinders and QoS levels.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut arrival = 0u64;
        let batch: Vec<Request> = (0..n as u64)
            .map(|i| {
                arrival += next() % 5_000;
                let deadline = if next() % 5 == 0 {
                    u64::MAX
                } else {
                    arrival + 1_000 + next() % 2_000_000
                };
                Request::read(
                    i,
                    arrival,
                    deadline,
                    (next() % 3832) as u32,
                    65536,
                    QosVector::new(&[
                        (next() % 16) as u8,
                        (next() % 16) as u8,
                        (next() % 16) as u8,
                    ]),
                )
            })
            .collect();
        let head = HeadState::new(head_cyl, batch[0].arrival_us, 3832);
        let vs = batched.map_batch(&batch, &head).to_vec();
        prop_assert_eq!(vs.len(), batch.len());
        for (r, v) in batch.iter().zip(vs) {
            let h = HeadState::new(head_cyl, r.arrival_us, 3832);
            prop_assert_eq!(v, scalar.characterize(r, &h),
                "{} stage_cfg={} req id={}", kind, stage_cfg, r.id);
        }
        // Scratch reuse across calls must not leak previous results.
        let again = batched.map_batch(&batch[..1], &head).to_vec();
        prop_assert_eq!(again.len(), 1);
        prop_assert_eq!(again[0], scalar.characterize(&batch[0], &head));
    }

    #[test]
    fn spec_built_schedulers_match_hand_built(
        f in 0.0f64..8.0,
        r in 1u32..8,
    ) {
        // The spec DSL and the struct literals describe the same machine.
        let spec = format!(
            "sfc1 = diagonal : dims=3, levels=16\n\
             sfc2 = weighted : f={f}, horizon=1s\n\
             sfc3 = r={r} : cylinders=3832\n\
             dispatch = batch"
        );
        let from_spec = Encapsulator::new(cascade::spec::parse(&spec).unwrap()).unwrap();
        let mut cfg = CascadeConfig::paper_default(3, 3832);
        if let Some(s2) = cfg.stage2.as_mut() {
            s2.combiner = cascade::Stage2Combiner::Weighted { f };
        }
        if let Some(s3) = cfg.stage3.as_mut() {
            s3.partitions = r;
        }
        let by_hand = Encapsulator::new(cfg).unwrap();
        let head = HeadState::new(1000, 0, 3832);
        let probe = req([3, 7, 1], 450_000, 2222);
        prop_assert_eq!(
            from_spec.characterize(&probe, &head),
            by_hand.characterize(&probe, &head)
        );
    }
}
