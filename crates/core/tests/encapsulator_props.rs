//! Property-based tests of the encapsulator's scheduling monotonicity.
//!
//! With the paper's default configuration (Diagonal SFC1, weighted SFC2,
//! partitioned-sweep SFC3), making a request strictly "better" in any
//! single coordinate (a higher priority level, a tighter deadline, or a
//! closer cylinder) must never *increase* its characterization value.
//! With recursive curves like Hilbert in SFC1 this deliberately does not
//! hold — that non-monotonicity is the locality/fairness trade the paper
//! studies — so the properties pin the monotone configuration only.

use cascade::{CascadeConfig, Encapsulator};
use proptest::prelude::*;
use sched::{HeadState, QosVector, Request};

fn encapsulator() -> Encapsulator {
    Encapsulator::new(CascadeConfig::paper_default(3, 3832)).unwrap()
}

fn req(levels: [u8; 3], deadline_us: u64, cylinder: u32) -> Request {
    Request::read(0, 0, deadline_us, cylinder, 65536, QosVector::new(&levels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn raising_a_priority_never_raises_vc(
        l0 in 0u8..16, l1 in 0u8..16, l2 in 1u8..16,
        deadline in 1_000u64..2_000_000,
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        let worse = e.characterize(&req([l0, l1, l2], deadline, cyl), &head);
        let better = e.characterize(&req([l0, l1, l2 - 1], deadline, cyl), &head);
        prop_assert!(better <= worse,
            "raising dim2 priority {l2}->{} raised v_c {worse}->{better}", l2 - 1);
    }

    #[test]
    fn tightening_the_deadline_never_raises_vc(
        levels in prop::array::uniform3(0u8..16),
        d_tight in 1_000u64..500_000,
        extra in 1_000u64..500_000,
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        let lax = e.characterize(&req(levels, d_tight + extra, cyl), &head);
        let tight = e.characterize(&req(levels, d_tight, cyl), &head);
        prop_assert!(tight <= lax);
    }

    #[test]
    fn approaching_the_head_never_raises_vc(
        levels in prop::array::uniform3(0u8..16),
        deadline in 1_000u64..2_000_000,
        head_cyl in 0u32..3832,
        far in 0u32..3832,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        // `near` halves the distance to the head.
        let near = if far >= head_cyl {
            head_cyl + (far - head_cyl) / 2
        } else {
            head_cyl - (head_cyl - far) / 2
        };
        let v_far = e.characterize(&req(levels, deadline, far), &head);
        let v_near = e.characterize(&req(levels, deadline, near), &head);
        prop_assert!(v_near <= v_far);
    }

    #[test]
    fn vc_always_within_max_value(
        levels in prop::array::uniform3(0u8..16),
        deadline in prop::option::of(1_000u64..3_000_000),
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
        now in 0u64..1_000_000,
    ) {
        let e = encapsulator();
        let head = HeadState::new(head_cyl, now, 3832);
        let deadline = deadline.map(|d| now + d).unwrap_or(u64::MAX);
        let v = e.characterize(&req(levels, deadline, cyl), &head);
        prop_assert!(v <= e.max_value());
    }

    #[test]
    fn characterization_is_deterministic(
        levels in prop::array::uniform3(0u8..16),
        deadline in 1_000u64..2_000_000,
        cyl in 0u32..3832,
        head_cyl in 0u32..3832,
    ) {
        let e1 = encapsulator();
        let e2 = encapsulator();
        let head = HeadState::new(head_cyl, 0, 3832);
        let r = req(levels, deadline, cyl);
        prop_assert_eq!(e1.characterize(&r, &head), e2.characterize(&r, &head));
    }

    #[test]
    fn spec_built_schedulers_match_hand_built(
        f in 0.0f64..8.0,
        r in 1u32..8,
    ) {
        // The spec DSL and the struct literals describe the same machine.
        let spec = format!(
            "sfc1 = diagonal : dims=3, levels=16\n\
             sfc2 = weighted : f={f}, horizon=1s\n\
             sfc3 = r={r} : cylinders=3832\n\
             dispatch = batch"
        );
        let from_spec = Encapsulator::new(cascade::spec::parse(&spec).unwrap()).unwrap();
        let mut cfg = CascadeConfig::paper_default(3, 3832);
        if let Some(s2) = cfg.stage2.as_mut() {
            s2.combiner = cascade::Stage2Combiner::Weighted { f };
        }
        if let Some(s3) = cfg.stage3.as_mut() {
            s3.partitions = r;
        }
        let by_hand = Encapsulator::new(cfg).unwrap();
        let head = HeadState::new(1000, 0, 3832);
        let probe = req([3, 7, 1], 450_000, 2222);
        prop_assert_eq!(
            from_spec.characterize(&probe, &head),
            by_hand.characterize(&probe, &head)
        );
    }
}
