//! Property-based tests of the dispatcher invariants: conservation (no
//! request lost or duplicated under any interleaving of inserts and
//! pops), heap-order of the fully-preemptive mode, starvation-freedom of
//! ER, and window monotonicity of the conditional mode.

use cascade::{DispatchConfig, Dispatcher, PreemptionMode};
use proptest::prelude::*;
use sched::{QosVector, Request};

fn req(id: u64) -> Request {
    Request::read(id, 0, u64::MAX, 0, 512, QosVector::none())
}

/// A random schedule of operations: `Some(v)` = insert with value v,
/// `None` = pop.
fn ops() -> impl Strategy<Value = Vec<Option<u64>>> {
    prop::collection::vec(prop::option::weighted(0.6, 0u64..1000), 1..200)
}

fn dispatch_configs() -> Vec<DispatchConfig> {
    vec![
        DispatchConfig::fully_preemptive(),
        DispatchConfig::non_preemptive(),
        DispatchConfig {
            mode: PreemptionMode::Conditional { window: 0.1 },
            serve_promote: false,
            expand_factor: None,
            refresh_on_swap: false,
            max_queue: None,
        },
        DispatchConfig {
            mode: PreemptionMode::Conditional { window: 0.25 },
            serve_promote: true,
            expand_factor: Some(2.0),
            refresh_on_swap: false,
            max_queue: None,
        },
        DispatchConfig::paper_default(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_request_lost_or_duplicated(schedule in ops()) {
        for config in dispatch_configs() {
            let mut d = Dispatcher::new(config, 1000);
            let mut inserted = Vec::new();
            let mut popped = Vec::new();
            let mut next_id = 0u64;
            for op in &schedule {
                match op {
                    Some(v) => {
                        d.insert(req(next_id), *v as u128);
                        inserted.push(next_id);
                        next_id += 1;
                    }
                    None => {
                        if let Some(r) = d.pop(None) {
                            popped.push(r.id);
                        }
                    }
                }
            }
            while let Some(r) = d.pop(None) {
                popped.push(r.id);
            }
            popped.sort_unstable();
            prop_assert_eq!(&popped, &inserted, "config {:?}", config);
            prop_assert!(d.is_empty());
        }
    }

    #[test]
    fn fully_preemptive_pops_in_value_order(values in prop::collection::vec(0u64..1000, 1..100)) {
        let mut d = Dispatcher::new(DispatchConfig::fully_preemptive(), 1000);
        for (id, &v) in values.iter().enumerate() {
            d.insert(req(id as u64), v as u128);
        }
        let mut last: Option<(u128, u64)> = None;
        while let Some(r) = d.pop(None) {
            let v = values[r.id as usize] as u128;
            if let Some(prev) = last {
                prop_assert!(prev <= (v, r.id), "heap order violated");
            }
            last = Some((v, r.id));
        }
    }

    #[test]
    fn pending_iteration_matches_len(schedule in ops()) {
        let mut d = Dispatcher::new(DispatchConfig::paper_default(), 1000);
        let mut next_id = 0u64;
        for op in &schedule {
            match op {
                Some(v) => {
                    d.insert(req(next_id), *v as u128);
                    next_id += 1;
                }
                None => {
                    d.pop(None);
                }
            }
            let mut n = 0usize;
            d.for_each_pending(&mut |_| n += 1);
            prop_assert_eq!(n, d.len());
        }
    }

    #[test]
    fn conditional_window_never_promotes_lower_priority(
        cur in 100u64..900,
        newcomer in 0u64..1000,
    ) {
        // After serving `cur`, a newcomer enters the active queue iff it
        // beats cur by more than the window.
        let mut d = Dispatcher::new(
            DispatchConfig {
                mode: PreemptionMode::Conditional { window: 0.1 },
                serve_promote: false,
                expand_factor: None,
                refresh_on_swap: false,
                max_queue: None,
            },
            1000,
        );
        d.insert(req(0), cur as u128);
        d.pop(None);
        d.insert(req(1), newcomer as u128);
        let preempted = d.counters().0 == 1;
        prop_assert_eq!(
            preempted,
            (newcomer as u128) < (cur as u128).saturating_sub(100),
            "cur={} new={}", cur, newcomer
        );
    }

    #[test]
    fn refresh_preserves_membership(values in prop::collection::vec(0u64..1000, 1..60)) {
        // Refresh-on-swap re-keys but never adds/drops entries.
        let mut d = Dispatcher::new(DispatchConfig::non_preemptive(), 1000);
        for (id, &v) in values.iter().enumerate() {
            d.insert(req(id as u64), v as u128);
        }
        let mut popped = Vec::new();
        let mut refresh = |r: &Request| (1000 - r.id) as u128; // reverse order
        while let Some(r) = d.pop(Some(&mut refresh)) {
            popped.push(r.id);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted.len(), values.len());
        // The refresh reversed the order within the single batch.
        let expected: Vec<u64> = (0..values.len() as u64).rev().collect();
        prop_assert_eq!(popped, expected);
    }
}
