//! The discrete `(f, R, w)` search space.
//!
//! The paper's three cascade knobs — SFC2 balance factor `f`, SFC3 scan
//! partitions `R`, and the conditional blocking window `w` — are each
//! quantized onto a small axis; a [`Grid`] is their cross product. The
//! search walks grid *indices*, so neighborhood structure (±1 step on
//! one axis) and determinism come for free; only the harness that
//! evaluates a point ever sees the real values.

/// One concrete configuration: a point of the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// SFC2 balance factor.
    pub f: f64,
    /// SFC3 scan partitions.
    pub r: u32,
    /// Conditional blocking window (fraction of the value span).
    pub w: f64,
}

/// The cross product of three quantized knob axes. Axes must be
/// non-empty and sorted ascending (nearest-value snapping relies on
/// order).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    f_axis: Vec<f64>,
    r_axis: Vec<u32>,
    w_axis: Vec<f64>,
}

impl Default for Grid {
    /// The paper-flavored sweep: 8 balance factors around the §5
    /// default `f = 1`, 6 partition counts around `R = 3`, and 7
    /// blocking windows around `w = 0.1` — 336 points, so a 5% budget
    /// is ~16 evaluations.
    fn default() -> Self {
        Grid::new(
            vec![0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0],
            vec![1, 2, 3, 4, 5, 6],
            vec![0.0, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60],
        )
    }
}

impl Grid {
    /// A grid from three explicit axes.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or unsorted.
    pub fn new(f_axis: Vec<f64>, r_axis: Vec<u32>, w_axis: Vec<f64>) -> Self {
        assert!(
            !f_axis.is_empty() && !r_axis.is_empty() && !w_axis.is_empty(),
            "grid axes must be non-empty"
        );
        assert!(
            f_axis.windows(2).all(|p| p[0] < p[1])
                && r_axis.windows(2).all(|p| p[0] < p[1])
                && w_axis.windows(2).all(|p| p[0] < p[1]),
            "grid axes must be strictly ascending"
        );
        Grid {
            f_axis,
            r_axis,
            w_axis,
        }
    }

    /// A degenerate one-point grid holding exactly `point` — pins a
    /// controller to a fixed configuration (it can never propose a
    /// move), which the oracle uses for its bit-identity check.
    pub fn pinned(point: GridPoint) -> Self {
        Grid::new(vec![point.f], vec![point.r], vec![point.w])
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.f_axis.len() * self.r_axis.len() * self.w_axis.len()
    }

    /// `true` for the degenerate single-point grid and smaller.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The point at a flat index (row-major over `(f, r, w)`).
    pub fn point(&self, idx: usize) -> GridPoint {
        let (nf, nr, nw) = (self.f_axis.len(), self.r_axis.len(), self.w_axis.len());
        assert!(idx < nf * nr * nw, "grid index out of range");
        GridPoint {
            f: self.f_axis[idx / (nr * nw)],
            r: self.r_axis[(idx / nw) % nr],
            w: self.w_axis[idx % nw],
        }
    }

    /// The flat index of the grid point nearest to `(f, r, w)` — how a
    /// live configuration is snapped onto the grid to seed the search.
    pub fn snap(&self, f: f64, r: u32, w: f64) -> usize {
        let fi = nearest_f(&self.f_axis, f);
        let ri = self
            .r_axis
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v.abs_diff(r))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let wi = nearest_f(&self.w_axis, w);
        (fi * self.r_axis.len() + ri) * self.w_axis.len() + wi
    }

    /// The ≤6 indices one axis step away from `idx`, in a fixed order
    /// (f−, f+, r−, r+, w−, w+) so the search is deterministic.
    pub fn neighbors(&self, idx: usize) -> Vec<usize> {
        let (nr, nw) = (self.r_axis.len(), self.w_axis.len());
        let (fi, ri, wi) = (idx / (nr * nw), (idx / nw) % nr, idx % nw);
        let flat = |fi: usize, ri: usize, wi: usize| (fi * nr + ri) * nw + wi;
        let mut out = Vec::with_capacity(6);
        if fi > 0 {
            out.push(flat(fi - 1, ri, wi));
        }
        if fi + 1 < self.f_axis.len() {
            out.push(flat(fi + 1, ri, wi));
        }
        if ri > 0 {
            out.push(flat(fi, ri - 1, wi));
        }
        if ri + 1 < nr {
            out.push(flat(fi, ri + 1, wi));
        }
        if wi > 0 {
            out.push(flat(fi, ri, wi - 1));
        }
        if wi + 1 < nw {
            out.push(flat(fi, ri, wi + 1));
        }
        out
    }
}

fn nearest_f(axis: &[f64], v: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &a) in axis.iter().enumerate() {
        let d = (a - v).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let g = Grid::default();
        for idx in 0..g.len() {
            let p = g.point(idx);
            assert_eq!(g.snap(p.f, p.r, p.w), idx, "snap(point({idx}))");
        }
    }

    #[test]
    fn snap_picks_the_nearest_axis_value() {
        let g = Grid::default();
        let p = g.point(g.snap(0.9, 3, 0.12));
        assert_eq!((p.f, p.r, p.w), (1.0, 3, 0.10));
    }

    #[test]
    fn neighbors_are_one_step_away_and_symmetric() {
        let g = Grid::default();
        for idx in 0..g.len() {
            for &n in &g.neighbors(idx) {
                assert_ne!(n, idx);
                let (a, b) = (g.point(idx), g.point(n));
                let moved =
                    usize::from(a.f != b.f) + usize::from(a.r != b.r) + usize::from(a.w != b.w);
                assert_eq!(moved, 1, "neighbor {n} of {idx} moved on one axis");
                assert!(
                    g.neighbors(n).contains(&idx),
                    "neighborhood must be symmetric"
                );
            }
        }
    }

    #[test]
    fn pinned_grid_has_one_point_and_no_neighbors() {
        let g = Grid::pinned(GridPoint {
            f: 1.0,
            r: 3,
            w: 0.1,
        });
        assert_eq!(g.len(), 1);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.snap(7.0, 99, 0.9), 0);
    }
}
