//! Seeded online search over a [`Grid`]: greedy hill-climbing with
//! pheromone-guided escape restarts.
//!
//! The searcher never evaluates anything itself — it runs a
//! propose/observe loop against a harness (the live [`Controller`]
//! scoring telemetry windows, or the offline sweep re-simulating a
//! trace):
//!
//! 1. [`TunerSearch::propose`] names the next grid index to try: the
//!    start point first, then unevaluated neighbors of the best point
//!    found so far (pheromone-richest first), and — once the best
//!    point's whole neighborhood is known — an *escape restart* at an
//!    unevaluated point drawn roulette-style from the pheromone table.
//! 2. The harness evaluates that configuration and calls
//!    [`TunerSearch::observe`] with its objective score (lower =
//!    better). Observation evaporates the whole pheromone table, then
//!    deposits quality `1 / (1 + score)` on the observed point and half
//!    that on its neighbors, so escapes drift toward good basins
//!    (ACO-style, one ant per evaluation).
//!
//! Everything is a pure function of the seed and the observation
//! sequence: ties break by lowest index, the RNG only fires inside
//! escape roulette, and the evaluated set lives in a `BTreeMap`. Two
//! runs over the same telemetry produce bit-identical proposal streams.
//!
//! [`Controller`]: crate::Controller

use crate::grid::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Search hyper-parameters. All deterministic given `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// RNG seed for escape-restart roulette.
    pub seed: u64,
    /// Evaluation budget: [`TunerSearch::propose`] returns `None` once
    /// this many observations have been made.
    pub max_evals: usize,
    /// Pheromone evaporation per observation, in `[0, 1)`.
    pub evaporation: f64,
}

impl Default for SearchConfig {
    /// Budget 5% of the default grid (~16 evals), gentle evaporation.
    fn default() -> Self {
        SearchConfig {
            seed: 0x2004_0330,
            max_evals: Grid::default().len().div_ceil(20),
            evaporation: 0.10,
        }
    }
}

/// Hill-climbing + pheromone searcher over one [`Grid`] (module docs).
#[derive(Debug, Clone)]
pub struct TunerSearch {
    grid: Grid,
    cfg: SearchConfig,
    rng: StdRng,
    pheromone: Vec<f64>,
    evaluated: BTreeMap<usize, f64>,
    start: usize,
    best: Option<(usize, f64)>,
    pending_escape: Option<usize>,
}

impl TunerSearch {
    /// A searcher starting from grid index `start` (the currently
    /// applied configuration, snapped via [`Grid::snap`]).
    pub fn new(grid: Grid, start: usize, cfg: SearchConfig) -> Self {
        assert!(start < grid.len(), "start index out of grid range");
        assert!(
            (0.0..1.0).contains(&cfg.evaporation),
            "evaporation must be in [0, 1)"
        );
        let pheromone = vec![1.0; grid.len()];
        TunerSearch {
            grid,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            pheromone,
            evaluated: BTreeMap::new(),
            start,
            best: None,
            pending_escape: None,
        }
    }

    /// The search space.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Observations made so far.
    pub fn evals(&self) -> usize {
        self.evaluated.len()
    }

    /// Best `(grid index, score)` observed so far.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.best
    }

    /// The next grid index worth evaluating, or `None` when the budget
    /// is spent or the whole grid is evaluated. Proposing is read-only:
    /// calling it twice without an intervening observe returns the same
    /// index (escape roulette is deferred to a cached draw).
    pub fn propose(&mut self) -> Option<usize> {
        if self.evaluated.len() >= self.cfg.max_evals.max(1)
            || self.evaluated.len() >= self.grid.len()
        {
            return None;
        }
        if self.evaluated.is_empty() {
            return Some(self.start);
        }
        let (anchor, _) = self.best.expect("observed implies best");
        // Unevaluated neighbors of the best point, pheromone-richest
        // first; ties break toward the lower index via max_by stability.
        let frontier = self
            .grid
            .neighbors(anchor)
            .into_iter()
            .filter(|n| !self.evaluated.contains_key(n))
            .max_by(|&a, &b| {
                self.pheromone[a]
                    .partial_cmp(&self.pheromone[b])
                    .expect("pheromones are finite")
                    .then(b.cmp(&a))
            });
        if let Some(n) = frontier {
            return Some(n);
        }
        // Local optimum: every neighbor known. Escape-restart at an
        // unevaluated point, roulette-weighted by pheromone. The draw is
        // cached so back-to-back proposes stay repeatable.
        if let Some(p) = self.pending_escape {
            return Some(p);
        }
        let p = self.roulette();
        self.pending_escape = Some(p);
        Some(p)
    }

    /// Record the objective score of a proposed index (lower = better).
    pub fn observe(&mut self, idx: usize, score: f64) {
        assert!(idx < self.grid.len(), "observed index out of grid range");
        assert!(score.is_finite(), "objective scores must be finite");
        self.pending_escape = None;
        self.evaluated.insert(idx, score);
        match self.best {
            Some((_, b)) if b <= score => {}
            _ => self.best = Some((idx, score)),
        }
        let quality = 1.0 / (1.0 + score.max(0.0));
        for p in &mut self.pheromone {
            *p *= 1.0 - self.cfg.evaporation;
        }
        self.pheromone[idx] += quality;
        for n in self.grid.neighbors(idx) {
            self.pheromone[n] += 0.5 * quality;
        }
    }

    fn roulette(&mut self) -> usize {
        let candidates: Vec<usize> = (0..self.grid.len())
            .filter(|i| !self.evaluated.contains_key(i))
            .collect();
        let total: f64 = candidates.iter().map(|&i| self.pheromone[i]).sum();
        let mut ticket = self.rng.gen::<f64>() * total;
        for &i in &candidates {
            ticket -= self.pheromone[i];
            if ticket <= 0.0 {
                return i;
            }
        }
        *candidates.last().expect("propose checked for unevaluated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridPoint;

    /// A smooth synthetic objective with one global minimum.
    fn bowl(grid: &Grid, idx: usize) -> f64 {
        let p = grid.point(idx);
        (p.f - 1.5).abs() + 0.3 * (p.r as f64 - 4.0).abs() + 2.0 * (p.w - 0.15).abs()
    }

    fn drive(mut s: TunerSearch) -> (TunerSearch, Vec<usize>) {
        let mut trail = Vec::new();
        while let Some(idx) = s.propose() {
            trail.push(idx);
            let score = bowl(&s.grid().clone(), idx);
            s.observe(idx, score);
        }
        (s, trail)
    }

    #[test]
    fn search_is_deterministic_across_runs() {
        let make = || {
            TunerSearch::new(
                Grid::default(),
                Grid::default().snap(1.0, 3, 0.10),
                SearchConfig::default(),
            )
        };
        let (a, trail_a) = drive(make());
        let (b, trail_b) = drive(make());
        assert_eq!(trail_a, trail_b, "two seeded runs must propose identically");
        assert_eq!(a.best(), b.best());
    }

    #[test]
    fn search_respects_its_budget() {
        let (s, trail) = drive(TunerSearch::new(
            Grid::default(),
            0,
            SearchConfig::default(),
        ));
        assert_eq!(trail.len(), SearchConfig::default().max_evals);
        assert_eq!(s.evals(), trail.len());
        assert!(
            trail.len() * 20 <= Grid::default().len() + 19,
            "budget must stay within 5% of the grid"
        );
    }

    #[test]
    fn search_lands_near_the_grid_optimum() {
        let grid = Grid::default();
        let exhaustive = (0..grid.len())
            .map(|i| bowl(&grid, i))
            .fold(f64::INFINITY, f64::min);
        let (s, _) = drive(TunerSearch::new(
            grid.clone(),
            grid.snap(1.0, 3, 0.10),
            SearchConfig::default(),
        ));
        let (_, found) = s.best().expect("budget > 0");
        assert!(
            found <= exhaustive.max(0.05) * 1.10,
            "hill-climb ({found}) must come within 10% of exhaustive ({exhaustive})"
        );
    }

    #[test]
    fn pinned_grid_proposes_only_the_pin() {
        let grid = Grid::pinned(GridPoint {
            f: 1.0,
            r: 3,
            w: 0.10,
        });
        let mut s = TunerSearch::new(grid, 0, SearchConfig::default());
        assert_eq!(s.propose(), Some(0));
        s.observe(0, 0.42);
        assert_eq!(s.propose(), None, "one-point grid exhausts immediately");
    }

    #[test]
    fn repeated_propose_without_observe_is_stable() {
        let mut s = TunerSearch::new(Grid::default(), 7, SearchConfig::default());
        s.observe(7, 1.0);
        let a = s.propose();
        let b = s.propose();
        assert_eq!(a, b, "propose must be repeatable between observations");
    }
}
