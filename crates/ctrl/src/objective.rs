//! The scalar objective a tuning window is judged by.
//!
//! Lower is better. The score folds the three §6 loss signals the
//! paper's evaluation tracks — deadline misses, seek work, and overload
//! shedding — into one weighted number so the search can order
//! configurations. Every term is a guarded ratio: a window with no
//! outcomes at all, a window that shed everything, or a window holding
//! a single request all score finite (the search must never see a NaN,
//! or its ordering — and with it the decision log — becomes
//! run-dependent).

use obs::Snapshot;

/// Weights for the windowed score (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Weight on the deadline-miss ratio `(late + drops) / outcomes`.
    pub w_miss: f64,
    /// Weight on the normalized mean seek `mean_seek / seek_scale`.
    pub w_seek: f64,
    /// Weight on the shed ratio `sheds / arrivals`.
    pub w_shed: f64,
    /// Seek normalizer in cylinders (a full-stroke-ish distance); must
    /// be positive — [`Objective::score`] clamps it away from zero.
    pub seek_scale: f64,
}

impl Default for Objective {
    /// Paper-flavored defaults: misses dominate, shedding costs half a
    /// miss, seek work is a tiebreaker. `seek_scale` is the §7 disk's
    /// cylinder count.
    fn default() -> Self {
        Objective {
            w_miss: 1.0,
            w_seek: 0.25,
            w_shed: 0.5,
            seek_scale: 3832.0,
        }
    }
}

impl Objective {
    /// Score one window. Always finite (see the module docs).
    pub fn score(&self, window: &Snapshot) -> f64 {
        let c = &window.counters;
        let outcomes = (c.service_completes + c.drops).max(1) as f64;
        let miss = (c.late_completions + c.drops) as f64 / outcomes;
        let shed = c.sheds as f64 / c.arrivals.max(1) as f64;
        // Histogram::mean is 0 on empty, so an idle window's seek term
        // vanishes instead of poisoning the sum.
        let seek = window.seek_cylinders.mean() / self.seek_scale.max(f64::MIN_POSITIVE);
        self.w_miss * miss + self.w_seek * seek + self.w_shed * shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::TraceEvent;
    use obs::TraceSink;

    #[test]
    fn empty_window_scores_finite_zero() {
        let s = Snapshot::new();
        let score = Objective::default().score(&s);
        assert!(score.is_finite(), "empty window must score finite");
        assert_eq!(score, 0.0);
    }

    #[test]
    fn all_shed_window_scores_finite() {
        // Every arrival shed, nothing completed: the miss term has no
        // outcomes, the shed term saturates at 1.
        let mut s = Snapshot::new();
        for id in 0..10u64 {
            s.emit(&TraceEvent::Arrival {
                now_us: id,
                req: id,
                cylinder: 100,
                deadline_us: id + 1000,
            });
            s.emit(&TraceEvent::Shed {
                now_us: id,
                req: id,
                v: 0,
            });
        }
        let obj = Objective::default();
        let score = obj.score(&s);
        assert!(score.is_finite(), "all-shed window must score finite");
        assert_eq!(score, obj.w_shed, "shed ratio saturates at 1");
    }

    #[test]
    fn single_request_window_scores_finite() {
        let mut s = Snapshot::new();
        s.emit(&TraceEvent::Arrival {
            now_us: 0,
            req: 1,
            cylinder: 50,
            deadline_us: 15,
        });
        s.emit(&TraceEvent::ServiceStart {
            now_us: 10,
            req: 1,
            cylinder: 50,
            seek_cylinders: 50,
        });
        s.emit(&TraceEvent::ServiceComplete {
            now_us: 20,
            req: 1,
            response_us: 20,
            late: true,
        });
        let score = Objective::default().score(&s);
        assert!(score.is_finite(), "single-request window must score finite");
        assert!(score > 0.0, "a late completion must cost something");
    }

    #[test]
    fn drops_count_as_misses() {
        let mut s = Snapshot::new();
        s.emit(&TraceEvent::Arrival {
            now_us: 0,
            req: 1,
            cylinder: 50,
            deadline_us: 2,
        });
        s.emit(&TraceEvent::Drop {
            now_us: 5,
            req: 1,
            missed_by_us: 3,
        });
        let obj = Objective {
            w_miss: 1.0,
            w_seek: 0.0,
            w_shed: 0.0,
            seek_scale: 1.0,
        };
        assert_eq!(obj.score(&s), 1.0, "a pure drop is a full miss");
    }

    #[test]
    fn lower_miss_ratio_scores_lower() {
        let window = |late: u64, total: u64| {
            let mut s = Snapshot::new();
            for id in 0..total {
                s.emit(&TraceEvent::ServiceComplete {
                    now_us: id,
                    req: id,
                    response_us: 10,
                    late: id < late,
                });
            }
            s
        };
        let obj = Objective::default();
        assert!(obj.score(&window(1, 10)) < obj.score(&window(5, 10)));
    }
}
