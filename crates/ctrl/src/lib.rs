//! Self-tuning control plane for the cascaded-SFC farm.
//!
//! The paper fixes its three cascade knobs — SFC2 balance factor `f`,
//! SFC3 scan partitions `R`, and the conditional blocking window `w` —
//! offline, per workload (§5, §7). This crate closes the loop at run
//! time: a [`Controller`] watches each shard's windowed telemetry
//! (drained from the farm daemon as [`obs::ShardDelta`]s), scores every
//! window with a weighted [`Objective`] over deadline misses, seek work
//! and shedding, and drives a seeded [`TunerSearch`] — hill-climbing
//! over a discrete `(f, R, w)` [`Grid`] with ACO-style pheromone-guided
//! escape restarts — plus a routing-policy preset table. Its proposals
//! come back as [`TuningAction`]s the daemon applies live at safe epoch
//! boundaries via [`farm::DaemonEvent::Retune`].
//!
//! The whole plane is deterministic: same trace, same seed → the same
//! decisions, bit for bit ([`Controller::fingerprint`]). The oracle
//! pins a controller to the seed configuration (via [`Grid::pinned`])
//! and checks the daemon is bit-identical to an uncontrolled run; the
//! bench harness checks the search lands within 10% of exhaustive grid
//! search on ≤5% of its evaluation budget.

pub mod controller;
pub mod grid;
pub mod objective;
pub mod search;

pub use controller::{drive, Controller, ControllerConfig, Decision, TuningAction};
pub use grid::{Grid, GridPoint};
pub use objective::Objective;
pub use search::{SearchConfig, TunerSearch};
