//! The live control loop: windowed telemetry in, retune proposals out.
//!
//! A [`Controller`] owns one [`TunerSearch`] per shard plus a single
//! farm-wide routing-policy pheromone table. The host (usually the farm
//! daemon's driver) pumps it in two beats:
//!
//! 1. **Observe** — feed every [`obs::ShardDelta`] drained from the
//!    daemon ([`FarmDaemon::take_shard_deltas`]) into
//!    [`Controller::observe`]; deltas accumulate per shard until the
//!    next decision point.
//! 2. **Decide** — call [`Controller::decide`] at a safe epoch
//!    boundary. Each shard whose accumulated window carries enough
//!    events is scored by the [`Objective`]; the score is the search's
//!    observation for whatever configuration that shard was running,
//!    and the search's next proposal becomes a batch of
//!    [`TuningAction`]s for the host to apply
//!    ([`TuningAction::into_event`] → [`DaemonEvent::Retune`]).
//!
//! Every decision appends to a log whose [`Controller::fingerprint`] is
//! a pure function of the telemetry stream: two runs over the same
//! trace produce bit-identical logs, which the oracle and the CI smoke
//! gate both assert. A controller built over [`Grid::pinned`] can never
//! propose a move — pinning it to the seed configuration must leave the
//! daemon bit-identical to an uncontrolled run.
//!
//! [`FarmDaemon::take_shard_deltas`]: farm::FarmDaemon::take_shard_deltas

use crate::grid::{Grid, GridPoint};
use crate::objective::Objective;
use crate::search::{SearchConfig, TunerSearch};
use farm::{DaemonEvent, RetuneAction, RoutePolicy};
use obs::{ShardDelta, Snapshot};
use sched::Retune;

/// Shape of a [`Controller`].
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Window scoring weights.
    pub objective: Objective,
    /// The `(f, R, w)` search space.
    pub grid: Grid,
    /// Search seed, budget, and pheromone hyper-parameters.
    pub search: SearchConfig,
    /// The statically configured knobs every shard starts from.
    pub seed_point: GridPoint,
    /// Routing-policy presets to select among (empty: never touch the
    /// router; the first entry must be the farm's starting policy).
    pub policies: Vec<RoutePolicy>,
    /// Windows with fewer total events than this are held until more
    /// telemetry accumulates (tiny windows score noisily).
    pub min_window_events: u64,
}

impl Default for ControllerConfig {
    /// Paper-default seed knobs over the default grid, knobs only.
    fn default() -> Self {
        ControllerConfig {
            objective: Objective::default(),
            grid: Grid::default(),
            search: SearchConfig::default(),
            seed_point: GridPoint {
                f: 1.0,
                r: 3,
                w: 0.10,
            },
            policies: Vec::new(),
            min_window_events: 16,
        }
    }
}

/// One proposed live change, ready to become a daemon event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningAction {
    /// Target shard (for policy swaps: any live shard; the router is
    /// farm-global).
    pub shard: usize,
    /// The change itself.
    pub action: RetuneAction,
}

impl TuningAction {
    /// Wrap into the daemon's event vocabulary, stamped at `at_us`.
    pub fn into_event(self, at_us: u64) -> DaemonEvent {
        DaemonEvent::Retune {
            at_us,
            shard: self.shard,
            action: self.action,
        }
    }
}

/// One appended decision-log entry (see [`Controller::decision_log`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Decision time (µs).
    pub at_us: u64,
    /// Target shard.
    pub shard: u32,
    /// Knob index: 0 = `f`, 1 = `R`, 2 = `w`, 3 = policy (matches
    /// [`RetuneAction::knob_index`] and the trace-event encoding).
    pub knob: u32,
    /// New value: `f64::to_bits` for `f`/`w`, the raw count for `R`,
    /// the preset index for policy.
    pub value_bits: u64,
    /// The window score that drove the decision.
    pub score: f64,
}

/// Per-shard search state plus the farm-wide policy table (module docs).
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    tuners: Vec<TunerSearch>,
    pending: Vec<Snapshot>,
    applied: Vec<usize>,
    policy_ewma: Vec<Option<f64>>,
    policy_current: usize,
    farm_pending: Snapshot,
    log: Vec<Decision>,
    decisions: u64,
}

impl Controller {
    /// A controller for a `shards`-member farm. Each shard's search
    /// starts from `cfg.seed_point` snapped onto the grid; shard `i`
    /// derives its RNG stream from `cfg.search.seed ^ i` so escapes
    /// de-correlate across shards while staying reproducible.
    pub fn new(shards: usize, cfg: ControllerConfig) -> Self {
        let start = cfg
            .grid
            .snap(cfg.seed_point.f, cfg.seed_point.r, cfg.seed_point.w);
        let tuners = (0..shards)
            .map(|i| {
                let mut search = cfg.search;
                search.seed ^= i as u64;
                TunerSearch::new(cfg.grid.clone(), start, search)
            })
            .collect();
        Controller {
            pending: vec![Snapshot::new(); shards],
            applied: vec![start; shards],
            policy_ewma: vec![None; cfg.policies.len()],
            policy_current: 0,
            farm_pending: Snapshot::new(),
            log: Vec::new(),
            decisions: 0,
            tuners,
            cfg,
        }
    }

    /// Fold one drained telemetry window into its shard's pending
    /// aggregate. Deltas for shards beyond the configured farm size are
    /// ignored (a grown farm needs a new controller).
    pub fn observe(&mut self, delta: &ShardDelta) {
        if let Some(pending) = self.pending.get_mut(delta.shard) {
            pending.merge(&delta.delta.snapshot);
            self.farm_pending.merge(&delta.delta.snapshot);
        }
    }

    /// Score every shard window that has accumulated enough telemetry,
    /// advance the searches, and return the retunes to apply at this
    /// epoch boundary. Windows below `min_window_events` keep
    /// accumulating; scored windows reset.
    pub fn decide(&mut self, now_us: u64) -> Vec<TuningAction> {
        let mut actions = Vec::new();
        for shard in 0..self.tuners.len() {
            if self.pending[shard].counters.total_events() < self.cfg.min_window_events {
                continue;
            }
            let window = std::mem::take(&mut self.pending[shard]);
            let score = self.cfg.objective.score(&window);
            self.decisions += 1;
            self.tuners[shard].observe(self.applied[shard], score);
            // Mid-budget: walk to the next proposal. Budget spent:
            // converge onto the best configuration seen.
            let target = self.tuners[shard]
                .propose()
                .or_else(|| self.tuners[shard].best().map(|(idx, _)| idx));
            let Some(next) = target else { continue };
            if next != self.applied[shard] {
                self.retune_shard(shard, next, score, now_us, &mut actions);
            }
        }
        self.decide_policy(now_us, &mut actions);
        actions
    }

    fn retune_shard(
        &mut self,
        shard: usize,
        next: usize,
        score: f64,
        now_us: u64,
        actions: &mut Vec<TuningAction>,
    ) {
        let from = self.cfg.grid.point(self.applied[shard]);
        let to = self.cfg.grid.point(next);
        let mut push = |knob: u32, action: Retune, value_bits: u64| {
            actions.push(TuningAction {
                shard,
                action: RetuneAction::Knob(action),
            });
            self.log.push(Decision {
                at_us: now_us,
                shard: shard as u32,
                knob,
                value_bits,
                score,
            });
        };
        if to.f != from.f {
            push(0, Retune::BalanceFactor(to.f), to.f.to_bits());
        }
        if to.r != from.r {
            push(1, Retune::ScanPartitions(to.r), u64::from(to.r));
        }
        if to.w != from.w {
            push(2, Retune::Window(to.w), to.w.to_bits());
        }
        self.applied[shard] = next;
    }

    /// Farm-wide policy selection over the presets: each preset carries
    /// an exponentially-weighted mean of the aggregate window scores
    /// observed while it was routing, with optimistic initialization —
    /// an untried preset scores a perfect 0, so any preset performing
    /// worse than perfect eventually yields to the unexplored. The farm
    /// switches to the strictly-best preset (ties keep the incumbent,
    /// so two equally bad presets cannot ping-pong).
    fn decide_policy(&mut self, now_us: u64, actions: &mut Vec<TuningAction>) {
        if self.cfg.policies.len() < 2 {
            self.farm_pending = Snapshot::new();
            return;
        }
        if self.farm_pending.counters.total_events() < self.cfg.min_window_events {
            return;
        }
        let window = std::mem::take(&mut self.farm_pending);
        let score = self.cfg.objective.score(&window);
        self.decisions += 1;
        let alpha = 0.5;
        let cur = &mut self.policy_ewma[self.policy_current];
        *cur = Some(match *cur {
            Some(prev) => (1.0 - alpha) * prev + alpha * score,
            None => score,
        });
        let eff = |s: Option<f64>| s.unwrap_or(0.0);
        let best = (0..self.policy_ewma.len())
            .min_by(|&a, &b| {
                eff(self.policy_ewma[a])
                    .partial_cmp(&eff(self.policy_ewma[b]))
                    .expect("scores are finite")
                    .then(a.cmp(&b))
            })
            .expect("at least two presets");
        if eff(self.policy_ewma[best]) < eff(self.policy_ewma[self.policy_current]) {
            self.policy_current = best;
            actions.push(TuningAction {
                shard: 0,
                action: RetuneAction::Policy(self.cfg.policies[best]),
            });
            self.log.push(Decision {
                at_us: now_us,
                shard: 0,
                knob: 3,
                value_bits: best as u64,
                score,
            });
        }
    }

    /// The currently applied grid point for `shard`.
    pub fn applied(&self, shard: usize) -> GridPoint {
        self.cfg.grid.point(self.applied[shard])
    }

    /// Scoring decisions made so far (windows consumed, not actions).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Every decision in order.
    pub fn decision_log(&self) -> &[Decision] {
        &self.log
    }

    /// FNV-1a over the decision log — bit-identical logs, equal
    /// fingerprints. The determinism gates compare this across runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for d in &self.log {
            eat(&d.at_us.to_le_bytes());
            eat(&d.shard.to_le_bytes());
            eat(&d.knob.to_le_bytes());
            eat(&d.value_bits.to_le_bytes());
            eat(&d.score.to_bits().to_le_bytes());
        }
        h
    }
}

/// Drive a [`farm::FarmDaemon`] under controller supervision: handle
/// each event in order; every `cadence` events, drain the daemon's
/// telemetry deltas into the controller, decide, and apply the
/// resulting retunes at the current event time (the post-advance point
/// inside [`farm::FarmDaemon::handle`] is the safe epoch boundary).
/// One deterministic loop shared by the oracle's bit-identity gates and
/// the bench harness, so they exercise the same plumbing.
pub fn drive(
    daemon: &mut farm::FarmDaemon,
    controller: &mut Controller,
    events: impl IntoIterator<Item = DaemonEvent>,
    cadence: usize,
) {
    let cadence = cadence.max(1);
    for (i, event) in events.into_iter().enumerate() {
        let t = event.at_us();
        daemon.handle(event);
        if (i + 1) % cadence == 0 {
            for delta in daemon.take_shard_deltas() {
                controller.observe(&delta);
            }
            for action in controller.decide(t) {
                daemon.handle(action.into_event(t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{TraceEvent, TraceSink, WindowDelta};

    fn delta(shard: usize, late: u64, total: u64) -> ShardDelta {
        let mut snapshot = Snapshot::new();
        for id in 0..total {
            snapshot.emit(&TraceEvent::ServiceComplete {
                now_us: id,
                req: id,
                response_us: 100,
                late: id < late,
            });
        }
        ShardDelta {
            shard,
            delta: WindowDelta {
                epoch: 0,
                start_us: 0,
                window_us: 1 << 20,
                partial: false,
                snapshot,
            },
        }
    }

    #[test]
    fn pinned_controller_never_acts() {
        let cfg = ControllerConfig {
            grid: Grid::pinned(GridPoint {
                f: 1.0,
                r: 3,
                w: 0.10,
            }),
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(2, cfg);
        for round in 0..5 {
            c.observe(&delta(0, 10, 20));
            c.observe(&delta(1, 5, 20));
            assert!(
                c.decide(1_000_000 * (round + 1)).is_empty(),
                "a pinned grid admits no moves"
            );
        }
        assert!(c.decision_log().is_empty());
    }

    #[test]
    fn bad_windows_drive_retunes_and_logs() {
        let mut c = Controller::new(1, ControllerConfig::default());
        let mut total_actions = 0;
        for round in 1..=8u64 {
            c.observe(&delta(0, 18, 20)); // 90% late: objective screams
            total_actions += c.decide(round * 1_000_000).len();
        }
        assert!(total_actions > 0, "a miserable shard must get retuned");
        assert_eq!(c.decisions(), 8);
        assert!(!c.decision_log().is_empty());
        let p = c.applied(0);
        assert!(p.r >= 1 && p.f >= 0.0 && (0.0..=1.0).contains(&p.w));
    }

    #[test]
    fn small_windows_accumulate_until_the_threshold() {
        let mut c = Controller::new(1, ControllerConfig::default());
        c.observe(&delta(0, 1, 4)); // 4 events < min_window_events
        assert!(c.decide(1_000_000).is_empty());
        assert_eq!(c.decisions(), 0, "a thin window must wait");
        c.observe(&delta(0, 1, 30));
        c.decide(2_000_000);
        assert_eq!(c.decisions(), 1, "accumulated telemetry finally scores");
    }

    #[test]
    fn identical_streams_produce_identical_fingerprints() {
        let run = || {
            let mut c = Controller::new(
                2,
                ControllerConfig {
                    policies: vec![RoutePolicy::HashStream, RoutePolicy::LeastLoaded],
                    ..ControllerConfig::default()
                },
            );
            for round in 1..=10u64 {
                c.observe(&delta(0, 15, 20));
                c.observe(&delta(1, 2, 20));
                c.decide(round * 1_000_000);
            }
            (c.fingerprint(), c.decision_log().to_vec())
        };
        let (fa, la) = run();
        let (fb, lb) = run();
        assert_eq!(la, lb, "decision logs must be bit-identical");
        assert_eq!(fa, fb);
    }

    #[test]
    fn policy_table_swaps_under_sustained_pain() {
        let mut c = Controller::new(
            1,
            ControllerConfig {
                grid: Grid::pinned(GridPoint {
                    f: 1.0,
                    r: 3,
                    w: 0.10,
                }),
                policies: vec![RoutePolicy::HashStream, RoutePolicy::LeastLoaded],
                ..ControllerConfig::default()
            },
        );
        let mut swapped = false;
        for round in 1..=30u64 {
            c.observe(&delta(0, 20, 20)); // everything late, forever
            for a in c.decide(round * 1_000_000) {
                if let RetuneAction::Policy(p) = a.action {
                    assert_eq!(p, RoutePolicy::LeastLoaded);
                    swapped = true;
                }
            }
        }
        assert!(
            swapped,
            "sustained pain must eventually evict the starting policy"
        );
    }
}
