//! # farm — sharded multi-disk scheduling at fleet scale
//!
//! The paper's PanaViss deployment runs one Cascaded-SFC scheduler per
//! member disk of a single RAID group. A production service runs *many*
//! such groups: this crate scales the simulator from one group to a farm
//! of N shards, each shard owning its own disk, scheduler, and trace
//! sink.
//!
//! Three pieces:
//!
//! * **Routing** ([`Router`]): an arriving request is placed on exactly
//!   one shard by a pluggable policy — [`RoutePolicy::HashStream`]
//!   (sticky per stream), [`RoutePolicy::CylinderRange`]
//!   (placement-affine bands) or [`RoutePolicy::LeastLoaded`]
//!   (queue-depth feedback). Routing runs as a serial deterministic pass
//!   over the arrival-ordered trace against a modeled per-shard load, so
//!   placements never depend on execution timing.
//! * **Execution**: once placements are fixed the shard timelines are
//!   mutually independent, so they fan out through [`sim::run_indexed`]
//!   — scoped threads under [`Parallelism::Threads`], the calling thread
//!   under [`Parallelism::Serial`] — and merge in shard order. Metrics
//!   and traced event snapshots are bit-identical across executors.
//! * **Overload handling**: shard schedulers with a bounded queue
//!   ([`sched::DiskScheduler::queue_capacity`]) shed under overload.
//!   With [`FarmConfig::redirect_on_overload`], the routing pass steers
//!   an arrival away from a projected-full shard to the least-loaded one
//!   with room instead, counting the detour and emitting an
//!   [`obs::TraceEvent::Redirect`] event.
//!
//! ```
//! use farm::{simulate_farm, FarmConfig, RoutePolicy};
//! use sched::Fcfs;
//! use sim::SimOptions;
//! use workload::VodConfig;
//!
//! let trace = VodConfig::mpeg1(24).generate(42);
//! let cfg = FarmConfig::new(4).with_policy(RoutePolicy::HashStream);
//! let (out, snap) = simulate_farm(
//!     &trace,
//!     &cfg,
//!     |_shard| Box::new(Fcfs::new()),
//!     SimOptions::with_shape(1, 4),
//! );
//! assert_eq!(out.served(), trace.len() as u64);
//! assert_eq!(snap.counters.arrivals, trace.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
mod online;
mod router;

pub use daemon::{
    DaemonConfig, DaemonEvent, DaemonReport, FarmDaemon, MemberStatus, RetuneAction,
    SupervisorConfig,
};
pub use online::{OnlineRouter, RouteDecision};
pub use router::{least_loaded, least_loaded_among, HashRouter, LeastLoadedRouter, RangeRouter};
pub use router::{RoutePolicy, Router, ShardLoad};
pub use sim::Parallelism;

use obs::{Snapshot, TraceEvent, TraceSink};
use sched::{DiskScheduler, HeadState, Request};
use sim::{run_indexed, simulate_traced, DiskService, Metrics, SimOptions};

/// Configuration of a farm run.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Number of shards (disk + scheduler pairs).
    pub shards: usize,
    /// Routing policy placing arrivals onto shards.
    pub policy: RoutePolicy,
    /// Executor for the shard timelines. The outcome is identical for
    /// every value; only wall-clock differs.
    pub parallelism: Parallelism,
    /// Steer arrivals away from projected-full shards to the least-loaded
    /// shard with room, instead of letting the bounded queue shed.
    pub redirect_on_overload: bool,
    /// Modeled mean service time per request (µs) — drives the routing
    /// pass's queue-depth model. The default approximates one Table-1
    /// 64-KB access (seek + half a rotation + transfer).
    pub est_service_us: u64,
    /// Cylinders per shard disk (sizes the range partition).
    pub cylinders: u32,
}

impl FarmConfig {
    /// A farm of `shards` Table-1 disks, hash routing, automatic
    /// parallelism, no redirects.
    pub fn new(shards: usize) -> Self {
        FarmConfig {
            shards,
            policy: RoutePolicy::HashStream,
            parallelism: Parallelism::auto(),
            redirect_on_overload: false,
            est_service_us: 15_000,
            cylinders: 3832,
        }
    }

    /// Set the routing policy.
    pub fn with_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the executor.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enable redirect-on-overload.
    pub fn with_redirects(mut self) -> Self {
        self.redirect_on_overload = true;
        self
    }

    /// Override the modeled per-request service time (µs).
    pub fn with_est_service_us(mut self, est: u64) -> Self {
        self.est_service_us = est.max(1);
        self
    }
}

/// The routing pass's output: per-shard sub-traces plus placement
/// accounting.
#[derive(Debug)]
pub struct Placement {
    /// Requests routed to each shard, in arrival order.
    pub shard_traces: Vec<Vec<Request>>,
    /// Requests placed on each shard.
    pub routed_per_shard: Vec<u64>,
    /// Arrivals steered away from a projected-full shard.
    pub redirects: u64,
}

/// Place every request of `trace` (arrival-ordered) onto a shard.
///
/// `capacities[i]` is shard `i`'s bounded-queue capacity (probed from its
/// scheduler). Redirect decisions emit [`TraceEvent::Redirect`] into
/// `sink`. The pass is serial and model-driven, so placements are a pure
/// function of the trace and configuration — and it is a thin loop over
/// [`OnlineRouter`] with every shard eligible, so the farm daemon's
/// incremental placements coincide with this pass by construction
/// whenever no membership event fires (the oracle's parity gate).
pub fn route_trace<S: TraceSink>(
    trace: &[Request],
    cfg: &FarmConfig,
    capacities: &[Option<usize>],
    sink: &mut S,
) -> Placement {
    let mut router = OnlineRouter::new(cfg, capacities);
    // Routing is stateful (load-model feedback), so exact per-shard counts
    // can't be precomputed; seed each shard near the balanced share to
    // avoid the early doubling churn.
    let mut shard_traces: Vec<Vec<Request>> = (0..cfg.shards)
        .map(|_| Vec::with_capacity(trace.len() / cfg.shards + 16))
        .collect();
    let mut routed_per_shard = vec![0u64; cfg.shards];

    for r in trace {
        let decision = router.route(r);
        if S::ENABLED {
            if let Some(event) = decision.redirect_event(r) {
                sink.emit(&event);
            }
        }
        routed_per_shard[decision.shard] += 1;
        shard_traces[decision.shard].push(r.clone());
    }

    Placement {
        shard_traces,
        routed_per_shard,
        redirects: router.redirects(),
    }
}

/// Route `trace` across the farm and deliver each shard's backlog into
/// its Cascaded-SFC scheduler through the multi-producer ingest path:
/// per shard, `cfg.parallelism` router threads characterize contiguous
/// slices of the routed sub-trace in parallel (the lane-batched
/// encapsulator pass) and hand off through the sharded
/// [`cascade::IngestRing`], which [`sim::ingest_concurrent`] proves
/// bit-identical to a serial `enqueue_batch` of the same backlog.
///
/// `heads[i]` anchors shard `i`'s head position; each shard's chunk is
/// time-anchored at its first routed arrival, matching the engine's
/// chunk-delivery convention. Returns the placement (so callers can
/// reconcile routed counts against queue depths) alongside the number of
/// producer threads used on the busiest shard.
pub fn ingest_routed<S: TraceSink, T: TraceSink>(
    trace: &[Request],
    cfg: &FarmConfig,
    schedulers: &mut [cascade::CascadedSfc<T>],
    heads: &[HeadState],
    sink: &mut S,
) -> (Placement, usize) {
    assert_eq!(
        schedulers.len(),
        cfg.shards,
        "ingest_routed: {} schedulers for {} shards",
        schedulers.len(),
        cfg.shards
    );
    assert_eq!(
        heads.len(),
        cfg.shards,
        "ingest_routed: {} heads for {} shards",
        heads.len(),
        cfg.shards
    );
    let capacities: Vec<Option<usize>> = schedulers.iter().map(|s| s.queue_capacity()).collect();
    let placement = route_trace(trace, cfg, &capacities, sink);
    let mut max_producers = 0usize;
    for (shard, scheduler) in schedulers.iter_mut().enumerate() {
        let backlog = &placement.shard_traces[shard];
        if backlog.is_empty() {
            continue;
        }
        let head = HeadState::new(
            heads[shard].cylinder,
            backlog[0].arrival_us,
            heads[shard].cylinders,
        );
        let used = sim::ingest_concurrent(scheduler, backlog, &head, cfg.parallelism);
        max_producers = max_producers.max(used);
    }
    (placement, max_producers)
}

/// Result of a farm run: per-shard metrics plus farm-level accounting.
#[derive(Debug)]
pub struct FarmOutcome {
    /// Metrics per shard (index = shard id).
    pub per_shard: Vec<Metrics>,
    /// Bounded-queue sheds per shard (from the shards' schedulers).
    pub sheds_per_shard: Vec<u64>,
    /// Requests the router placed on each shard.
    pub routed_per_shard: Vec<u64>,
    /// Arrivals steered away from a projected-full shard.
    pub redirects: u64,
    /// Farm makespan: the slowest shard's makespan.
    pub makespan_us: u64,
}

impl FarmOutcome {
    /// Total requests served across shards.
    pub fn served(&self) -> u64 {
        Metrics::total_served(&self.per_shard)
    }

    /// Total deadline losses across shards.
    pub fn losses(&self) -> u64 {
        Metrics::total_losses(&self.per_shard)
    }

    /// Aggregate loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        Metrics::group_loss_ratio(&self.per_shard)
    }

    /// Total bounded-queue sheds across shards.
    pub fn sheds(&self) -> u64 {
        self.sheds_per_shard.iter().sum()
    }

    /// The shards folded into one farm-level [`Metrics`] via
    /// [`Metrics::merge`].
    pub fn aggregate(&self) -> Metrics {
        Metrics::merged(&self.per_shard)
    }
}

/// Run `trace` through a farm of [`FarmConfig::shards`] Table-1 disks.
///
/// `make_scheduler(shard)` builds each shard's scheduler; it is also
/// called once per shard up front (and the instance discarded) to probe
/// [`sched::DiskScheduler::queue_capacity`] for the routing model. The
/// returned [`Snapshot`] merges the router's redirect events with every
/// shard's engine events and one [`TraceEvent::ShardReport`] per shard,
/// in shard order — bit-identical for every [`Parallelism`] choice.
pub fn simulate_farm(
    trace: &[Request],
    cfg: &FarmConfig,
    make_scheduler: impl Fn(usize) -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
) -> (FarmOutcome, Snapshot) {
    simulate_farm_with(trace, cfg, make_scheduler, options, |_| {
        DiskService::table1()
    })
}

/// [`simulate_farm`] with a custom per-shard service model (e.g. a
/// fault-injected [`DiskService`] per shard).
pub fn simulate_farm_with(
    trace: &[Request],
    cfg: &FarmConfig,
    make_scheduler: impl Fn(usize) -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
    make_service: impl Fn(usize) -> DiskService + Sync,
) -> (FarmOutcome, Snapshot) {
    let (outcome, sinks) =
        simulate_farm_traced(trace, cfg, make_scheduler, options, make_service, |_| {
            Snapshot::new()
        });
    // Snapshot accumulation is commutative, so folding per-shard sinks in
    // shard order reproduces the single-sink totals bit for bit.
    let mut group = Snapshot::new();
    for sink in &sinks {
        group.merge(sink);
    }
    (outcome, group)
}

/// Demultiplexes the routing pass's [`TraceEvent::Redirect`] events into
/// the per-shard sink of the shard the arrival was steered *away from*,
/// so each shard's telemetry carries its own overload evidence.
struct RouterDemux<'a, S> {
    sinks: &'a mut [S],
}

impl<S: TraceSink> TraceSink for RouterDemux<'_, S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, event: &TraceEvent) {
        if let TraceEvent::Redirect { from_shard, .. } = event {
            self.sinks[*from_shard as usize].emit(event);
        }
    }
}

/// [`simulate_farm_with`] with one caller-built [`TraceSink`] per shard.
///
/// `make_sink(shard)` runs serially up front; each sink then receives, in
/// order: the routing pass's [`TraceEvent::Redirect`] events whose
/// `from_shard` is that shard, the shard engine's full event stream, and
/// one closing [`TraceEvent::ShardReport`]. Sinks cross into the shard
/// workers (hence `S: Send`) and come back in shard order, so per-shard
/// telemetry — e.g. an [`obs::WindowedSnapshot`] or a flight recorder per
/// shard — stays deterministic for every [`Parallelism`] choice.
pub fn simulate_farm_traced<S: TraceSink + Send>(
    trace: &[Request],
    cfg: &FarmConfig,
    make_scheduler: impl Fn(usize) -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
    make_service: impl Fn(usize) -> DiskService + Sync,
    make_sink: impl Fn(usize) -> S,
) -> (FarmOutcome, Vec<S>) {
    let capacities: Vec<Option<usize>> = (0..cfg.shards)
        .map(|s| make_scheduler(s).queue_capacity())
        .collect();

    let mut sinks: Vec<S> = (0..cfg.shards).map(make_sink).collect();
    let placement = {
        let mut demux = RouterDemux { sinks: &mut sinks };
        route_trace(trace, cfg, &capacities, &mut demux)
    };

    // Hand each worker ownership of its shard's sink; the cells are only
    // ever locked once each, by the worker running that shard index.
    let cells: Vec<std::sync::Mutex<Option<S>>> = sinks
        .into_iter()
        .map(|s| std::sync::Mutex::new(Some(s)))
        .collect();

    let results = run_indexed(cfg.shards, cfg.parallelism, |shard| {
        let mut sink = cells[shard]
            .lock()
            .expect("shard sink lock poisoned")
            .take()
            .expect("shard sink taken twice");
        let mut scheduler = make_scheduler(shard);
        let mut service = make_service(shard);
        let m = simulate_traced(
            scheduler.as_mut(),
            &placement.shard_traces[shard],
            &mut service,
            options,
            &mut sink,
        );
        let sheds = scheduler.sheds();
        if S::ENABLED {
            sink.emit(&TraceEvent::ShardReport {
                now_us: m.makespan_us,
                shard: shard as u32,
                served: m.served,
                sheds,
            });
        }
        (m, sheds, sink)
    });

    let mut per_shard = Vec::with_capacity(cfg.shards);
    let mut sheds_per_shard = Vec::with_capacity(cfg.shards);
    let mut sinks = Vec::with_capacity(cfg.shards);
    let mut makespan = 0u64;
    for (m, sheds, sink) in results {
        makespan = makespan.max(m.makespan_us);
        per_shard.push(m);
        sheds_per_shard.push(sheds);
        sinks.push(sink);
    }

    (
        FarmOutcome {
            per_shard,
            sheds_per_shard,
            routed_per_shard: placement.routed_per_shard,
            redirects: placement.redirects,
            makespan_us: makespan,
        },
        sinks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{Fcfs, QosVector};

    fn batch(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::read(
                    i,
                    i * 200,
                    u64::MAX,
                    (i * 37 % 3832) as u32,
                    64 * 1024,
                    QosVector::single(0),
                )
                .with_stream(i % 16)
            })
            .collect()
    }

    /// The multi-producer front door: routing a trace into per-shard
    /// Cascaded-SFC schedulers through `ingest_routed` must leave every
    /// shard bit-identical (dequeue order and counters) to routing the
    /// same trace and serially batch-enqueueing each shard's backlog.
    #[test]
    fn ingest_routed_matches_serial_per_shard_enqueue() {
        use cascade::{CascadeConfig, CascadedSfc};
        let trace = batch(500);
        for policy in [
            RoutePolicy::HashStream,
            RoutePolicy::CylinderRange,
            RoutePolicy::LeastLoaded,
        ] {
            let cfg = FarmConfig::new(3)
                .with_policy(policy)
                .with_parallelism(Parallelism::threads(4));
            let mk = || {
                (0..3)
                    .map(|_| CascadedSfc::new(CascadeConfig::paper_default(1, 3832)).unwrap())
                    .collect::<Vec<_>>()
            };
            let heads: Vec<HeadState> = (0..3).map(|s| HeadState::new(s * 900, 0, 3832)).collect();
            let mut concurrent = mk();
            let (placement, used) =
                ingest_routed(&trace, &cfg, &mut concurrent, &heads, &mut obs::NullSink);
            assert!(used > 1, "{policy:?}: producer fan-out engaged");

            let mut serial = mk();
            let reference = route_trace(&trace, &cfg, &[None; 3], &mut obs::NullSink);
            for (shard, s) in serial.iter_mut().enumerate() {
                let backlog = &reference.shard_traces[shard];
                if backlog.is_empty() {
                    continue;
                }
                let head = HeadState::new(
                    heads[shard].cylinder,
                    backlog[0].arrival_us,
                    heads[shard].cylinders,
                );
                s.enqueue_batch(backlog, &head);
            }

            for shard in 0..3 {
                assert_eq!(
                    placement.routed_per_shard[shard], reference.routed_per_shard[shard],
                    "{policy:?}"
                );
                assert_eq!(
                    concurrent[shard].len() as u64,
                    placement.routed_per_shard[shard],
                    "{policy:?}"
                );
                loop {
                    let a = concurrent[shard].dequeue(&heads[shard]);
                    let b = serial[shard].dequeue(&heads[shard]);
                    assert_eq!(
                        a.as_ref().map(|r| r.id),
                        b.as_ref().map(|r| r.id),
                        "{policy:?} shard {shard}"
                    );
                    if a.is_none() {
                        break;
                    }
                }
                assert_eq!(
                    concurrent[shard].dispatch_counters(),
                    serial[shard].dispatch_counters(),
                    "{policy:?} shard {shard}"
                );
            }
        }
    }

    #[test]
    fn every_request_lands_on_exactly_one_shard() {
        let trace = batch(300);
        for policy in [
            RoutePolicy::HashStream,
            RoutePolicy::CylinderRange,
            RoutePolicy::LeastLoaded,
        ] {
            let cfg = FarmConfig::new(4).with_policy(policy);
            let (out, snap) = simulate_farm(
                &trace,
                &cfg,
                |_| Box::new(Fcfs::new()),
                SimOptions::with_shape(1, 4),
            );
            assert_eq!(out.routed_per_shard.iter().sum::<u64>(), 300, "{policy:?}");
            assert_eq!(out.served(), 300, "{policy:?}");
            assert_eq!(snap.counters.arrivals, 300, "{policy:?}");
            assert_eq!(snap.counters.shard_reports, 4, "{policy:?}");
        }
    }

    #[test]
    fn sharding_shortens_the_makespan() {
        let trace = batch(600);
        let one = FarmConfig::new(1);
        let four = FarmConfig::new(4).with_policy(RoutePolicy::LeastLoaded);
        let mk = |_: usize| -> Box<dyn DiskScheduler> { Box::new(Fcfs::new()) };
        let (o1, _) = simulate_farm(&trace, &one, mk, SimOptions::with_shape(1, 4));
        let (o4, _) = simulate_farm(&trace, &four, mk, SimOptions::with_shape(1, 4));
        let speedup = o1.makespan_us as f64 / o4.makespan_us as f64;
        assert!(
            speedup > 2.0,
            "4 shards should beat 1 disk: speedup {speedup:.2}"
        );
    }

    #[test]
    fn least_loaded_balances_the_load() {
        let trace = batch(400);
        let cfg = FarmConfig::new(4).with_policy(RoutePolicy::LeastLoaded);
        let (out, _) = simulate_farm(
            &trace,
            &cfg,
            |_| Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 4),
        );
        let min = *out.routed_per_shard.iter().min().unwrap();
        let max = *out.routed_per_shard.iter().max().unwrap();
        assert!(
            max - min <= 8,
            "feedback routing should balance: {:?}",
            out.routed_per_shard
        );
    }

    #[test]
    fn single_shard_farm_matches_plain_simulation() {
        let trace = batch(200);
        let cfg = FarmConfig::new(1);
        let (out, _) = simulate_farm(
            &trace,
            &cfg,
            |_| Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 4),
        );
        let mut fcfs = Fcfs::new();
        let mut service = DiskService::table1();
        let direct = sim::simulate(
            &mut fcfs,
            &trace,
            &mut service,
            SimOptions::with_shape(1, 4),
        );
        assert_eq!(out.per_shard[0], direct);
    }
}
