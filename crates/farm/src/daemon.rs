//! Continuous-operation farm daemon: online routing, live membership
//! churn, and failure-aware supervision.
//!
//! The batch entry points ([`crate::simulate_farm`]) assume a closed
//! world: the whole trace and the full shard set are known up front. A
//! production farm is never that lucky — streams arrive for as long as
//! the service is up, shards are added and retired while requests are in
//! flight, and a limping disk has to be routed around before it melts
//! the tail. [`FarmDaemon`] runs the *same* decision code under those
//! conditions:
//!
//! * **Online routing** — one [`crate::OnlineRouter`] (the exact core
//!   the batch pass wraps) places each admitted arrival; with no
//!   membership events the placements are bit-identical to
//!   [`crate::route_trace`], which the oracle's replay gate enforces.
//! * **Admission at ingest** — a [`StreamGate`] caps concurrently
//!   active streams; rejected requests never reach a scheduler queue
//!   and are accounted in the ledger as admission rejections.
//! * **Live membership** — [`DaemonEvent::AddShard`] grows the farm
//!   without stopping it; [`DaemonEvent::DrainShard`] takes a shard out
//!   of rotation, lets it serve residents for a bounded handoff window,
//!   then migrates the leftover backlog (emitting one
//!   [`TraceEvent::Migrate`] per request) and closes the drain.
//! * **Supervision** — each member runs behind its own
//!   [`FlightRecorder`]; when a fresh dump carries an actionable
//!   anomaly (shed burst, degraded-read storm, or p99 spike) the
//!   supervisor quarantines the member with a strike-scaled, seeded,
//!   jittered exponential cooldown ([`sim::jittered_backoff_us`]) and
//!   reinstates it when the cooldown expires. Quarantined members keep
//!   draining their residents; only *new* arrivals route around them.
//!
//! The daemon is a deterministic event-loop: feed it a time-ordered
//! stream of [`DaemonEvent`]s (a `Vec`, an iterator, or an
//! [`std::sync::mpsc::Receiver`] — any `IntoIterator` works, so a
//! channel is the natural streaming front-end) and it produces a
//! [`DaemonReport`] whose request ledger closes exactly:
//!
//! ```text
//! served + dropped + failed + shed + migrated + rejected == arrivals
//! ```
//!
//! Internally each member pairs a [`sim::EngineStepper`] with its
//! scheduler and service model. Before an event at time `t` is applied,
//! every member is pumped to `t` ([`EngineStepper::run_until`] excludes
//! the horizon itself), so no engine ever dispatches at an instant whose
//! arrivals it has not seen — the property that keeps the daemon
//! bit-identical to the batch engines.

use obs::{
    Anomaly, FlightRecorder, SharedSink, TelemetryConfig, TraceEvent, TraceSink, TriggerConfig,
};
use sched::{DiskScheduler, HeadState, Request, Retune};
use sim::admission::StreamGate;
use sim::{jittered_backoff_us, DiskService, EngineStepper, Metrics, ServiceProvider, SimOptions};

use crate::{FarmConfig, OnlineRouter, RoutePolicy};

/// Builds a shard's scheduler. The [`SharedSink`] handle is a clone of
/// the member's flight-recorder sink: pass it to sink-carrying
/// constructors (cascade's `CascadedSfc::with_sink`) so bounded-queue
/// shed events land in the same ring the engine writes — the
/// supervisor's shed-burst trigger (and the event-vs-counter
/// reconciliation) depends on that wiring. Factories for sink-less
/// policies may ignore the handle.
pub type SchedulerFactory =
    Box<dyn FnMut(usize, SharedSink<FlightRecorder>) -> Box<dyn DiskScheduler>>;

/// Builds a shard's service model (e.g. a fault-injected
/// [`DiskService`] for a limping member).
pub type ServiceFactory = Box<dyn FnMut(usize) -> DiskService>;

/// One input to the daemon's event loop. Events must be fed in
/// non-decreasing time order (arrivals carry their own
/// [`Request::arrival_us`]).
#[derive(Debug, Clone)]
pub enum DaemonEvent {
    /// A request arrived at the farm's front door.
    Arrival(Request),
    /// Grow the farm by one fresh, idle, eligible shard.
    AddShard {
        /// Event time (µs).
        at_us: u64,
    },
    /// Take `shard` out of rotation: it stops receiving new arrivals
    /// immediately, serves residents until `at_us + handoff_window_us`,
    /// then migrates whatever is still queued and closes.
    DrainShard {
        /// Event time (µs).
        at_us: u64,
        /// The shard to retire.
        shard: usize,
        /// How long the shard may keep serving residents (µs).
        handoff_window_us: u64,
    },
    /// Operator-forced quarantine of `shard` (the supervisor path uses
    /// the same mechanism driven by flight-recorder anomalies).
    Quarantine {
        /// Event time (µs).
        at_us: u64,
        /// The shard to quarantine.
        shard: usize,
    },
    /// A control-plane retune: change a live scheduler knob on `shard`
    /// or swap the farm-wide routing policy. Applied at the safe epoch
    /// boundary every event enjoys — all members are pumped to `at_us`
    /// before the action runs, so no dispatch straddles the change.
    Retune {
        /// Event time (µs).
        at_us: u64,
        /// Target shard (for policy swaps: the shard whose recorder
        /// logs the farm-wide change).
        shard: usize,
        /// What to change.
        action: RetuneAction,
    },
}

/// The payload of a [`DaemonEvent::Retune`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetuneAction {
    /// Retune one scheduler knob on the target shard (refused when the
    /// shard's policy does not expose the knob — see
    /// [`DiskScheduler::retune`]).
    Knob(Retune),
    /// Swap the farm-wide routing policy; the load model, eligibility
    /// mask and redirect counters survive the swap.
    Policy(RoutePolicy),
}

impl RetuneAction {
    /// Stable knob index carried by [`TraceEvent::Retune`]: 0 = balance
    /// factor `f`, 1 = scan partitions `R`, 2 = blocking window `w`,
    /// 3 = routing policy.
    pub fn knob_index(&self) -> u32 {
        match self {
            RetuneAction::Knob(Retune::BalanceFactor(_)) => 0,
            RetuneAction::Knob(Retune::ScanPartitions(_)) => 1,
            RetuneAction::Knob(Retune::Window(_)) => 2,
            RetuneAction::Policy(_) => 3,
        }
    }
}

impl DaemonEvent {
    /// The event's time (µs) — arrivals use their `arrival_us`.
    pub fn at_us(&self) -> u64 {
        match self {
            DaemonEvent::Arrival(r) => r.arrival_us,
            DaemonEvent::AddShard { at_us }
            | DaemonEvent::DrainShard { at_us, .. }
            | DaemonEvent::Quarantine { at_us, .. }
            | DaemonEvent::Retune { at_us, .. } => *at_us,
        }
    }
}

/// A member's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    /// In rotation: receives new arrivals.
    Active,
    /// Out of rotation, serving residents until the handoff window
    /// closes.
    Draining {
        /// When the handoff window closes and leftovers migrate (µs).
        close_at_us: u64,
    },
    /// Retired: backlog migrated, ledger closed, engine stopped.
    Drained,
    /// Out of rotation after an anomaly; reinstated at `until_us`.
    Quarantined {
        /// Earliest re-probe time (µs).
        until_us: u64,
    },
}

/// Supervisor cooldown policy: how long a quarantined member sits out.
///
/// The cooldown is `jittered_backoff_us(cooldown_us, strikes, ...)` —
/// exponential in the member's lifetime strike count, with seeded
/// deterministic jitter (salted by the shard index) so repeated
/// re-probes across members decorrelate instead of thundering back in
/// lock-step.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Base quarantine cooldown (µs); doubles per strike.
    pub cooldown_us: u64,
    /// Jitter span in permille of the backoff (0 = deterministic).
    pub jitter_permille: u32,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            cooldown_us: 2_000_000,
            jitter_permille: 250,
            seed: 0x5ca1_ab1e,
        }
    }
}

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Shard count, routing policy and load model (the same
    /// configuration the batch pass takes).
    pub farm: FarmConfig,
    /// Engine options for every member. `warmup_us` must be 0: the
    /// daemon's ledger needs every delivered request measured.
    pub options: SimOptions,
    /// Admission cap: concurrently active streams (`u32::MAX` = open).
    pub max_streams: u32,
    /// A stream's slot is reclaimed after this much idle time (µs).
    pub stream_idle_timeout_us: u64,
    /// Flight-recorder ring capacity per member (events).
    pub recorder_capacity: usize,
    /// Windowed-telemetry shape per member recorder.
    pub telemetry: TelemetryConfig,
    /// Anomaly trigger thresholds per member recorder.
    pub triggers: TriggerConfig,
    /// Quarantine cooldown policy.
    pub supervisor: SupervisorConfig,
}

impl DaemonConfig {
    /// Defaults: open admission gate, 4096-event rings, exact telemetry,
    /// paper-default triggers, 2 s base cooldown.
    pub fn new(farm: FarmConfig, options: SimOptions) -> Self {
        DaemonConfig {
            farm,
            options,
            max_streams: u32::MAX,
            stream_idle_timeout_us: u64::MAX,
            recorder_capacity: 1 << 12,
            telemetry: TelemetryConfig::exact(),
            triggers: TriggerConfig::default(),
            supervisor: SupervisorConfig::default(),
        }
    }

    /// Cap admission at `max_streams` concurrently active streams, a
    /// stream going idle for `idle_timeout_us` frees its slot.
    pub fn with_admission(mut self, max_streams: u32, idle_timeout_us: u64) -> Self {
        self.max_streams = max_streams;
        self.stream_idle_timeout_us = idle_timeout_us;
        self
    }

    /// Set the per-member telemetry shape and anomaly triggers.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig, triggers: TriggerConfig) -> Self {
        self.telemetry = telemetry;
        self.triggers = triggers;
        self
    }

    /// Set the supervisor cooldown policy.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Set the per-member flight-recorder ring capacity.
    pub fn with_recorder_capacity(mut self, capacity: usize) -> Self {
        self.recorder_capacity = capacity;
        self
    }
}

/// One shard of the running farm: its engine, scheduler, service model
/// and telemetry, plus the lifecycle/supervision state.
struct Member {
    scheduler: Box<dyn DiskScheduler>,
    service: DiskService,
    stepper: EngineStepper,
    recorder: SharedSink<FlightRecorder>,
    status: MemberStatus,
    /// Flight-recorder dumps already inspected by the supervisor.
    dumps_seen: usize,
    /// Lifetime anomaly strikes (scales the quarantine backoff).
    strikes: u32,
}

/// The continuous-operation farm daemon. See the module docs for the
/// architecture; drive it with [`FarmDaemon::handle`] /
/// [`FarmDaemon::run`] and collect the [`DaemonReport`] via
/// [`FarmDaemon::shutdown`].
pub struct FarmDaemon {
    cfg: DaemonConfig,
    router: OnlineRouter,
    gate: StreamGate,
    members: Vec<Member>,
    routed_per_shard: Vec<u64>,
    make_scheduler: SchedulerFactory,
    make_service: ServiceFactory,
    arrivals: u64,
    migrated: u64,
    migrated_undelivered: u64,
    quarantines: u64,
    retunes: u64,
    refused_events: u64,
    now_us: u64,
}

impl FarmDaemon {
    /// Build the daemon: one member per `cfg.farm.shards`, every member
    /// active and eligible.
    ///
    /// `make_scheduler(shard, sink)` builds each shard's scheduler — wire
    /// the provided sink into bounded schedulers so their shed events
    /// reach the member's flight recorder (see [`SchedulerFactory`]).
    /// `make_service(shard)` builds its service model. Both factories are
    /// retained for [`DaemonEvent::AddShard`].
    ///
    /// # Panics
    /// If `cfg.options.warmup_us != 0` — a warmup window would exclude
    /// requests from the metrics and the ledger could not close.
    pub fn new(
        cfg: DaemonConfig,
        make_scheduler: impl FnMut(usize, SharedSink<FlightRecorder>) -> Box<dyn DiskScheduler>
            + 'static,
        make_service: impl FnMut(usize) -> DiskService + 'static,
    ) -> Self {
        assert_eq!(
            cfg.options.warmup_us, 0,
            "the daemon ledger requires warmup_us == 0"
        );
        let mut make_scheduler: SchedulerFactory = Box::new(make_scheduler);
        let mut make_service: ServiceFactory = Box::new(make_service);
        let members: Vec<Member> = (0..cfg.farm.shards)
            .map(|i| Self::build_member(&mut make_scheduler, &mut make_service, i, &cfg))
            .collect();
        let capacities: Vec<Option<usize>> = members
            .iter()
            .map(|m| m.scheduler.queue_capacity())
            .collect();
        let router = OnlineRouter::new(&cfg.farm, &capacities);
        let gate = StreamGate::new(cfg.max_streams, cfg.stream_idle_timeout_us);
        let routed_per_shard = vec![0; cfg.farm.shards];
        FarmDaemon {
            cfg,
            router,
            gate,
            members,
            routed_per_shard,
            make_scheduler,
            make_service,
            arrivals: 0,
            migrated: 0,
            migrated_undelivered: 0,
            quarantines: 0,
            retunes: 0,
            refused_events: 0,
            now_us: 0,
        }
    }

    fn build_member(
        make_scheduler: &mut SchedulerFactory,
        make_service: &mut ServiceFactory,
        idx: usize,
        cfg: &DaemonConfig,
    ) -> Member {
        let recorder = SharedSink::new(FlightRecorder::new(
            cfg.recorder_capacity,
            cfg.telemetry,
            cfg.triggers,
        ));
        let scheduler = make_scheduler(idx, recorder.clone());
        let service = make_service(idx);
        let stepper = EngineStepper::new(cfg.options, service.cylinders());
        Member {
            scheduler,
            service,
            stepper,
            recorder,
            status: MemberStatus::Active,
            dumps_seen: 0,
            strikes: 0,
        }
    }

    /// Current farm size, including drained members.
    pub fn shards(&self) -> usize {
        self.members.len()
    }

    /// The member's lifecycle state.
    pub fn status(&self, shard: usize) -> MemberStatus {
        self.members[shard].status
    }

    /// Time of the last handled event (µs).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The routing core (e.g. to inspect eligibility or counters).
    pub fn router(&self) -> &OnlineRouter {
        &self.router
    }

    /// Arrivals seen so far (admitted or not).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Stream admissions refused by the gate so far.
    pub fn admission_rejections(&self) -> u64 {
        self.gate.rejections()
    }

    /// The farm's live backlog: submitted-but-undelivered arrivals plus
    /// every member scheduler's pending queue, summed over the farm.
    /// This is the backpressure signal a closed-loop source watches —
    /// and the quantity that must stay bounded for a multi-hour run to
    /// fit in memory.
    pub fn backlog(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.stepper.pending_len() + m.scheduler.len())
            .sum()
    }

    /// Drain a pull-based [`workload::stream::TraceSource`] through the
    /// daemon: each request becomes a [`DaemonEvent::Arrival`], and
    /// after every arrival the source's `observe` hook is fed the
    /// farm-wide [`FarmDaemon::backlog`], closing the loop — a swamped
    /// farm slows its clients down instead of accumulating an unbounded
    /// trace. Membership events can be interleaved between `ingest`
    /// calls (the source yields time-ordered arrivals, so the usual
    /// [`FarmDaemon::handle`] ordering contract applies). Returns the
    /// number of requests ingested.
    pub fn ingest<T: workload::TraceSource>(&mut self, source: &mut T) -> u64 {
        let mut pulled = 0;
        while let Some(r) = source.next() {
            self.handle(DaemonEvent::Arrival(r));
            pulled += 1;
            source.observe(self.backlog());
        }
        pulled
    }

    /// Drain every member's completed telemetry windows, tagged with the
    /// shard index — the control plane's subscription point. Draining at
    /// any cadence yields the same totals (the delta-sum invariant of
    /// [`obs::WindowedSnapshot`]); windows still open stay put.
    pub fn take_shard_deltas(&mut self) -> Vec<obs::ShardDelta> {
        let mut out = Vec::new();
        for (shard, m) in self.members.iter_mut().enumerate() {
            for delta in m.recorder.with(|r| r.windows_mut().take_deltas()) {
                out.push(obs::ShardDelta { shard, delta });
            }
        }
        out
    }

    /// Pump every live member's engine to `t`, closing any drain whose
    /// handoff window ends at or before `t`.
    fn advance_to(&mut self, t: u64) {
        for idx in 0..self.members.len() {
            match self.members[idx].status {
                MemberStatus::Drained => {}
                MemberStatus::Draining { close_at_us } if close_at_us <= t => {
                    self.pump(idx, close_at_us);
                    self.close_drain(idx, close_at_us);
                }
                _ => self.pump(idx, t),
            }
        }
    }

    fn pump(&mut self, idx: usize, horizon_us: u64) {
        let m = &mut self.members[idx];
        m.stepper.run_until(
            horizon_us,
            m.scheduler.as_mut(),
            &mut m.service,
            &mut m.recorder,
        );
    }

    /// The handoff window closed: migrate whatever the member still
    /// holds (queued in its scheduler or submitted but undelivered) to
    /// the least-loaded eligible shard and retire the member. Migrated
    /// requests are terminal in this farm's ledger — the Migrate event
    /// records the designated target for the next tier to replay.
    fn close_drain(&mut self, idx: usize, close_at_us: u64) {
        let to_shard = self.router.least_loaded_eligible() as u32;
        let cylinders = self.cfg.farm.cylinders;
        let m = &mut self.members[idx];
        let head = HeadState::new(0, close_at_us, cylinders);
        let mut leftovers = m.scheduler.drain_pending(&head);
        let undelivered = m.stepper.take_pending();
        self.migrated_undelivered += undelivered.len() as u64;
        leftovers.extend(undelivered);
        leftovers.sort_by_key(|r| (r.arrival_us, r.id));
        for r in &leftovers {
            m.recorder.emit(&TraceEvent::Migrate {
                now_us: close_at_us,
                req: r.id,
                from_shard: idx as u32,
                to_shard,
            });
        }
        self.migrated += leftovers.len() as u64;
        m.status = MemberStatus::Drained;
    }

    /// Reinstate expired quarantines, then scan each member's fresh
    /// flight-recorder dumps for actionable anomalies and quarantine the
    /// offenders.
    fn supervise(&mut self, t: u64) {
        for idx in 0..self.members.len() {
            if let MemberStatus::Quarantined { until_us } = self.members[idx].status {
                if t >= until_us {
                    self.members[idx].status = MemberStatus::Active;
                    self.router.set_eligible(idx, true);
                }
            }
        }
        for idx in 0..self.members.len() {
            let seen = self.members[idx].dumps_seen;
            let (total, actionable) = self.members[idx].recorder.with(|r| {
                let dumps = r.dumps();
                let actionable = dumps[seen.min(dumps.len())..].iter().any(|d| {
                    matches!(
                        d.anomaly,
                        Anomaly::ShedBurst | Anomaly::DegradedStorm | Anomaly::P99Spike
                    )
                });
                (dumps.len(), actionable)
            });
            self.members[idx].dumps_seen = total;
            if actionable && self.members[idx].status == MemberStatus::Active {
                self.quarantine_member(idx, t);
            }
        }
    }

    /// Quarantine `idx` at time `t` with the strike-scaled jittered
    /// cooldown. Refused (returning `false` and counting a refused
    /// event) when the member is not active or is the last shard in
    /// rotation — the farm never quarantines itself to a standstill.
    fn quarantine_member(&mut self, idx: usize, t: u64) -> bool {
        if self.members[idx].status != MemberStatus::Active
            || !self.router.is_eligible(idx)
            || self.router.eligible_count() <= 1
        {
            self.refused_events += 1;
            return false;
        }
        let sup = self.cfg.supervisor;
        let m = &mut self.members[idx];
        m.strikes += 1;
        let until_us = t.saturating_add(jittered_backoff_us(
            sup.cooldown_us,
            m.strikes,
            sup.jitter_permille,
            sup.seed,
            idx as u64,
        ));
        m.status = MemberStatus::Quarantined { until_us };
        m.recorder.emit(&TraceEvent::Quarantine {
            now_us: t,
            shard: idx as u32,
            until_us,
        });
        self.router.set_eligible(idx, false);
        self.quarantines += 1;
        true
    }

    /// Apply a control-plane retune at the current (post-pump) epoch
    /// boundary. Knob retunes target one member's scheduler, anchored at
    /// its *actual* head position; policy swaps rebuild the router's
    /// placement rule in place. Refused — counting a refused event and
    /// returning `false` — when the target shard is unknown or retired,
    /// or the scheduler rejects the knob.
    fn apply_retune(&mut self, shard: usize, action: RetuneAction, t: u64) -> bool {
        let retired =
            |s: MemberStatus| matches!(s, MemberStatus::Drained | MemberStatus::Draining { .. });
        if shard >= self.members.len() || retired(self.members[shard].status) {
            self.refused_events += 1;
            return false;
        }
        match action {
            RetuneAction::Knob(knob) => {
                let cylinders = self.cfg.farm.cylinders;
                let m = &mut self.members[shard];
                let head = HeadState::new(m.service.head(), t, cylinders);
                if !m.scheduler.retune(&knob, &head) {
                    self.refused_events += 1;
                    return false;
                }
            }
            RetuneAction::Policy(policy) => {
                self.router.set_policy(policy, self.cfg.farm.cylinders);
            }
        }
        self.members[shard].recorder.emit(&TraceEvent::Retune {
            now_us: t,
            shard: shard as u32,
            knob: action.knob_index(),
        });
        self.retunes += 1;
        true
    }

    /// Apply one event: pump every member to the event's time, run the
    /// supervisor, then act.
    ///
    /// # Panics
    /// If events go backwards in time, or an arrival regresses a
    /// member's submission order (both orchestration bugs).
    pub fn handle(&mut self, event: DaemonEvent) {
        let t = event.at_us();
        assert!(
            t >= self.now_us,
            "daemon events must be time-ordered: {t} after {}",
            self.now_us
        );
        self.now_us = t;
        self.advance_to(t);
        self.supervise(t);
        match event {
            DaemonEvent::Arrival(r) => {
                self.arrivals += 1;
                if !self.gate.admit(r.stream, r.arrival_us) {
                    return;
                }
                let decision = self.router.route(&r);
                if let Some(ev) = decision.redirect_event(&r) {
                    // Same demux as the batch farm: the overload evidence
                    // belongs to the shard the arrival was steered from.
                    self.members[decision.redirect_from].recorder.emit(&ev);
                }
                self.routed_per_shard[decision.shard] += 1;
                self.members[decision.shard].stepper.submit(r);
            }
            DaemonEvent::AddShard { .. } => {
                let idx = self.members.len();
                let member = Self::build_member(
                    &mut self.make_scheduler,
                    &mut self.make_service,
                    idx,
                    &self.cfg,
                );
                self.router.add_shard(member.scheduler.queue_capacity());
                self.members.push(member);
                self.routed_per_shard.push(0);
            }
            DaemonEvent::DrainShard {
                at_us,
                shard,
                handoff_window_us,
            } => {
                if shard >= self.members.len()
                    || self.members[shard].status != MemberStatus::Active
                    || self.router.eligible_count() <= 1
                {
                    self.refused_events += 1;
                    return;
                }
                self.router.set_eligible(shard, false);
                self.members[shard].status = MemberStatus::Draining {
                    close_at_us: at_us.saturating_add(handoff_window_us),
                };
            }
            DaemonEvent::Quarantine { at_us, shard } => {
                if shard >= self.members.len() {
                    self.refused_events += 1;
                    return;
                }
                self.quarantine_member(shard, at_us);
            }
            DaemonEvent::Retune {
                at_us,
                shard,
                action,
            } => {
                self.apply_retune(shard, action, at_us);
            }
        }
    }

    /// Feed every event through [`FarmDaemon::handle`], then shut down.
    /// Accepts any `IntoIterator` — including an
    /// [`std::sync::mpsc::Receiver`], which blocks until senders hang
    /// up, making this the channel front-end for a live arrival source.
    pub fn run(mut self, events: impl IntoIterator<Item = DaemonEvent>) -> DaemonReport {
        for event in events {
            self.handle(event);
        }
        self.shutdown()
    }

    /// Stop accepting events: close any still-open drains at their
    /// window, let every other live member run its backlog out, and
    /// collect the report.
    pub fn shutdown(mut self) -> DaemonReport {
        for idx in 0..self.members.len() {
            match self.members[idx].status {
                MemberStatus::Drained => {}
                MemberStatus::Draining { close_at_us } => {
                    self.pump(idx, close_at_us);
                    self.close_drain(idx, close_at_us);
                }
                _ => {
                    let m = &mut self.members[idx];
                    m.stepper
                        .finish(m.scheduler.as_mut(), &mut m.service, &mut m.recorder);
                }
            }
        }
        let mut per_shard = Vec::with_capacity(self.members.len());
        let mut sheds_per_shard = Vec::with_capacity(self.members.len());
        let mut recorders = Vec::with_capacity(self.members.len());
        let mut statuses = Vec::with_capacity(self.members.len());
        for member in self.members {
            sheds_per_shard.push(member.scheduler.sheds());
            statuses.push(member.status);
            // The scheduler may hold a clone of the recorder handle
            // (bounded cascades do); dropping it frees the sink for
            // recovery.
            drop(member.scheduler);
            per_shard.push(member.stepper.into_metrics());
            recorders.push(
                member
                    .recorder
                    .try_unwrap()
                    .expect("factories must not retain recorder handles"),
            );
        }
        let makespan_us = per_shard.iter().map(|m| m.makespan_us).max().unwrap_or(0);
        DaemonReport {
            per_shard,
            routed_per_shard: self.routed_per_shard,
            sheds_per_shard,
            statuses,
            recorders,
            arrivals: self.arrivals,
            admission_rejections: self.gate.rejections(),
            migrated: self.migrated,
            migrated_undelivered: self.migrated_undelivered,
            redirects: self.router.redirects(),
            reroutes: self.router.reroutes(),
            quarantines: self.quarantines,
            retunes: self.retunes,
            refused_events: self.refused_events,
            makespan_us,
        }
    }
}

/// Everything a daemon run produced, with the closed-ledger and
/// event-reconciliation checks the CI gates assert.
#[derive(Debug)]
pub struct DaemonReport {
    /// Engine metrics per member (index = shard id).
    pub per_shard: Vec<Metrics>,
    /// Admitted arrivals placed on each shard.
    pub routed_per_shard: Vec<u64>,
    /// Bounded-queue sheds per shard.
    pub sheds_per_shard: Vec<u64>,
    /// Final lifecycle state per member.
    pub statuses: Vec<MemberStatus>,
    /// Each member's flight recorder (dumps + windowed telemetry).
    pub recorders: Vec<FlightRecorder>,
    /// Requests offered to the farm (admitted or not).
    pub arrivals: u64,
    /// Requests rejected at the admission gate.
    pub admission_rejections: u64,
    /// Requests migrated off draining shards (terminal here).
    pub migrated: u64,
    /// The subset of `migrated` never delivered to a scheduler (still
    /// in the stepper's submission backlog at drain close).
    pub migrated_undelivered: u64,
    /// Overload redirects taken by the router.
    pub redirects: u64,
    /// Arrivals rerouted off ineligible shards.
    pub reroutes: u64,
    /// Quarantines imposed (supervisor or operator).
    pub quarantines: u64,
    /// Control-plane retunes applied (knob changes + policy swaps).
    pub retunes: u64,
    /// Membership/quarantine/retune events refused (unknown shard,
    /// wrong state, unsupported knob, or last shard in rotation).
    pub refused_events: u64,
    /// Slowest member's makespan (µs).
    pub makespan_us: u64,
}

impl DaemonReport {
    /// Total requests served.
    pub fn served(&self) -> u64 {
        Metrics::total_served(&self.per_shard)
    }

    /// Total bounded-queue sheds.
    pub fn sheds(&self) -> u64 {
        self.sheds_per_shard.iter().sum()
    }

    /// All members folded into one farm-level [`Metrics`].
    pub fn aggregate(&self) -> Metrics {
        Metrics::merged(&self.per_shard)
    }

    /// The request ledger: every arrival must be terminal in exactly one
    /// bucket — served/dropped/failed in some engine, shed by a bounded
    /// queue, migrated off a drained shard, or rejected at admission.
    pub fn ledger(&self) -> Result<(), String> {
        let total = self.aggregate();
        let accounted =
            total.requests_total() + self.sheds() + self.migrated + self.admission_rejections;
        if accounted != self.arrivals {
            return Err(format!(
                "daemon ledger: {accounted} accounted of {} \
                 (served {} dropped {} failed {} shed {} migrated {} rejected {})",
                self.arrivals,
                total.served,
                total.dropped,
                total.failed,
                self.sheds(),
                self.migrated,
                self.admission_rejections
            ));
        }
        Ok(())
    }

    /// `true` when [`DaemonReport::ledger`] closes.
    pub fn ledger_closed(&self) -> bool {
        self.ledger().is_ok()
    }

    /// Event-vs-counter reconciliation across every member's telemetry:
    /// traced Arrival/Shed/Redirect/Migrate/Quarantine/Retune events
    /// must match the daemon's own counters exactly. (Requires scheduler factories
    /// to wire the provided sink, so shed events are traced.)
    pub fn reconcile_events(&self) -> Result<(), String> {
        let mut c = obs::Snapshot::new();
        for r in &self.recorders {
            c.merge(&r.windows().cumulative());
        }
        let counters = c.counters;
        let delivered = self.arrivals - self.admission_rejections - self.migrated_undelivered;
        let checks = [
            ("arrival", counters.arrivals, delivered),
            ("shed", counters.sheds, self.sheds()),
            ("redirect", counters.redirects, self.redirects),
            ("migrate", counters.migrations, self.migrated),
            ("quarantine", counters.quarantines, self.quarantines),
            ("retune", counters.retunes, self.retunes),
        ];
        for (name, events, counter) in checks {
            if events != counter {
                return Err(format!(
                    "{name} events vs daemon counter: {events} != {counter}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_farm, RoutePolicy};
    use sched::{Fcfs, QosVector};

    fn vod(streams: u64, n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::read(
                    i,
                    i * 900,
                    i * 900 + 120_000,
                    (i * 37 % 3832) as u32,
                    64 * 1024,
                    QosVector::single((i % 5) as u8),
                )
                .with_stream(i % streams)
            })
            .collect()
    }

    fn fcfs_factory() -> impl FnMut(usize, SharedSink<FlightRecorder>) -> Box<dyn DiskScheduler> {
        |_, _| Box::new(Fcfs::new())
    }

    fn table1_services() -> impl FnMut(usize) -> DiskService {
        |_| DiskService::table1()
    }

    #[test]
    fn quiet_daemon_matches_the_batch_farm() {
        // No membership events: placements and per-shard metrics must be
        // bit-identical to the batch pass, for every policy.
        let trace = vod(16, 400);
        let options = SimOptions::with_shape(1, 5).dropping();
        for policy in [
            RoutePolicy::HashStream,
            RoutePolicy::CylinderRange,
            RoutePolicy::LeastLoaded,
        ] {
            let farm_cfg = FarmConfig::new(4).with_policy(policy);
            let (batch, _) = simulate_farm(&trace, &farm_cfg, |_| Box::new(Fcfs::new()), options);
            let daemon = FarmDaemon::new(
                DaemonConfig::new(farm_cfg, options),
                fcfs_factory(),
                table1_services(),
            );
            let report = daemon.run(trace.iter().cloned().map(DaemonEvent::Arrival));
            assert_eq!(report.per_shard, batch.per_shard, "{policy:?}");
            assert_eq!(
                report.routed_per_shard, batch.routed_per_shard,
                "{policy:?}"
            );
            assert_eq!(report.redirects, batch.redirects, "{policy:?}");
            assert_eq!(report.reroutes, 0, "{policy:?}");
            report.ledger().expect("ledger must close");
            report.reconcile_events().expect("events must reconcile");
        }
    }

    #[test]
    fn drain_migrates_the_backlog_and_closes_the_ledger() {
        // A dense burst swamps the farm; draining a shard mid-burst with
        // a short handoff window must leave a backlog to migrate.
        let trace = vod(8, 300);
        let options = SimOptions::with_shape(1, 5);
        let farm_cfg = FarmConfig::new(3).with_policy(RoutePolicy::LeastLoaded);
        let mut daemon = FarmDaemon::new(
            DaemonConfig::new(farm_cfg, options),
            fcfs_factory(),
            table1_services(),
        );
        for r in &trace[..200] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        let t = trace[199].arrival_us;
        daemon.handle(DaemonEvent::DrainShard {
            at_us: t,
            shard: 1,
            handoff_window_us: 10_000,
        });
        for r in &trace[200..] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        let before = daemon.router().reroutes();
        assert!(before > 0, "the drained shard's arrivals must reroute");
        let report = daemon.run(std::iter::empty());
        assert_eq!(report.statuses[1], MemberStatus::Drained);
        assert!(
            report.migrated > 0,
            "a 10 ms window cannot drain the backlog"
        );
        assert_eq!(report.refused_events, 0);
        report.ledger().expect("ledger must close across the drain");
        report.reconcile_events().expect("migrate events reconcile");
        // Migrate events live in the drained member's recorder.
        let migrations = report.recorders[1]
            .windows()
            .cumulative()
            .counters
            .migrations;
        assert_eq!(migrations, report.migrated);
    }

    #[test]
    fn added_shard_attracts_new_arrivals() {
        let trace = vod(12, 240);
        let options = SimOptions::with_shape(1, 5);
        let farm_cfg = FarmConfig::new(2).with_policy(RoutePolicy::LeastLoaded);
        let mut daemon = FarmDaemon::new(
            DaemonConfig::new(farm_cfg, options),
            fcfs_factory(),
            table1_services(),
        );
        for r in &trace[..120] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        daemon.handle(DaemonEvent::AddShard {
            at_us: trace[119].arrival_us,
        });
        assert_eq!(daemon.shards(), 3);
        for r in &trace[120..] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        let report = daemon.shutdown();
        assert_eq!(report.per_shard.len(), 3);
        assert!(
            report.routed_per_shard[2] > 0,
            "the idle newcomer must attract load: {:?}",
            report.routed_per_shard
        );
        report.ledger().expect("ledger must close across the add");
        report.reconcile_events().expect("events reconcile");
    }

    #[test]
    fn ingest_matches_run_and_reports_backlog() {
        // Streaming ingest of a materialized trace must be
        // indistinguishable from feeding the same arrivals through run(),
        // and the backlog accessor must return to zero after shutdown.
        let trace = vod(16, 400);
        let options = SimOptions::with_shape(1, 5).dropping();
        let farm_cfg = FarmConfig::new(3).with_policy(RoutePolicy::LeastLoaded);
        let daemon = FarmDaemon::new(
            DaemonConfig::new(farm_cfg.clone(), options),
            fcfs_factory(),
            table1_services(),
        );
        let by_run = daemon.run(trace.iter().cloned().map(DaemonEvent::Arrival));

        let mut daemon = FarmDaemon::new(
            DaemonConfig::new(farm_cfg, options),
            fcfs_factory(),
            table1_services(),
        );
        let mut source = workload::VecSource::new(trace.clone());
        let pulled = daemon.ingest(&mut source);
        assert_eq!(pulled as usize, trace.len());
        assert_eq!(daemon.arrivals(), trace.len() as u64);
        assert_eq!(daemon.admission_rejections(), 0, "the gate defaults open");
        let by_ingest = daemon.shutdown();
        assert_eq!(by_ingest.per_shard, by_run.per_shard);
        assert_eq!(by_ingest.routed_per_shard, by_run.routed_per_shard);
        by_ingest.ledger().expect("ledger closes");
    }

    #[test]
    fn admission_gate_rejections_stay_in_the_ledger() {
        let trace = vod(10, 200);
        let options = SimOptions::with_shape(1, 5);
        let cfg = DaemonConfig::new(FarmConfig::new(2), options).with_admission(4, 50_000);
        let daemon = FarmDaemon::new(cfg, fcfs_factory(), table1_services());
        let report = daemon.run(trace.iter().cloned().map(DaemonEvent::Arrival));
        assert!(
            report.admission_rejections > 0,
            "10 streams through a 4-slot gate must reject"
        );
        report.ledger().expect("rejections are a ledger bucket");
        report.reconcile_events().expect("events reconcile");
    }

    #[test]
    fn operator_quarantine_is_refused_for_the_last_shard_in_rotation() {
        let options = SimOptions::with_shape(1, 5);
        let mut daemon = FarmDaemon::new(
            DaemonConfig::new(FarmConfig::new(1), options),
            fcfs_factory(),
            table1_services(),
        );
        daemon.handle(DaemonEvent::Quarantine { at_us: 0, shard: 0 });
        assert_eq!(daemon.status(0), MemberStatus::Active);
        let trace = vod(4, 50);
        let report = daemon.run(trace.iter().cloned().map(DaemonEvent::Arrival));
        assert_eq!(report.refused_events, 1);
        assert_eq!(report.quarantines, 0);
        assert_eq!(report.served(), 50);
        report.ledger().expect("ledger closes");
    }

    #[test]
    fn operator_quarantine_reroutes_and_reinstates_after_cooldown() {
        let trace = vod(6, 300);
        let options = SimOptions::with_shape(1, 5);
        let sup = SupervisorConfig {
            cooldown_us: 40_000,
            jitter_permille: 0,
            seed: 7,
        };
        let cfg = DaemonConfig::new(
            FarmConfig::new(2).with_policy(RoutePolicy::LeastLoaded),
            options,
        )
        .with_supervisor(sup);
        let mut daemon = FarmDaemon::new(cfg, fcfs_factory(), table1_services());
        for r in &trace[..50] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        let t = trace[49].arrival_us;
        daemon.handle(DaemonEvent::Quarantine { at_us: t, shard: 0 });
        let until = match daemon.status(0) {
            MemberStatus::Quarantined { until_us } => until_us,
            other => panic!("expected quarantine, got {other:?}"),
        };
        assert_eq!(until, t + 40_000, "first strike = base cooldown, no jitter");
        // While quarantined, everything routes to shard 1.
        let routed_before = daemon.router().reroutes();
        for r in trace[50..].iter().take_while(|r| r.arrival_us < until) {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        assert!(daemon.router().reroutes() > routed_before);
        // Past the cooldown the member is reinstated on the next event.
        for r in trace.iter().filter(|r| r.arrival_us >= until) {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        assert_eq!(daemon.status(0), MemberStatus::Active);
        let report = daemon.shutdown();
        assert_eq!(report.quarantines, 1);
        report.ledger().expect("ledger closes");
        report
            .reconcile_events()
            .expect("quarantine event reconciles");
    }

    #[test]
    fn supervisor_quarantines_a_shedding_member() {
        use cascade::{CascadeConfig, CascadedSfc, DispatchConfig};
        // One sticky stream hammers its hash shard through a tiny bounded
        // queue: shed events stream into the member's flight recorder,
        // the shed-burst dump fires, and the supervisor takes the shard
        // out of rotation — all without any operator event.
        let trace = vod(1, 400);
        let options = SimOptions::with_shape(1, 5);
        let triggers = TriggerConfig {
            shed_burst: 4,
            redirect_storm: 0,
            degraded_storm: 0,
            p99_spike_factor: 0.0,
            p99_min_completes: 0,
            cooldown_windows: 1,
        };
        let cfg = DaemonConfig::new(
            FarmConfig::new(2).with_policy(RoutePolicy::HashStream),
            options,
        )
        .with_telemetry(TelemetryConfig::exact().window_log2(20).depth(4), triggers)
        .with_supervisor(SupervisorConfig {
            cooldown_us: 60_000_000,
            jitter_permille: 0,
            seed: 11,
        });
        let daemon = FarmDaemon::new(
            cfg,
            |_, sink| {
                let cascade = CascadeConfig::paper_default(1, 3832)
                    .with_dispatch(DispatchConfig::paper_default().with_max_queue(8));
                Box::new(CascadedSfc::with_sink(cascade, sink).expect("valid cascade config"))
            },
            table1_services(),
        );
        let report = daemon.run(trace.iter().cloned().map(DaemonEvent::Arrival));
        assert_eq!(report.quarantines, 1, "the shed burst must strike once");
        // The victim is whichever member ended up quarantined; the other
        // shard may shed too once the sticky stream reroutes onto it.
        let victim = (0..2)
            .find(|&s| matches!(report.statuses[s], MemberStatus::Quarantined { .. }))
            .expect("one member must be quarantined");
        assert!(
            report.sheds_per_shard[victim] > 0,
            "the quarantined member must be the shedder"
        );
        assert!(
            report.reroutes > 0,
            "post-quarantine arrivals must route around the victim"
        );
        assert!(report.recorders[victim]
            .dumps()
            .iter()
            .any(|d| d.anomaly == Anomaly::ShedBurst));
        report.ledger().expect("ledger closes under supervision");
        report.reconcile_events().expect("shed events reconcile");
    }

    #[test]
    fn retune_events_apply_live_and_reconcile() {
        use cascade::{CascadeConfig, CascadedSfc, DispatchConfig};
        let trace = vod(8, 300);
        let options = SimOptions::with_shape(1, 5);
        let quiet = TriggerConfig {
            shed_burst: 0,
            redirect_storm: 0,
            degraded_storm: 0,
            p99_spike_factor: 0.0,
            p99_min_completes: 0,
            cooldown_windows: 1,
        };
        let cfg = DaemonConfig::new(
            FarmConfig::new(2).with_policy(RoutePolicy::HashStream),
            options,
        )
        .with_telemetry(TelemetryConfig::exact(), quiet);
        let mut daemon = FarmDaemon::new(
            cfg,
            |_, sink| {
                let cascade = CascadeConfig::paper_default(1, 3832)
                    .with_dispatch(DispatchConfig::paper_default().with_max_queue(64));
                Box::new(CascadedSfc::with_sink(cascade, sink).expect("valid cascade config"))
            },
            table1_services(),
        );
        for r in &trace[..150] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        let t = trace[149].arrival_us;
        // Three knob retunes on shard 0, one policy swap, plus three
        // refusals: unknown shard, a knob the value space rejects, and a
        // retired target.
        for (i, action) in [
            RetuneAction::Knob(Retune::BalanceFactor(2.0)),
            RetuneAction::Knob(Retune::ScanPartitions(5)),
            RetuneAction::Knob(Retune::Window(0.3)),
            RetuneAction::Policy(RoutePolicy::LeastLoaded),
        ]
        .into_iter()
        .enumerate()
        {
            daemon.handle(DaemonEvent::Retune {
                at_us: t + i as u64,
                shard: 0,
                action,
            });
        }
        daemon.handle(DaemonEvent::Retune {
            at_us: t + 10,
            shard: 9, // unknown shard
            action: RetuneAction::Knob(Retune::Window(0.5)),
        });
        daemon.handle(DaemonEvent::Retune {
            at_us: t + 11,
            shard: 1,
            action: RetuneAction::Knob(Retune::ScanPartitions(0)), // invalid R
        });
        for r in &trace[150..] {
            daemon.handle(DaemonEvent::Arrival(r.clone()));
        }
        assert_eq!(daemon.router().policy_name(), "least-loaded");
        let report = daemon.shutdown();
        assert_eq!(report.retunes, 4);
        assert_eq!(report.refused_events, 2);
        report.ledger().expect("ledger closes across retunes");
        report.reconcile_events().expect("retune events reconcile");
        // The retune events live in the targeted members' recorders.
        let traced: u64 = report
            .recorders
            .iter()
            .map(|r| r.windows().cumulative().counters.retunes)
            .sum();
        assert_eq!(traced, 4);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_events_panic() {
        let options = SimOptions::with_shape(1, 5);
        let mut daemon = FarmDaemon::new(
            DaemonConfig::new(FarmConfig::new(1), options),
            fcfs_factory(),
            table1_services(),
        );
        daemon.handle(DaemonEvent::AddShard { at_us: 1_000 });
        daemon.handle(DaemonEvent::AddShard { at_us: 999 });
    }
}
