//! The incremental routing core: one arrival in, one decision out.
//!
//! [`OnlineRouter`] owns exactly the state the batch routing pass
//! ([`crate::route_trace`]) kept on its stack — the policy router and
//! the modeled per-shard load — and exposes it one request at a time, so
//! a long-running daemon can interleave routing with membership changes.
//! The batch pass is a thin loop over this type, which is what makes the
//! offline/online parity gate hold *by construction*: with every shard
//! eligible, [`OnlineRouter::route`] runs the very same code the batch
//! pass always ran.
//!
//! On top of the batch semantics it adds an **eligibility mask** for the
//! daemon: a draining or quarantined shard stays in the load model (its
//! residents still drain) but receives no new arrivals — the policy's
//! choice is then rerouted to the least-loaded eligible shard.

use obs::TraceEvent;
use sched::Request;

use crate::router::{least_loaded_among, Router, ShardLoad};
use crate::FarmConfig;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Modeled shard occupancy during routing: each assignment books
/// `est_service_us` of work onto the shard; bookings completed by the
/// current arrival time fall out of the depth.
pub(crate) struct LoadModel {
    est_service_us: u64,
    /// Min-heap of modeled completion times per shard.
    completions: Vec<BinaryHeap<Reverse<u64>>>,
    /// Modeled drain horizon per shard.
    busy_until: Vec<u64>,
}

impl LoadModel {
    pub(crate) fn new(shards: usize, est_service_us: u64) -> Self {
        LoadModel {
            est_service_us: est_service_us.max(1),
            completions: (0..shards).map(|_| BinaryHeap::new()).collect(),
            busy_until: vec![0; shards],
        }
    }

    /// Retire bookings completed by `now`.
    pub(crate) fn advance_to(&mut self, now: u64) {
        for heap in &mut self.completions {
            while heap.peek().is_some_and(|Reverse(t)| *t <= now) {
                heap.pop();
            }
        }
    }

    /// Current loads, one per shard, decorated with the shards' queue
    /// capacities.
    pub(crate) fn loads(&self, capacities: &[Option<usize>]) -> Vec<ShardLoad> {
        self.completions
            .iter()
            .zip(&self.busy_until)
            .zip(capacities)
            .map(|((heap, &busy), &capacity)| ShardLoad {
                queue_depth: heap.len(),
                busy_until_us: busy,
                capacity,
            })
            .collect()
    }

    /// Book one request arriving at `now` onto `shard`.
    pub(crate) fn assign(&mut self, shard: usize, now: u64) {
        let start = self.busy_until[shard].max(now);
        let done = start + self.est_service_us;
        self.busy_until[shard] = done;
        self.completions[shard].push(Reverse(done));
    }

    /// Grow the model by one idle shard.
    pub(crate) fn add_shard(&mut self) {
        self.completions.push(BinaryHeap::new());
        self.busy_until.push(0);
    }
}

/// One routing decision: where the request goes and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The shard the request was placed on.
    pub shard: usize,
    /// What the routing policy picked before eligibility and overload
    /// corrections.
    pub policy_choice: usize,
    /// The shard the overload redirect (if any) steered away *from* —
    /// equals `policy_choice` unless an eligibility reroute intervened.
    pub redirect_from: usize,
    /// Modeled queue depth of `redirect_from` at decision time.
    pub queue_depth: usize,
    /// An overload redirect fired (`shard != redirect_from`).
    pub redirected: bool,
    /// The policy chose an ineligible (draining/quarantined) shard and
    /// the decision fell back to the least-loaded eligible one.
    pub rerouted: bool,
}

impl RouteDecision {
    /// The [`TraceEvent::Redirect`] this decision owes the telemetry
    /// plane, if its overload redirect fired — identical to the event
    /// the batch routing pass emits.
    pub fn redirect_event(&self, r: &Request) -> Option<TraceEvent> {
        self.redirected.then_some(TraceEvent::Redirect {
            now_us: r.arrival_us,
            req: r.id,
            from_shard: self.redirect_from as u32,
            to_shard: self.shard as u32,
            queue_depth: self.queue_depth as u64,
        })
    }
}

/// The event-driven router: feed it arrival-ordered requests, get
/// placements that — absent membership events — are bit-identical to
/// the batch routing pass.
pub struct OnlineRouter {
    router: Box<dyn Router>,
    model: LoadModel,
    capacities: Vec<Option<usize>>,
    eligible: Vec<bool>,
    redirect_on_overload: bool,
    redirects: u64,
    reroutes: u64,
}

impl OnlineRouter {
    /// A router over `cfg.shards` shards with the given bounded-queue
    /// capacities (one per shard, [`None`] for unbounded), every shard
    /// eligible.
    pub fn new(cfg: &FarmConfig, capacities: &[Option<usize>]) -> Self {
        assert!(cfg.shards >= 1, "a farm needs at least one shard");
        assert_eq!(capacities.len(), cfg.shards);
        OnlineRouter {
            router: cfg.policy.build(cfg.cylinders),
            model: LoadModel::new(cfg.shards, cfg.est_service_us),
            capacities: capacities.to_vec(),
            eligible: vec![true; cfg.shards],
            redirect_on_overload: cfg.redirect_on_overload,
            redirects: 0,
            reroutes: 0,
        }
    }

    /// Current shard count (including ineligible members).
    pub fn shards(&self) -> usize {
        self.capacities.len()
    }

    /// Shards currently accepting new arrivals.
    pub fn eligible_count(&self) -> usize {
        self.eligible.iter().filter(|&&e| e).count()
    }

    /// Whether `shard` accepts new arrivals.
    pub fn is_eligible(&self, shard: usize) -> bool {
        self.eligible[shard]
    }

    /// Mark `shard` eligible (reinstated) or ineligible (draining or
    /// quarantined). Ineligible shards stay in the load model — their
    /// residents are still draining — but receive no new arrivals.
    ///
    /// # Panics
    /// If this would leave no eligible shard: new arrivals would have
    /// nowhere to go, which is an orchestration bug, not a decision.
    pub fn set_eligible(&mut self, shard: usize, eligible: bool) {
        self.eligible[shard] = eligible;
        assert!(
            self.eligible.iter().any(|&e| e),
            "the last eligible shard cannot be removed"
        );
    }

    /// Add a fresh, idle, eligible shard; returns its index.
    pub fn add_shard(&mut self, capacity: Option<usize>) -> usize {
        self.model.add_shard();
        self.capacities.push(capacity);
        self.eligible.push(true);
        self.capacities.len() - 1
    }

    /// The least-loaded eligible shard right now — the migration target
    /// a closing drain hands its backlog to.
    pub fn least_loaded_eligible(&self) -> usize {
        let loads = self.model.loads(&self.capacities);
        least_loaded_among(&loads, &self.eligible).expect("at least one eligible shard")
    }

    /// Swap the routing policy live — the control plane's router retune
    /// hook. The load model, eligibility mask and counters all survive
    /// the swap; only the placement rule changes, so the swap is safe at
    /// any event boundary. `cylinders` sizes the cylinder-range policy's
    /// strips (pass the farm's configured value).
    pub fn set_policy(&mut self, policy: crate::RoutePolicy, cylinders: u32) {
        self.router = policy.build(cylinders);
    }

    /// The active routing policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.router.name()
    }

    /// Overload redirects taken so far (same counter the batch pass
    /// reports in [`crate::Placement::redirects`]).
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Eligibility reroutes taken so far (always 0 without membership
    /// events).
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Route one arrival. Requests must come in arrival order (the same
    /// contract the batch pass's trace argument carries).
    pub fn route(&mut self, r: &Request) -> RouteDecision {
        self.model.advance_to(r.arrival_us);
        let loads = self.model.loads(&self.capacities);
        let chosen = self.router.route(r, &loads);
        assert!(
            chosen < self.capacities.len(),
            "router returned shard {chosen}"
        );
        let mut target = chosen;
        let mut rerouted = false;
        if !self.eligible[chosen] {
            target =
                least_loaded_among(&loads, &self.eligible).expect("at least one eligible shard");
            rerouted = true;
            self.reroutes += 1;
        }
        // Overload redirect — the exact batch-pass decision applied to
        // the (possibly rerouted) target, constrained to eligible shards.
        let redirect_from = target;
        let mut redirected = false;
        if self.redirect_on_overload && loads[target].projected_full() {
            let alt =
                least_loaded_among(&loads, &self.eligible).expect("at least one eligible shard");
            if alt != target && !loads[alt].projected_full() {
                redirected = true;
                self.redirects += 1;
                target = alt;
            }
        }
        self.model.assign(target, r.arrival_us);
        RouteDecision {
            shard: target,
            policy_choice: chosen,
            redirect_from,
            queue_depth: loads[redirect_from].queue_depth,
            redirected,
            rerouted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutePolicy;
    use sched::QosVector;

    fn req(id: u64, arrival: u64, stream: u64, cyl: u32) -> Request {
        Request::read(id, arrival, u64::MAX, cyl, 65536, QosVector::none()).with_stream(stream)
    }

    #[test]
    fn ineligible_shards_receive_no_new_arrivals() {
        let cfg = FarmConfig::new(4);
        let mut router = OnlineRouter::new(&cfg, &[None; 4]);
        // Find a stream the hash policy sends to some shard, then mark
        // that shard ineligible: every later arrival must land elsewhere.
        let victim = router.route(&req(0, 0, 7, 0)).shard;
        router.set_eligible(victim, false);
        for i in 1..50 {
            let d = router.route(&req(i, i * 100, 7, 0));
            assert_ne!(d.shard, victim);
            assert_eq!(d.policy_choice, victim, "hash stays sticky");
            assert!(d.rerouted);
        }
        assert_eq!(router.reroutes(), 49);
        // Reinstate: the sticky stream comes home.
        router.set_eligible(victim, true);
        let d = router.route(&req(99, 10_000_000, 7, 0));
        assert_eq!(d.shard, victim);
        assert!(!d.rerouted);
    }

    #[test]
    fn added_shard_starts_idle_and_attracts_load() {
        let cfg = FarmConfig::new(2).with_policy(RoutePolicy::LeastLoaded);
        let mut router = OnlineRouter::new(&cfg, &[None, None]);
        for i in 0..10 {
            router.route(&req(i, 0, i, 0));
        }
        let new = router.add_shard(None);
        assert_eq!(new, 2);
        assert_eq!(router.shards(), 3);
        // The idle newcomer is now the least-loaded choice.
        assert_eq!(router.route(&req(10, 0, 10, 0)).shard, new);
    }

    #[test]
    fn policy_swap_preserves_load_model_and_counters() {
        let cfg = FarmConfig::new(3).with_policy(RoutePolicy::HashStream);
        let mut router = OnlineRouter::new(&cfg, &[None; 3]);
        // Load shard 0 heavily through the sticky hash policy.
        let heavy = router.route(&req(0, 0, 7, 0)).shard;
        for i in 1..12 {
            router.route(&req(i, 0, 7, 0));
        }
        assert_eq!(router.policy_name(), "hash");
        router.set_policy(RoutePolicy::LeastLoaded, cfg.cylinders);
        assert_eq!(router.policy_name(), "least-loaded");
        // The surviving load model steers the next arrival off the shard
        // the old policy piled onto.
        let d = router.route(&req(12, 0, 7, 0));
        assert_ne!(d.shard, heavy);
        assert_eq!(router.reroutes(), 0);
        assert_eq!(router.redirects(), 0);
    }

    #[test]
    #[should_panic(expected = "last eligible shard")]
    fn cannot_remove_the_last_eligible_shard() {
        let cfg = FarmConfig::new(2);
        let mut router = OnlineRouter::new(&cfg, &[None, None]);
        router.set_eligible(0, false);
        router.set_eligible(1, false);
    }

    #[test]
    fn redirect_decision_carries_the_batch_event_fields() {
        let cfg = FarmConfig::new(2)
            .with_policy(RoutePolicy::HashStream)
            .with_redirects()
            .with_est_service_us(1_000_000);
        // Tiny bounded queues: the sticky stream overloads its shard.
        let mut router = OnlineRouter::new(&cfg, &[Some(2), Some(2)]);
        let mut redirected = None;
        for i in 0..8 {
            let r = req(i, 0, 3, 0);
            let d = router.route(&r);
            if let Some(ev) = d.redirect_event(&r) {
                redirected = Some((d, ev));
                break;
            }
        }
        let (d, ev) = redirected.expect("overload must trigger a redirect");
        match ev {
            TraceEvent::Redirect {
                from_shard,
                to_shard,
                queue_depth,
                ..
            } => {
                assert_eq!(from_shard as usize, d.policy_choice);
                assert_eq!(to_shard as usize, d.shard);
                assert_eq!(queue_depth as usize, d.queue_depth);
            }
            other => panic!("expected redirect, got {other:?}"),
        }
    }
}
