//! Routing policies: which shard serves an arriving request.
//!
//! Routers see the request plus a modeled [`ShardLoad`] per shard and pick
//! an index. The three built-in policies cover the classic trade-offs:
//!
//! * [`HashRouter`] — hash the stream id. Stateless and sticky (one
//!   stream's blocks always hit one shard, preserving sequential layout),
//!   but blind to load: colliding hot streams overload a shard.
//! * [`RangeRouter`] — partition the cylinder space into contiguous
//!   bands, one per shard. Placement-affine (matches content partitioned
//!   across disks by address) and sticky per file region.
//! * [`LeastLoadedRouter`] — queue-depth feedback: send the arrival to
//!   the shard with the fewest modeled pending requests. Best loss rates
//!   under overload, no stickiness.

use sched::Request;

/// Modeled load of one shard at a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Requests routed to the shard and not yet (modeled as) completed.
    pub queue_depth: usize,
    /// Modeled time at which the shard drains everything assigned so far
    /// (µs).
    pub busy_until_us: u64,
    /// Bounded-queue capacity of the shard's scheduler, if it has one
    /// (probed via [`sched::DiskScheduler::queue_capacity`]).
    pub capacity: Option<usize>,
}

impl ShardLoad {
    /// `true` when the shard's bounded queue is projected full — routing
    /// one more request there would likely shed.
    pub fn projected_full(&self) -> bool {
        self.capacity.is_some_and(|cap| self.queue_depth >= cap)
    }
}

/// A routing policy: pick the shard that serves `req`.
///
/// `loads` always has one entry per shard; implementations must return an
/// index `< loads.len()`. Routers may keep state (`&mut self`) but must be
/// deterministic — same request sequence, same placements.
pub trait Router {
    /// Policy name for reports (e.g. `"hash"`).
    fn name(&self) -> &'static str;

    /// Choose the shard for `req` given the current modeled loads.
    fn route(&mut self, req: &Request, loads: &[ShardLoad]) -> usize;
}

/// The three built-in policies, as a value for configs and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Hash-by-stream ([`HashRouter`]).
    HashStream,
    /// Cylinder-range affinity ([`RangeRouter`]).
    CylinderRange,
    /// Queue-depth feedback ([`LeastLoadedRouter`]).
    LeastLoaded,
}

impl RoutePolicy {
    /// Stable policy name (matches the router's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::HashStream => "hash",
            RoutePolicy::CylinderRange => "range",
            RoutePolicy::LeastLoaded => "least-loaded",
        }
    }

    /// Build the router; `cylinders` sizes the range partition.
    pub fn build(self, cylinders: u32) -> Box<dyn Router> {
        match self {
            RoutePolicy::HashStream => Box::new(HashRouter),
            RoutePolicy::CylinderRange => Box::new(RangeRouter { cylinders }),
            RoutePolicy::LeastLoaded => Box::new(LeastLoadedRouter),
        }
    }
}

/// Hash-by-stream routing: `splitmix64(stream) mod shards`.
pub struct HashRouter;

/// SplitMix64 finalizer — a full-avalanche mix so that consecutive stream
/// ids spread over shards instead of striding.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Router for HashRouter {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn route(&mut self, req: &Request, loads: &[ShardLoad]) -> usize {
        (splitmix64(req.stream) % loads.len() as u64) as usize
    }
}

/// Cylinder-range affinity: shard `i` owns the `i`-th contiguous band of
/// the cylinder space.
pub struct RangeRouter {
    /// Total cylinders being partitioned.
    pub cylinders: u32,
}

impl Router for RangeRouter {
    fn name(&self) -> &'static str {
        "range"
    }

    fn route(&mut self, req: &Request, loads: &[ShardLoad]) -> usize {
        let shards = loads.len() as u64;
        let cylinders = u64::from(self.cylinders.max(1));
        let band = u64::from(req.cylinder) * shards / cylinders;
        (band as usize).min(loads.len() - 1)
    }
}

/// Queue-depth feedback: the shard with the fewest modeled pending
/// requests wins; ties break toward the earlier drain time, then the
/// lower index (so the choice is deterministic).
pub struct LeastLoadedRouter;

/// The shard with the least modeled load. Shared by the least-loaded
/// policy and by redirect-on-overload target selection.
pub fn least_loaded(loads: &[ShardLoad]) -> usize {
    loads
        .iter()
        .enumerate()
        .min_by_key(|(i, l)| (l.queue_depth, l.busy_until_us, *i))
        .map(|(i, _)| i)
        .expect("at least one shard")
}

/// [`least_loaded`] restricted to the shards `eligible` marks `true` —
/// the selection the online router uses when membership events have
/// taken shards out of rotation. `None` when nothing is eligible. With
/// every shard eligible this is exactly [`least_loaded`] (same tie
/// breaks), which the parity tests pin down.
pub fn least_loaded_among(loads: &[ShardLoad], eligible: &[bool]) -> Option<usize> {
    debug_assert_eq!(loads.len(), eligible.len());
    loads
        .iter()
        .enumerate()
        .filter(|(i, _)| eligible.get(*i).copied().unwrap_or(false))
        .min_by_key(|(i, l)| (l.queue_depth, l.busy_until_us, *i))
        .map(|(i, _)| i)
}

impl Router for LeastLoadedRouter {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _req: &Request, loads: &[ShardLoad]) -> usize {
        least_loaded(loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::QosVector;

    fn req(stream: u64, cylinder: u32) -> Request {
        Request::read(0, 0, u64::MAX, cylinder, 65536, QosVector::none()).with_stream(stream)
    }

    fn idle(shards: usize) -> Vec<ShardLoad> {
        vec![
            ShardLoad {
                queue_depth: 0,
                busy_until_us: 0,
                capacity: None,
            };
            shards
        ]
    }

    #[test]
    fn hash_is_sticky_per_stream_and_spreads_streams() {
        let mut r = HashRouter;
        let loads = idle(8);
        let mut used = std::collections::HashSet::new();
        for stream in 0..64u64 {
            let first = r.route(&req(stream, 0), &loads);
            assert!(first < 8);
            // Sticky: the same stream always routes the same way.
            assert_eq!(r.route(&req(stream, 999), &loads), first);
            used.insert(first);
        }
        assert!(used.len() >= 6, "poor spread: {used:?}");
    }

    #[test]
    fn range_partitions_the_cylinder_space_in_order() {
        let mut r = RangeRouter { cylinders: 4000 };
        let loads = idle(4);
        assert_eq!(r.route(&req(0, 0), &loads), 0);
        assert_eq!(r.route(&req(0, 999), &loads), 0);
        assert_eq!(r.route(&req(0, 1000), &loads), 1);
        assert_eq!(r.route(&req(0, 3999), &loads), 3);
        // Monotone in the cylinder.
        let mut last = 0;
        for cyl in (0..4000).step_by(7) {
            let s = r.route(&req(0, cyl), &loads);
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn least_loaded_picks_the_shallowest_queue() {
        let mut loads = idle(3);
        loads[0].queue_depth = 5;
        loads[1].queue_depth = 2;
        loads[2].queue_depth = 2;
        loads[2].busy_until_us = 100;
        // Depth ties break on drain horizon: shard 1 drains sooner.
        assert_eq!(LeastLoadedRouter.route(&req(0, 0), &loads), 1);
        loads[1].queue_depth = 9;
        assert_eq!(LeastLoadedRouter.route(&req(0, 0), &loads), 2);
    }

    #[test]
    fn least_loaded_among_matches_unrestricted_when_all_eligible() {
        let mut loads = idle(5);
        for (i, l) in loads.iter_mut().enumerate() {
            l.queue_depth = (i * 13 + 7) % 5;
            l.busy_until_us = (i as u64 * 31) % 3;
        }
        let all = vec![true; 5];
        assert_eq!(least_loaded_among(&loads, &all), Some(least_loaded(&loads)));
        // Restricting to one shard picks it, and to none picks nothing.
        let only3 = vec![false, false, false, true, false];
        assert_eq!(least_loaded_among(&loads, &only3), Some(3));
        assert_eq!(least_loaded_among(&loads, &[false; 5]), None);
    }

    #[test]
    fn projected_full_requires_a_capacity() {
        let mut l = ShardLoad {
            queue_depth: 10,
            busy_until_us: 0,
            capacity: None,
        };
        assert!(!l.projected_full());
        l.capacity = Some(10);
        assert!(l.projected_full());
        l.capacity = Some(11);
        assert!(!l.projected_full());
    }
}
