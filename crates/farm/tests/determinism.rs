//! Routing determinism and executor bit-identity.
//!
//! The farm's contract: placements are a pure function of (trace,
//! config), and the executor choice (serial vs scoped threads) never
//! changes the outcome — metrics *and* merged trace snapshots are
//! bit-identical. Redirect accounting must reconcile exactly between the
//! outcome counter and the traced events.

use cascade::{CascadeConfig, CascadedSfc, DispatchConfig};
use farm::{simulate_farm, FarmConfig, Parallelism, RoutePolicy};
use sched::{DiskScheduler, Fcfs};
use sim::SimOptions;
use workload::VodConfig;

const POLICIES: [RoutePolicy; 3] = [
    RoutePolicy::HashStream,
    RoutePolicy::CylinderRange,
    RoutePolicy::LeastLoaded,
];

/// A VoD mix light enough that an unbounded farm serves everything.
fn light_trace() -> Vec<sched::Request> {
    let mut cfg = VodConfig::mpeg1(32);
    cfg.duration_us = 10_000_000;
    cfg.generate(42)
}

/// 90 streams against four Table-1 disks: just past saturation. Far past
/// it every policy sheds the same capacity-bound excess; *near* it the
/// sheds come from hash collisions piling streams onto one shard, which
/// balanced routing avoids — the regime where routing quality shows.
fn overload_trace() -> Vec<sched::Request> {
    let mut cfg = VodConfig::mpeg1(90);
    cfg.duration_us = 10_000_000;
    cfg.generate(7)
}

fn bounded_cascade(cap: usize) -> Box<dyn DiskScheduler> {
    let cfg = CascadeConfig::paper_default(1, 3832)
        .with_dispatch(DispatchConfig::paper_default().with_max_queue(cap));
    Box::new(CascadedSfc::new(cfg).expect("valid config"))
}

#[test]
fn parallel_and_serial_executors_are_bit_identical() {
    let trace = light_trace();
    for policy in POLICIES {
        let base = FarmConfig::new(4).with_policy(policy);
        let serial = base.clone().with_parallelism(Parallelism::Serial);
        let threads = base.with_parallelism(Parallelism::threads(4));
        let (o1, s1) = simulate_farm(
            &trace,
            &serial,
            |_| Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 4),
        );
        let (o2, s2) = simulate_farm(
            &trace,
            &threads,
            |_| Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 4),
        );
        assert_eq!(o1.routed_per_shard, o2.routed_per_shard, "{policy:?}");
        assert_eq!(o1.per_shard, o2.per_shard, "{policy:?}");
        assert_eq!(o1.makespan_us, o2.makespan_us, "{policy:?}");
        assert_eq!(o1.redirects, o2.redirects, "{policy:?}");
        assert_eq!(s1, s2, "merged snapshots must match for {policy:?}");
    }
}

#[test]
fn repeat_runs_are_deterministic() {
    let trace = light_trace();
    for policy in POLICIES {
        let cfg = FarmConfig::new(3).with_policy(policy);
        let run = || {
            simulate_farm(
                &trace,
                &cfg,
                |_| Box::new(Fcfs::new()),
                SimOptions::with_shape(1, 4),
            )
        };
        let (oa, sa) = run();
        let (ob, sb) = run();
        assert_eq!(oa.routed_per_shard, ob.routed_per_shard, "{policy:?}");
        assert_eq!(oa.per_shard, ob.per_shard, "{policy:?}");
        assert_eq!(sa, sb, "{policy:?}");
    }
}

#[test]
fn hash_routing_is_sticky_per_stream_end_to_end() {
    let trace = light_trace();
    let cfg = FarmConfig::new(4)
        .with_policy(RoutePolicy::HashStream)
        .with_parallelism(Parallelism::Serial);
    let mut sink = obs::Snapshot::new();
    let placement = farm::route_trace(&trace, &cfg, &[None; 4], &mut sink);
    // Every stream's requests live on exactly one shard.
    for (shard, sub) in placement.shard_traces.iter().enumerate() {
        for r in sub {
            let home = placement
                .shard_traces
                .iter()
                .position(|s| s.iter().any(|q| q.stream == r.stream))
                .unwrap();
            assert_eq!(home, shard, "stream {} split across shards", r.stream);
        }
    }
}

#[test]
fn range_routing_bands_the_cylinder_space() {
    let trace = light_trace();
    let cfg = FarmConfig::new(4)
        .with_policy(RoutePolicy::CylinderRange)
        .with_parallelism(Parallelism::Serial);
    let mut sink = obs::Snapshot::new();
    let placement = farm::route_trace(&trace, &cfg, &[None; 4], &mut sink);
    // Shard i's cylinders all precede shard i+1's.
    let ranges: Vec<(u32, u32)> = placement
        .shard_traces
        .iter()
        .map(|sub| {
            let lo = sub.iter().map(|r| r.cylinder).min().unwrap_or(0);
            let hi = sub.iter().map(|r| r.cylinder).max().unwrap_or(0);
            (lo, hi)
        })
        .collect();
    for w in ranges.windows(2) {
        assert!(w[0].1 <= w[1].0, "bands overlap: {ranges:?}");
    }
}

#[test]
fn least_loaded_routing_sheds_less_than_hash_under_overload() {
    let trace = overload_trace();
    let run = |policy| {
        let cfg = FarmConfig::new(4).with_policy(policy);
        simulate_farm(
            &trace,
            &cfg,
            |_| bounded_cascade(24),
            SimOptions::with_shape(1, 4),
        )
    };
    let (hash, _) = run(RoutePolicy::HashStream);
    let (ll, _) = run(RoutePolicy::LeastLoaded);
    assert!(hash.sheds() > 0, "overload workload must actually shed");
    assert!(
        ll.sheds() < hash.sheds(),
        "least-loaded should shed strictly less: least-loaded {} vs hash {}",
        ll.sheds(),
        hash.sheds()
    );
}

#[test]
fn redirect_counter_reconciles_with_traced_events() {
    let trace = overload_trace();
    let cfg = FarmConfig::new(4)
        .with_policy(RoutePolicy::HashStream)
        .with_redirects();
    let (out, snap) = simulate_farm(
        &trace,
        &cfg,
        |_| bounded_cascade(24),
        SimOptions::with_shape(1, 4),
    );
    assert!(out.redirects > 0, "overloaded hash routing should redirect");
    assert_eq!(
        snap.counters.redirects, out.redirects,
        "traced Redirect events must reconcile with the outcome counter"
    );
    assert_eq!(snap.counters.shard_reports, 4);
    // Ledger: every arrival is either inside a shard's engine metrics or
    // was shed by a bounded queue.
    let accounted = out.aggregate().requests_total() + out.sheds();
    assert_eq!(accounted, trace.len() as u64);
}

#[test]
fn per_shard_windowed_sinks_reconcile_with_the_merged_snapshot() {
    let trace = overload_trace();
    let cfg = FarmConfig::new(4)
        .with_policy(RoutePolicy::HashStream)
        .with_redirects();
    let (plain_out, plain_snap) = simulate_farm(
        &trace,
        &cfg,
        |_| bounded_cascade(24),
        SimOptions::with_shape(1, 4),
    );
    let (out, sinks) = farm::simulate_farm_traced(
        &trace,
        &cfg,
        |_| bounded_cascade(24),
        SimOptions::with_shape(1, 4),
        |_| sim::DiskService::table1(),
        |_| obs::WindowedSnapshot::new(19, 4),
    );
    assert_eq!(plain_out.per_shard, out.per_shard);
    assert_eq!(plain_out.redirects, out.redirects);
    assert_eq!(sinks.len(), 4);
    let mut merged = obs::Snapshot::new();
    for mut w in sinks {
        let deltas = w.flush();
        assert!(deltas.len() > 1, "a 10 s shard run spans several windows");
        let mut delta_sum = obs::Snapshot::new();
        for d in &deltas {
            delta_sum.merge(&d.snapshot);
        }
        let cumulative = w.cumulative();
        assert_eq!(
            delta_sum, cumulative,
            "window deltas must sum to the shard's cumulative snapshot"
        );
        merged.merge(&cumulative);
    }
    assert_eq!(
        merged, plain_snap,
        "windowed per-shard telemetry must reproduce the plain farm snapshot"
    );
}

#[test]
fn traced_farm_is_executor_independent() {
    let trace = overload_trace();
    let base = FarmConfig::new(4)
        .with_policy(RoutePolicy::LeastLoaded)
        .with_redirects();
    let run = |parallelism| {
        let cfg = base.clone().with_parallelism(parallelism);
        farm::simulate_farm_traced(
            &trace,
            &cfg,
            |_| bounded_cascade(24),
            SimOptions::with_shape(1, 4),
            |_| sim::DiskService::table1(),
            |_| obs::WindowedSnapshot::new(19, 4),
        )
    };
    let (o1, s1) = run(Parallelism::Serial);
    let (o2, s2) = run(Parallelism::threads(4));
    assert_eq!(o1.per_shard, o2.per_shard);
    assert_eq!(o1.redirects, o2.redirects);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.cumulative(), b.cumulative());
        assert_eq!(a.current_epoch(), b.current_epoch());
    }
}

#[test]
fn redirects_reduce_sheds_for_hash_routing() {
    let trace = overload_trace();
    let run = |redirect: bool| {
        let mut cfg = FarmConfig::new(4).with_policy(RoutePolicy::HashStream);
        if redirect {
            cfg = cfg.with_redirects();
        }
        simulate_farm(
            &trace,
            &cfg,
            |_| bounded_cascade(24),
            SimOptions::with_shape(1, 4),
        )
    };
    let (plain, _) = run(false);
    let (redirected, _) = run(true);
    assert!(
        redirected.sheds() < plain.sheds(),
        "redirect-on-overload should cut sheds: {} vs {}",
        redirected.sheds(),
        plain.sheds()
    );
}
