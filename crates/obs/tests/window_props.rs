//! Property-based tests of the windowed-telemetry invariants.
//!
//! A [`WindowedSnapshot`] partitions one event stream by time but must
//! never lose or duplicate anything: its cumulative view has to equal a
//! plain [`Snapshot`] of the same stream bit-for-bit, draining deltas at
//! any cadence has to sum back to the whole, and read-side merging has
//! to behave like addition (associative and commutative). The
//! properties are exercised over randomly drawn event streams —
//! including out-of-order timestamps, which rotation must tolerate —
//! and randomly drawn window shapes.

use obs::{Snapshot, Stage, TraceEvent, TraceSink, WindowedSnapshot};
use proptest::prelude::*;

/// Strategy: one trace event with an arbitrary timestamp. Covers the
/// variants that exercise every aggregation path: counters only
/// (`Arrival`, `Shed`, `Redirect`), histogram feeders (`ServiceComplete`
/// for response/lateness, `Dispatch` for queue depth and slack,
/// `ServiceStart` for seeks, `StageSpan` for stage timings), and the
/// farm roll-up (`ShardReport`).
fn event() -> impl Strategy<Value = TraceEvent> {
    (0u8..7, 0u64..200_000, any::<u64>(), any::<u32>()).prop_map(
        |(kind, now_us, a, b)| match kind {
            0 => TraceEvent::Arrival {
                now_us,
                req: a,
                cylinder: b,
                deadline_us: now_us + 1000,
            },
            1 => TraceEvent::Dispatch {
                now_us,
                req: a,
                cylinder: b,
                queue_depth: a % 64,
                slack_us: (a % 10_000) as i64 - 5000,
            },
            2 => TraceEvent::ServiceStart {
                now_us,
                req: a,
                cylinder: b,
                seek_cylinders: b % 4000,
            },
            3 => TraceEvent::ServiceComplete {
                now_us,
                req: a,
                response_us: a % 100_000,
                late: a % 3 == 0,
            },
            4 => TraceEvent::Shed {
                now_us,
                req: a,
                v: a as u128,
            },
            5 => TraceEvent::Redirect {
                now_us,
                req: a,
                from_shard: b % 8,
                to_shard: (b + 1) % 8,
                queue_depth: a % 64,
            },
            _ => TraceEvent::StageSpan {
                now_us,
                stage: Stage::ALL[(b as usize) % Stage::ALL.len()],
                elapsed_ns: a % 1_000_000,
            },
        },
    )
}

/// Strategy: an event stream long enough to force several rotations at
/// small window widths, with no ordering guarantee on timestamps.
fn stream() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec(event(), 0..200)
}

fn feed<S: TraceSink>(sink: &mut S, events: &[TraceEvent]) {
    for e in events {
        sink.emit(e);
    }
}

/// The read-side view of a windowed sink, for equality assertions:
/// everything [`WindowedSnapshot::merge`] is contracted to preserve.
fn view(w: &WindowedSnapshot) -> (Snapshot, Option<u64>, Vec<(u64, Snapshot)>) {
    (
        w.cumulative(),
        w.current_epoch(),
        w.windows().map(|(e, s)| (e, s.clone())).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rotation, retirement and pending-queue coalescing never lose
    /// counts: with decimation off, the windowed cumulative equals a
    /// plain snapshot of the same stream, and so does the sum of every
    /// flushed delta.
    #[test]
    fn rotation_never_loses_counts(
        events in stream(),
        window_log2 in 4u32..24,
        depth in 1usize..5,
        pending_cap in 1usize..8,
    ) {
        let mut plain = Snapshot::new();
        feed(&mut plain, &events);

        let mut windowed =
            WindowedSnapshot::new(window_log2, depth).with_pending_cap(pending_cap);
        feed(&mut windowed, &events);
        prop_assert_eq!(windowed.cumulative(), plain.clone());

        let mut summed = Snapshot::new();
        for d in windowed.flush() {
            summed.merge(&d.snapshot);
        }
        prop_assert_eq!(summed, plain);
    }

    /// Draining deltas mid-stream at any cadence, then flushing the
    /// tail, reproduces the cumulative aggregate exactly — no event is
    /// lost or double-counted across a `take_deltas` boundary.
    #[test]
    fn polling_cadence_is_invariant(
        events in stream(),
        window_log2 in 4u32..20,
        poll_every in 1usize..40,
    ) {
        let mut windowed = WindowedSnapshot::new(window_log2, 3);
        let mut polled = Snapshot::new();
        for chunk in events.chunks(poll_every) {
            feed(&mut windowed, chunk);
            for d in windowed.take_deltas() {
                polled.merge(&d.snapshot);
            }
        }
        for d in windowed.flush() {
            polled.merge(&d.snapshot);
        }
        prop_assert_eq!(polled, windowed.cumulative());
    }

    /// Read-side merge is commutative: `a ∪ b` and `b ∪ a` agree on the
    /// cumulative aggregate, the current epoch, and every live window.
    #[test]
    fn windowed_merge_is_commutative(
        a_events in stream(),
        b_events in stream(),
        window_log2 in 4u32..20,
        depth in 1usize..5,
    ) {
        let build = |events: &[TraceEvent]| {
            let mut w = WindowedSnapshot::new(window_log2, depth);
            feed(&mut w, events);
            w
        };
        let (a, b) = (build(&a_events), build(&b_events));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(view(&ab), view(&ba));
    }

    /// Read-side merge is associative: `(a ∪ b) ∪ c` equals
    /// `a ∪ (b ∪ c)`, so farm fan-in can fold shard sinks in any shape.
    #[test]
    fn windowed_merge_is_associative(
        a_events in stream(),
        b_events in stream(),
        c_events in stream(),
        window_log2 in 4u32..20,
        depth in 1usize..5,
    ) {
        let build = |events: &[TraceEvent]| {
            let mut w = WindowedSnapshot::new(window_log2, depth);
            feed(&mut w, events);
            w
        };
        let (a, b, c) = (build(&a_events), build(&b_events), build(&c_events));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(view(&left), view(&right));
    }
}
