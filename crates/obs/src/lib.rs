//! # obs — event-trace and histogram observability for the scheduler stack
//!
//! A zero-dependency layer the rest of the workspace threads through the
//! dispatcher, the baseline schedulers and the simulation engine:
//!
//! * [`TraceEvent`] — the event taxonomy (arrivals, dispatches, service
//!   starts/completions, drops, preemptions, SP promotions, ER
//!   expand/reset, queue swaps, sweep reversals);
//! * [`TraceSink`] — the consumer contract, with
//!   [`NullSink`] (free: instrumentation compiles out),
//!   [`RingSink`] (bounded in-memory tail), [`JsonlSink`] / [`CsvSink`]
//!   (raw timelines), [`Tee`] (duplicate), and [`SharedSink`]
//!   (one stream shared by several layers);
//! * [`Histogram`] — log₂-bucketed distributions with
//!   p50/p95/p99/p999, and [`nearest_rank`], the exact percentile the
//!   analysis code shares;
//! * [`Snapshot`] — counters + histograms, itself a sink, mergeable
//!   across the striped/RAID members.
//!
//! The overhead contract: instrumented code guards every emission on
//! `S::ENABLED`, so with the default [`NullSink`] the instrumented paths
//! monomorphize to the uninstrumented machine code.
//!
//! ```
//! use obs::{RingSink, Snapshot, Tee, TraceEvent, TraceSink};
//!
//! let mut sink = Tee::new(Snapshot::new(), RingSink::new(1024));
//! sink.emit(&TraceEvent::QueueSwap { now_us: 10, batch: 3 });
//! let (snapshot, ring) = sink.into_inner();
//! assert_eq!(snapshot.counters.queue_swaps, 1);
//! assert_eq!(ring.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod sink;
mod snapshot;

pub use event::TraceEvent;
pub use hist::{nearest_rank, Histogram, HISTOGRAM_BUCKETS};
pub use sink::{CsvSink, JsonlSink, NullSink, RingSink, SharedSink, Tee, TraceSink};
pub use snapshot::{Counters, Snapshot};
