//! # obs — event-trace and histogram observability for the scheduler stack
//!
//! A zero-dependency layer the rest of the workspace threads through the
//! dispatcher, the baseline schedulers and the simulation engine:
//!
//! * [`TraceEvent`] — the event taxonomy (arrivals, dispatches, service
//!   starts/completions, drops, preemptions, SP promotions, ER
//!   expand/reset, queue swaps, sweep reversals);
//! * [`TraceSink`] — the consumer contract, with
//!   [`NullSink`] (free: instrumentation compiles out),
//!   [`RingSink`] (bounded in-memory tail), [`JsonlSink`] / [`CsvSink`]
//!   (raw timelines), [`Tee`] (duplicate), and [`SharedSink`]
//!   (one stream shared by several layers);
//! * [`Histogram`] — log₂-bucketed distributions with
//!   p50/p95/p99/p999, and [`nearest_rank`], the exact percentile the
//!   analysis code shares;
//! * [`Snapshot`] — counters + histograms, itself a sink, mergeable
//!   across the striped/RAID members.
//!
//! On top of the cumulative layer sits the **live telemetry plane**:
//!
//! * [`WindowedSnapshot`] — rotating time-window aggregation (current
//!   window + recent live range + retired accumulator) with a lossless
//!   [`WindowDelta`] stream for mid-run reporting;
//! * [`MetricsRegistry`] / [`TelemetryConfig`] — per-shard windowed
//!   sinks with registry-wide delta polling and roll-ups;
//! * [`Stage`] / [`StageSampler`] — opt-in sampled wall-clock spans over
//!   the request pipeline, recorded per stage in [`Snapshot::stage_ns`];
//! * [`FlightRecorder`] — a bounded ring of recent events with anomaly
//!   triggers ([`TriggerConfig`]) that freeze reconciled [`DumpRecord`]s
//!   for post-mortems;
//! * [`encode_snapshot`] / [`encode_registry`] — Prometheus-style text
//!   exposition.
//!
//! The overhead contract: instrumented code guards every emission on
//! `S::ENABLED`, so with the default [`NullSink`] the instrumented paths
//! monomorphize to the uninstrumented machine code — and the live plane
//! itself is budgeted: CI gates the fully-instrumented hot path within
//! 5% of the `NullSink` baseline (`bench perf --mode overhead`).
//!
//! ```
//! use obs::{RingSink, Snapshot, Tee, TraceEvent, TraceSink};
//!
//! let mut sink = Tee::new(Snapshot::new(), RingSink::new(1024));
//! sink.emit(&TraceEvent::QueueSwap { now_us: 10, batch: 3 });
//! let (snapshot, ring) = sink.into_inner();
//! assert_eq!(snapshot.counters.queue_swaps, 1);
//! assert_eq!(ring.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod expo;
mod hist;
mod recorder;
mod registry;
mod sink;
mod snapshot;
mod span;
mod window;

pub use event::TraceEvent;
pub use expo::{encode_registry, encode_snapshot, DEFAULT_PREFIX};
pub use hist::{nearest_rank, Histogram, HISTOGRAM_BUCKETS};
pub use recorder::{Anomaly, DumpRecord, FlightRecorder, TriggerConfig};
pub use registry::{MetricsRegistry, ShardDelta, TelemetryConfig, DEFAULT_SAMPLE_SHIFT};
pub use sink::{CsvSink, JsonlSink, NullSink, RingSink, SharedSink, Tee, TraceSink};
pub use snapshot::{Counters, Snapshot};
pub use span::{Stage, StageSampler};
pub use window::{
    WindowDelta, WindowedSnapshot, DEFAULT_DEPTH, DEFAULT_PENDING_CAP, DEFAULT_WINDOW_LOG2,
};
