//! Prometheus-style text exposition of snapshots and registries.
//!
//! The encoders render the standard text format — `# TYPE` lines,
//! `<name>_total` counters, and cumulative-bucket histograms with
//! `_bucket{le=…}` / `_sum` / `_count` series — from any [`Snapshot`]
//! or per-shard [`MetricsRegistry`]. Output is metric-major (one `TYPE`
//! line, then one sample per label set) so it scrapes cleanly, and the
//! `le` edges are the log₂ bucket upper bounds, matching
//! [`Histogram::bucket_high`](crate::Histogram::bucket_high).

use crate::hist::{Histogram, HISTOGRAM_BUCKETS};
use crate::registry::MetricsRegistry;
use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Default metric-name prefix.
pub const DEFAULT_PREFIX: &str = "sched";

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn write_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &Histogram) {
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        // The last bucket's edge is u64::MAX; it is covered by the
        // mandatory +Inf sample below instead of a numeric edge.
        if c == 0 || i == HISTOGRAM_BUCKETS - 1 {
            continue;
        }
        cumulative += c;
        let _ = write!(out, "{name}_bucket");
        let le = Histogram::bucket_high(i).to_string();
        let with_le: Vec<(&str, &str)> = labels
            .iter()
            .copied()
            .chain(std::iter::once(("le", le.as_str())))
            .collect();
        write_labels(out, &with_le);
        let _ = writeln!(out, " {cumulative}");
    }
    let _ = write!(out, "{name}_bucket");
    let with_inf: Vec<(&str, &str)> = labels
        .iter()
        .copied()
        .chain(std::iter::once(("le", "+Inf")))
        .collect();
    write_labels(out, &with_inf);
    let _ = writeln!(out, " {}", h.count());
    let _ = write!(out, "{name}_sum");
    write_labels(out, labels);
    let _ = writeln!(out, " {}", h.sum());
    let _ = write!(out, "{name}_count");
    write_labels(out, labels);
    let _ = writeln!(out, " {}", h.count());
}

/// Encode one snapshot under `prefix` with a fixed label set.
pub fn encode_snapshot(out: &mut String, prefix: &str, labels: &[(&str, &str)], snap: &Snapshot) {
    for (name, value) in snap.counters.items() {
        let _ = writeln!(out, "# TYPE {prefix}_{name}_total counter");
        let _ = write!(out, "{prefix}_{name}_total");
        write_labels(out, labels);
        let _ = writeln!(out, " {value}");
    }
    for (name, h) in snap.histograms() {
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
        write_histogram(out, &format!("{prefix}_{name}"), labels, h);
    }
}

/// Encode a whole registry metric-major: every counter across all
/// shards (labelled `shard="<i>"`), then every non-empty histogram.
pub fn encode_registry(out: &mut String, prefix: &str, registry: &MetricsRegistry) {
    let cumulatives: Vec<Snapshot> = (0..registry.len())
        .map(|i| registry.shard_cumulative(i))
        .collect();
    if cumulatives.is_empty() {
        return;
    }
    let counter_names: Vec<&'static str> = cumulatives[0]
        .counters
        .items()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    for (ci, name) in counter_names.iter().enumerate() {
        let _ = writeln!(out, "# TYPE {prefix}_{name}_total counter");
        for (shard, snap) in cumulatives.iter().enumerate() {
            let value = snap.counters.items()[ci].1;
            let shard_label = shard.to_string();
            let _ = write!(out, "{prefix}_{name}_total");
            write_labels(out, &[("shard", shard_label.as_str())]);
            let _ = writeln!(out, " {value}");
        }
    }
    let hist_count = cumulatives[0].histograms().len();
    for hi in 0..hist_count {
        let name = cumulatives[0].histograms()[hi].0;
        if cumulatives
            .iter()
            .all(|s| s.histograms()[hi].1.count() == 0)
        {
            continue;
        }
        let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
        for (shard, snap) in cumulatives.iter().enumerate() {
            let h = snap.histograms()[hi].1;
            if h.count() == 0 {
                continue;
            }
            let shard_label = shard.to_string();
            write_histogram(
                out,
                &format!("{prefix}_{name}"),
                &[("shard", shard_label.as_str())],
                h,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::registry::{MetricsRegistry, TelemetryConfig};
    use crate::sink::TraceSink;

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::new();
        for (t, resp) in [(0u64, 10u64), (5, 12), (9, 900)] {
            s.emit(&TraceEvent::ServiceComplete {
                now_us: t,
                req: t,
                response_us: resp,
                late: resp > 100,
            });
        }
        s
    }

    #[test]
    fn snapshot_exposition_has_types_counters_and_buckets() {
        let mut out = String::new();
        encode_snapshot(&mut out, "sched", &[("shard", "0")], &sample_snapshot());
        assert!(out.contains("# TYPE sched_service_completes_total counter\n"));
        assert!(out.contains("sched_service_completes_total{shard=\"0\"} 3\n"));
        assert!(out.contains("sched_late_completions_total{shard=\"0\"} 1\n"));
        assert!(out.contains("# TYPE sched_response_us histogram\n"));
        // 10 and 12 land in bucket 4 (le=15), 900 in bucket 10 (le=1023).
        assert!(out.contains("sched_response_us_bucket{shard=\"0\",le=\"15\"} 2\n"));
        assert!(out.contains("sched_response_us_bucket{shard=\"0\",le=\"1023\"} 3\n"));
        assert!(out.contains("sched_response_us_bucket{shard=\"0\",le=\"+Inf\"} 3\n"));
        assert!(out.contains("sched_response_us_sum{shard=\"0\"} 922\n"));
        assert!(out.contains("sched_response_us_count{shard=\"0\"} 3\n"));
        // Empty histograms are omitted entirely.
        assert!(!out.contains("sched_seek_cylinders_bucket"));
    }

    #[test]
    fn registry_exposition_is_metric_major_across_shards() {
        let cfg = TelemetryConfig::exact().window_log2(4).depth(2);
        let mut reg = MetricsRegistry::with_shards(cfg, 2);
        for t in 0..10u64 {
            reg.shard_mut((t % 2) as usize)
                .emit(&TraceEvent::ServiceComplete {
                    now_us: t * 3,
                    req: t,
                    response_us: 20,
                    late: false,
                });
        }
        let mut out = String::new();
        encode_registry(&mut out, "sched", &reg);
        // One TYPE line per metric, then one sample per shard.
        assert_eq!(
            out.matches("# TYPE sched_service_completes_total counter")
                .count(),
            1
        );
        assert!(out.contains("sched_service_completes_total{shard=\"0\"} 5\n"));
        assert!(out.contains("sched_service_completes_total{shard=\"1\"} 5\n"));
        assert_eq!(out.matches("# TYPE sched_response_us histogram").count(), 1);
        assert!(out.contains("sched_response_us_count{shard=\"1\"} 5\n"));
        let mut empty_out = String::new();
        encode_registry(&mut empty_out, "sched", &MetricsRegistry::new(cfg));
        assert!(empty_out.is_empty());
    }
}
