//! The per-shard metrics registry: one windowed live aggregate per farm
//! shard (or RAID member, or standalone run), plus the delta-polling
//! surface a reporter or control plane drains at its own cadence.
//!
//! The registry is deliberately assembly-friendly: shard timelines run
//! on worker threads owning their own [`WindowedSnapshot`] sinks, and
//! the registry is stitched from those sinks in shard order afterwards
//! ([`MetricsRegistry::from_shards`]) — or built up front
//! ([`MetricsRegistry::with_shards`]) when the run is serial and the
//! caller wants to poll deltas mid-run.

use crate::snapshot::Snapshot;
use crate::window::{
    WindowDelta, WindowedSnapshot, DEFAULT_DEPTH, DEFAULT_PENDING_CAP, DEFAULT_WINDOW_LOG2,
};

/// Shape of the live telemetry plane: window width, live-range depth,
/// histogram decimation, and delta-queue bound.
///
/// The default is the **live** configuration the overhead gate measures:
/// 65.5 ms windows, an 8-window live range, and histogram samples
/// decimated to a deterministic 1-in-8 stride (counters are always
/// exact). [`TelemetryConfig::exact`] turns decimation off for
/// verification runs where bit-for-bit equality with a plain
/// [`Snapshot`] sink is asserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// log₂ of the window width in µs of simulated time.
    pub window_log2: u32,
    /// Live-range depth in windows (current window included).
    pub depth: usize,
    /// Histogram decimation: distribution samples are taken on a
    /// 1-in-`2^sample_shift` stride per event kind (0 = exact).
    pub sample_shift: u32,
    /// Cap on undrained deltas per shard before coalescing.
    pub pending_cap: usize,
}

/// The live-plane default stride: 1-in-8 histogram samples.
pub const DEFAULT_SAMPLE_SHIFT: u32 = 3;

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_log2: DEFAULT_WINDOW_LOG2,
            depth: DEFAULT_DEPTH,
            sample_shift: DEFAULT_SAMPLE_SHIFT,
            pending_cap: DEFAULT_PENDING_CAP,
        }
    }
}

impl TelemetryConfig {
    /// The default shape with decimation off: every histogram sample is
    /// recorded, so the cumulative view is bit-for-bit a plain
    /// [`Snapshot`] sink's.
    pub fn exact() -> Self {
        TelemetryConfig {
            sample_shift: 0,
            ..TelemetryConfig::default()
        }
    }

    /// This shape with `2^window_log2` µs windows.
    pub fn window_log2(mut self, window_log2: u32) -> Self {
        self.window_log2 = window_log2;
        self
    }

    /// This shape with a `depth`-window live range.
    pub fn depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// This shape with a 1-in-`2^shift` histogram stride.
    pub fn sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift;
        self
    }

    /// This shape with an undrained-delta cap of `cap`.
    pub fn pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap;
        self
    }

    /// One recording sink of this shape, ready to hand to a shard
    /// timeline.
    pub fn sink(&self) -> WindowedSnapshot {
        WindowedSnapshot::new(self.window_log2, self.depth)
            .with_sample_shift(self.sample_shift)
            .with_pending_cap(self.pending_cap)
    }
}

/// One shard's drained window, tagged with its shard index — the unit
/// of the streaming telemetry feed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDelta {
    /// Shard index within the registry.
    pub shard: usize,
    /// The drained window.
    pub delta: WindowDelta,
}

/// Per-shard windowed live aggregates, keyed by shard index.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    config: TelemetryConfig,
    shards: Vec<WindowedSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry of the given shape.
    pub fn new(config: TelemetryConfig) -> Self {
        MetricsRegistry {
            config,
            shards: Vec::new(),
        }
    }

    /// A registry with `n` fresh shard sinks.
    pub fn with_shards(config: TelemetryConfig, n: usize) -> Self {
        MetricsRegistry {
            config,
            shards: (0..n).map(|_| config.sink()).collect(),
        }
    }

    /// Stitch a registry from per-shard sinks returned by a traced run
    /// (index order = shard order).
    ///
    /// # Panics
    ///
    /// Panics when a sink's shape disagrees with `config` — that would
    /// silently misattribute windows.
    pub fn from_shards(config: TelemetryConfig, shards: Vec<WindowedSnapshot>) -> Self {
        for s in &shards {
            assert_eq!(
                (s.window_log2(), s.depth(), s.sample_mask()),
                (
                    config.window_log2,
                    config.depth,
                    (1u64 << config.sample_shift.min(63)) - 1
                ),
                "shard sink shape disagrees with the registry config"
            );
        }
        MetricsRegistry { config, shards }
    }

    /// The registry's shape.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when the registry holds no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// One shard's live aggregate.
    pub fn shard(&self, i: usize) -> &WindowedSnapshot {
        &self.shards[i]
    }

    /// Mutable access to one shard's live aggregate (e.g. to use it as a
    /// sink in a serial run).
    pub fn shard_mut(&mut self, i: usize) -> &mut WindowedSnapshot {
        &mut self.shards[i]
    }

    /// Iterate the shards in index order.
    pub fn shards(&self) -> impl Iterator<Item = &WindowedSnapshot> {
        self.shards.iter()
    }

    /// Drain every shard's completed-window deltas, shard-major and
    /// oldest-first within a shard. Polling at any cadence yields the
    /// same totals.
    pub fn take_deltas(&mut self) -> Vec<ShardDelta> {
        self.collect_deltas(WindowedSnapshot::take_deltas)
    }

    /// Close every shard's books ([`WindowedSnapshot::flush`]) and drain
    /// everything, final partial windows included. After this, the sum
    /// of every delta the registry ever produced equals
    /// [`MetricsRegistry::cumulative`].
    pub fn flush(&mut self) -> Vec<ShardDelta> {
        self.collect_deltas(WindowedSnapshot::flush)
    }

    fn collect_deltas(
        &mut self,
        drain: impl Fn(&mut WindowedSnapshot) -> Vec<WindowDelta>,
    ) -> Vec<ShardDelta> {
        let mut out = Vec::new();
        for (shard, sink) in self.shards.iter_mut().enumerate() {
            out.extend(
                drain(sink)
                    .into_iter()
                    .map(|delta| ShardDelta { shard, delta }),
            );
        }
        out
    }

    /// One shard's exact cumulative aggregate.
    pub fn shard_cumulative(&self, i: usize) -> Snapshot {
        self.shards[i].cumulative()
    }

    /// The whole farm's exact cumulative aggregate, merged in shard
    /// order.
    pub fn cumulative(&self) -> Snapshot {
        let mut out = Snapshot::new();
        for s in &self.shards {
            out.merge(&s.cumulative());
        }
        out
    }

    /// Every shard's live (current + recent windows) aggregate merged —
    /// the farm-wide control-plane view of "now".
    pub fn recent(&self) -> Snapshot {
        let mut out = Snapshot::new();
        for s in &self.shards {
            out.merge(&s.recent());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::TraceSink;

    fn complete(now_us: u64, response_us: u64) -> TraceEvent {
        TraceEvent::ServiceComplete {
            now_us,
            req: now_us,
            response_us,
            late: false,
        }
    }

    #[test]
    fn registry_polls_per_shard_deltas_and_sums_to_cumulative() {
        let cfg = TelemetryConfig::exact().window_log2(4).depth(2);
        let mut reg = MetricsRegistry::with_shards(cfg, 3);
        let mut drained: Vec<Snapshot> = (0..3).map(|_| Snapshot::new()).collect();
        for t in 0..500u64 {
            let shard = (t % 3) as usize;
            reg.shard_mut(shard).emit(&complete(t * 7, t));
            if t % 111 == 0 {
                for d in reg.take_deltas() {
                    drained[d.shard].merge(&d.delta.snapshot);
                }
            }
        }
        for d in reg.flush() {
            drained[d.shard].merge(&d.delta.snapshot);
        }
        for (i, got) in drained.iter().enumerate() {
            assert_eq!(*got, reg.shard_cumulative(i), "shard {i}");
        }
        let mut total = Snapshot::new();
        for d in &drained {
            total.merge(d);
        }
        assert_eq!(total, reg.cumulative());
    }

    #[test]
    fn from_shards_accepts_matching_shapes() {
        let cfg = TelemetryConfig::default();
        let sinks = vec![cfg.sink(), cfg.sink()];
        let reg = MetricsRegistry::from_shards(cfg, sinks);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.config().sample_shift, DEFAULT_SAMPLE_SHIFT);
    }

    #[test]
    #[should_panic(expected = "shard sink shape disagrees")]
    fn from_shards_rejects_mismatched_shapes() {
        let cfg = TelemetryConfig::default();
        let wrong = TelemetryConfig::default().window_log2(4).sink();
        MetricsRegistry::from_shards(cfg, vec![wrong]);
    }

    #[test]
    fn exact_config_turns_decimation_off() {
        assert_eq!(TelemetryConfig::exact().sample_shift, 0);
        assert_eq!(TelemetryConfig::exact().sink().sample_mask(), 0);
    }
}
