//! Pipeline stages and the sampling gate for stage timing spans.
//!
//! A stage span measures the **wall-clock** cost of one step of the
//! request pipeline (characterize → encapsulate → enqueue → dispatch →
//! service) and is emitted as a
//! [`TraceEvent::StageSpan`](crate::TraceEvent::StageSpan). Because span
//! values come from the host clock they are inherently nondeterministic,
//! so every emission site keeps them **opt-in and off by default** —
//! reproducible event streams stay reproducible unless the caller
//! explicitly asks for timing attribution.
//!
//! Timing every operation would perturb the thing being measured (two
//! monotonic-clock reads per span), so spans pass through a
//! [`StageSampler`]: a deterministic 1-in-2^k gate that keeps the
//! overhead bounded while still collecting thousands of samples per
//! second of simulated work.

/// One step of the request pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// QoS vector → characterization value (the SFC kernel).
    Characterize = 0,
    /// Characterization value → dispatcher insertion (queue encapsulation).
    Encapsulate = 1,
    /// Engine-side arrival delivery into the scheduler.
    Enqueue = 2,
    /// Scheduler pop: picking the next request to serve.
    Dispatch = 3,
    /// The service-model call for the dispatched request.
    Service = 4,
}

impl Stage {
    /// Number of pipeline stages.
    pub const COUNT: usize = 5;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Characterize,
        Stage::Encapsulate,
        Stage::Enqueue,
        Stage::Dispatch,
        Stage::Service,
    ];

    /// Stable `snake_case` name, used in JSONL renderings and metric
    /// names.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Characterize => "characterize",
            Stage::Encapsulate => "encapsulate",
            Stage::Enqueue => "enqueue",
            Stage::Dispatch => "dispatch",
            Stage::Service => "service",
        }
    }

    /// The stage's index into per-stage arrays (its pipeline position).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stage at pipeline position `index`, when in range.
    pub fn from_index(index: usize) -> Option<Stage> {
        Stage::ALL.get(index).copied()
    }
}

/// A deterministic 1-in-2^k sampling gate for stage spans.
///
/// `tick` returns `true` on the first call and every 2^k-th call after
/// it, so a shift of 0 samples everything and the decision sequence is a
/// pure function of the call count — reruns of the same workload time
/// the same operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSampler {
    mask: u64,
    n: u64,
}

impl StageSampler {
    /// A gate passing one in `2^shift` ticks (shift is clamped to 63).
    pub fn every_pow2(shift: u32) -> Self {
        StageSampler {
            mask: (1u64 << shift.min(63)) - 1,
            n: 0,
        }
    }

    /// Advance the gate; `true` means "time this one".
    #[inline]
    pub fn tick(&mut self) -> bool {
        let sample = self.n & self.mask == 0;
        self.n = self.n.wrapping_add(1);
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_round_trip_and_stay_in_pipeline_order() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::from_index(i), Some(s));
        }
        assert_eq!(Stage::from_index(Stage::COUNT), None);
        assert_eq!(Stage::Characterize.name(), "characterize");
        assert_eq!(Stage::Service.name(), "service");
    }

    #[test]
    fn sampler_passes_one_in_2k() {
        let mut s = StageSampler::every_pow2(3);
        let hits: Vec<bool> = (0..24).map(|_| s.tick()).collect();
        let expected: Vec<bool> = (0..24).map(|i| i % 8 == 0).collect();
        assert_eq!(hits, expected);
        let mut all = StageSampler::every_pow2(0);
        assert!((0..10).all(|_| all.tick()));
    }
}
