//! Log₂-bucketed histograms and the workspace's shared nearest-rank
//! percentile.
//!
//! A [`Histogram`] is a fixed 65-slot array — bucket `i` counts values
//! whose bit length is `i` (bucket 0 holds only the value 0, bucket `i`
//! holds `[2^(i-1), 2^i)`). Recording is a few instructions and never
//! allocates, so histograms are cheap enough to update per event; the
//! price is that quantiles are resolved to bucket granularity (a factor
//! of 2), which is the right trade for latency-style distributions.

/// Number of buckets: one per possible bit length of a `u64`, plus the
/// zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Exact nearest-rank quantile over an **already sorted** slice: the
/// smallest element such that at least `⌈q·n⌉` elements are `<=` it.
/// Returns `None` on an empty slice.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]`.
pub fn nearest_rank(sorted: &[u64], q: f64) -> Option<u64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in (its bit length).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The largest value bucket `index` can hold.
    pub fn bucket_high(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if index == 0 {
            0
        } else if index == 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, when any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, when any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (index = bit length of the sample).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Nearest-rank quantile at bucket resolution: the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th smallest sample, clamped to
    /// the observed `[min, max]`. The extremes are exact: any `q` that
    /// resolves to rank 1 returns the observed minimum and any `q` that
    /// resolves to the last rank returns the observed maximum, so
    /// `quantile(0.0)` and `quantile(1.0)` never suffer bucket rounding.
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_high(i).clamp(self.min, self.max));
            }
        }
        unreachable!("bucket counts sum to self.count");
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket resolution).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket resolution).
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one. The result is exactly the
    /// histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_high(0), 0);
        assert_eq!(Histogram::bucket_high(3), 7);
        assert_eq!(Histogram::bucket_high(64), u64::MAX);
    }

    #[test]
    fn counts_and_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_at_bucket_resolution() {
        let mut h = Histogram::new();
        // 90 samples at ~10 (bucket 4: 8..=15), 10 at ~1000 (bucket 10).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.p50(), Some(15)); // upper edge of bucket 4
        assert_eq!(h.p95(), Some(1000)); // bucket 10 edge clamped to max
        assert_eq!(h.p999(), Some(1000));
        assert_eq!(h.quantile(0.0), Some(10)); // rank 1 is the exact min
        assert_eq!(h.quantile(1.0), Some(1000)); // last rank is the exact max
                                                 // The bucket edge never strays more than 2x from the true value.
        let mut exact: Vec<u64> = [10u64; 90].into_iter().chain([1000u64; 10]).collect();
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let approx = h.quantile(q).unwrap();
            let truth = nearest_rank(&exact, q).unwrap();
            assert!(
                approx >= truth && approx < truth.saturating_mul(2),
                "q={q}: approx {approx} vs exact {truth}"
            );
        }
    }

    #[test]
    fn empty_quantile_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert_eq!(Histogram::new().quantile(0.0), None);
        assert_eq!(Histogram::new().quantile(1.0), None);
        assert_eq!(Histogram::new().p999(), None);
    }

    #[test]
    fn extreme_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(100); // bucket 7 (64..=127): the edge would be 127
        assert_eq!(h.quantile(0.0), Some(100));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(1.0), Some(100));
        h.record(9000); // bucket 14: the edge would be 16383
        assert_eq!(h.quantile(0.0), Some(100));
        assert_eq!(h.quantile(1.0), Some(9000));
        // q small enough to resolve to rank 1 stays exact too.
        assert_eq!(h.quantile(0.4), Some(100));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_range_checked() {
        let _ = Histogram::new().quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn nearest_rank_range_checked() {
        let _ = nearest_rank(&[], -0.1);
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let sorted = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(nearest_rank(&sorted, 0.50), Some(50));
        assert_eq!(nearest_rank(&sorted, 0.95), Some(100));
        assert_eq!(nearest_rank(&sorted, 0.0), Some(10));
        assert_eq!(nearest_rank(&sorted, 1.0), Some(100));
        assert_eq!(nearest_rank(&[], 0.5), None);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> (x % 50);
            all.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
