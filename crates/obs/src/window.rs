//! Rotating time-window aggregation: the live view of a run.
//!
//! A [`WindowedSnapshot`] partitions simulated time into fixed
//! power-of-two windows (`epoch = now_us >> window_log2`) and keeps one
//! [`Snapshot`] per window: the **current** window, the last
//! `depth - 1` **completed** windows (together the live range a control
//! plane watches), and a **retired** accumulator absorbing everything
//! older, so the cumulative view is never lost. Completed windows are
//! additionally queued as [`WindowDelta`]s — the streaming feed a
//! reporter drains at its own cadence — and the whole structure merges
//! across shards exactly like [`Snapshot`] does.
//!
//! Two invariants hold bit-for-bit, by construction, and are enforced by
//! property tests:
//!
//! 1. retired + completed + current == the [`Snapshot`] a plain
//!    cumulative sink would have produced from the same event stream
//!    (when sampling is off), and
//! 2. the sum of every drained [`WindowDelta`] over a run (with a final
//!    [`WindowedSnapshot::flush`]) equals that same cumulative snapshot —
//!    window rotation never loses a count.
//!
//! The hot path is engineered for the telemetry overhead budget: one
//! shift + compare reaches the current window, counters stay exact, and
//! distribution samples can be decimated by a deterministic 1-in-2^k
//! stride ([`WindowedSnapshot::with_sample_shift`]) — the same
//! counters-exact/histograms-sampled split production metric pipelines
//! use.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use crate::snapshot::Snapshot;
use std::collections::VecDeque;

/// Default window width: 2²² µs ≈ 4.2 s of simulated time — coarse
/// enough that rotation cost amortizes over many events at the disk
/// request rates the paper models, fine enough to localize QoS shifts.
pub const DEFAULT_WINDOW_LOG2: u32 = 22;

/// Default live-range depth (current window + 7 completed).
pub const DEFAULT_DEPTH: usize = 8;

/// Default cap on undrained [`WindowDelta`]s before the oldest pair is
/// coalesced.
pub const DEFAULT_PENDING_CAP: usize = 1024;

/// One completed (or flushed) window, queued for a streaming reporter.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDelta {
    /// The window's epoch (`start_us >> window_log2`).
    pub epoch: u64,
    /// Simulated time at which the window opened (µs).
    pub start_us: u64,
    /// Window width (µs).
    pub window_us: u64,
    /// `true` when the delta is not one whole completed window: the
    /// final window drained by [`WindowedSnapshot::flush`], or a
    /// coalesced pair evicted from an undrained queue.
    pub partial: bool,
    /// The window's aggregate.
    pub snapshot: Snapshot,
}

/// A rotating-window live aggregate of one event stream (see the module
/// docs for the scheme and its invariants).
#[derive(Debug, Clone)]
pub struct WindowedSnapshot {
    window_log2: u32,
    depth: usize,
    sample_mask: u64,
    started: bool,
    cur_epoch: u64,
    cur: Snapshot,
    /// Completed live windows, epoch-ascending, all within
    /// `(cur_epoch - depth, cur_epoch)`. Boxed so rotation and
    /// retirement shuffle pointers, not multi-KB snapshots.
    recent: VecDeque<(u64, Box<Snapshot>)>,
    retired: Snapshot,
    pending: VecDeque<Box<WindowDelta>>,
    pending_cap: usize,
    coalesced: u64,
}

impl WindowedSnapshot {
    /// A windowed aggregate with `2^window_log2` µs windows and a live
    /// range of `depth` windows (both clamped to sane minimums), with
    /// exact histograms.
    pub fn new(window_log2: u32, depth: usize) -> Self {
        WindowedSnapshot {
            window_log2: window_log2.clamp(1, 63),
            depth: depth.max(1),
            sample_mask: 0,
            started: false,
            // Sentinel no real epoch can reach (epochs are
            // `now_us >> log2` with log2 >= 1): the hot path needs only
            // one compare to cover both "same window" and "started".
            cur_epoch: u64::MAX,
            cur: Snapshot::new(),
            recent: VecDeque::new(),
            retired: Snapshot::new(),
            pending: VecDeque::new(),
            pending_cap: DEFAULT_PENDING_CAP,
            coalesced: 0,
        }
    }

    /// The workspace default shape: [`DEFAULT_WINDOW_LOG2`] windows,
    /// [`DEFAULT_DEPTH`] live range, exact histograms.
    pub fn paper_default() -> Self {
        WindowedSnapshot::new(DEFAULT_WINDOW_LOG2, DEFAULT_DEPTH)
    }

    /// Decimate histogram samples to a deterministic 1-in-`2^shift`
    /// stride of each per-kind count. Counters are **always exact**;
    /// only distribution samples are thinned. Shift 0 restores exact
    /// histograms.
    pub fn with_sample_shift(mut self, shift: u32) -> Self {
        self.sample_mask = (1u64 << shift.min(63)) - 1;
        self
    }

    /// Cap the undrained [`WindowDelta`] queue at `cap` entries (at
    /// least 2); beyond it the two oldest deltas are coalesced so memory
    /// stays bounded while the delta-sum invariant keeps holding.
    pub fn with_pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(2);
        self
    }

    /// log₂ of the window width in µs.
    pub fn window_log2(&self) -> u32 {
        self.window_log2
    }

    /// Window width (µs).
    pub fn window_us(&self) -> u64 {
        1u64 << self.window_log2
    }

    /// Live-range depth in windows (current window included).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The histogram decimation stride minus one (0 = exact).
    pub fn sample_mask(&self) -> u64 {
        self.sample_mask
    }

    /// The window index `now_us` falls into.
    #[inline]
    pub fn epoch_of(&self, now_us: u64) -> u64 {
        now_us >> self.window_log2
    }

    /// Whether any event has been recorded.
    pub fn started(&self) -> bool {
        self.started
    }

    /// The current window's epoch, once anything has been recorded.
    pub fn current_epoch(&self) -> Option<u64> {
        self.started.then_some(self.cur_epoch)
    }

    /// The current (still-open) window's aggregate.
    pub fn current(&self) -> &Snapshot {
        &self.cur
    }

    /// Times coalescing folded an undrained delta pair together.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Live windows oldest-first: completed windows still in range, then
    /// the current window.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &Snapshot)> {
        self.recent
            .iter()
            .map(|(e, s)| (*e, &**s))
            .chain(self.started.then_some((self.cur_epoch, &self.cur)))
    }

    /// The decaying N-window aggregate: every live window merged
    /// (current included), excluding everything retired.
    pub fn recent(&self) -> Snapshot {
        let mut out = Snapshot::new();
        for (_, s) in self.windows() {
            out.merge(s);
        }
        out
    }

    /// Everything that aged out of the live range.
    pub fn retired(&self) -> &Snapshot {
        &self.retired
    }

    /// The exact cumulative aggregate: retired + every live window. With
    /// sampling off this is bit-for-bit the [`Snapshot`] a plain
    /// cumulative sink would have produced from the same stream.
    pub fn cumulative(&self) -> Snapshot {
        let mut out = self.retired.clone();
        for (_, s) in self.windows() {
            out.merge(s);
        }
        out
    }

    /// Drain the completed-window delta queue (oldest first). Draining
    /// at any cadence — every window, every N windows, or only at the
    /// end — yields the same totals.
    pub fn take_deltas(&mut self) -> Vec<WindowDelta> {
        std::mem::take(&mut self.pending)
            .into_iter()
            .map(|d| *d)
            .collect()
    }

    /// Close the books: retire every live window (current included),
    /// emitting each one as a delta, and drain the whole queue. The
    /// cumulative view is unchanged, the live range comes back empty,
    /// and the sum of every delta the sink ever produced now equals
    /// [`WindowedSnapshot::cumulative`]. Recording may continue
    /// afterwards; reopened windows simply yield further deltas.
    pub fn flush(&mut self) -> Vec<WindowDelta> {
        while let Some((epoch, snap)) = self.recent.pop_front() {
            self.retired.merge(&snap);
            self.push_delta(epoch, snap, false);
        }
        if self.started && self.cur != Snapshot::new() {
            let done = Box::new(std::mem::take(&mut self.cur));
            self.retired.merge(&done);
            self.push_delta(self.cur_epoch, done, true);
        }
        self.take_deltas()
    }

    /// Fold another windowed aggregate into this one, window by window:
    /// same-epoch windows merge, the live range advances to the younger
    /// of the two current epochs, and anything falling out of it
    /// retires. Associative and commutative like [`Snapshot::merge`];
    /// the recording-side delta queue is deliberately untouched (deltas
    /// stream per recording sink, merges serve read-side fan-in).
    ///
    /// # Panics
    ///
    /// Panics when the two sinks disagree on window width, depth, or
    /// sampling stride — merging differently-shaped windows would
    /// silently misattribute counts.
    pub fn merge(&mut self, other: &WindowedSnapshot) {
        assert_eq!(
            (self.window_log2, self.depth, self.sample_mask),
            (other.window_log2, other.depth, other.sample_mask),
            "windowed snapshots must share window shape to merge"
        );
        self.retired.merge(&other.retired);
        if !other.started {
            return;
        }
        if !self.started {
            self.started = true;
            self.cur_epoch = other.cur_epoch;
            self.cur = other.cur.clone();
            for (e, s) in &other.recent {
                Self::fold_into_recent(&mut self.recent, *e, s.clone());
            }
            return;
        }
        if other.cur_epoch > self.cur_epoch {
            let done = Box::new(std::mem::take(&mut self.cur));
            Self::fold_into_recent(&mut self.recent, self.cur_epoch, done);
            self.cur_epoch = other.cur_epoch;
            self.cur = other.cur.clone();
        } else if other.cur_epoch == self.cur_epoch {
            self.cur.merge(&other.cur);
        } else {
            self.absorb_window(other.cur_epoch, &other.cur);
        }
        for (e, s) in &other.recent {
            self.absorb_window(*e, s);
        }
        self.retire_out_of_range(false);
    }

    /// The oldest epoch still inside the live range.
    fn min_live_epoch(&self) -> u64 {
        self.cur_epoch.saturating_sub(self.depth as u64 - 1)
    }

    /// Route a completed window from a merge: retire it when it is
    /// older than the live range, merge it into the right slot
    /// otherwise.
    fn absorb_window(&mut self, epoch: u64, snap: &Snapshot) {
        if epoch < self.min_live_epoch() {
            self.retired.merge(snap);
        } else if epoch == self.cur_epoch {
            self.cur.merge(snap);
        } else {
            Self::fold_into_recent(&mut self.recent, epoch, Box::new(snap.clone()));
        }
    }

    /// Insert a window into the epoch-sorted completed set, merging with
    /// an existing same-epoch entry.
    fn fold_into_recent(
        recent: &mut VecDeque<(u64, Box<Snapshot>)>,
        epoch: u64,
        snap: Box<Snapshot>,
    ) {
        let at = recent.partition_point(|(e, _)| *e < epoch);
        match recent.get_mut(at) {
            Some((e, s)) if *e == epoch => s.merge(&snap),
            _ => recent.insert(at, (epoch, snap)),
        }
    }

    /// Move windows older than the live range into `retired`. Recording
    /// paths pass `with_deltas` so each retiring window also joins the
    /// delta stream; merge paths keep the stream untouched.
    fn retire_out_of_range(&mut self, with_deltas: bool) {
        let min_keep = self.min_live_epoch();
        while let Some((e, _)) = self.recent.front() {
            if *e >= min_keep {
                break;
            }
            let (epoch, snap) = self.recent.pop_front().expect("front exists");
            self.retired.merge(&snap);
            if with_deltas {
                self.push_delta(epoch, snap, false);
            }
        }
    }

    fn push_delta(&mut self, epoch: u64, snapshot: Box<Snapshot>, partial: bool) {
        if self.pending.len() >= self.pending_cap {
            let mut first = self.pending.pop_front().expect("cap is at least 2");
            let second = self.pending.pop_front().expect("cap is at least 2");
            first.snapshot.merge(&second.snapshot);
            first.partial = true;
            self.pending.push_front(first);
            self.coalesced += 1;
        }
        self.pending.push_back(Box::new(WindowDelta {
            epoch,
            start_us: epoch << self.window_log2,
            window_us: 1u64 << self.window_log2,
            partial,
            snapshot: *snapshot,
        }));
    }

    /// Out-of-line slow path: first event, window rotation, or an event
    /// older than the current window.
    #[cold]
    fn emit_slow(&mut self, epoch: u64, event: &TraceEvent) {
        if !self.started {
            self.started = true;
            self.cur_epoch = epoch;
            self.cur.emit_sampled(event, self.sample_mask);
            return;
        }
        if epoch > self.cur_epoch {
            // Rotate: the current window is complete.
            let done = Box::new(std::mem::take(&mut self.cur));
            Self::fold_into_recent(&mut self.recent, self.cur_epoch, done);
            self.cur_epoch = epoch;
            self.retire_out_of_range(true);
            self.cur.emit_sampled(event, self.sample_mask);
            return;
        }
        // A late event (the engine's batched delivery can replay stamps
        // slightly in the past). Attribute it to its own window when that
        // window is still live; fold it into the oldest live window
        // otherwise, so no count is ever lost from the delta stream.
        if epoch >= self.min_live_epoch() {
            let at = self.recent.partition_point(|(e, _)| *e < epoch);
            match self.recent.get_mut(at) {
                Some((e, s)) if *e == epoch => s.emit_sampled(event, self.sample_mask),
                _ => {
                    let mut snap = Box::new(Snapshot::new());
                    snap.emit_sampled(event, self.sample_mask);
                    self.recent.insert(at, (epoch, snap));
                }
            }
        } else {
            match self.recent.front_mut() {
                Some((_, s)) => s.emit_sampled(event, self.sample_mask),
                None => self.cur.emit_sampled(event, self.sample_mask),
            }
        }
    }
}

impl TraceSink for WindowedSnapshot {
    #[inline(always)]
    fn emit(&mut self, event: &TraceEvent) {
        let epoch = event.now_us() >> self.window_log2;
        if epoch == self.cur_epoch {
            self.cur.emit_sampled(event, self.sample_mask);
        } else {
            self.emit_slow(epoch, event);
        }
    }
}

impl Default for WindowedSnapshot {
    fn default() -> Self {
        WindowedSnapshot::paper_default()
    }
}

/// Canonical-content equality: two windowed aggregates are equal when
/// they agree on shape, current epoch, retired aggregate, and the
/// per-epoch live windows — regardless of how rotation, merging, or
/// flushing arrived there. Delta-queue bookkeeping is excluded: it
/// tracks what a reporter has already consumed, not what was observed.
impl PartialEq for WindowedSnapshot {
    fn eq(&self, other: &Self) -> bool {
        if (self.window_log2, self.depth, self.sample_mask, self.started)
            != (
                other.window_log2,
                other.depth,
                other.sample_mask,
                other.started,
            )
        {
            return false;
        }
        if self.started && self.cur_epoch != other.cur_epoch {
            return false;
        }
        if self.retired != other.retired {
            return false;
        }
        let empty = Snapshot::new();
        let mut mine = self.windows().filter(|(_, s)| **s != empty);
        let mut theirs = other.windows().filter(|(_, s)| **s != empty);
        loop {
            match (mine.next(), theirs.next()) {
                (None, None) => return true,
                (Some((ea, sa)), Some((eb, sb))) if ea == eb && sa == sb => continue,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(now_us: u64, response_us: u64) -> TraceEvent {
        TraceEvent::ServiceComplete {
            now_us,
            req: now_us,
            response_us,
            late: false,
        }
    }

    #[test]
    fn windows_rotate_and_retire() {
        // 16 µs windows, 3-window live range.
        let mut w = WindowedSnapshot::new(4, 3);
        assert_eq!(w.window_us(), 16);
        assert!(!w.started());
        for t in [0u64, 5, 17, 40, 70] {
            w.emit(&complete(t, 10));
        }
        // Epochs hit: 0, 0, 1, 2, 4 → live range (2, 4] = {2.., cur 4};
        // epochs 0 and 1 retired.
        assert_eq!(w.current_epoch(), Some(4));
        let live: Vec<u64> = w.windows().map(|(e, _)| e).collect();
        assert_eq!(live, vec![2, 4]);
        assert_eq!(w.retired().counters.service_completes, 3);
        assert_eq!(w.recent().counters.service_completes, 2);
        assert_eq!(w.cumulative().counters.service_completes, 5);
    }

    #[test]
    fn cumulative_matches_plain_snapshot_bit_for_bit() {
        let mut w = WindowedSnapshot::new(4, 2);
        let mut plain = Snapshot::new();
        let mut t = 0u64;
        let mut x = 7u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t += x % 37;
            let e = complete(t, x % 100_000);
            w.emit(&e);
            plain.emit(&e);
        }
        assert_eq!(w.cumulative(), plain);
    }

    #[test]
    fn deltas_sum_to_cumulative() {
        let mut w = WindowedSnapshot::new(6, 4);
        let mut drained = Snapshot::new();
        let mut t = 0u64;
        for i in 0..2_000u64 {
            t += 13 + (i % 29);
            w.emit(&complete(t, i));
            if i % 257 == 0 {
                for d in w.take_deltas() {
                    drained.merge(&d.snapshot);
                }
            }
        }
        for d in w.flush() {
            drained.merge(&d.snapshot);
        }
        assert_eq!(drained, w.cumulative());
    }

    #[test]
    fn late_events_stay_in_the_stream() {
        let mut w = WindowedSnapshot::new(4, 2);
        w.emit(&complete(100, 1)); // epoch 6
        w.emit(&complete(40, 1)); // epoch 2: older than the live range
        w.emit(&complete(85, 1)); // epoch 5: live, completed window
        assert_eq!(w.cumulative().counters.service_completes, 3);
        let mut drained = Snapshot::new();
        for d in w.flush() {
            drained.merge(&d.snapshot);
        }
        assert_eq!(drained.counters.service_completes, 3);
    }

    #[test]
    fn merge_is_commutative_and_tracks_the_younger_current_window() {
        let mut a = WindowedSnapshot::new(4, 3);
        let mut b = WindowedSnapshot::new(4, 3);
        for t in [0u64, 20, 35] {
            a.emit(&complete(t, 5));
        }
        for t in [50u64, 90, 130] {
            b.emit(&complete(t, 7));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.current_epoch(), Some(8));
        assert_eq!(ab.cumulative().counters.service_completes, 6);
        assert_eq!(ab.cumulative(), {
            let mut s = a.cumulative();
            s.merge(&b.cumulative());
            s
        });
    }

    #[test]
    #[should_panic(expected = "share window shape")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = WindowedSnapshot::new(4, 3);
        let b = WindowedSnapshot::new(5, 3);
        a.merge(&b);
    }

    #[test]
    fn sampling_thins_histograms_but_not_counters() {
        let mut exact = WindowedSnapshot::new(8, 4);
        let mut thin = WindowedSnapshot::new(8, 4).with_sample_shift(3);
        for t in 0..1_000u64 {
            exact.emit(&complete(t * 3, 50));
            thin.emit(&complete(t * 3, 50));
        }
        assert_eq!(
            thin.cumulative().counters.service_completes,
            exact.cumulative().counters.service_completes
        );
        assert!(thin.cumulative().response_us.count() < exact.cumulative().response_us.count());
        assert!(thin.cumulative().response_us.count() > 0);
    }

    #[test]
    fn pending_cap_coalesces_but_conserves_counts() {
        let mut w = WindowedSnapshot::new(2, 1).with_pending_cap(4);
        for t in 0..400u64 {
            w.emit(&complete(t * 4, 1)); // one event per window
        }
        assert!(w.coalesced() > 0);
        let mut drained = Snapshot::new();
        for d in w.flush() {
            drained.merge(&d.snapshot);
        }
        assert_eq!(drained, w.cumulative());
    }

    #[test]
    fn flush_then_continue_reopens_the_window() {
        let mut w = WindowedSnapshot::new(4, 2);
        w.emit(&complete(5, 1));
        let first = w.flush();
        assert_eq!(first.len(), 1);
        assert!(first[0].partial);
        w.emit(&complete(6, 1));
        let mut drained = Snapshot::new();
        for d in first.into_iter().chain(w.flush()) {
            drained.merge(&d.snapshot);
        }
        assert_eq!(drained, w.cumulative());
        assert_eq!(drained.counters.service_completes, 2);
    }
}
