//! The aggregate view of a trace: counters plus histograms, itself a
//! [`TraceSink`] so it can record directly or sit on one arm of a
//! [`crate::Tee`] next to a raw-timeline sink.

use crate::event::TraceEvent;
use crate::hist::Histogram;
use crate::sink::TraceSink;
use std::fmt::Write as _;

/// One counter per event kind (plus late completions, split out of
/// `service_completes` because they are the §6 loss signal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// `Arrival` events.
    pub arrivals: u64,
    /// `Dispatch` events.
    pub dispatches: u64,
    /// `ServiceStart` events.
    pub service_starts: u64,
    /// `ServiceComplete` events.
    pub service_completes: u64,
    /// `ServiceComplete` events with `late` set.
    pub late_completions: u64,
    /// `Drop` events.
    pub drops: u64,
    /// `Preempt` events.
    pub preemptions: u64,
    /// `SpPromote` events.
    pub sp_promotions: u64,
    /// `ErExpand` events.
    pub er_expands: u64,
    /// `ErReset` events.
    pub er_resets: u64,
    /// `QueueSwap` events.
    pub queue_swaps: u64,
    /// `SweepReverse` events.
    pub sweep_reversals: u64,
    /// `MediaError` events (transient + bad-sector discoveries).
    pub media_errors: u64,
    /// `Retry` events.
    pub retries: u64,
    /// `RequestFailed` events (retry budget exhausted).
    pub request_failures: u64,
    /// `SectorRemap` events.
    pub sector_remaps: u64,
    /// `DegradedRead` events.
    pub degraded_reads: u64,
    /// `RebuildIo` events.
    pub rebuild_ios: u64,
    /// `Shed` events (bounded-queue overload drops).
    pub sheds: u64,
    /// `Redirect` events (farm router overload redirections).
    pub redirects: u64,
    /// `ShardReport` events (one per finished farm shard timeline).
    pub shard_reports: u64,
    /// `Migrate` events (drained-shard in-flight handoffs).
    pub migrations: u64,
    /// `Quarantine` events (supervisor pulled a shard from routing).
    pub quarantines: u64,
    /// `Retune` events (control plane applied a live knob/policy change).
    pub retunes: u64,
    /// `StageSpan` events (sampled pipeline-stage timings).
    pub stage_spans: u64,
}

impl Counters {
    /// Add another set of counters into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.arrivals += other.arrivals;
        self.dispatches += other.dispatches;
        self.service_starts += other.service_starts;
        self.service_completes += other.service_completes;
        self.late_completions += other.late_completions;
        self.drops += other.drops;
        self.preemptions += other.preemptions;
        self.sp_promotions += other.sp_promotions;
        self.er_expands += other.er_expands;
        self.er_resets += other.er_resets;
        self.queue_swaps += other.queue_swaps;
        self.sweep_reversals += other.sweep_reversals;
        self.media_errors += other.media_errors;
        self.retries += other.retries;
        self.request_failures += other.request_failures;
        self.sector_remaps += other.sector_remaps;
        self.degraded_reads += other.degraded_reads;
        self.rebuild_ios += other.rebuild_ios;
        self.sheds += other.sheds;
        self.redirects += other.redirects;
        self.shard_reports += other.shard_reports;
        self.migrations += other.migrations;
        self.quarantines += other.quarantines;
        self.retunes += other.retunes;
        self.stage_spans += other.stage_spans;
    }

    /// Every counter as a `(stable_name, value)` pair, in declaration
    /// order — the iteration base for exposition encoders and dump
    /// renderers.
    pub fn items(&self) -> [(&'static str, u64); 25] {
        [
            ("arrivals", self.arrivals),
            ("dispatches", self.dispatches),
            ("service_starts", self.service_starts),
            ("service_completes", self.service_completes),
            ("late_completions", self.late_completions),
            ("drops", self.drops),
            ("preemptions", self.preemptions),
            ("sp_promotions", self.sp_promotions),
            ("er_expands", self.er_expands),
            ("er_resets", self.er_resets),
            ("queue_swaps", self.queue_swaps),
            ("sweep_reversals", self.sweep_reversals),
            ("media_errors", self.media_errors),
            ("retries", self.retries),
            ("request_failures", self.request_failures),
            ("sector_remaps", self.sector_remaps),
            ("degraded_reads", self.degraded_reads),
            ("rebuild_ios", self.rebuild_ios),
            ("sheds", self.sheds),
            ("redirects", self.redirects),
            ("shard_reports", self.shard_reports),
            ("migrations", self.migrations),
            ("quarantines", self.quarantines),
            ("retunes", self.retunes),
            ("stage_spans", self.stage_spans),
        ]
    }

    /// Total events these counters witnessed. Every event increments
    /// exactly one counter; `late_completions` is excluded because it is
    /// a sub-count of `service_completes`, not an event kind of its own.
    pub fn total_events(&self) -> u64 {
        self.items()
            .into_iter()
            .filter(|(name, _)| *name != "late_completions")
            .map(|(_, v)| v)
            .sum()
    }
}

/// Aggregated observations of one (or, after [`Snapshot::merge`],
/// several) traced runs: event counters and the four distribution
/// histograms the paper's analysis cares about.
///
/// Mergeability is the point: the striped/RAID path runs one simulation
/// per member disk and folds the members' snapshots into one group view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Event counts.
    pub counters: Counters,
    /// Response time of completed requests (µs, from `ServiceComplete`).
    pub response_us: Histogram,
    /// Seek distance per service (cylinders, from `ServiceStart`).
    pub seek_cylinders: Histogram,
    /// Pending-queue depth at each dispatch (from `Dispatch`).
    pub queue_depth: Histogram,
    /// Slack at dispatch (µs, from `Dispatch`), clamped at 0: past-due
    /// dispatches record 0.
    pub slack_us: Histogram,
    /// Sampled wall-clock cost per pipeline stage (ns, from `StageSpan`),
    /// indexed by [`Stage::index`](crate::Stage::index).
    pub stage_ns: [Histogram; crate::Stage::COUNT],
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Fold another snapshot into this one (exact: counters add,
    /// histograms concatenate).
    pub fn merge(&mut self, other: &Snapshot) {
        self.counters.merge(&other.counters);
        self.response_us.merge(&other.response_us);
        self.seek_cylinders.merge(&other.seek_cylinders);
        self.queue_depth.merge(&other.queue_depth);
        self.slack_us.merge(&other.slack_us);
        for (mine, theirs) in self.stage_ns.iter_mut().zip(other.stage_ns.iter()) {
            mine.merge(theirs);
        }
    }

    /// Every distribution as a `(stable_name, histogram)` pair: the four
    /// paper-analysis distributions followed by one `stage_<name>_ns`
    /// entry per pipeline stage.
    pub fn histograms(&self) -> [(&'static str, &Histogram); 4 + crate::Stage::COUNT] {
        [
            ("response_us", &self.response_us),
            ("seek_cylinders", &self.seek_cylinders),
            ("queue_depth", &self.queue_depth),
            ("slack_us", &self.slack_us),
            ("stage_characterize_ns", &self.stage_ns[0]),
            ("stage_encapsulate_ns", &self.stage_ns[1]),
            ("stage_enqueue_ns", &self.stage_ns[2]),
            ("stage_dispatch_ns", &self.stage_ns[3]),
            ("stage_service_ns", &self.stage_ns[4]),
        ]
    }

    /// Record one event with the histogram updates gated by `mask`: the
    /// counters stay **exact** while distribution samples are taken on a
    /// deterministic 1-in-`mask + 1` stride of the per-kind count
    /// (`mask` must be `2^k - 1`; 0 records every sample and is exactly
    /// [`TraceSink::emit`]). This is the hot-path variant the windowed
    /// live sinks use to stay inside the telemetry overhead budget.
    #[inline(always)]
    pub fn emit_sampled(&mut self, event: &TraceEvent, mask: u64) {
        let c = &mut self.counters;
        match *event {
            TraceEvent::Arrival { .. } => c.arrivals += 1,
            TraceEvent::Dispatch {
                queue_depth,
                slack_us,
                ..
            } => {
                if c.dispatches & mask == 0 {
                    self.queue_depth.record(queue_depth);
                    self.slack_us.record(slack_us.max(0) as u64);
                }
                c.dispatches += 1;
            }
            TraceEvent::ServiceStart { seek_cylinders, .. } => {
                if c.service_starts & mask == 0 {
                    self.seek_cylinders.record(seek_cylinders as u64);
                }
                c.service_starts += 1;
            }
            TraceEvent::ServiceComplete {
                response_us, late, ..
            } => {
                if c.service_completes & mask == 0 {
                    self.response_us.record(response_us);
                }
                c.service_completes += 1;
                if late {
                    c.late_completions += 1;
                }
            }
            TraceEvent::Drop { .. } => c.drops += 1,
            TraceEvent::Preempt { .. } => c.preemptions += 1,
            TraceEvent::SpPromote { .. } => c.sp_promotions += 1,
            TraceEvent::ErExpand { .. } => c.er_expands += 1,
            TraceEvent::ErReset { .. } => c.er_resets += 1,
            TraceEvent::QueueSwap { .. } => c.queue_swaps += 1,
            TraceEvent::SweepReverse { .. } => c.sweep_reversals += 1,
            TraceEvent::MediaError { .. } => c.media_errors += 1,
            TraceEvent::Retry { .. } => c.retries += 1,
            TraceEvent::RequestFailed { .. } => c.request_failures += 1,
            TraceEvent::SectorRemap { .. } => c.sector_remaps += 1,
            TraceEvent::DegradedRead { .. } => c.degraded_reads += 1,
            TraceEvent::RebuildIo { .. } => c.rebuild_ios += 1,
            TraceEvent::Shed { .. } => c.sheds += 1,
            TraceEvent::Redirect { .. } => c.redirects += 1,
            TraceEvent::ShardReport { .. } => c.shard_reports += 1,
            TraceEvent::Migrate { .. } => c.migrations += 1,
            TraceEvent::Quarantine { .. } => c.quarantines += 1,
            TraceEvent::Retune { .. } => c.retunes += 1,
            TraceEvent::StageSpan {
                stage, elapsed_ns, ..
            } => {
                if c.stage_spans & mask == 0 {
                    self.stage_ns[stage.index()].record(elapsed_ns);
                }
                c.stage_spans += 1;
            }
        }
    }

    /// A human-readable multi-line report of the snapshot.
    pub fn report(&self) -> String {
        let c = &self.counters;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "events");
        let _ = writeln!(
            out,
            "  arrivals {}  dispatches {}  service {}/{}  late {}  drops {}",
            c.arrivals,
            c.dispatches,
            c.service_starts,
            c.service_completes,
            c.late_completions,
            c.drops
        );
        let _ = writeln!(
            out,
            "  preemptions {}  sp-promotions {}  er-expands {}  er-resets {}  \
             queue-swaps {}  sweep-reversals {}",
            c.preemptions,
            c.sp_promotions,
            c.er_expands,
            c.er_resets,
            c.queue_swaps,
            c.sweep_reversals
        );
        let faults = c.media_errors
            + c.retries
            + c.request_failures
            + c.sector_remaps
            + c.degraded_reads
            + c.rebuild_ios
            + c.sheds;
        if faults > 0 {
            let _ = writeln!(
                out,
                "  media-errors {}  retries {}  failures {}  remaps {}  \
                 degraded-reads {}  rebuild-ios {}  sheds {}",
                c.media_errors,
                c.retries,
                c.request_failures,
                c.sector_remaps,
                c.degraded_reads,
                c.rebuild_ios,
                c.sheds
            );
        }
        if c.redirects + c.shard_reports + c.migrations + c.quarantines + c.retunes > 0 {
            let _ = writeln!(
                out,
                "  redirects {}  shard-reports {}  migrations {}  quarantines {}  retunes {}",
                c.redirects, c.shard_reports, c.migrations, c.quarantines, c.retunes
            );
        }
        let hist =
            |out: &mut String, name: &str, unit: &str, h: &Histogram| match (h.min(), h.max()) {
                (Some(min), Some(max)) => {
                    let _ = writeln!(
                        out,
                        "{name}: n {}  mean {:.1}{unit}  p50 {}  p95 {}  p99 {}  \
                         p999 {}  min {min}  max {max}",
                        h.count(),
                        h.mean(),
                        h.p50().unwrap(),
                        h.p95().unwrap(),
                        h.p99().unwrap(),
                        h.p999().unwrap(),
                    );
                }
                _ => {
                    let _ = writeln!(out, "{name}: (no samples)");
                }
            };
        hist(&mut out, "response_us", "µs", &self.response_us);
        hist(&mut out, "seek_cylinders", "cyl", &self.seek_cylinders);
        hist(&mut out, "queue_depth", "", &self.queue_depth);
        hist(&mut out, "slack_us", "µs", &self.slack_us);
        if c.stage_spans > 0 {
            for stage in crate::Stage::ALL {
                let name = format!("stage_{}_ns", stage.name());
                hist(&mut out, &name, "ns", &self.stage_ns[stage.index()]);
            }
        }
        out
    }
}

impl TraceSink for Snapshot {
    #[inline]
    fn emit(&mut self, event: &TraceEvent) {
        self.emit_sampled(event, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(s: &mut Snapshot) {
        s.emit(&TraceEvent::Arrival {
            now_us: 0,
            req: 1,
            cylinder: 5,
            deadline_us: 100,
        });
        s.emit(&TraceEvent::Dispatch {
            now_us: 10,
            req: 1,
            cylinder: 5,
            queue_depth: 3,
            slack_us: -7,
        });
        s.emit(&TraceEvent::ServiceStart {
            now_us: 10,
            req: 1,
            cylinder: 5,
            seek_cylinders: 40,
        });
        s.emit(&TraceEvent::ServiceComplete {
            now_us: 30,
            req: 1,
            response_us: 30,
            late: true,
        });
        s.emit(&TraceEvent::Preempt {
            now_us: 31,
            preempted_v: 9,
            by_v: 2,
        });
        s.emit(&TraceEvent::ErExpand {
            now_us: 31,
            window: 8,
        });
        s.emit(&TraceEvent::QueueSwap {
            now_us: 40,
            batch: 2,
        });
        s.emit(&TraceEvent::ErReset {
            now_us: 40,
            window: 4,
        });
        s.emit(&TraceEvent::SpPromote { now_us: 41, v: 3 });
        s.emit(&TraceEvent::Drop {
            now_us: 50,
            req: 2,
            missed_by_us: 6,
        });
        s.emit(&TraceEvent::SweepReverse {
            now_us: 60,
            cylinder: 5,
        });
        s.emit(&TraceEvent::MediaError {
            now_us: 70,
            req: 3,
            attempt: 1,
            transient: true,
        });
        s.emit(&TraceEvent::Retry {
            now_us: 71,
            req: 3,
            attempt: 2,
            slack_us: 12,
        });
        s.emit(&TraceEvent::RequestFailed {
            now_us: 80,
            req: 3,
            attempts: 2,
        });
        s.emit(&TraceEvent::SectorRemap {
            now_us: 81,
            req: 4,
            penalty_us: 5_000,
        });
        s.emit(&TraceEvent::DegradedRead {
            now_us: 82,
            req: 5,
            failed_member: 2,
        });
        s.emit(&TraceEvent::RebuildIo {
            now_us: 83,
            stripe: 9,
            service_us: 1_500,
        });
        s.emit(&TraceEvent::Shed {
            now_us: 84,
            req: 6,
            v: 77,
        });
        s.emit(&TraceEvent::Redirect {
            now_us: 85,
            req: 7,
            from_shard: 0,
            to_shard: 3,
            queue_depth: 16,
        });
        s.emit(&TraceEvent::ShardReport {
            now_us: 86,
            shard: 3,
            served: 42,
            sheds: 1,
        });
        s.emit(&TraceEvent::Migrate {
            now_us: 86,
            req: 8,
            from_shard: 1,
            to_shard: 2,
        });
        s.emit(&TraceEvent::Quarantine {
            now_us: 87,
            shard: 2,
            until_us: 187,
        });
        s.emit(&TraceEvent::Retune {
            now_us: 88,
            shard: 1,
            knob: 2,
        });
        s.emit(&TraceEvent::StageSpan {
            now_us: 87,
            stage: crate::Stage::Dispatch,
            elapsed_ns: 250,
        });
    }

    #[test]
    fn records_every_event_kind() {
        let mut s = Snapshot::new();
        feed(&mut s);
        let c = s.counters;
        assert_eq!(
            (
                c.arrivals,
                c.dispatches,
                c.service_starts,
                c.service_completes
            ),
            (1, 1, 1, 1)
        );
        assert_eq!((c.late_completions, c.drops), (1, 1));
        assert_eq!(
            (c.preemptions, c.sp_promotions, c.er_expands, c.er_resets),
            (1, 1, 1, 1)
        );
        assert_eq!((c.queue_swaps, c.sweep_reversals), (1, 1));
        assert_eq!((c.media_errors, c.retries, c.request_failures), (1, 1, 1));
        assert_eq!(
            (c.sector_remaps, c.degraded_reads, c.rebuild_ios, c.sheds),
            (1, 1, 1, 1)
        );
        assert_eq!((c.redirects, c.shard_reports), (1, 1));
        assert_eq!((c.migrations, c.quarantines, c.retunes), (1, 1, 1));
        assert_eq!(c.stage_spans, 1);
        assert_eq!(c.total_events(), 24);
        assert_eq!(s.stage_ns[crate::Stage::Dispatch.index()].max(), Some(250));
        assert_eq!(s.response_us.count(), 1);
        assert_eq!(s.seek_cylinders.max(), Some(40));
        assert_eq!(s.queue_depth.max(), Some(3));
        // Negative slack clamps to 0.
        assert_eq!(s.slack_us.max(), Some(0));
    }

    #[test]
    fn sampled_emit_keeps_counters_exact() {
        let mut exact = Snapshot::new();
        let mut sampled = Snapshot::new();
        for i in 0..100u64 {
            let e = TraceEvent::ServiceComplete {
                now_us: i,
                req: i,
                response_us: 10 + i,
                late: i % 2 == 0,
            };
            exact.emit(&e);
            sampled.emit_sampled(&e, 7);
        }
        assert_eq!(sampled.counters, exact.counters);
        assert_eq!(exact.response_us.count(), 100);
        // Pre-increment stride: samples at counts 0, 8, …, 96.
        assert_eq!(sampled.response_us.count(), 13);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Snapshot::new();
        let mut b = Snapshot::new();
        feed(&mut a);
        feed(&mut b);
        let mut both = Snapshot::new();
        feed(&mut both);
        feed(&mut both);
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn report_mentions_the_headline_numbers() {
        let mut s = Snapshot::new();
        feed(&mut s);
        let r = s.report();
        assert!(r.contains("preemptions 1"));
        assert!(r.contains("response_us"));
        assert!(r.contains("sweep-reversals 1"));
        assert!(r.contains("degraded-reads 1"));
        assert!(r.contains("sheds 1"));
        assert!(r.contains("redirects 1"));
        // Empty histogram branch renders too — and a fault-free snapshot
        // omits the fault-counter line entirely.
        let empty = Snapshot::new().report();
        assert!(empty.contains("(no samples)"));
        assert!(!empty.contains("media-errors"));
    }
}
