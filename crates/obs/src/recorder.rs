//! The flight recorder: a bounded ring of recent events plus anomaly
//! triggers that capture the moments worth a post-mortem.
//!
//! A [`FlightRecorder`] sits on a shard's event stream like any other
//! sink. It keeps the last `capacity` raw events, a windowed live
//! aggregate for baselines, and an exact since-last-dump [`Snapshot`].
//! When an anomaly fires — a shed burst, a redirect storm, a
//! degraded-read storm, or a deadline-miss p99 spike against the recent
//! baseline — it freezes a [`DumpRecord`]: the ring contents, the delta
//! since the previous dump, and cumulative counters, with **exact
//! event-vs-counter reconciliation**: the retained events are replayed
//! into a fresh snapshot and must reproduce the delta bit-for-bit
//! (`clean` records whether they did; ring evictions since the last dump
//! are the one legitimate reason they cannot).

use crate::event::TraceEvent;
use crate::registry::TelemetryConfig;
use crate::sink::{RingSink, TraceSink};
use crate::snapshot::{Counters, Snapshot};
use crate::window::WindowedSnapshot;
use std::fmt::Write as _;

/// What fired a flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// Sheds in the current window crossed the threshold.
    ShedBurst = 0,
    /// Redirects in the current window crossed the threshold.
    RedirectStorm = 1,
    /// Degraded reads in the current window crossed the threshold.
    DegradedStorm = 2,
    /// The current window's response p99 spiked against the recent
    /// completed-window baseline.
    P99Spike = 3,
    /// An explicit [`FlightRecorder::force_dump`] call.
    Manual = 4,
}

impl Anomaly {
    const COUNT: usize = 5;

    /// Stable `snake_case` name, used in dump renderings.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::ShedBurst => "shed_burst",
            Anomaly::RedirectStorm => "redirect_storm",
            Anomaly::DegradedStorm => "degraded_storm",
            Anomaly::P99Spike => "p99_spike",
            Anomaly::Manual => "manual",
        }
    }
}

/// Trigger thresholds; a threshold of 0 (or factor of 0.0) disables
/// that trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerConfig {
    /// Sheds within the current window that constitute a burst.
    pub shed_burst: u64,
    /// Redirects within the current window that constitute a storm.
    pub redirect_storm: u64,
    /// Degraded reads within the current window that constitute a storm.
    pub degraded_storm: u64,
    /// Fire when the current window's response p99 exceeds the recent
    /// completed-window baseline p99 by this factor.
    pub p99_spike_factor: f64,
    /// Completions required (in the current window and in the baseline)
    /// before the p99 comparison is trusted.
    pub p99_min_completes: u64,
    /// Windows an anomaly stays quiet after firing, so one sustained
    /// incident yields one dump, not hundreds.
    pub cooldown_windows: u64,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        TriggerConfig {
            shed_burst: 32,
            redirect_storm: 64,
            degraded_storm: 32,
            p99_spike_factor: 4.0,
            p99_min_completes: 64,
            cooldown_windows: 4,
        }
    }
}

/// One frozen post-mortem capture.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpRecord {
    /// What fired.
    pub anomaly: Anomaly,
    /// Simulation time of the triggering event (µs).
    pub now_us: u64,
    /// Window epoch of the triggering event.
    pub epoch: u64,
    /// The ring contents at the dump, oldest first.
    pub events: Vec<TraceEvent>,
    /// Exact aggregate of everything since the previous dump (or the
    /// start of the run).
    pub delta: Snapshot,
    /// Cumulative counters over the whole run so far.
    pub cumulative: Counters,
    /// Whether replaying the retained since-dump events reproduced
    /// `delta` bit-for-bit.
    pub clean: bool,
    /// Ring evictions since the previous dump — when nonzero, the oldest
    /// since-dump events are gone and `clean` cannot hold.
    pub evicted_since_dump: u64,
}

impl DumpRecord {
    /// Render the dump as JSONL: one header object, then one line per
    /// retained event.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"record\":\"flight_dump\",\"anomaly\":\"{}\",\"now_us\":{},\
             \"epoch\":{},\"clean\":{},\"evicted_since_dump\":{},\"events\":{}",
            self.anomaly.name(),
            self.now_us,
            self.epoch,
            self.clean,
            self.evicted_since_dump,
            self.events.len(),
        );
        out.push_str(",\"delta\":");
        write_counters_json(&self.delta.counters, out);
        out.push_str(",\"cumulative\":");
        write_counters_json(&self.cumulative, out);
        out.push_str("}\n");
        for e in &self.events {
            e.write_json(out);
            out.push('\n');
        }
    }
}

fn write_counters_json(c: &Counters, out: &mut String) {
    out.push('{');
    for (i, (name, value)) in c.items().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{value}");
    }
    out.push('}');
}

/// A per-shard flight recorder (see the module docs).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: RingSink,
    windows: WindowedSnapshot,
    since_dump: Snapshot,
    evicted_at_dump: u64,
    triggers: TriggerConfig,
    last_fired_epoch: [Option<u64>; Anomaly::COUNT],
    dumps: Vec<DumpRecord>,
}

impl FlightRecorder {
    /// A recorder retaining `capacity` events, aggregating over
    /// `telemetry`-shaped windows, firing on `triggers`.
    pub fn new(capacity: usize, telemetry: TelemetryConfig, triggers: TriggerConfig) -> Self {
        FlightRecorder {
            ring: RingSink::new(capacity),
            windows: telemetry.sink(),
            since_dump: Snapshot::new(),
            evicted_at_dump: 0,
            triggers,
            last_fired_epoch: [None; Anomaly::COUNT],
            dumps: Vec::new(),
        }
    }

    /// A recorder with the default window shape (decimation off, so p99
    /// baselines are exact) and default triggers.
    pub fn paper_default(capacity: usize) -> Self {
        FlightRecorder::new(capacity, TelemetryConfig::exact(), TriggerConfig::default())
    }

    /// The windowed live aggregate the triggers consult.
    pub fn windows(&self) -> &WindowedSnapshot {
        &self.windows
    }

    /// Mutable access to the windowed aggregate, so a control plane can
    /// drain completed-window deltas ([`WindowedSnapshot::take_deltas`])
    /// without disturbing the ring or the dump machinery.
    pub fn windows_mut(&mut self) -> &mut WindowedSnapshot {
        &mut self.windows
    }

    /// Dumps captured so far, oldest first.
    pub fn dumps(&self) -> &[DumpRecord] {
        &self.dumps
    }

    /// Take ownership of the captured dumps.
    pub fn take_dumps(&mut self) -> Vec<DumpRecord> {
        std::mem::take(&mut self.dumps)
    }

    /// Capture a dump right now, bypassing triggers and cooldowns.
    pub fn force_dump(&mut self, now_us: u64) -> &DumpRecord {
        self.capture(Anomaly::Manual, now_us);
        self.dumps.last().expect("capture just pushed a dump")
    }

    fn fire(&mut self, anomaly: Anomaly, now_us: u64) {
        let epoch = self.windows.epoch_of(now_us);
        if let Some(last) = self.last_fired_epoch[anomaly as usize] {
            if epoch.saturating_sub(last) < self.triggers.cooldown_windows.max(1) {
                return;
            }
        }
        self.last_fired_epoch[anomaly as usize] = Some(epoch);
        self.capture(anomaly, now_us);
    }

    fn capture(&mut self, anomaly: Anomaly, now_us: u64) {
        let delta = std::mem::take(&mut self.since_dump);
        let evicted_since_dump = self.ring.evicted() - self.evicted_at_dump;
        self.evicted_at_dump = self.ring.evicted();
        let events = self.ring.to_vec();
        let clean = evicted_since_dump == 0 && reconciles(&events, &delta);
        self.dumps.push(DumpRecord {
            anomaly,
            now_us,
            epoch: self.windows.epoch_of(now_us),
            events,
            delta,
            cumulative: self.windows.cumulative().counters,
            clean,
            evicted_since_dump,
        });
    }

    /// The current window's response p99 against the completed recent
    /// windows' p99, when both sides have enough samples.
    fn p99_spiked(&self) -> bool {
        let t = &self.triggers;
        if t.p99_spike_factor <= 0.0 {
            return false;
        }
        let cur = self.windows.current();
        if cur.counters.service_completes < t.p99_min_completes {
            return false;
        }
        let cur_epoch = self.windows.current_epoch();
        let mut baseline = Snapshot::new();
        for (epoch, s) in self.windows.windows() {
            if Some(epoch) != cur_epoch {
                baseline.merge(s);
            }
        }
        if baseline.response_us.count() < t.p99_min_completes {
            return false;
        }
        match (cur.response_us.p99(), baseline.response_us.p99()) {
            (Some(cur_p99), Some(base_p99)) => {
                cur_p99 as f64 > base_p99 as f64 * t.p99_spike_factor
            }
            _ => false,
        }
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&mut self, event: &TraceEvent) {
        self.ring.emit(event);
        self.windows.emit(event);
        self.since_dump.emit(event);
        let t = self.triggers;
        let cur = self.windows.current().counters;
        match *event {
            TraceEvent::Shed { now_us, .. } if t.shed_burst > 0 && cur.sheds >= t.shed_burst => {
                self.fire(Anomaly::ShedBurst, now_us);
            }
            TraceEvent::Redirect { now_us, .. }
                if t.redirect_storm > 0 && cur.redirects >= t.redirect_storm =>
            {
                self.fire(Anomaly::RedirectStorm, now_us);
            }
            TraceEvent::DegradedRead { now_us, .. }
                if t.degraded_storm > 0 && cur.degraded_reads >= t.degraded_storm =>
            {
                self.fire(Anomaly::DegradedStorm, now_us);
            }
            TraceEvent::ServiceComplete { now_us, .. }
                if cur.service_completes == t.p99_min_completes && self.p99_spiked() =>
            {
                self.fire(Anomaly::P99Spike, now_us);
            }
            _ => {}
        }
    }
}

/// Replay `events`' tail into a fresh snapshot and check it reproduces
/// `delta` exactly. The tail length is the event count the delta's own
/// counters claim — the reconciliation is event-vs-counter on both
/// axes.
fn reconciles(events: &[TraceEvent], delta: &Snapshot) -> bool {
    let n = delta.counters.total_events() as usize;
    if n > events.len() {
        return false;
    }
    let mut replayed = Snapshot::new();
    for e in &events[events.len() - n..] {
        replayed.emit(e);
    }
    replayed == *delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed(now_us: u64, req: u64) -> TraceEvent {
        TraceEvent::Shed { now_us, req, v: 1 }
    }

    fn recorder(ring: usize) -> FlightRecorder {
        // 16 µs windows so tests cross window boundaries easily.
        FlightRecorder::new(
            ring,
            TelemetryConfig::exact().window_log2(4).depth(4),
            TriggerConfig {
                shed_burst: 4,
                redirect_storm: 3,
                degraded_storm: 3,
                p99_spike_factor: 3.0,
                p99_min_completes: 8,
                cooldown_windows: 2,
            },
        )
    }

    #[test]
    fn shed_burst_fires_once_per_cooldown_and_reconciles() {
        let mut r = recorder(256);
        for i in 0..6u64 {
            r.emit(&shed(i, i));
        }
        assert_eq!(r.dumps().len(), 1, "one dump despite repeated crossing");
        let d = &r.dumps()[0];
        assert_eq!(d.anomaly, Anomaly::ShedBurst);
        assert!(d.clean, "retained events must replay into the delta");
        assert_eq!(d.delta.counters.sheds, 4);
        assert_eq!(d.evicted_since_dump, 0);
        // Past the cooldown the trigger rearms.
        for i in 0..40u64 {
            r.emit(&shed(100 + i, i));
        }
        assert!(r.dumps().len() >= 2);
        // Captured cumulative counts everything up to the second firing:
        // the first burst of 6 plus the 4 sheds that re-crossed.
        assert_eq!(r.dumps()[1].cumulative.sheds, 10);
    }

    #[test]
    fn cooldown_rearms_at_exactly_last_plus_cooldown_windows() {
        // cooldown_windows = 2, 16 µs windows. A trigger that last fired
        // in epoch E must stay suppressed through epoch E+1 and rearm at
        // exactly E+2 — not E+3. The farm daemon's supervisor leans on
        // this boundary: a limping member that keeps shedding re-strikes
        // on the first window the cooldown permits.
        let mut r = recorder(256);
        for i in 0..4u64 {
            r.emit(&shed(i, i)); // epoch 0: fires
        }
        assert_eq!(r.dumps().len(), 1);
        assert_eq!(r.dumps()[0].epoch, 0);
        for i in 0..4u64 {
            r.emit(&shed(16 + i, i)); // epoch 1: delta 1 < 2, suppressed
        }
        assert_eq!(r.dumps().len(), 1, "epoch E+1 is inside the cooldown");
        for i in 0..4u64 {
            r.emit(&shed(32 + i, i)); // epoch 2: delta == 2, rearmed
        }
        assert_eq!(r.dumps().len(), 2, "epoch E+2 is the first rearmed window");
        assert_eq!(r.dumps()[1].epoch, 2);
        assert_eq!(r.dumps()[1].anomaly, Anomaly::ShedBurst);
    }

    #[test]
    fn second_dump_delta_covers_only_the_gap() {
        let mut r = recorder(256);
        for i in 0..4u64 {
            r.emit(&shed(i, i));
        }
        assert_eq!(r.dumps().len(), 1);
        // Cooldown is 2 windows of 16 µs; jump past it.
        for i in 0..4u64 {
            r.emit(&shed(64 + i, i));
        }
        let dumps = r.take_dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[1].delta.counters.sheds, 4);
        assert_eq!(dumps[1].cumulative.sheds, 8);
        assert!(dumps[1].clean);
        assert!(r.dumps().is_empty());
    }

    #[test]
    fn eviction_is_reported_not_hidden() {
        let mut r = recorder(2);
        for i in 0..6u64 {
            r.emit(&shed(i, i));
        }
        let d = &r.dumps()[0];
        assert!(!d.clean);
        assert!(d.evicted_since_dump > 0);
    }

    #[test]
    fn p99_spike_fires_against_recent_baseline() {
        let mut r = recorder(1024);
        let complete = |now_us: u64, response_us: u64| TraceEvent::ServiceComplete {
            now_us,
            req: now_us,
            response_us,
            late: false,
        };
        // Two calm windows of baseline (epochs 0 and 1), then a spiked one.
        for i in 0..8u64 {
            r.emit(&complete(i, 100));
        }
        for i in 0..8u64 {
            r.emit(&complete(16 + i, 100));
        }
        assert!(r.dumps().is_empty());
        for i in 0..8u64 {
            r.emit(&complete(32 + i, 50_000));
        }
        assert_eq!(r.dumps().len(), 1);
        assert_eq!(r.dumps()[0].anomaly, Anomaly::P99Spike);
        assert!(r.dumps()[0].clean);
    }

    #[test]
    fn forced_dump_renders_jsonl() {
        let mut r = recorder(16);
        r.emit(&shed(3, 9));
        let d = r.force_dump(5).clone();
        assert_eq!(d.anomaly, Anomaly::Manual);
        assert!(d.clean);
        let mut out = String::new();
        d.write_jsonl(&mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"record\":\"flight_dump\",\"anomaly\":\"manual\""));
        assert!(lines[0].contains("\"delta\":{\"arrivals\":0"));
        assert!(lines[0].contains("\"sheds\":1"));
        assert!(lines[1].starts_with("{\"event\":\"shed\""));
    }
}
