//! The event taxonomy: everything the scheduler stack can report about
//! one simulated run, as a flat enum of plain-data variants.
//!
//! Events carry only primitives so the crate stays dependency-free and
//! sinks can render them without reflection. Characterization values and
//! blocking windows are `u128` (the encapsulator's value space); they are
//! rendered as strings in JSON because they routinely exceed the 2⁵³
//! integer range JSON consumers can be trusted with.

use std::fmt::Write as _;

/// One observable event in the life of the scheduler stack.
///
/// Emission points, by layer:
///
/// * the **simulation engine** emits [`Arrival`](TraceEvent::Arrival),
///   [`Dispatch`](TraceEvent::Dispatch),
///   [`ServiceStart`](TraceEvent::ServiceStart),
///   [`ServiceComplete`](TraceEvent::ServiceComplete) and
///   [`Drop`](TraceEvent::Drop);
/// * the **cascade dispatcher** emits [`Preempt`](TraceEvent::Preempt),
///   [`SpPromote`](TraceEvent::SpPromote),
///   [`ErExpand`](TraceEvent::ErExpand),
///   [`ErReset`](TraceEvent::ErReset),
///   [`QueueSwap`](TraceEvent::QueueSwap) and, under bounded-queue
///   overload shedding, [`Shed`](TraceEvent::Shed);
/// * the **elevator baselines** emit
///   [`SweepReverse`](TraceEvent::SweepReverse);
/// * the **fault-injection path** emits
///   [`MediaError`](TraceEvent::MediaError),
///   [`Retry`](TraceEvent::Retry),
///   [`RequestFailed`](TraceEvent::RequestFailed),
///   [`SectorRemap`](TraceEvent::SectorRemap),
///   [`DegradedRead`](TraceEvent::DegradedRead) and
///   [`RebuildIo`](TraceEvent::RebuildIo);
/// * the **farm router** emits [`Redirect`](TraceEvent::Redirect) and,
///   once per shard timeline, [`ShardReport`](TraceEvent::ShardReport);
/// * the **farm daemon** emits [`Migrate`](TraceEvent::Migrate) when a
///   drained shard hands off a resident request,
///   [`Quarantine`](TraceEvent::Quarantine) when the health supervisor
///   (or an operator) pulls a shard out of the routing pool, and
///   [`Retune`](TraceEvent::Retune) when the control plane applies a
///   live knob or policy change at a safe epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request reached the scheduler queue.
    Arrival {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Target cylinder.
        cylinder: u32,
        /// Absolute deadline (µs); `u64::MAX` when none.
        deadline_us: u64,
    },
    /// The scheduler picked a request to serve next.
    Dispatch {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Target cylinder.
        cylinder: u32,
        /// Pending requests at the dispatch instant (the dispatched one
        /// included).
        queue_depth: u64,
        /// Deadline minus now at dispatch (µs); negative when already
        /// past due. Saturated at the `i64` range.
        slack_us: i64,
    },
    /// The disk began serving a dispatched request.
    ServiceStart {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Target cylinder.
        cylinder: u32,
        /// Seek distance from the head position (cylinders).
        seek_cylinders: u32,
    },
    /// The disk finished serving a request.
    ServiceComplete {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Completion minus arrival (µs).
        response_us: u64,
        /// Whether the deadline had passed at completion.
        late: bool,
    },
    /// A past-due request was dropped unserved (§6 losses).
    Drop {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// How far past the deadline the drop happened (µs).
        missed_by_us: u64,
    },
    /// A conditional-mode arrival beat the in-service value by more than
    /// the blocking window and entered the active queue (§3.1).
    Preempt {
        /// Simulation time (µs).
        now_us: u64,
        /// Characterization value of the in-service request.
        preempted_v: u128,
        /// Characterization value of the preempting arrival.
        by_v: u128,
    },
    /// SP promoted a waiting request into the active queue (§3.2).
    SpPromote {
        /// Simulation time (µs).
        now_us: u64,
        /// Characterization value of the promoted request.
        v: u128,
    },
    /// ER expanded the blocking window after a preemption or promotion
    /// (§3.3).
    ErExpand {
        /// Simulation time (µs).
        now_us: u64,
        /// The window after expansion.
        window: u128,
    },
    /// ER reset an expanded window at a queue swap (§3.3).
    ErReset {
        /// Simulation time (µs).
        now_us: u64,
        /// The base window restored.
        window: u128,
    },
    /// The active queue drained and swapped with the waiting queue.
    QueueSwap {
        /// Simulation time (µs).
        now_us: u64,
        /// Size of the batch entering service.
        batch: u64,
    },
    /// An elevator policy reversed (SCAN/SCAN-EDF) or flew back (C-SCAN).
    SweepReverse {
        /// Simulation time (µs).
        now_us: u64,
        /// Head cylinder at the reversal.
        cylinder: u32,
    },
    /// A service attempt failed with a media error (transient CRC error,
    /// or an access to a dead member); the engine's retry policy decides
    /// what happens next.
    MediaError {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Which attempt failed (1 = first service).
        attempt: u32,
        /// `true` for a transient (retryable) error, `false` for an
        /// access to a dead member.
        transient: bool,
    },
    /// The engine retries a failed attempt within its deadline budget.
    Retry {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// The attempt about to start (2 = first retry).
        attempt: u32,
        /// Deadline minus now at the retry decision (µs); never negative —
        /// the policy forbids retrying past the deadline. Saturated at the
        /// `i64` range.
        slack_us: i64,
    },
    /// The retry budget was exhausted (or the deadline passed): the
    /// request is lost without completing.
    RequestFailed {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Total attempts made.
        attempts: u32,
    },
    /// A latent bad sector was remapped to a spare track; the service
    /// succeeded after paying the relocation penalty.
    SectorRemap {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Relocation penalty charged (µs).
        penalty_us: u64,
    },
    /// A read was served in degraded mode: the data member is dead and
    /// the block was reconstructed from the surviving members' parity.
    DegradedRead {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// The dead member reconstructed around.
        failed_member: u32,
    },
    /// One background rebuild I/O competed with foreground service.
    RebuildIo {
        /// Simulation time (µs).
        now_us: u64,
        /// Stripe reconstructed onto the spare.
        stripe: u64,
        /// Member bandwidth the step consumed (µs).
        service_us: u64,
    },
    /// Bounded-queue overload shedding dropped the lowest-priority
    /// pending victim.
    Shed {
        /// Simulation time (µs).
        now_us: u64,
        /// Request id of the victim.
        req: u64,
        /// The victim's characterization value (the queue's worst).
        v: u128,
    },
    /// The farm router steered an arrival away from its policy-chosen
    /// shard because that shard's bounded queue was projected full.
    Redirect {
        /// Arrival time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// Shard the routing policy picked first.
        from_shard: u32,
        /// Shard the request was redirected to.
        to_shard: u32,
        /// Modeled queue depth of the overloaded shard at the decision.
        queue_depth: u64,
    },
    /// Per-shard roll-up emitted when a farm shard finishes its timeline.
    ShardReport {
        /// The shard's makespan (µs).
        now_us: u64,
        /// Shard index within the farm.
        shard: u32,
        /// Requests the shard served to completion.
        served: u64,
        /// Requests the shard's bounded queue shed.
        sheds: u64,
    },
    /// A drained shard's bounded in-flight handoff window closed with
    /// this request still resident; the daemon hands it off to a peer and
    /// retires it from the farm's ledger as migrated-in-flight.
    Migrate {
        /// Handoff-window close time (µs).
        now_us: u64,
        /// Request id.
        req: u64,
        /// The shard being drained.
        from_shard: u32,
        /// The designated handoff target (least-loaded eligible shard).
        to_shard: u32,
    },
    /// The health supervisor (or an operator event) quarantined a shard:
    /// new arrivals are routed around it until the cooldown expires.
    Quarantine {
        /// Quarantine decision time (µs).
        now_us: u64,
        /// The quarantined shard.
        shard: u32,
        /// Earliest re-probe time (µs): decision time plus the
        /// strike-scaled, jittered cooldown.
        until_us: u64,
    },
    /// The control plane retuned a shard at a safe epoch boundary: a
    /// scheduler knob changed live, or the farm swapped routing policy.
    Retune {
        /// Retune application time (µs).
        now_us: u64,
        /// The retuned shard (for policy swaps: the shard whose recorder
        /// logs the farm-wide change).
        shard: u32,
        /// Which knob changed: 0 = balance factor `f`, 1 = scan
        /// partitions `R`, 2 = blocking window `w`, 3 = routing policy.
        knob: u32,
    },
    /// A sampled wall-clock timing of one pipeline stage (opt-in; see
    /// [`crate::Stage`]). Span values come from the host clock, so they
    /// are nondeterministic and never emitted unless explicitly enabled.
    StageSpan {
        /// Simulation time (µs) at which the timed operation ran.
        now_us: u64,
        /// The pipeline stage that was timed.
        stage: crate::Stage,
        /// Wall-clock cost of the operation (ns).
        elapsed_ns: u64,
    },
}

impl TraceEvent {
    /// Stable `snake_case` name of the variant, used as the `event` field
    /// in JSONL/CSV renderings.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::ServiceStart { .. } => "service_start",
            TraceEvent::ServiceComplete { .. } => "service_complete",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Preempt { .. } => "preempt",
            TraceEvent::SpPromote { .. } => "sp_promote",
            TraceEvent::ErExpand { .. } => "er_expand",
            TraceEvent::ErReset { .. } => "er_reset",
            TraceEvent::QueueSwap { .. } => "queue_swap",
            TraceEvent::SweepReverse { .. } => "sweep_reverse",
            TraceEvent::MediaError { .. } => "media_error",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::RequestFailed { .. } => "request_failed",
            TraceEvent::SectorRemap { .. } => "sector_remap",
            TraceEvent::DegradedRead { .. } => "degraded_read",
            TraceEvent::RebuildIo { .. } => "rebuild_io",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Redirect { .. } => "redirect",
            TraceEvent::ShardReport { .. } => "shard_report",
            TraceEvent::Migrate { .. } => "migrate",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::Retune { .. } => "retune",
            TraceEvent::StageSpan { .. } => "stage_span",
        }
    }

    /// The simulation time the event carries (µs).
    #[inline(always)]
    pub fn now_us(&self) -> u64 {
        match *self {
            TraceEvent::Arrival { now_us, .. }
            | TraceEvent::Dispatch { now_us, .. }
            | TraceEvent::ServiceStart { now_us, .. }
            | TraceEvent::ServiceComplete { now_us, .. }
            | TraceEvent::Drop { now_us, .. }
            | TraceEvent::Preempt { now_us, .. }
            | TraceEvent::SpPromote { now_us, .. }
            | TraceEvent::ErExpand { now_us, .. }
            | TraceEvent::ErReset { now_us, .. }
            | TraceEvent::QueueSwap { now_us, .. }
            | TraceEvent::SweepReverse { now_us, .. }
            | TraceEvent::MediaError { now_us, .. }
            | TraceEvent::Retry { now_us, .. }
            | TraceEvent::RequestFailed { now_us, .. }
            | TraceEvent::SectorRemap { now_us, .. }
            | TraceEvent::DegradedRead { now_us, .. }
            | TraceEvent::RebuildIo { now_us, .. }
            | TraceEvent::Shed { now_us, .. }
            | TraceEvent::Redirect { now_us, .. }
            | TraceEvent::ShardReport { now_us, .. }
            | TraceEvent::Migrate { now_us, .. }
            | TraceEvent::Quarantine { now_us, .. }
            | TraceEvent::Retune { now_us, .. }
            | TraceEvent::StageSpan { now_us, .. } => now_us,
        }
    }

    /// The request id the event concerns, when it concerns one.
    pub fn req(&self) -> Option<u64> {
        match *self {
            TraceEvent::Arrival { req, .. }
            | TraceEvent::Dispatch { req, .. }
            | TraceEvent::ServiceStart { req, .. }
            | TraceEvent::ServiceComplete { req, .. }
            | TraceEvent::Drop { req, .. }
            | TraceEvent::MediaError { req, .. }
            | TraceEvent::Retry { req, .. }
            | TraceEvent::RequestFailed { req, .. }
            | TraceEvent::SectorRemap { req, .. }
            | TraceEvent::DegradedRead { req, .. }
            | TraceEvent::Shed { req, .. }
            | TraceEvent::Redirect { req, .. }
            | TraceEvent::Migrate { req, .. } => Some(req),
            _ => None,
        }
    }

    /// Append the event as one JSON object (no trailing newline).
    ///
    /// `u128` fields are emitted as strings; everything else as JSON
    /// numbers/booleans.
    pub fn write_json(&self, out: &mut String) {
        let name = self.name();
        match *self {
            TraceEvent::Arrival {
                now_us,
                req,
                cylinder,
                deadline_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"cylinder\":{cylinder},\"deadline_us\":{deadline_us}}}"
                );
            }
            TraceEvent::Dispatch {
                now_us,
                req,
                cylinder,
                queue_depth,
                slack_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"cylinder\":{cylinder},\"queue_depth\":{queue_depth},\
                     \"slack_us\":{slack_us}}}"
                );
            }
            TraceEvent::ServiceStart {
                now_us,
                req,
                cylinder,
                seek_cylinders,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"cylinder\":{cylinder},\"seek_cylinders\":{seek_cylinders}}}"
                );
            }
            TraceEvent::ServiceComplete {
                now_us,
                req,
                response_us,
                late,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"response_us\":{response_us},\"late\":{late}}}"
                );
            }
            TraceEvent::Drop {
                now_us,
                req,
                missed_by_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"missed_by_us\":{missed_by_us}}}"
                );
            }
            TraceEvent::Preempt {
                now_us,
                preempted_v,
                by_v,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\
                     \"preempted_v\":\"{preempted_v}\",\"by_v\":\"{by_v}\"}}"
                );
            }
            TraceEvent::SpPromote { now_us, v } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"v\":\"{v}\"}}"
                );
            }
            TraceEvent::ErExpand { now_us, window } | TraceEvent::ErReset { now_us, window } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"window\":\"{window}\"}}"
                );
            }
            TraceEvent::QueueSwap { now_us, batch } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"batch\":{batch}}}"
                );
            }
            TraceEvent::SweepReverse { now_us, cylinder } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"cylinder\":{cylinder}}}"
                );
            }
            TraceEvent::MediaError {
                now_us,
                req,
                attempt,
                transient,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"attempt\":{attempt},\"transient\":{transient}}}"
                );
            }
            TraceEvent::Retry {
                now_us,
                req,
                attempt,
                slack_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"attempt\":{attempt},\"slack_us\":{slack_us}}}"
                );
            }
            TraceEvent::RequestFailed {
                now_us,
                req,
                attempts,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"attempts\":{attempts}}}"
                );
            }
            TraceEvent::SectorRemap {
                now_us,
                req,
                penalty_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"penalty_us\":{penalty_us}}}"
                );
            }
            TraceEvent::DegradedRead {
                now_us,
                req,
                failed_member,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"failed_member\":{failed_member}}}"
                );
            }
            TraceEvent::RebuildIo {
                now_us,
                stripe,
                service_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"stripe\":{stripe},\
                     \"service_us\":{service_us}}}"
                );
            }
            TraceEvent::Shed { now_us, req, v } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\"v\":\"{v}\"}}"
                );
            }
            TraceEvent::Redirect {
                now_us,
                req,
                from_shard,
                to_shard,
                queue_depth,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"from_shard\":{from_shard},\"to_shard\":{to_shard},\
                     \"queue_depth\":{queue_depth}}}"
                );
            }
            TraceEvent::ShardReport {
                now_us,
                shard,
                served,
                sheds,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"shard\":{shard},\
                     \"served\":{served},\"sheds\":{sheds}}}"
                );
            }
            TraceEvent::Migrate {
                now_us,
                req,
                from_shard,
                to_shard,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"req\":{req},\
                     \"from_shard\":{from_shard},\"to_shard\":{to_shard}}}"
                );
            }
            TraceEvent::Quarantine {
                now_us,
                shard,
                until_us,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"shard\":{shard},\
                     \"until_us\":{until_us}}}"
                );
            }
            TraceEvent::Retune {
                now_us,
                shard,
                knob,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\"shard\":{shard},\
                     \"knob\":{knob}}}"
                );
            }
            TraceEvent::StageSpan {
                now_us,
                stage,
                elapsed_ns,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"{name}\",\"now_us\":{now_us},\
                     \"stage\":\"{}\",\"elapsed_ns\":{elapsed_ns}}}",
                    stage.name()
                );
            }
        }
    }

    /// The CSV header matching [`TraceEvent::write_csv`].
    pub fn csv_header() -> &'static str {
        "event,now_us,req,cylinder,a,b"
    }

    /// Append the event as one CSV row (no trailing newline).
    ///
    /// The `a`/`b` columns are event-specific: `deadline_us` (arrival),
    /// `queue_depth`/`slack_us` (dispatch), `seek_cylinders` (service
    /// start), `response_us`/`late` (service complete), `missed_by_us`
    /// (drop), `preempted_v`/`by_v` (preempt), `v` (sp_promote), `window`
    /// (er_expand/er_reset), `batch` (queue_swap), `attempt`/`transient`
    /// (media_error), `attempt`/`slack_us` (retry), `attempts`
    /// (request_failed), `penalty_us` (sector_remap), `failed_member`
    /// (degraded_read), `stripe`/`service_us` (rebuild_io), `v` (shed),
    /// `to_shard`/`queue_depth` (redirect, with `from_shard` in the
    /// `cylinder` column), `served`/`sheds` (shard_report, with the shard
    /// index in the `cylinder` column), `to_shard` (migrate, with
    /// `from_shard` in the `cylinder` column), `until_us` (quarantine,
    /// with the shard index in the `cylinder` column), the knob index
    /// (retune, with the shard index in the `cylinder` column), the stage's
    /// pipeline index/`elapsed_ns` (stage_span). Unused cells are empty.
    pub fn write_csv(&self, out: &mut String) {
        let name = self.name();
        let now = self.now_us();
        match *self {
            TraceEvent::Arrival {
                req,
                cylinder,
                deadline_us,
                ..
            } => {
                let _ = write!(out, "{name},{now},{req},{cylinder},{deadline_us},");
            }
            TraceEvent::Dispatch {
                req,
                cylinder,
                queue_depth,
                slack_us,
                ..
            } => {
                let _ = write!(
                    out,
                    "{name},{now},{req},{cylinder},{queue_depth},{slack_us}"
                );
            }
            TraceEvent::ServiceStart {
                req,
                cylinder,
                seek_cylinders,
                ..
            } => {
                let _ = write!(out, "{name},{now},{req},{cylinder},{seek_cylinders},");
            }
            TraceEvent::ServiceComplete {
                req,
                response_us,
                late,
                ..
            } => {
                let _ = write!(out, "{name},{now},{req},,{response_us},{}", u8::from(late));
            }
            TraceEvent::Drop {
                req, missed_by_us, ..
            } => {
                let _ = write!(out, "{name},{now},{req},,{missed_by_us},");
            }
            TraceEvent::Preempt {
                preempted_v, by_v, ..
            } => {
                let _ = write!(out, "{name},{now},,,{preempted_v},{by_v}");
            }
            TraceEvent::SpPromote { v, .. } => {
                let _ = write!(out, "{name},{now},,,{v},");
            }
            TraceEvent::ErExpand { window, .. } | TraceEvent::ErReset { window, .. } => {
                let _ = write!(out, "{name},{now},,,{window},");
            }
            TraceEvent::QueueSwap { batch, .. } => {
                let _ = write!(out, "{name},{now},,,{batch},");
            }
            TraceEvent::SweepReverse { cylinder, .. } => {
                let _ = write!(out, "{name},{now},,{cylinder},,");
            }
            TraceEvent::MediaError {
                req,
                attempt,
                transient,
                ..
            } => {
                let _ = write!(out, "{name},{now},{req},,{attempt},{}", u8::from(transient));
            }
            TraceEvent::Retry {
                req,
                attempt,
                slack_us,
                ..
            } => {
                let _ = write!(out, "{name},{now},{req},,{attempt},{slack_us}");
            }
            TraceEvent::RequestFailed { req, attempts, .. } => {
                let _ = write!(out, "{name},{now},{req},,{attempts},");
            }
            TraceEvent::SectorRemap {
                req, penalty_us, ..
            } => {
                let _ = write!(out, "{name},{now},{req},,{penalty_us},");
            }
            TraceEvent::DegradedRead {
                req, failed_member, ..
            } => {
                let _ = write!(out, "{name},{now},{req},,{failed_member},");
            }
            TraceEvent::RebuildIo {
                stripe, service_us, ..
            } => {
                let _ = write!(out, "{name},{now},,,{stripe},{service_us}");
            }
            TraceEvent::Shed { req, v, .. } => {
                let _ = write!(out, "{name},{now},{req},,{v},");
            }
            TraceEvent::Redirect {
                req,
                from_shard,
                to_shard,
                queue_depth,
                ..
            } => {
                let _ = write!(
                    out,
                    "{name},{now},{req},{from_shard},{to_shard},{queue_depth}"
                );
            }
            TraceEvent::ShardReport {
                shard,
                served,
                sheds,
                ..
            } => {
                let _ = write!(out, "{name},{now},,{shard},{served},{sheds}");
            }
            TraceEvent::Migrate {
                req,
                from_shard,
                to_shard,
                ..
            } => {
                let _ = write!(out, "{name},{now},{req},{from_shard},{to_shard},");
            }
            TraceEvent::Quarantine {
                shard, until_us, ..
            } => {
                let _ = write!(out, "{name},{now},,{shard},{until_us},");
            }
            TraceEvent::Retune { shard, knob, .. } => {
                let _ = write!(out, "{name},{now},,{shard},{knob},");
            }
            TraceEvent::StageSpan {
                stage, elapsed_ns, ..
            } => {
                let _ = write!(out, "{name},{now},,,{},{elapsed_ns}", stage.index());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_snake_case() {
        let e = TraceEvent::SpPromote { now_us: 1, v: 2 };
        assert_eq!(e.name(), "sp_promote");
        assert_eq!(e.now_us(), 1);
        assert_eq!(e.req(), None);
    }

    #[test]
    fn json_rendering_is_one_object() {
        let mut s = String::new();
        TraceEvent::Dispatch {
            now_us: 10,
            req: 3,
            cylinder: 77,
            queue_depth: 4,
            slack_us: -5,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            "{\"event\":\"dispatch\",\"now_us\":10,\"req\":3,\
             \"cylinder\":77,\"queue_depth\":4,\"slack_us\":-5}"
        );
    }

    #[test]
    fn big_values_render_as_strings_in_json() {
        let mut s = String::new();
        TraceEvent::Preempt {
            now_us: 0,
            preempted_v: u128::MAX,
            by_v: 7,
        }
        .write_json(&mut s);
        assert!(s.contains(&format!("\"{}\"", u128::MAX)));
        assert!(s.contains("\"by_v\":\"7\""));
    }

    #[test]
    fn stage_span_renders_stage_by_name() {
        let mut s = String::new();
        let e = TraceEvent::StageSpan {
            now_us: 4,
            stage: crate::Stage::Characterize,
            elapsed_ns: 85,
        };
        e.write_json(&mut s);
        assert_eq!(
            s,
            "{\"event\":\"stage_span\",\"now_us\":4,\
             \"stage\":\"characterize\",\"elapsed_ns\":85}"
        );
        assert_eq!(e.name(), "stage_span");
        assert_eq!(e.req(), None);
    }

    #[test]
    fn csv_rows_match_the_header_width() {
        let header_cols = TraceEvent::csv_header().split(',').count();
        let events = [
            TraceEvent::Arrival {
                now_us: 0,
                req: 1,
                cylinder: 2,
                deadline_us: 3,
            },
            TraceEvent::ServiceComplete {
                now_us: 9,
                req: 1,
                response_us: 9,
                late: true,
            },
            TraceEvent::QueueSwap {
                now_us: 5,
                batch: 2,
            },
            TraceEvent::SweepReverse {
                now_us: 6,
                cylinder: 30,
            },
            TraceEvent::Redirect {
                now_us: 7,
                req: 4,
                from_shard: 0,
                to_shard: 2,
                queue_depth: 16,
            },
            TraceEvent::ShardReport {
                now_us: 8,
                shard: 2,
                served: 100,
                sheds: 3,
            },
            TraceEvent::Migrate {
                now_us: 9,
                req: 5,
                from_shard: 1,
                to_shard: 0,
            },
            TraceEvent::Quarantine {
                now_us: 10,
                shard: 2,
                until_us: 90,
            },
            TraceEvent::Retune {
                now_us: 11,
                shard: 1,
                knob: 0,
            },
            TraceEvent::StageSpan {
                now_us: 9,
                stage: crate::Stage::Dispatch,
                elapsed_ns: 120,
            },
        ];
        for e in events {
            let mut s = String::new();
            e.write_csv(&mut s);
            assert_eq!(s.split(',').count(), header_cols, "row {s}");
        }
    }
}
