//! Trace sinks: where emitted events go.
//!
//! The contract is [`TraceSink`]: one `emit` call per event, plus the
//! associated constant [`TraceSink::ENABLED`] that lets instrumented code
//! skip event *construction* entirely when the sink is the no-op
//! [`NullSink`]. Instrumentation sites follow the pattern
//!
//! ```ignore
//! if S::ENABLED {
//!     sink.emit(&TraceEvent::QueueSwap { now_us, batch });
//! }
//! ```
//!
//! so that with the default `NullSink` the branch is constant-folded away
//! and the instrumented hot path is byte-for-byte the uninstrumented one.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

/// A consumer of [`TraceEvent`]s.
pub trait TraceSink {
    /// Whether this sink actually consumes events. Instrumentation sites
    /// guard event construction on this constant so a disabled sink costs
    /// nothing; only [`NullSink`] should set it to `false`.
    const ENABLED: bool = true;

    /// Consume one event.
    fn emit(&mut self, event: &TraceEvent);
}

/// A mutable borrow of a sink is itself a sink.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, event: &TraceEvent) {
        (**self).emit(event);
    }
}

/// The no-op sink: discards everything and reports itself disabled, so
/// instrumented code monomorphizes to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    fn emit(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory sink keeping the most recent events.
///
/// When full, the oldest event is evicted (and counted); the ring never
/// reallocates past its capacity, so it is safe to leave attached to
/// long runs.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    evicted: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// The held events as an owned vector, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(*event);
    }
}

/// A sink rendering every event as one JSON object per line (JSONL) into
/// any [`Write`] target.
///
/// # Panics
///
/// `emit` panics if the underlying writer fails — a trace explicitly
/// requested and then lost would silently invalidate an experiment.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    buf: String,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer. Buffer the writer yourself (`BufWriter`) when it is
    /// a raw file: one write call is issued per event.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            buf: String::with_capacity(160),
            lines: 0,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.writer.flush().expect("trace sink flush failed");
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        self.buf.clear();
        event.write_json(&mut self.buf);
        self.buf.push('\n');
        self.writer
            .write_all(self.buf.as_bytes())
            .expect("trace sink write failed");
        self.lines += 1;
    }
}

/// A sink rendering events as CSV rows (header emitted before the first
/// row; see [`TraceEvent::write_csv`] for the column contract).
///
/// # Panics
///
/// `emit` panics if the underlying writer fails, like [`JsonlSink`].
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    buf: String,
    wrote_header: bool,
    rows: u64,
}

impl<W: Write> CsvSink<W> {
    /// Wrap a writer (buffer it yourself when it is a raw file).
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            buf: String::with_capacity(128),
            wrote_header: false,
            rows: 0,
        }
    }

    /// Data rows written so far (the header is not counted).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.writer.flush().expect("trace sink flush failed");
        self.writer
    }
}

impl<W: Write> TraceSink for CsvSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        self.buf.clear();
        if !self.wrote_header {
            self.buf.push_str(TraceEvent::csv_header());
            self.buf.push('\n');
            self.wrote_header = true;
        }
        event.write_csv(&mut self.buf);
        self.buf.push('\n');
        self.writer
            .write_all(self.buf.as_bytes())
            .expect("trace sink write failed");
        self.rows += 1;
    }
}

/// A sink duplicating every event into two sinks (e.g. a
/// [`crate::Snapshot`] for aggregates plus a [`JsonlSink`] for the raw
/// timeline).
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> Tee<A, B> {
    /// Combine two sinks.
    pub fn new(a: A, b: B) -> Self {
        Tee(a, b)
    }

    /// Split back into the two sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.0, self.1)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn emit(&mut self, event: &TraceEvent) {
        if A::ENABLED {
            self.0.emit(event);
        }
        if B::ENABLED {
            self.1.emit(event);
        }
    }
}

/// A cloneable handle to one shared sink, so several instrumented layers
/// (the engine and a scheduler it drives, say) can interleave events into
/// a single stream. Single-threaded by design, like the simulator.
#[derive(Debug, Default)]
pub struct SharedSink<S>(Rc<RefCell<S>>);

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Rc::clone(&self.0))
    }
}

impl<S: TraceSink> SharedSink<S> {
    /// Wrap a sink for sharing.
    pub fn new(sink: S) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Run `f` against the shared sink (e.g. to read a
    /// [`crate::Snapshot`] mid-run).
    ///
    /// # Panics
    ///
    /// Panics if called from inside the sink's own `emit`.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Recover the inner sink. Fails (returning `self`) while other
    /// handles are still alive.
    pub fn try_unwrap(self) -> Result<S, Self> {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .map_err(SharedSink)
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, event: &TraceEvent) {
        self.0.borrow_mut().emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap(t: u64) -> TraceEvent {
        TraceEvent::QueueSwap {
            now_us: t,
            batch: 1,
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        assert!(RingSink::ENABLED);
        // Tee is enabled iff either side is.
        assert!(!<Tee<NullSink, NullSink>>::ENABLED);
        assert!(<Tee<NullSink, RingSink>>::ENABLED);
        NullSink.emit(&swap(0)); // and harmless to call anyway
    }

    #[test]
    fn ring_keeps_the_most_recent() {
        let mut ring = RingSink::new(3);
        for t in 0..5 {
            ring.emit(&swap(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.evicted(), 2);
        let times: Vec<u64> = ring.events().map(|e| e.now_us()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(ring.to_vec().len(), 3);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ring_smaller_than_stream_keeps_exactly_the_last_cap_events() {
        // Regression guard for the wraparound boundary: drive a long
        // stream through small rings and require that each one holds
        // exactly its last `cap` events, oldest first, with every other
        // event counted as evicted — no off-by-one at the fill/evict
        // transition, no reordering across many wraps.
        for cap in [1usize, 2, 3, 7, 64] {
            let mut ring = RingSink::new(cap);
            let total = 1000u64;
            for t in 0..total {
                ring.emit(&swap(t));
                assert!(ring.len() <= cap, "cap {cap} exceeded at t={t}");
            }
            assert_eq!(ring.len(), cap);
            assert_eq!(ring.evicted(), total - cap as u64);
            let times: Vec<u64> = ring.events().map(|e| e.now_us()).collect();
            let expected: Vec<u64> = (total - cap as u64..total).collect();
            assert_eq!(times, expected, "cap {cap}");
        }
        // Zero capacity is clamped to one slot, never to an empty ring.
        let mut clamped = RingSink::new(0);
        clamped.emit(&swap(1));
        clamped.emit(&swap(2));
        assert_eq!(clamped.capacity(), 1);
        assert_eq!(clamped.to_vec()[0].now_us(), 2);
        assert_eq!(clamped.evicted(), 1);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&swap(1));
        sink.emit(&swap(2));
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"queue_swap\""));
    }

    #[test]
    fn csv_emits_header_once() {
        let mut sink = CsvSink::new(Vec::new());
        sink.emit(&swap(1));
        sink.emit(&swap(2));
        assert_eq!(sink.rows(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], TraceEvent::csv_header());
    }

    #[test]
    fn tee_duplicates() {
        let mut tee = Tee::new(RingSink::new(8), RingSink::new(8));
        tee.emit(&swap(7));
        let (a, b) = tee.into_inner();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn shared_sink_interleaves_and_unwraps() {
        let shared = SharedSink::new(RingSink::new(8));
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.emit(&swap(1));
        b.emit(&swap(2));
        assert_eq!(shared.with(|r| r.len()), 2);
        drop(a);
        drop(b);
        let ring = shared.try_unwrap().expect("all clones dropped");
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn shared_sink_unwrap_fails_while_shared() {
        let shared = SharedSink::new(RingSink::new(1));
        let other = shared.clone();
        assert!(shared.try_unwrap().is_err());
        drop(other);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mutable_borrow_is_a_sink() {
        let mut ring = RingSink::new(4);
        let borrow = &mut ring;
        borrow.emit(&swap(3));
        assert_eq!(ring.len(), 1);
        assert!(<&mut RingSink>::ENABLED);
        assert!(!<&mut NullSink>::ENABLED);
    }
}
