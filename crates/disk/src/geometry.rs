//! Platter geometry: cylinders, zones, and zoned transfer rates.

/// Physical layout of a zoned disk.
///
/// Cylinder 0 is the *outermost* cylinder; outer zones hold more sectors
/// per track (zoned bit recording), so transfers there are faster.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    cylinders: u32,
    tracks_per_cylinder: u32,
    sector_bytes: u32,
    rpm: u32,
    /// Number of cylinders in each zone, outermost zone first.
    zone_cylinders: Vec<u32>,
    /// Sectors per track in each zone, outermost zone first.
    zone_sectors_per_track: Vec<u32>,
    /// First cylinder of each zone (prefix sums of `zone_cylinders`).
    zone_start: Vec<u32>,
}

impl DiskGeometry {
    /// The paper's Table-1 drive: 3832 cylinders, 16 zones, 512-byte
    /// sectors, 7200 RPM, ~2.1 GB.
    ///
    /// Table 1's OCR drops the per-zone sector counts and shows an
    /// impossible "1 track/cylinder" for a 2.1 GB drive; we model 10
    /// tracks per cylinder and 16 zones ranging 130 → 85 sectors/track,
    /// which lands the capacity at ≈2.1 GB and the sustained transfer rate
    /// in the 5.2–8.0 MB/s band of that drive generation (see DESIGN.md
    /// §4, reconstruction 6).
    pub fn table1() -> Self {
        // 8 zones of 240 cylinders followed by 8 of 239 = 3832.
        let zone_cylinders: Vec<u32> = (0..16).map(|z| if z < 8 { 240 } else { 239 }).collect();
        let zone_sectors_per_track: Vec<u32> = (0..16u32).map(|z| 130 - 3 * z).collect();
        Self::new(10, 512, 7200, zone_cylinders, zone_sectors_per_track)
            .expect("table-1 geometry is valid")
    }

    /// A modern-era 7200-RPM hard drive (≈1 TB class): 150 k cylinders,
    /// 30 zones, 4-KB sectors. Not part of the paper's Table 1 — included
    /// to show the model (and the schedulers above it) are not tied to a
    /// 1990s drive. Seek anchors pair with [`crate::SeekModel::modern`].
    pub fn modern() -> Self {
        let zones = 30u32;
        let zone_cylinders: Vec<u32> = (0..zones).map(|_| 5_000).collect();
        // 4-KB sectors, 500 → 250 sectors/track outer → inner.
        let zone_sectors_per_track: Vec<u32> =
            (0..zones).map(|z| 500 - z * 250 / (zones - 1)).collect();
        Self::new(4, 4096, 7200, zone_cylinders, zone_sectors_per_track)
            .expect("modern geometry is valid")
    }

    /// Build a custom geometry.
    ///
    /// Returns `None` when any argument is degenerate (no zones, zero
    /// cylinders or sectors anywhere, zero RPM, or mismatched zone vectors).
    pub fn new(
        tracks_per_cylinder: u32,
        sector_bytes: u32,
        rpm: u32,
        zone_cylinders: Vec<u32>,
        zone_sectors_per_track: Vec<u32>,
    ) -> Option<Self> {
        if zone_cylinders.is_empty()
            || zone_cylinders.len() != zone_sectors_per_track.len()
            || zone_cylinders.contains(&0)
            || zone_sectors_per_track.contains(&0)
            || tracks_per_cylinder == 0
            || sector_bytes == 0
            || rpm == 0
        {
            return None;
        }
        let mut zone_start = Vec::with_capacity(zone_cylinders.len());
        let mut acc = 0u32;
        for &zc in &zone_cylinders {
            zone_start.push(acc);
            acc = acc.checked_add(zc)?;
        }
        Some(DiskGeometry {
            cylinders: acc,
            tracks_per_cylinder,
            sector_bytes,
            rpm,
            zone_cylinders,
            zone_sectors_per_track,
            zone_start,
        })
    }

    /// Total number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.cylinders
    }

    /// Tracks (surfaces) per cylinder.
    pub fn tracks_per_cylinder(&self) -> u32 {
        self.tracks_per_cylinder
    }

    /// Sector size in bytes.
    pub fn sector_bytes(&self) -> u32 {
        self.sector_bytes
    }

    /// Spindle speed in revolutions per minute.
    pub fn rpm(&self) -> u32 {
        self.rpm
    }

    /// Number of recording zones.
    pub fn zones(&self) -> usize {
        self.zone_cylinders.len()
    }

    /// One full revolution, in milliseconds.
    pub fn revolution_ms(&self) -> f64 {
        60_000.0 / self.rpm as f64
    }

    /// The zone containing `cylinder`.
    ///
    /// # Panics
    ///
    /// Panics if `cylinder` is out of range.
    pub fn zone_of(&self, cylinder: u32) -> usize {
        assert!(
            cylinder < self.cylinders,
            "cylinder {cylinder} out of range ({} cylinders)",
            self.cylinders
        );
        match self.zone_start.binary_search(&cylinder) {
            Ok(z) => z,
            Err(ins) => ins - 1,
        }
    }

    /// Sectors per track at `cylinder`.
    pub fn sectors_per_track(&self, cylinder: u32) -> u32 {
        self.zone_sectors_per_track[self.zone_of(cylinder)]
    }

    /// Bytes stored in one cylinder.
    pub fn cylinder_bytes(&self, cylinder: u32) -> u64 {
        self.sectors_per_track(cylinder) as u64
            * self.tracks_per_cylinder as u64
            * self.sector_bytes as u64
    }

    /// Total formatted capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.zone_cylinders
            .iter()
            .zip(&self.zone_sectors_per_track)
            .map(|(&zc, &spt)| {
                zc as u64 * self.tracks_per_cylinder as u64 * spt as u64 * self.sector_bytes as u64
            })
            .sum()
    }

    /// Sustained media transfer rate at `cylinder`, bytes per second.
    pub fn transfer_rate(&self, cylinder: u32) -> f64 {
        let per_rev = self.sectors_per_track(cylinder) as f64 * self.sector_bytes as f64;
        per_rev * self.rpm as f64 / 60.0
    }

    /// Time to stream `bytes` starting at `cylinder`, in milliseconds
    /// (media time only, no seeks or rotational positioning; track and
    /// cylinder switches are assumed free as in the paper's model).
    pub fn transfer_ms(&self, cylinder: u32, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_rate(cylinder) * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let g = DiskGeometry::table1();
        assert_eq!(g.cylinders(), 3832);
        assert_eq!(g.zones(), 16);
        assert_eq!(g.sector_bytes(), 512);
        assert_eq!(g.rpm(), 7200);
        assert!((g.revolution_ms() - 8.333).abs() < 0.01);
        // Capacity ≈ 2.1 GB.
        let gb = g.capacity_bytes() as f64 / 1e9;
        assert!((1.9..2.3).contains(&gb), "capacity {gb} GB");
    }

    #[test]
    fn zones_cover_all_cylinders() {
        let g = DiskGeometry::table1();
        assert_eq!(g.zone_of(0), 0);
        assert_eq!(g.zone_of(239), 0);
        assert_eq!(g.zone_of(240), 1);
        assert_eq!(g.zone_of(3831), 15);
        // Sectors per track decrease monotonically inward.
        let mut prev = u32::MAX;
        for z in 0..16 {
            let cyl = if z < 8 { z * 240 } else { 1920 + (z - 8) * 239 };
            let spt = g.sectors_per_track(cyl as u32);
            assert!(spt < prev);
            prev = spt;
        }
    }

    #[test]
    fn outer_zone_is_faster() {
        let g = DiskGeometry::table1();
        assert!(g.transfer_rate(0) > g.transfer_rate(3831));
        // In the 5.2–8.0 MB/s band.
        assert!(g.transfer_rate(0) < 8.2e6);
        assert!(g.transfer_rate(3831) > 5.0e6);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let g = DiskGeometry::table1();
        let one = g.transfer_ms(100, 64 * 1024);
        let two = g.transfer_ms(100, 128 * 1024);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zone_of_rejects_out_of_range() {
        DiskGeometry::table1().zone_of(4000);
    }

    #[test]
    fn degenerate_geometries_rejected() {
        assert!(DiskGeometry::new(0, 512, 7200, vec![10], vec![100]).is_none());
        assert!(DiskGeometry::new(1, 512, 7200, vec![], vec![]).is_none());
        assert!(DiskGeometry::new(1, 512, 7200, vec![10], vec![100, 90]).is_none());
        assert!(DiskGeometry::new(1, 512, 0, vec![10], vec![100]).is_none());
        assert!(DiskGeometry::new(1, 512, 7200, vec![10, 0], vec![100, 90]).is_none());
    }
}

#[cfg(test)]
mod modern_tests {
    use super::*;

    #[test]
    fn modern_profile_is_terabyte_class() {
        let g = DiskGeometry::modern();
        assert_eq!(g.cylinders(), 150_000);
        let tb = g.capacity_bytes() as f64 / 1e12;
        assert!((0.6..1.4).contains(&tb), "capacity {tb:.2} TB");
        // Modern transfer rates: 120-250 MB/s.
        assert!(g.transfer_rate(0) > 1.5e8);
        assert!(g.transfer_rate(149_999) > 0.8e8);
    }

    #[test]
    fn modern_seek_anchors() {
        let m = crate::SeekModel::modern();
        let avg = m.average_random_ms(150_000);
        assert!((7.0..10.0).contains(&avg), "avg {avg:.2} ms");
        let max = m.max_ms(150_000);
        assert!((13.0..18.0).contains(&max), "max {max:.2} ms");
        assert!(m.seek_ms(1) < 1.0);
    }

    #[test]
    fn schedulers_run_on_the_modern_drive() {
        use crate::{Disk, SeekModel};
        let mut d = Disk::new(DiskGeometry::modern(), SeekModel::modern());
        let b = d.service(75_000, 1 << 20); // 1 MB read mid-platter
                                            // ≈ seek + rotation + ~5 ms transfer at ~200 MB/s.
        assert!(b.total_us() > 4_000 && b.total_us() < 40_000, "{b:?}");
    }
}
