//! The disk state machine: head position, platter angle, service times.

use crate::geometry::DiskGeometry;
use crate::seek::SeekModel;
use crate::{ms_to_us, Micros};

/// Per-request service-time breakdown, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceBreakdown {
    /// Arm movement time.
    pub seek_us: Micros,
    /// Rotational positioning time.
    pub rotation_us: Micros,
    /// Media transfer time.
    pub transfer_us: Micros,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total_us(&self) -> Micros {
        self.seek_us + self.rotation_us + self.transfer_us
    }
}

/// A single simulated disk.
///
/// The disk tracks its head cylinder and the platter's angular position
/// (as a fraction of one revolution), so rotational latency is a
/// deterministic consequence of the request sequence rather than a random
/// draw — repeated simulations of the same trace give identical timings.
#[derive(Debug, Clone)]
pub struct Disk {
    geometry: DiskGeometry,
    seek: SeekModel,
    head: u32,
    /// Platter angle in `[0, 1)` revolutions.
    angle: f64,
    /// Accumulated statistics.
    stats: DiskStats,
}

/// Aggregate statistics over all serviced requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Requests serviced.
    pub requests: u64,
    /// Total seek time.
    pub seek_us: Micros,
    /// Total rotational latency.
    pub rotation_us: Micros,
    /// Total transfer time.
    pub transfer_us: Micros,
}

impl DiskStats {
    /// Total busy time.
    pub fn busy_us(&self) -> Micros {
        self.seek_us + self.rotation_us + self.transfer_us
    }
}

impl Disk {
    /// A fresh disk with the given geometry and seek model, head parked at
    /// cylinder 0.
    pub fn new(geometry: DiskGeometry, seek: SeekModel) -> Self {
        Disk {
            geometry,
            seek,
            head: 0,
            angle: 0.0,
            stats: DiskStats::default(),
        }
    }

    /// The paper's Table-1 disk.
    pub fn table1() -> Self {
        Disk::new(DiskGeometry::table1(), SeekModel::table1())
    }

    /// Current head cylinder.
    pub fn head(&self) -> u32 {
        self.head
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The disk's seek model.
    pub fn seek_model(&self) -> &SeekModel {
        &self.seek
    }

    /// Accumulated service statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Absolute cylinder distance from the head to `cylinder`.
    pub fn distance_to(&self, cylinder: u32) -> u32 {
        self.head.abs_diff(cylinder)
    }

    /// Seek time (µs) the head *would* incur moving to `cylinder`, without
    /// moving it. Schedulers use this for shortest-seek decisions.
    pub fn seek_cost_us(&self, cylinder: u32) -> Micros {
        ms_to_us(self.seek.seek_ms(self.distance_to(cylinder)))
    }

    /// Service a request for `bytes` at `cylinder`: seek there, wait for
    /// the target sector, transfer. Advances head, angle, and statistics.
    ///
    /// The target start angle is derived deterministically from the
    /// cylinder number (requests address whole file blocks laid out from
    /// sector 0 upward; different cylinders start at different offsets
    /// because preceding cylinders rarely hold a whole number of blocks).
    ///
    /// # Panics
    ///
    /// Panics if `cylinder` is out of range.
    pub fn service(&mut self, cylinder: u32, bytes: u64) -> ServiceBreakdown {
        let spt = self.geometry.sectors_per_track(cylinder); // validates range
        let rev_ms = self.geometry.revolution_ms();

        // Seek.
        let seek_ms = self.seek.seek_ms(self.distance_to(cylinder));
        self.head = cylinder;
        self.advance(seek_ms);

        // Rotational latency: wait until the target sector's start angle
        // comes under the head. A simple deterministic layout: the block
        // begins at sector (cylinder * 17) mod sectors_per_track.
        let target_sector = (cylinder as u64 * 17) % spt as u64;
        let target_angle = target_sector as f64 / spt as f64;
        let mut wait = target_angle - self.angle;
        if wait < 0.0 {
            wait += 1.0;
        }
        let rotation_ms = wait * rev_ms;
        self.advance(rotation_ms);

        // Transfer.
        let transfer_ms = self.geometry.transfer_ms(cylinder, bytes);
        self.advance(transfer_ms);

        let b = ServiceBreakdown {
            seek_us: ms_to_us(seek_ms),
            rotation_us: ms_to_us(rotation_ms),
            transfer_us: ms_to_us(transfer_ms),
        };
        self.stats.requests += 1;
        self.stats.seek_us += b.seek_us;
        self.stats.rotation_us += b.rotation_us;
        self.stats.transfer_us += b.transfer_us;
        b
    }

    /// Let the platter spin for `ms` milliseconds (used for idle time too).
    pub fn advance(&mut self, ms: f64) {
        let rev = self.geometry.revolution_ms();
        self.angle = (self.angle + ms / rev).fract();
        if self.angle < 0.0 {
            self.angle += 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cylinder_service_has_no_seek() {
        let mut d = Disk::table1();
        d.service(500, 64 * 1024);
        let b = d.service(500, 64 * 1024);
        assert_eq!(b.seek_us, 0);
        assert!(b.transfer_us > 0);
    }

    #[test]
    fn far_seek_costs_more() {
        let mut a = Disk::table1();
        let near = a.service(10, 64 * 1024);
        let mut b = Disk::table1();
        let far = b.service(3800, 64 * 1024);
        assert!(far.seek_us > near.seek_us);
    }

    #[test]
    fn rotation_bounded_by_one_revolution() {
        let mut d = Disk::table1();
        for cyl in [0u32, 100, 3831, 77, 1918] {
            let b = d.service(cyl, 4096);
            assert!(b.rotation_us <= ms_to_us(d.geometry().revolution_ms()) + 1);
        }
    }

    #[test]
    fn deterministic_traces() {
        let trace = [(100u32, 65536u64), (2000, 32768), (1500, 65536), (4, 512)];
        let run = || {
            let mut d = Disk::table1();
            trace
                .iter()
                .map(|&(c, b)| d.service(c, b))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::table1();
        d.service(100, 65536);
        d.service(200, 65536);
        let s = d.stats();
        assert_eq!(s.requests, 2);
        assert!(s.busy_us() > 0);
        assert_eq!(s.busy_us(), s.seek_us + s.rotation_us + s.transfer_us);
    }

    #[test]
    fn seek_cost_probe_does_not_move_head() {
        let d = {
            let mut d = Disk::table1();
            d.service(1000, 512);
            d
        };
        let before = d.head();
        let _ = d.seek_cost_us(3000);
        assert_eq!(d.head(), before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn service_validates_cylinder() {
        Disk::table1().service(1_000_000, 512);
    }

    #[test]
    fn block_transfer_time_is_plausible() {
        // 64 KB at ~5–8 MB/s should take ~8–13 ms.
        let mut d = Disk::table1();
        let b = d.service(0, 64 * 1024);
        let ms = b.transfer_us as f64 / 1000.0;
        assert!((7.0..14.0).contains(&ms), "transfer {ms} ms");
    }
}
