//! RAID-5 striping, as deployed in the PanaViss server (Table 1: five
//! disks per group, four data + one rotating parity).
//!
//! The model is block-level: logical 64-KB file blocks are striped across
//! the data disks of each stripe, with the parity block rotating
//! left-symmetrically. Reads touch one member disk; writes use the
//! read-modify-write small-write path (read old data + old parity, write
//! new data + new parity), which on the data-plus-parity pair costs two
//! extra rotations on each of the two disks involved.

use crate::disk::{Disk, ServiceBreakdown};
use crate::Micros;

/// A RAID-5 group of identical member disks.
#[derive(Debug, Clone)]
pub struct Raid5 {
    disks: Vec<Disk>,
}

/// Per-member breakdown of a small-write (read-modify-write): the data
/// and parity members each pay a read-old + write-new pair; the write
/// completes when the slower of the two finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteBreakdown {
    /// Combined (read-old + write-new) breakdown on the data member.
    pub data: ServiceBreakdown,
    /// Combined (read-old + write-new) breakdown on the parity member.
    pub parity: ServiceBreakdown,
}

impl WriteBreakdown {
    /// Completion time of the write: the two members work in parallel,
    /// so the slower one gates.
    pub fn total_us(&self) -> Micros {
        self.data.total_us().max(self.parity.total_us())
    }

    /// The gating member's breakdown (data on ties), for seek/rotation
    /// attribution of the write path.
    pub fn critical(&self) -> ServiceBreakdown {
        if self.parity.total_us() > self.data.total_us() {
            self.parity
        } else {
            self.data
        }
    }
}

/// Where a logical block lives inside the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLocation {
    /// Member disk holding the data block.
    pub data_disk: usize,
    /// Member disk holding the stripe's parity block.
    pub parity_disk: usize,
    /// Stripe number, used as the per-disk block offset.
    pub stripe: u64,
}

impl Raid5 {
    /// Build a group of `members` identical disks (`members >= 3`:
    /// at least two data disks plus parity).
    ///
    /// # Panics
    ///
    /// Panics if `members < 3`.
    pub fn new(prototype: Disk, members: usize) -> Self {
        assert!(members >= 3, "RAID-5 needs at least 3 member disks");
        Raid5 {
            disks: vec![prototype; members],
        }
    }

    /// The paper's 4 data + 1 parity group of Table-1 disks.
    pub fn table1() -> Self {
        Raid5::new(Disk::table1(), 5)
    }

    /// Number of member disks.
    pub fn members(&self) -> usize {
        self.disks.len()
    }

    /// Number of data blocks per stripe.
    pub fn data_per_stripe(&self) -> usize {
        self.disks.len() - 1
    }

    /// Locate logical block `lba` (left-symmetric layout).
    pub fn locate(&self, lba: u64) -> BlockLocation {
        let n = self.disks.len() as u64;
        let d = n - 1;
        let stripe = lba / d;
        let within = lba % d;
        // Parity rotates one disk left each stripe.
        let parity_disk = ((n - 1) - (stripe % n)) as usize;
        // Data blocks fill the non-parity slots in order.
        let mut slot = within as usize;
        if slot >= parity_disk {
            slot += 1;
        }
        BlockLocation {
            data_disk: slot,
            parity_disk,
            stripe,
        }
    }

    /// Map a stripe number to a member-disk cylinder, spreading stripes
    /// sequentially across the disk.
    fn cylinder_of_stripe(&self, stripe: u64, block_bytes: u64) -> u32 {
        let g = self.disks[0].geometry();
        let cyls = g.cylinders() as u64;
        // Blocks per cylinder varies by zone; use the average for layout.
        let total_blocks = g.capacity_bytes() / block_bytes;
        let per_cyl = (total_blocks / cyls).max(1);
        ((stripe / per_cyl) % cyls) as u32
    }

    /// Read logical block `lba` of `block_bytes`. Returns the member-disk
    /// service breakdown.
    pub fn read(&mut self, lba: u64, block_bytes: u64) -> ServiceBreakdown {
        let loc = self.locate(lba);
        let cyl = self.cylinder_of_stripe(loc.stripe, block_bytes);
        self.disks[loc.data_disk].service(cyl, block_bytes)
    }

    /// Write logical block `lba` via the small-write path
    /// (read-modify-write on the data and parity disks). Returns the
    /// per-member service breakdowns; the two members work in parallel,
    /// so completion is [`WriteBreakdown::total_us`].
    pub fn write(&mut self, lba: u64, block_bytes: u64) -> WriteBreakdown {
        let loc = self.locate(lba);
        let cyl = self.cylinder_of_stripe(loc.stripe, block_bytes);
        // Read old + write new on each of the two disks.
        let pair = |d: &mut Disk| {
            let a = d.service(cyl, block_bytes);
            let b = d.service(cyl, block_bytes);
            ServiceBreakdown {
                seek_us: a.seek_us + b.seek_us,
                rotation_us: a.rotation_us + b.rotation_us,
                transfer_us: a.transfer_us + b.transfer_us,
            }
        };
        WriteBreakdown {
            data: pair(&mut self.disks[loc.data_disk]),
            parity: pair(&mut self.disks[loc.parity_disk]),
        }
    }

    /// Read logical block `lba` in *degraded mode*: member `failed` is
    /// gone, so the block is reconstructed by reading the stripe's block
    /// from every surviving member and XOR-ing. All survivors do the
    /// work (their head/angle state advances); the reconstruction
    /// completes when the slowest finishes, so the returned breakdown is
    /// the gating member's.
    ///
    /// When the block's data member is *not* the failed one, this is just
    /// a normal [`Raid5::read`].
    ///
    /// # Panics
    ///
    /// Panics if `failed` is out of range.
    pub fn degraded_read(&mut self, lba: u64, block_bytes: u64, failed: usize) -> ServiceBreakdown {
        assert!(failed < self.disks.len(), "failed member out of range");
        let loc = self.locate(lba);
        if loc.data_disk != failed {
            return self.read(lba, block_bytes);
        }
        let cyl = self.cylinder_of_stripe(loc.stripe, block_bytes);
        let mut worst = ServiceBreakdown::default();
        for (m, disk) in self.disks.iter_mut().enumerate() {
            if m == failed {
                continue;
            }
            let b = disk.service(cyl, block_bytes);
            if b.total_us() > worst.total_us() {
                worst = b;
            }
        }
        worst
    }

    /// Reconstruct one stripe of a failed member onto a hot spare: read
    /// the stripe's block from every survivor (the spare's write is
    /// overlapped with the reads and not modeled separately). Returns the
    /// gating survivor's breakdown — the bandwidth this rebuild step
    /// steals from foreground service.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is out of range.
    pub fn rebuild_stripe(
        &mut self,
        stripe: u64,
        block_bytes: u64,
        failed: usize,
    ) -> ServiceBreakdown {
        assert!(failed < self.disks.len(), "failed member out of range");
        let cyl = self.cylinder_of_stripe(stripe, block_bytes);
        let mut worst = ServiceBreakdown::default();
        for (m, disk) in self.disks.iter_mut().enumerate() {
            if m == failed {
                continue;
            }
            let b = disk.service(cyl, block_bytes);
            if b.total_us() > worst.total_us() {
                worst = b;
            }
        }
        worst
    }

    /// Total stripes needed to cover one member disk with `block_bytes`
    /// blocks — the rebuild workload after a member failure.
    pub fn stripes_per_member(&self, block_bytes: u64) -> u64 {
        (self.disks[0].geometry().capacity_bytes() / block_bytes.max(1)).max(1)
    }

    /// Access a member disk (e.g. for per-disk statistics).
    pub fn disk(&self, member: usize) -> &Disk {
        &self.disks[member]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_4_plus_1() {
        let r = Raid5::table1();
        assert_eq!(r.members(), 5);
        assert_eq!(r.data_per_stripe(), 4);
    }

    #[test]
    fn parity_rotates_and_data_avoids_it() {
        let r = Raid5::table1();
        let mut parities = Vec::new();
        for stripe in 0..5 {
            let loc = r.locate(stripe * 4); // first block of each stripe
            assert_ne!(loc.data_disk, loc.parity_disk);
            parities.push(loc.parity_disk);
        }
        // All five members take a parity turn.
        let mut sorted = parities.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn blocks_of_one_stripe_hit_distinct_disks() {
        let r = Raid5::table1();
        let disks: Vec<usize> = (0..4).map(|i| r.locate(i).data_disk).collect();
        let mut sorted = disks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn write_costs_more_than_read() {
        let mut r = Raid5::table1();
        let read = r.read(123, 65536).total_us();
        let mut r2 = Raid5::table1();
        let write = r2.write(123, 65536);
        assert!(
            write.total_us() > read,
            "write {} <= read {read}",
            write.total_us()
        );
        // The pair exposes per-member seek/rotation attribution.
        assert_eq!(
            write.total_us(),
            write.data.total_us().max(write.parity.total_us())
        );
        assert!(write.critical().total_us() == write.total_us());
        assert!(write.data.transfer_us > 0 && write.parity.transfer_us > 0);
    }

    #[test]
    fn degraded_read_reconstructs_from_survivors() {
        // Find a block whose data lives on member 0, fail member 0, and
        // check the reconstruction equals the slowest survivor's service.
        let lba = (0..64)
            .find(|&l| Raid5::table1().locate(l).data_disk == 0)
            .unwrap();
        let mut r = Raid5::table1();
        let mut mirror = r.clone();
        let b = r.degraded_read(lba, 65536, 0);
        // Recompute on the mirror: every survivor serves the same block.
        let loc = mirror.locate(lba);
        let cyl = mirror.cylinder_of_stripe(loc.stripe, 65536);
        let expected = (1..5)
            .map(|m| mirror.disks[m].service(cyl, 65536))
            .max_by_key(|s| s.total_us())
            .unwrap();
        assert_eq!(b, expected);
    }

    #[test]
    fn degraded_read_of_healthy_member_is_a_plain_read() {
        let lba = (0..64)
            .find(|&l| Raid5::table1().locate(l).data_disk == 1)
            .unwrap();
        let mut degraded = Raid5::table1();
        let mut healthy = Raid5::table1();
        // Member 0 failed, but the block lives on member 1.
        assert_eq!(
            degraded.degraded_read(lba, 65536, 0),
            healthy.read(lba, 65536)
        );
    }

    #[test]
    fn rebuild_stripe_busies_all_survivors() {
        let mut r = Raid5::table1();
        let b = r.rebuild_stripe(7, 65536, 2);
        assert!(b.total_us() > 0);
        for m in [0usize, 1, 3, 4] {
            assert_eq!(r.disk(m).stats().requests, 1, "member {m} idle");
        }
        assert_eq!(r.disk(2).stats().requests, 0, "failed member touched");
        assert!(r.stripes_per_member(65536) > 1000);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_tiny_groups() {
        Raid5::new(Disk::table1(), 2);
    }
}
