//! RAID-5 striping, as deployed in the PanaViss server (Table 1: five
//! disks per group, four data + one rotating parity).
//!
//! The model is block-level: logical 64-KB file blocks are striped across
//! the data disks of each stripe, with the parity block rotating
//! left-symmetrically. Reads touch one member disk; writes use the
//! read-modify-write small-write path (read old data + old parity, write
//! new data + new parity), which on the data-plus-parity pair costs two
//! extra rotations on each of the two disks involved.

use crate::disk::{Disk, ServiceBreakdown};
use crate::Micros;

/// A RAID-5 group of identical member disks.
#[derive(Debug, Clone)]
pub struct Raid5 {
    disks: Vec<Disk>,
}

/// Where a logical block lives inside the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLocation {
    /// Member disk holding the data block.
    pub data_disk: usize,
    /// Member disk holding the stripe's parity block.
    pub parity_disk: usize,
    /// Stripe number, used as the per-disk block offset.
    pub stripe: u64,
}

impl Raid5 {
    /// Build a group of `members` identical disks (`members >= 3`:
    /// at least two data disks plus parity).
    ///
    /// # Panics
    ///
    /// Panics if `members < 3`.
    pub fn new(prototype: Disk, members: usize) -> Self {
        assert!(members >= 3, "RAID-5 needs at least 3 member disks");
        Raid5 {
            disks: vec![prototype; members],
        }
    }

    /// The paper's 4 data + 1 parity group of Table-1 disks.
    pub fn table1() -> Self {
        Raid5::new(Disk::table1(), 5)
    }

    /// Number of member disks.
    pub fn members(&self) -> usize {
        self.disks.len()
    }

    /// Number of data blocks per stripe.
    pub fn data_per_stripe(&self) -> usize {
        self.disks.len() - 1
    }

    /// Locate logical block `lba` (left-symmetric layout).
    pub fn locate(&self, lba: u64) -> BlockLocation {
        let n = self.disks.len() as u64;
        let d = n - 1;
        let stripe = lba / d;
        let within = lba % d;
        // Parity rotates one disk left each stripe.
        let parity_disk = ((n - 1) - (stripe % n)) as usize;
        // Data blocks fill the non-parity slots in order.
        let mut slot = within as usize;
        if slot >= parity_disk {
            slot += 1;
        }
        BlockLocation {
            data_disk: slot,
            parity_disk,
            stripe,
        }
    }

    /// Map a stripe number to a member-disk cylinder, spreading stripes
    /// sequentially across the disk.
    fn cylinder_of_stripe(&self, stripe: u64, block_bytes: u64) -> u32 {
        let g = self.disks[0].geometry();
        let cyls = g.cylinders() as u64;
        // Blocks per cylinder varies by zone; use the average for layout.
        let total_blocks = g.capacity_bytes() / block_bytes;
        let per_cyl = (total_blocks / cyls).max(1);
        ((stripe / per_cyl) % cyls) as u32
    }

    /// Read logical block `lba` of `block_bytes`. Returns the member-disk
    /// service breakdown.
    pub fn read(&mut self, lba: u64, block_bytes: u64) -> ServiceBreakdown {
        let loc = self.locate(lba);
        let cyl = self.cylinder_of_stripe(loc.stripe, block_bytes);
        self.disks[loc.data_disk].service(cyl, block_bytes)
    }

    /// Write logical block `lba` via the small-write path
    /// (read-modify-write on the data and parity disks). Returns the
    /// completion time assuming the two member disks work in parallel.
    pub fn write(&mut self, lba: u64, block_bytes: u64) -> Micros {
        let loc = self.locate(lba);
        let cyl = self.cylinder_of_stripe(loc.stripe, block_bytes);
        // Read old + write new on each of the two disks.
        let d1 = {
            let d = &mut self.disks[loc.data_disk];
            d.service(cyl, block_bytes).total_us() + d.service(cyl, block_bytes).total_us()
        };
        let d2 = {
            let d = &mut self.disks[loc.parity_disk];
            d.service(cyl, block_bytes).total_us() + d.service(cyl, block_bytes).total_us()
        };
        d1.max(d2)
    }

    /// Access a member disk (e.g. for per-disk statistics).
    pub fn disk(&self, member: usize) -> &Disk {
        &self.disks[member]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_4_plus_1() {
        let r = Raid5::table1();
        assert_eq!(r.members(), 5);
        assert_eq!(r.data_per_stripe(), 4);
    }

    #[test]
    fn parity_rotates_and_data_avoids_it() {
        let r = Raid5::table1();
        let mut parities = Vec::new();
        for stripe in 0..5 {
            let loc = r.locate(stripe * 4); // first block of each stripe
            assert_ne!(loc.data_disk, loc.parity_disk);
            parities.push(loc.parity_disk);
        }
        // All five members take a parity turn.
        let mut sorted = parities.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn blocks_of_one_stripe_hit_distinct_disks() {
        let r = Raid5::table1();
        let disks: Vec<usize> = (0..4).map(|i| r.locate(i).data_disk).collect();
        let mut sorted = disks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn write_costs_more_than_read() {
        let mut r = Raid5::table1();
        let read = r.read(123, 65536).total_us();
        let mut r2 = Raid5::table1();
        let write = r2.write(123, 65536);
        assert!(write > read, "write {write} <= read {read}");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_tiny_groups() {
        Raid5::new(Disk::table1(), 2);
    }
}
