//! # diskmodel — the simulated disk of the Cascaded-SFC paper
//!
//! A service-time model of the magnetic disk used by the PanaViss video
//! server (Table 1 of Mokbel et al., ICDE 2004): a Quantum XP-series
//! 2.1 GB drive with 3832 cylinders, 16 recording zones, 512-byte sectors
//! and 7200 RPM, accessed in 64-KB file blocks, optionally arranged as a
//! RAID-5 group of 4 data + 1 parity disks.
//!
//! The model computes per-request *service-time breakdowns*:
//!
//! * **seek** — a concave seek-cost curve `a + b·√d + c·d` calibrated to
//!   the table's anchors (average 8.5 ms over random request pairs,
//!   maximum 18 ms full stroke);
//! * **rotation** — the head's angular position is tracked across
//!   operations, so rotational latency emerges deterministically instead
//!   of being drawn at random;
//! * **transfer** — zoned: outer cylinders hold more sectors per track and
//!   therefore stream faster.
//!
//! ```
//! use diskmodel::Disk;
//!
//! let mut disk = Disk::table1();
//! let b = disk.service(1200, 64 * 1024);
//! assert!(b.total_us() > 0);
//! assert_eq!(disk.head(), 1200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
pub mod faults;
mod geometry;
mod raid;
mod seek;

pub use disk::{Disk, ServiceBreakdown};
pub use faults::{FaultDraw, FaultInjector, FaultPlan, LimpSpec, MemberFailure, RebuildSpec};
pub use geometry::DiskGeometry;
pub use raid::{Raid5, WriteBreakdown};
pub use seek::SeekModel;

/// Microseconds — the integer time unit shared with the simulator.
pub type Micros = u64;

/// Convert (non-negative, finite) milliseconds to microseconds, rounding.
#[inline]
pub fn ms_to_us(ms: f64) -> Micros {
    debug_assert!(ms.is_finite() && ms >= 0.0);
    (ms * 1000.0).round() as Micros
}
