//! The seek-cost function.
//!
//! Table 1 of the paper lists a seek-cost function of the cylinder
//! distance `d` whose formula the OCR drops, together with two anchors:
//! average seek 8.5 ms and maximum seek 18 ms. We use the standard concave
//! two-term model of drives of that generation,
//!
//! ```text
//! seek(d) = a + b·√d + c·d      (d ≥ 1),   seek(0) = 0
//! ```
//!
//! with `a = 0.8 ms`, `b = 0.165 ms/√cyl`, `c = 0.0018 ms/cyl`, which
//! reproduces both anchors on the 3832-cylinder geometry (verified by the
//! tests below): the √ term dominates short seeks (head acceleration) and
//! the linear term long coasting seeks.

/// Concave seek-cost model `a + b·√d + c·d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekModel {
    /// Fixed settle overhead (ms), charged for any non-zero seek.
    pub a: f64,
    /// Acceleration term coefficient (ms per √cylinder).
    pub b: f64,
    /// Coast term coefficient (ms per cylinder).
    pub c: f64,
}

impl SeekModel {
    /// The model calibrated to the paper's Table 1 (see module docs).
    pub fn table1() -> Self {
        SeekModel {
            a: 0.8,
            b: 0.165,
            c: 0.0018,
        }
    }

    /// A modern-era drive: ~0.8 ms single-track, ~8.5 ms average and
    /// ~16 ms full stroke over the 150 k cylinders of
    /// [`crate::DiskGeometry::modern`].
    pub fn modern() -> Self {
        SeekModel {
            a: 0.6,
            b: 0.037,
            c: 0.0000085,
        }
    }

    /// Build a custom model.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or non-finite.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite() && c.is_finite() && a >= 0.0 && b >= 0.0 && c >= 0.0,
            "seek coefficients must be finite and non-negative"
        );
        SeekModel { a, b, c }
    }

    /// Seek time in milliseconds for a move of `distance` cylinders.
    #[inline]
    pub fn seek_ms(&self, distance: u32) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let d = distance as f64;
        self.a + self.b * d.sqrt() + self.c * d
    }

    /// Analytic expected seek time over uniformly random request pairs on a
    /// disk with `cylinders` cylinders.
    ///
    /// With both endpoints uniform on `[0, N)`, the distance density is
    /// `f(d) = 2(N-d)/N²`, so `E[d] = N/3` and `E[√d] = (8/15)·√N`.
    pub fn average_random_ms(&self, cylinders: u32) -> f64 {
        let n = cylinders as f64;
        self.a + self.b * (8.0 / 15.0) * n.sqrt() + self.c * n / 3.0
    }

    /// Full-stroke seek time in milliseconds.
    pub fn max_ms(&self, cylinders: u32) -> f64 {
        self.seek_ms(cylinders.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(SeekModel::table1().seek_ms(0), 0.0);
    }

    #[test]
    fn monotone_in_distance() {
        let m = SeekModel::table1();
        let mut prev = 0.0;
        for d in 1..3832 {
            let s = m.seek_ms(d);
            assert!(s > prev, "seek not monotone at {d}");
            prev = s;
        }
    }

    #[test]
    fn calibration_matches_table1_anchors() {
        let m = SeekModel::table1();
        // Maximum seek ≈ 18 ms.
        let max = m.max_ms(3832);
        assert!((max - 18.0).abs() < 0.5, "max seek {max} ms");
        // Average random seek ≈ 8.5 ms (analytic).
        let avg = m.average_random_ms(3832);
        assert!((avg - 8.5).abs() < 0.5, "avg seek {avg} ms");
    }

    #[test]
    fn empirical_average_matches_analytic() {
        // Monte-Carlo check of the analytic expectation with a simple LCG.
        let m = SeekModel::table1();
        let n = 3832u64;
        let mut state = 88172645463325252u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut total = 0.0;
        let samples = 200_000;
        for _ in 0..samples {
            let a = next() % n;
            let b = next() % n;
            total += m.seek_ms(a.abs_diff(b) as u32);
        }
        let emp = total / samples as f64;
        let ana = m.average_random_ms(n as u32);
        assert!((emp - ana).abs() < 0.1, "empirical {emp} vs analytic {ana}");
    }

    #[test]
    fn single_track_seek_is_fast() {
        // Short seeks should be around a millisecond on this drive class.
        let s = SeekModel::table1().seek_ms(1);
        assert!(s < 1.5, "single-track seek {s} ms");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_coefficients() {
        SeekModel::new(-1.0, 0.0, 0.0);
    }
}
