//! Deterministic, seeded fault injection for the disk model.
//!
//! Real deployments — the paper's PanaViss server runs every stream over
//! RAID-5 precisely because member disks fail — see transient media
//! errors, grown bad sectors, disks that "limp" (serve slowly before
//! dying), and outright member failures. A [`FaultPlan`] describes all of
//! these declaratively; a per-member [`FaultInjector`] turns the plan
//! into a deterministic outcome stream, so two runs of the same trace
//! under the same plan are bit-identical (the same reproducibility
//! guarantee the healthy [`crate::Disk`] gives via its tracked platter
//! angle).
//!
//! The zero plan ([`FaultPlan::none`]) injects nothing: a simulation run
//! through the fault layer with the zero plan produces the exact service
//! times of the unfaulted path — the layer is pay-for-what-you-use.

use crate::Micros;

/// A scheduled full failure of one member disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberFailure {
    /// Which member dies (index into the RAID group; 0 for a single disk).
    pub member: usize,
    /// Simulation time of death (µs). Accesses at or after this instant
    /// see the member as gone.
    pub at_us: Micros,
}

/// A "limping" member: still serving, but slower by a fixed factor
/// (a common pre-failure symptom — remapped tracks, internal retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimpSpec {
    /// Which member limps.
    pub member: usize,
    /// Service-time multiplier in permille (1500 = 1.5×). Values below
    /// 1000 are clamped to 1000 — a limp never speeds a disk up.
    pub factor_permille: u32,
}

/// Background rebuild of a failed member onto a hot spare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildSpec {
    /// Stripes to reconstruct before the rebuild completes.
    pub stripes: u64,
    /// Issue one rebuild I/O every `every` foreground requests — the
    /// bandwidth split between reconstruction and foreground service.
    pub every: u32,
}

/// Declarative fault schedule for a disk or RAID group.
///
/// Rates are per-request probabilities in parts-per-million, resolved by
/// a seeded hash of `(seed, member, request counter)` — deterministic,
/// independent per member, and insensitive to whether tracing is on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault streams.
    pub seed: u64,
    /// Transient media errors (unreadable on this revolution, recoverable
    /// on a retry once the sector comes around again), ppm per request.
    pub transient_per_million: u32,
    /// Latent bad sectors (readable only after relocation to a spare
    /// track), ppm per request.
    pub bad_sector_per_million: u32,
    /// Fixed relocation penalty charged when a bad sector is remapped
    /// (arm movement to the spare-track area and back), µs.
    pub remap_penalty_us: Micros,
    /// Members serving slowly.
    pub limp: Vec<LimpSpec>,
    /// At most one scheduled member death.
    pub member_failure: Option<MemberFailure>,
    /// Background rebuild, active once `member_failure` has struck.
    pub rebuild: Option<RebuildSpec>,
}

impl FaultPlan {
    /// The zero plan: injects nothing, ever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A seeded plan with only probabilistic media faults (no member
    /// failure): `transient_ppm` transient errors and `bad_sector_ppm`
    /// remaps per million requests, with a 5 ms relocation penalty.
    pub fn media(seed: u64, transient_ppm: u32, bad_sector_ppm: u32) -> Self {
        FaultPlan {
            seed,
            transient_per_million: transient_ppm,
            bad_sector_per_million: bad_sector_ppm,
            remap_penalty_us: 5_000,
            ..FaultPlan::default()
        }
    }

    /// `true` when the plan can never inject anything.
    pub fn is_zero(&self) -> bool {
        self.transient_per_million == 0
            && self.bad_sector_per_million == 0
            && self.limp.is_empty()
            && self.member_failure.is_none()
    }

    /// Is `member` dead at `now_us`?
    pub fn member_down(&self, member: usize, now_us: Micros) -> bool {
        matches!(self.member_failure, Some(f) if f.member == member && now_us >= f.at_us)
    }

    /// Service-time multiplier for `member`, permille (≥ 1000).
    pub fn limp_permille(&self, member: usize) -> u32 {
        self.limp
            .iter()
            .find(|l| l.member == member)
            .map(|l| l.factor_permille.max(1000))
            .unwrap_or(1000)
    }

    /// Schedule `member` to die at `at_us` (builder-style).
    pub fn with_member_failure(mut self, member: usize, at_us: Micros) -> Self {
        self.member_failure = Some(MemberFailure { member, at_us });
        self
    }

    /// Enable background rebuild (builder-style).
    pub fn with_rebuild(mut self, stripes: u64, every: u32) -> Self {
        self.rebuild = Some(RebuildSpec {
            stripes,
            every: every.max(1),
        });
        self
    }

    /// Add a limping member (builder-style).
    pub fn with_limp(mut self, member: usize, factor_permille: u32) -> Self {
        self.limp.push(LimpSpec {
            member,
            factor_permille,
        });
        self
    }
}

/// What the injector decided for one service attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDraw {
    /// The attempt fails with a transient media error (retry may succeed).
    pub transient: bool,
    /// The sector is bad and gets remapped (success, plus the relocation
    /// penalty). Suppressed when `transient` also fired — the transient
    /// error is discovered first.
    pub bad_sector: bool,
}

/// Per-member deterministic fault stream: the [`FaultPlan`] rates turned
/// into concrete per-attempt outcomes.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    member: usize,
    attempts: u64,
}

impl FaultInjector {
    /// A fault stream for `member` under `plan`.
    pub fn new(plan: FaultPlan, member: usize) -> Self {
        FaultInjector {
            plan,
            member,
            attempts: 0,
        }
    }

    /// The plan driving this stream.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is this injector's member dead at `now_us`?
    pub fn down(&self, now_us: Micros) -> bool {
        self.plan.member_down(self.member, now_us)
    }

    /// This member's limp multiplier, permille.
    pub fn limp_permille(&self) -> u32 {
        self.plan.limp_permille(self.member)
    }

    /// Draw the fault outcome of the next service attempt. Consumes one
    /// position of the stream whether or not anything fires, so outcomes
    /// depend only on the attempt sequence — never on observers.
    pub fn draw(&mut self) -> FaultDraw {
        let n = self.attempts;
        self.attempts += 1;
        if self.plan.transient_per_million == 0 && self.plan.bad_sector_per_million == 0 {
            return FaultDraw::default();
        }
        let base = self
            .plan
            .seed
            .wrapping_add((self.member as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(n.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        let transient = ppm_hit(
            splitmix64(base ^ 0x5452_4e53),
            self.plan.transient_per_million,
        );
        let bad_sector = !transient
            && ppm_hit(
                splitmix64(base ^ 0x4241_4453),
                self.plan.bad_sector_per_million,
            );
        FaultDraw {
            transient,
            bad_sector,
        }
    }

    /// Scale a duration by this member's limp factor.
    pub fn limp_us(&self, us: Micros) -> Micros {
        let f = self.limp_permille() as u64;
        if f == 1000 {
            us
        } else {
            us.saturating_mul(f) / 1000
        }
    }
}

/// SplitMix64 — the standard 64-bit avalanche mix; good enough to turn a
/// (seed, member, counter) triple into an i.i.d.-looking stream without
/// pulling in an RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Does a hash fall inside a parts-per-million window?
fn ppm_hit(hash: u64, ppm: u32) -> bool {
    ppm > 0 && hash % 1_000_000 < ppm as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 0);
        for _ in 0..10_000 {
            assert_eq!(inj.draw(), FaultDraw::default());
        }
        assert!(!inj.down(u64::MAX));
        assert_eq!(inj.limp_us(1234), 1234);
        assert!(FaultPlan::none().is_zero());
    }

    #[test]
    fn rates_land_near_target() {
        // 5% transient: expect ~500 hits in 10k draws, generously bounded.
        let mut inj = FaultInjector::new(FaultPlan::media(42, 50_000, 20_000), 0);
        let mut transients = 0;
        let mut remaps = 0;
        for _ in 0..10_000 {
            let d = inj.draw();
            transients += d.transient as u32;
            remaps += d.bad_sector as u32;
        }
        assert!((300..800).contains(&transients), "transients {transients}");
        assert!((80..400).contains(&remaps), "remaps {remaps}");
    }

    #[test]
    fn streams_are_deterministic_and_member_distinct() {
        let run = |member| {
            let mut inj = FaultInjector::new(FaultPlan::media(7, 100_000, 0), member);
            (0..256).map(|_| inj.draw().transient).collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1), "member streams must differ");
    }

    #[test]
    fn member_failure_schedules() {
        let plan = FaultPlan::none().with_member_failure(2, 1_000);
        assert!(!plan.member_down(2, 999));
        assert!(plan.member_down(2, 1_000));
        assert!(!plan.member_down(1, 5_000));
        assert!(!plan.is_zero());
    }

    #[test]
    fn limp_scales_and_clamps() {
        let plan = FaultPlan::none().with_limp(1, 2500).with_limp(3, 500);
        assert_eq!(plan.limp_permille(1), 2500);
        assert_eq!(plan.limp_permille(3), 1000, "limp never speeds up");
        assert_eq!(plan.limp_permille(0), 1000);
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.limp_us(1000), 2500);
    }

    #[test]
    fn transient_suppresses_bad_sector() {
        // Both rates at 100%: only the transient can fire per attempt.
        let mut inj = FaultInjector::new(FaultPlan::media(1, 1_000_000, 1_000_000), 0);
        let d = inj.draw();
        assert!(d.transient && !d.bad_sector);
    }
}
