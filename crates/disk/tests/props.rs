//! Property-based tests of the disk model: seek monotonicity and
//! symmetry, service-time decomposition, geometric consistency, and
//! RAID-5 layout invariants.

use diskmodel::{Disk, DiskGeometry, Raid5, SeekModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn seek_is_monotone_and_concaveish(d1 in 0u32..3831, d2 in 0u32..3831) {
        let m = SeekModel::table1();
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(m.seek_ms(lo) <= m.seek_ms(hi));
        // Sub-additivity of the settle+accelerate phase: one long seek is
        // cheaper than two half seeks (for non-zero halves).
        if lo >= 1 {
            prop_assert!(m.seek_ms(lo + hi) <= m.seek_ms(lo) + m.seek_ms(hi));
        }
    }

    #[test]
    fn service_breakdown_adds_up(cyl in 0u32..3832, kb in 1u64..256) {
        let mut disk = Disk::table1();
        let b = disk.service(cyl, kb * 1024);
        prop_assert_eq!(b.total_us(), b.seek_us + b.rotation_us + b.transfer_us);
        prop_assert_eq!(disk.head(), cyl);
        // One block transfer takes at least bytes/max_rate.
        let min_us = (kb * 1024) as f64 / disk.geometry().transfer_rate(0) * 1e6;
        prop_assert!(b.transfer_us as f64 >= min_us - 1.0);
    }

    #[test]
    fn rotation_under_one_revolution(cyls in prop::collection::vec(0u32..3832, 1..20)) {
        let mut disk = Disk::table1();
        let rev_us = (disk.geometry().revolution_ms() * 1000.0).ceil() as u64;
        for c in cyls {
            let b = disk.service(c, 512);
            prop_assert!(b.rotation_us <= rev_us + 1);
        }
    }

    #[test]
    fn zone_mapping_is_total_and_monotone(c1 in 0u32..3832, c2 in 0u32..3832) {
        let g = DiskGeometry::table1();
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        // Outer cylinders (lower numbers) never have fewer sectors.
        prop_assert!(g.sectors_per_track(lo) >= g.sectors_per_track(hi));
        prop_assert!(g.zone_of(lo) <= g.zone_of(hi));
    }

    #[test]
    fn transfer_scales_linearly(cyl in 0u32..3832, kb in 1u64..512) {
        let g = DiskGeometry::table1();
        let one = g.transfer_ms(cyl, 1024);
        let many = g.transfer_ms(cyl, kb * 1024);
        prop_assert!((many - one * kb as f64).abs() < 1e-6);
    }

    #[test]
    fn raid5_block_location_is_consistent(lba in 0u64..1_000_000) {
        let r = Raid5::table1();
        let loc = r.locate(lba);
        prop_assert!(loc.data_disk < 5);
        prop_assert!(loc.parity_disk < 5);
        prop_assert_ne!(loc.data_disk, loc.parity_disk);
        prop_assert_eq!(loc.stripe, lba / 4);
        // The four data blocks of one stripe land on four distinct disks.
        let stripe_start = lba - lba % 4;
        let mut disks: Vec<usize> =
            (0..4).map(|i| r.locate(stripe_start + i).data_disk).collect();
        disks.sort_unstable();
        disks.dedup();
        prop_assert_eq!(disks.len(), 4);
    }

    #[test]
    fn deterministic_replay(trace in prop::collection::vec((0u32..3832, 1u64..64), 1..30)) {
        let run = || {
            let mut d = Disk::table1();
            trace
                .iter()
                .map(|&(c, kb)| d.service(c, kb * 1024).total_us())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
