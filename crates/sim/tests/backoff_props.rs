//! Property tests for the opt-in retry backoff.
//!
//! The guarantee the farm daemon (and every existing caller) leans on:
//! a zero-base backoff configuration is *bit-for-bit* the engine's
//! historical immediate-retry behavior, for any jitter/seed setting —
//! backoff only exists once `backoff_base_us > 0`. A second property
//! pins seeded determinism: the same configuration replays to identical
//! metrics every time.

use proptest::prelude::*;
use sched::{QosVector, Request, ScanEdf};
use sim::{simulate, DiskService, SimOptions};

fn trace(n: u64, spacing_us: u64, slack_us: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::read(
                i,
                i * spacing_us,
                i * spacing_us + slack_us,
                ((i * 733) % 3832) as u32,
                32 * 1024,
                QosVector::new(&[(i % 4) as u8]),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero-base backoff reproduces the immediate-retry engine exactly,
    /// whatever the jitter permille and seed say.
    #[test]
    fn zero_base_backoff_is_bit_identical(
        fault_seed in any::<u64>(),
        transient_ppm in 0u32..250_000,
        retries in 1u32..6,
        jitter_permille in 0u32..=1000,
        seed in any::<u64>(),
        slack_us in 20_000u64..200_000,
    ) {
        let t = trace(120, 900, slack_us);
        let plan = diskmodel::FaultPlan::media(fault_seed, transient_ppm, 0);
        let base = {
            let mut service = DiskService::with_faults(diskmodel::Disk::table1(), plan.clone());
            simulate(
                &mut ScanEdf::new(5_000),
                &t,
                &mut service,
                SimOptions::with_shape(1, 4).dropping().with_retries(retries),
            )
        };
        let with_zero_backoff = {
            let mut service = DiskService::with_faults(diskmodel::Disk::table1(), plan);
            simulate(
                &mut ScanEdf::new(5_000),
                &t,
                &mut service,
                SimOptions::with_shape(1, 4)
                    .dropping()
                    .with_retries(retries)
                    .with_retry_backoff(0, jitter_permille, seed),
            )
        };
        prop_assert_eq!(base, with_zero_backoff);
    }

    /// A jittered backoff run is seeded-deterministic, and every delay
    /// respects the deadline budget: no retry ever produces a late
    /// completion the engine would have had to invent time for.
    #[test]
    fn jittered_backoff_is_deterministic(
        fault_seed in any::<u64>(),
        transient_ppm in 50_000u32..250_000,
        base_us in 1u64..5_000,
        jitter_permille in 0u32..=1000,
        seed in any::<u64>(),
    ) {
        let t = trace(120, 900, 150_000);
        let run = || {
            let plan = diskmodel::FaultPlan::media(fault_seed, transient_ppm, 0);
            let mut service = DiskService::with_faults(diskmodel::Disk::table1(), plan);
            simulate(
                &mut ScanEdf::new(5_000),
                &t,
                &mut service,
                SimOptions::with_shape(1, 4)
                    .with_retries(4)
                    .with_retry_backoff(base_us, jitter_permille, seed),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.served + a.failed, 120);
    }
}
