//! Concurrency determinism gates for the multi-producer ingest path.
//!
//! `ingest_concurrent` fans characterization out over N producer threads
//! and funnels the results through the sharded `IngestRing`; these tests
//! pin the whole path to the serial reference **bit for bit** — dequeue
//! order, dispatcher counters, shed ledgers — across producer counts,
//! seeds, and dispatcher regimes. Run in release mode by ci.sh as the
//! concurrency stress gate.

use cascade::{CascadeConfig, CascadedSfc, DispatchConfig};
use sched::{DiskScheduler, HeadState, Request};
use sim::{ingest_concurrent, Parallelism};
use workload::PoissonConfig;

fn drain_ids(s: &mut CascadedSfc, head: &HeadState) -> Vec<u64> {
    let mut out = Vec::new();
    let mut h = *head;
    while let Some(r) = s.dequeue(&h) {
        h.cylinder = r.cylinder;
        out.push(r.id);
    }
    out
}

/// N-producer concurrent enqueue drained through the dispatcher must be
/// bit-identical to the serial `enqueue_batch` reference: same dequeue
/// order, same preemption/promotion/swap counters, across seeds and
/// producer counts (including producer counts that do not divide the
/// chunk length).
#[test]
fn concurrent_ingest_is_bit_identical_to_serial() {
    for seed in [7u64, 42, 1234] {
        let trace = PoissonConfig::figure8(800).generate(seed);
        for producers in [2usize, 3, 4, 8] {
            for (regime, dispatch) in [
                ("paper", DispatchConfig::paper_default()),
                ("fully", DispatchConfig::fully_preemptive()),
                ("non-preemptive", DispatchConfig::non_preemptive()),
            ] {
                let cfg = CascadeConfig::paper_default(2, 3832).with_dispatch(dispatch);
                let mut serial = CascadedSfc::new(cfg.clone()).unwrap();
                let mut concurrent = CascadedSfc::new(cfg).unwrap();
                let head = HeadState::new(1700, trace[0].arrival_us, 3832);
                serial.enqueue_batch(&trace, &head);
                let used = ingest_concurrent(
                    &mut concurrent,
                    &trace,
                    &head,
                    Parallelism::threads(producers),
                );
                assert_eq!(used, producers, "producer fan-out engaged");
                assert_eq!(serial.len(), concurrent.len());
                assert_eq!(
                    serial.queue_depths(),
                    concurrent.queue_depths(),
                    "seed={seed} producers={producers} regime={regime}"
                );
                assert_eq!(
                    drain_ids(&mut serial, &head),
                    drain_ids(&mut concurrent, &head),
                    "seed={seed} producers={producers} regime={regime}"
                );
                assert_eq!(serial.dispatch_counters(), concurrent.dispatch_counters());
            }
        }
    }
}

/// The concurrent path must also match the *per-request* enqueue loop
/// (the trait-default reference), interleaved with dispatches so the
/// ingest lands on a dispatcher holding live preemption state.
#[test]
fn concurrent_ingest_matches_per_request_enqueue_mid_trace() {
    let trace = PoissonConfig::figure8(600).generate(99);
    let cfg = CascadeConfig::paper_default(2, 3832);
    let mut reference = CascadedSfc::new(cfg.clone()).unwrap();
    let mut concurrent = CascadedSfc::new(cfg).unwrap();
    let head = HeadState::new(500, 0, 3832);

    // Warm both schedulers identically, with some dispatch traffic.
    let (warm, rest) = trace.split_at(200);
    for r in warm {
        let h = HeadState::new(head.cylinder, r.arrival_us, head.cylinders);
        reference.enqueue(r.clone(), &h);
        concurrent.enqueue(r.clone(), &h);
    }
    for _ in 0..60 {
        let a = reference.dequeue(&head);
        let b = concurrent.dequeue(&head);
        assert_eq!(a.as_ref().map(|r| r.id), b.as_ref().map(|r| r.id));
    }

    // Reference: the trait-default loop. Concurrent: 4 producers.
    for r in rest {
        let h = HeadState::new(head.cylinder, r.arrival_us, head.cylinders);
        reference.enqueue(r.clone(), &h);
    }
    ingest_concurrent(&mut concurrent, rest, &head, Parallelism::threads(4));

    assert_eq!(reference.len(), concurrent.len());
    assert_eq!(
        drain_ids(&mut reference, &head),
        drain_ids(&mut concurrent, &head)
    );
    assert_eq!(
        reference.dispatch_counters(),
        concurrent.dispatch_counters()
    );
}

/// Shed-under-contention stress: a bounded queue fed through many
/// concurrent producers must shed exactly the requests the serial
/// reference sheds, and the ledger must close — every id is either
/// dequeued or shed, exactly once.
#[test]
fn bounded_queue_sheds_identically_under_contention() {
    for seed in [3u64, 17] {
        let trace = PoissonConfig::figure8(1_000).generate(seed);
        let cfg = CascadeConfig::paper_default(2, 3832)
            .with_dispatch(DispatchConfig::paper_default().with_max_queue(32));
        let mut serial = CascadedSfc::new(cfg.clone()).unwrap();
        let mut concurrent = CascadedSfc::new(cfg).unwrap();
        let head = HeadState::new(0, trace[0].arrival_us, 3832);

        // Feed in bursts with interleaved dispatches so the bounded queue
        // sheds repeatedly while producers are mid-flight.
        let mut dequeued_mid = 0u64;
        for chunk in trace.chunks(128) {
            serial.enqueue_batch(chunk, &head);
            ingest_concurrent(&mut concurrent, chunk, &head, Parallelism::threads(8));
            for _ in 0..8 {
                let a = serial.dequeue(&head);
                let b = concurrent.dequeue(&head);
                assert_eq!(a.as_ref().map(|r| r.id), b.as_ref().map(|r| r.id));
                dequeued_mid += u64::from(b.is_some());
            }
            assert_eq!(serial.sheds(), concurrent.sheds(), "seed={seed}");
        }
        assert!(concurrent.sheds() > 0, "stress must actually shed");

        let served = drain_ids(&mut concurrent, &head);
        let serial_served = drain_ids(&mut serial, &head);
        assert_eq!(serial_served, served);
        // Exact ledger: every offered request was dequeued mid-trace,
        // drained at the end, or shed — nothing lost, nothing duplicated.
        assert_eq!(
            dequeued_mid + served.len() as u64 + concurrent.sheds(),
            trace.len() as u64,
            "ledger must close exactly (seed={seed})"
        );
    }
}

/// Degenerate shapes: serial parallelism, single-element chunks, and an
/// empty chunk all take the short-circuit path and stay identical.
#[test]
fn degenerate_chunks_short_circuit() {
    let cfg = CascadeConfig::paper_default(1, 3832);
    let mut a = CascadedSfc::new(cfg.clone()).unwrap();
    let mut b = CascadedSfc::new(cfg).unwrap();
    let head = HeadState::new(10, 0, 3832);
    let empty: Vec<Request> = Vec::new();
    assert_eq!(
        ingest_concurrent(&mut a, &empty, &head, Parallelism::threads(4)),
        1
    );
    let trace = PoissonConfig::figure8(40).generate(5);
    a.enqueue_batch(&trace[..1], &head);
    assert_eq!(
        ingest_concurrent(&mut b, &trace[..1], &head, Parallelism::threads(4)),
        1
    );
    assert_eq!(
        ingest_concurrent(&mut b, &empty, &head, Parallelism::Serial),
        1
    );
    assert_eq!(drain_ids(&mut a, &head), drain_ids(&mut b, &head));
}
