//! Multi-disk striped simulation: the PanaViss deployment shape.
//!
//! The paper's server stripes every stream over a RAID-5 group and runs
//! *one scheduler per member disk* (each disk sees its share of the
//! blocks; §6 sizes the workload accordingly). This module simulates the
//! whole group: requests are routed to members by the RAID layout, each
//! member runs its own scheduler instance against its own disk timeline,
//! and the group-level metrics aggregate the members.
//!
//! The member timelines are independent (reads touch one data disk), so
//! the group behaves like `members − 1` data disks in parallel — the
//! throughput multiplier the workload crate's NewsByte stripe accounting
//! assumes, verified here end-to-end.

use crate::engine::{simulate, SimOptions};
use crate::metrics::Metrics;
use crate::service::DiskService;
use diskmodel::{Disk, Raid5};
use sched::{DiskScheduler, Request};

/// Result of a striped run: per-member metrics plus the aggregate.
#[derive(Debug)]
pub struct StripedOutcome {
    /// Metrics per member disk (index = member id).
    pub per_member: Vec<Metrics>,
    /// Group makespan: the slowest member's makespan.
    pub makespan_us: u64,
}

impl StripedOutcome {
    /// Total requests served across members.
    pub fn served(&self) -> u64 {
        self.per_member.iter().map(|m| m.served).sum()
    }

    /// Total deadline losses across members.
    pub fn losses(&self) -> u64 {
        self.per_member.iter().map(|m| m.losses_total()).sum()
    }

    /// Aggregate loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        let total: u64 = self.per_member.iter().map(|m| m.requests_total()).sum();
        if total == 0 {
            0.0
        } else {
            self.losses() as f64 / total as f64
        }
    }
}

/// Run a trace against a RAID-5 group of `members` Table-1 disks, one
/// scheduler per *data* placement. Requests address logical blocks via
/// their `cylinder` field (reinterpreted as an LBA group, matching
/// [`crate::Raid5Service`]); each request is routed to the member disk
/// that owns its data block and the member's own scheduler+disk pair
/// simulates it. `make_scheduler` builds one scheduler per member.
pub fn simulate_striped(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler>,
    options: SimOptions,
) -> StripedOutcome {
    assert!(members >= 3, "RAID-5 needs at least 3 members");
    let layout = Raid5::new(Disk::table1(), members);
    let cylinders = Disk::table1().geometry().cylinders();

    // Route requests: member = data disk of the request's logical block;
    // the member-local cylinder spreads stripes across the platter.
    let mut member_traces: Vec<Vec<Request>> = (0..members).map(|_| Vec::new()).collect();
    for r in trace {
        let loc = layout.locate(r.cylinder as u64);
        let mut routed = r.clone();
        routed.cylinder = ((loc.stripe * 37) % cylinders as u64) as u32;
        member_traces[loc.data_disk].push(routed);
    }

    let mut per_member = Vec::with_capacity(members);
    let mut makespan = 0u64;
    for member_trace in &mut member_traces {
        // Re-assign dense ids per member (engine requirement is sorted
        // arrivals; ids may be sparse, but dense keeps logs tidy).
        member_trace.sort_by_key(|r| (r.arrival_us, r.id));
        let mut scheduler = make_scheduler();
        let mut service = DiskService::table1();
        let m = simulate(scheduler.as_mut(), member_trace, &mut service, options);
        makespan = makespan.max(m.makespan_us);
        per_member.push(m);
    }
    StripedOutcome {
        per_member,
        makespan_us: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{Fcfs, QosVector};

    /// A saturating batch of single-block reads over many logical blocks.
    fn batch(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::read(
                    i,
                    0,
                    u64::MAX,
                    (i % 3000) as u32, // logical block group
                    64 * 1024,
                    QosVector::single(0),
                )
            })
            .collect()
    }

    #[test]
    fn routes_every_request_to_exactly_one_member() {
        let trace = batch(400);
        let out = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2),
        );
        assert_eq!(out.served(), 400);
        assert_eq!(out.per_member.len(), 5);
        // Four data disks share the load; the parity rotation spreads it
        // over all five members.
        let loads: Vec<u64> = out.per_member.iter().map(|m| m.served).collect();
        assert!(loads.iter().all(|&l| l > 0), "uneven routing: {loads:?}");
    }

    #[test]
    fn striping_parallelizes_the_batch() {
        // The same batch on one disk takes ~4x the group's makespan
        // (4 data disks work in parallel).
        let trace = batch(400);
        let single = {
            let mut s = Fcfs::new();
            let mut service = DiskService::table1();
            simulate(&mut s, &trace, &mut service, SimOptions::with_shape(1, 2))
        };
        let group = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2),
        );
        let speedup = single.makespan_us as f64 / group.makespan_us as f64;
        assert!(
            (2.5..5.5).contains(&speedup),
            "striping speedup {speedup:.2} (single {} vs group {})",
            single.makespan_us,
            group.makespan_us
        );
    }

    #[test]
    fn aggregate_ratios_are_consistent() {
        let trace: Vec<Request> = (0..200)
            .map(|i| {
                Request::read(i, 0, 1, (i % 100) as u32, 64 * 1024, QosVector::single(0))
            })
            .collect();
        let out = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2).dropping(),
        );
        // Hopeless deadlines: almost everything lost, ratio near 1.
        assert!(out.loss_ratio() > 0.9);
        assert_eq!(
            out.per_member
                .iter()
                .map(|m| m.requests_total())
                .sum::<u64>(),
            200
        );
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_small_groups() {
        simulate_striped(
            &batch(10),
            2,
            || Box::new(Fcfs::new()),
            SimOptions::default(),
        );
    }
}
