//! Multi-disk striped simulation: the PanaViss deployment shape.
//!
//! The paper's server stripes every stream over a RAID-5 group and runs
//! *one scheduler per member disk* (each disk sees its share of the
//! blocks; §6 sizes the workload accordingly). This module simulates the
//! whole group: requests are routed to members by the RAID layout, each
//! member runs its own scheduler instance against its own disk timeline,
//! and the group-level metrics aggregate the members.
//!
//! The member timelines are independent (reads touch one data disk), so
//! the group behaves like `members − 1` data disks in parallel — the
//! throughput multiplier the workload crate's NewsByte stripe accounting
//! assumes, verified here end-to-end.
//!
//! Member timelines execute through [`crate::run_indexed`], the same
//! fan-out primitive the farm layer uses: [`Parallelism::auto`] runs them
//! on scoped threads when cores are available, and because results merge
//! in member order the outcome (metrics *and* traced event streams) is
//! bit-identical to the serial fallback.

use crate::engine::{simulate_traced, SimOptions};
use crate::exec::{run_indexed, Parallelism};
use crate::metrics::Metrics;
use crate::service::DiskService;
use diskmodel::{Disk, FaultPlan, Raid5};
use obs::{NullSink, Snapshot, TraceSink};
use sched::{DiskScheduler, Request};

/// Result of a striped run: per-member metrics plus the aggregate.
#[derive(Debug)]
pub struct StripedOutcome {
    /// Metrics per member disk (index = member id).
    pub per_member: Vec<Metrics>,
    /// Group makespan: the slowest member's makespan.
    pub makespan_us: u64,
}

impl StripedOutcome {
    /// Total requests served across members.
    pub fn served(&self) -> u64 {
        Metrics::total_served(&self.per_member)
    }

    /// Total deadline losses across members.
    pub fn losses(&self) -> u64 {
        Metrics::total_losses(&self.per_member)
    }

    /// Aggregate loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        Metrics::group_loss_ratio(&self.per_member)
    }

    /// The members folded into one group-level [`Metrics`] via
    /// [`Metrics::merge`] (counts add, `makespan_us` is the slowest
    /// member's).
    pub fn aggregate(&self) -> Metrics {
        Metrics::merged(&self.per_member)
    }
}

/// Run a trace against a RAID-5 group of `members` Table-1 disks, one
/// scheduler per *data* placement. Requests address logical blocks via
/// their `cylinder` field (reinterpreted as an LBA group, matching
/// [`crate::Raid5Service`]); each request is routed to the member disk
/// that owns its data block and the member's own scheduler+disk pair
/// simulates it. `make_scheduler` builds one scheduler per member.
pub fn simulate_striped(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
) -> StripedOutcome {
    simulate_striped_on(trace, members, make_scheduler, options, Parallelism::auto())
}

/// [`simulate_striped`] with an explicit executor choice. The outcome is
/// identical for every [`Parallelism`] value; only wall-clock differs.
pub fn simulate_striped_on(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
    parallelism: Parallelism,
) -> StripedOutcome {
    run_striped(
        trace,
        members,
        make_scheduler,
        options,
        |_| DiskService::table1(),
        || NullSink,
        parallelism,
    )
    .0
}

/// [`simulate_striped`] with a per-member fault stream of `plan`
/// (transient media errors, bad-sector remaps, limping members): member
/// `m`'s disk draws from stream `m`, so the group sees independent but
/// fully deterministic fault sequences. Combine with
/// [`SimOptions::with_retries`] for the recovery policy.
///
/// Full member failure, degraded reads, and background rebuild are *not*
/// available here: the striped model runs each member on an independent
/// timeline, and parity reconstruction couples a read to the other
/// members' clocks. Use [`crate::Raid5Service::with_faults`] (grouped
/// timeline) for those scenarios — see DESIGN.md §6d.
///
/// # Panics
///
/// Panics if `plan` schedules a member failure.
pub fn simulate_striped_faulted(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
    plan: &FaultPlan,
) -> (StripedOutcome, Snapshot) {
    assert!(
        plan.member_failure.is_none(),
        "member failure needs the grouped timeline: use Raid5Service::with_faults"
    );
    let (outcome, sinks) = run_striped(
        trace,
        members,
        make_scheduler,
        options,
        |m| DiskService::with_faults_as_member(Disk::table1(), plan.clone(), m),
        Snapshot::new,
        Parallelism::auto(),
    );
    let mut group = Snapshot::new();
    for member in &sinks {
        group.merge(member);
    }
    (outcome, group)
}

/// [`simulate_striped`] with one [`Snapshot`] sink per member, merged
/// into a single group-level snapshot. The snapshot's event-derived
/// counters reconcile with [`StripedOutcome::aggregate`]: dispatches ==
/// served + dropped, service completes == served, drops == dropped.
pub fn simulate_striped_observed(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
) -> (StripedOutcome, Snapshot) {
    simulate_striped_observed_on(trace, members, make_scheduler, options, Parallelism::auto())
}

/// [`simulate_striped_observed`] with an explicit executor choice. Member
/// sinks merge in member order, so the group snapshot is bit-identical
/// between [`Parallelism::Serial`] and any thread count.
pub fn simulate_striped_observed_on(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
    parallelism: Parallelism,
) -> (StripedOutcome, Snapshot) {
    let (outcome, sinks) = run_striped(
        trace,
        members,
        make_scheduler,
        options,
        |_| DiskService::table1(),
        Snapshot::new,
        parallelism,
    );
    let mut group = Snapshot::new();
    for member in &sinks {
        group.merge(member);
    }
    (outcome, group)
}

/// Shared member fan-out: route, sort, and simulate each member with its
/// own scheduler, service model, and sink, under the chosen executor.
fn run_striped<S: TraceSink + Send>(
    trace: &[Request],
    members: usize,
    make_scheduler: impl Fn() -> Box<dyn DiskScheduler> + Sync,
    options: SimOptions,
    make_service: impl Fn(usize) -> DiskService + Sync,
    make_sink: impl Fn() -> S + Sync,
    parallelism: Parallelism,
) -> (StripedOutcome, Vec<S>) {
    assert!(members >= 3, "RAID-5 needs at least 3 members");
    let layout = Raid5::new(Disk::table1(), members);
    let cylinders = Disk::table1().geometry().cylinders();

    // Route requests: member = data disk of the request's logical block;
    // the member-local cylinder spreads stripes across the platter. A
    // counting pass sizes each member's trace exactly, so routing does no
    // reallocation.
    let mut counts = vec![0usize; members];
    for r in trace {
        counts[layout.locate(r.cylinder as u64).data_disk] += 1;
    }
    let mut member_traces: Vec<Vec<Request>> =
        counts.iter().map(|&n| Vec::with_capacity(n)).collect();
    for r in trace {
        let loc = layout.locate(r.cylinder as u64);
        let mut routed = r.clone();
        routed.cylinder = ((loc.stripe * 37) % cylinders as u64) as u32;
        member_traces[loc.data_disk].push(routed);
    }
    for member_trace in member_traces.iter_mut() {
        // Routing preserves the trace's arrival order, so each member's
        // slice is almost always already sorted — skip the sort entirely
        // unless an out-of-order pair shows up.
        let sorted = member_trace
            .windows(2)
            .all(|w| (w[0].arrival_us, w[0].id) <= (w[1].arrival_us, w[1].id));
        if !sorted {
            member_trace.sort_by_key(|r| (r.arrival_us, r.id));
        }
    }

    // Member timelines share nothing, so the fan-out result — metrics and
    // traced events alike — does not depend on the executor.
    let results = run_indexed(members, parallelism, |member| {
        let mut scheduler = make_scheduler();
        let mut service = make_service(member);
        let mut sink = make_sink();
        let m = simulate_traced(
            scheduler.as_mut(),
            &member_traces[member],
            &mut service,
            options,
            &mut sink,
        );
        (m, sink)
    });

    let mut per_member = Vec::with_capacity(members);
    let mut sinks = Vec::with_capacity(members);
    let mut makespan = 0u64;
    for (m, sink) in results {
        makespan = makespan.max(m.makespan_us);
        per_member.push(m);
        sinks.push(sink);
    }
    (
        StripedOutcome {
            per_member,
            makespan_us: makespan,
        },
        sinks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use sched::{Fcfs, QosVector};

    /// A saturating batch of single-block reads over many logical blocks.
    fn batch(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::read(
                    i,
                    0,
                    u64::MAX,
                    (i % 3000) as u32, // logical block group
                    64 * 1024,
                    QosVector::single(0),
                )
            })
            .collect()
    }

    #[test]
    fn routes_every_request_to_exactly_one_member() {
        let trace = batch(400);
        let out = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2),
        );
        assert_eq!(out.served(), 400);
        assert_eq!(out.per_member.len(), 5);
        // Four data disks share the load; the parity rotation spreads it
        // over all five members.
        let loads: Vec<u64> = out.per_member.iter().map(|m| m.served).collect();
        assert!(loads.iter().all(|&l| l > 0), "uneven routing: {loads:?}");
    }

    #[test]
    fn striping_parallelizes_the_batch() {
        // The same batch on one disk takes ~4x the group's makespan
        // (4 data disks work in parallel).
        let trace = batch(400);
        let single = {
            let mut s = Fcfs::new();
            let mut service = DiskService::table1();
            simulate(&mut s, &trace, &mut service, SimOptions::with_shape(1, 2))
        };
        let group = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2),
        );
        let speedup = single.makespan_us as f64 / group.makespan_us as f64;
        assert!(
            (2.5..5.5).contains(&speedup),
            "striping speedup {speedup:.2} (single {} vs group {})",
            single.makespan_us,
            group.makespan_us
        );
    }

    #[test]
    fn aggregate_ratios_are_consistent() {
        let trace: Vec<Request> = (0..200)
            .map(|i| Request::read(i, 0, 1, (i % 100) as u32, 64 * 1024, QosVector::single(0)))
            .collect();
        let out = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2).dropping(),
        );
        // Hopeless deadlines: almost everything lost, ratio near 1.
        assert!(out.loss_ratio() > 0.9);
        assert_eq!(
            out.per_member
                .iter()
                .map(|m| m.requests_total())
                .sum::<u64>(),
            200
        );
    }

    #[test]
    fn aggregate_folds_members_into_group_totals() {
        let trace = batch(400);
        let out = simulate_striped(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2),
        );
        let total = out.aggregate();
        assert_eq!(total.served, out.served());
        assert_eq!(total.losses_total(), out.losses());
        assert_eq!(total.makespan_us, out.makespan_us);
        assert_eq!(
            total.response_total_us,
            out.per_member
                .iter()
                .map(|m| m.response_total_us)
                .sum::<u128>()
        );
    }

    #[test]
    fn observed_snapshot_reconciles_with_aggregate_metrics() {
        let trace = batch(400);
        let (out, snap) = simulate_striped_observed(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2),
        );
        let total = out.aggregate();
        let c = &snap.counters;
        assert_eq!(c.arrivals, 400);
        assert_eq!(c.dispatches, total.served + total.dropped);
        assert_eq!(c.service_completes, total.served);
        assert_eq!(c.drops, total.dropped);
        assert_eq!(c.late_completions, total.late);
        assert_eq!(snap.response_us.count(), total.served);
        assert_eq!(snap.response_us.max(), Some(total.max_response_us));
    }

    #[test]
    fn parallel_executor_is_bit_identical_to_serial() {
        let trace = batch(400);
        let options = SimOptions::with_shape(1, 2);
        let (serial, serial_snap) = simulate_striped_observed_on(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            options,
            Parallelism::Serial,
        );
        let (parallel, parallel_snap) = simulate_striped_observed_on(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            options,
            Parallelism::threads(4),
        );
        assert_eq!(serial.per_member, parallel.per_member);
        assert_eq!(serial.makespan_us, parallel.makespan_us);
        assert_eq!(serial_snap, parallel_snap);
    }

    #[test]
    fn faulted_group_with_zero_plan_matches_healthy_run() {
        let trace = batch(200);
        let options = SimOptions::with_shape(1, 2);
        let healthy = simulate_striped(&trace, 5, || Box::new(Fcfs::new()), options);
        let (faulted, snap) = simulate_striped_faulted(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            options,
            &FaultPlan::none(),
        );
        assert_eq!(healthy.aggregate(), faulted.aggregate());
        assert_eq!(snap.counters.media_errors, 0);
    }

    #[test]
    fn faulted_group_sees_member_distinct_media_errors() {
        let trace = batch(400);
        let (out, snap) = simulate_striped_faulted(
            &trace,
            5,
            || Box::new(Fcfs::new()),
            SimOptions::with_shape(1, 2).with_retries(4),
            &FaultPlan::media(77, 150_000, 40_000),
        );
        let total = out.aggregate();
        assert!(total.media_errors > 0, "rate should fire");
        assert!(total.sector_remaps > 0);
        assert_eq!(snap.counters.media_errors, total.media_errors);
        assert_eq!(snap.counters.request_failures, total.failed);
        assert_eq!(total.served + total.failed, 400);
    }

    #[test]
    #[should_panic(expected = "grouped timeline")]
    fn faulted_group_rejects_member_failure_plans() {
        simulate_striped_faulted(
            &batch(10),
            5,
            || Box::new(Fcfs::new()),
            SimOptions::default(),
            &FaultPlan::none().with_member_failure(1, 0),
        );
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_small_groups() {
        simulate_striped(
            &batch(10),
            2,
            || Box::new(Fcfs::new()),
            SimOptions::default(),
        );
    }
}
