//! Service-time models the simulator can drive schedulers against.

use diskmodel::{Disk, FaultInjector, FaultPlan, ServiceBreakdown};
use sched::{Micros, Request};

/// Why a service attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// Transient media error: the sector was unreadable on this
    /// revolution; a retry may succeed once it comes around again.
    Transient,
    /// The disk (or the block's member, with no parity path left) is
    /// gone — retrying cannot help.
    Down,
}

/// What one service attempt did: the time it took plus everything the
/// fault layer decided along the way. The healthy path is
/// [`ServiceOutcome::ok`]; providers without a fault plan never produce
/// anything else, so the engine's fault branches stay cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// Time paid by this attempt (any remap penalty already included).
    pub breakdown: ServiceBreakdown,
    /// The attempt failed; `None` means the data came back.
    pub fault: Option<ServiceFault>,
    /// A latent bad sector was remapped on the way: the relocation
    /// penalty (already inside `breakdown`), for event reporting.
    pub remap_penalty_us: Micros,
    /// The read was reconstructed from parity around this failed member.
    pub degraded: Option<u32>,
    /// A background rebuild I/O `(stripe, service_us)` rode behind this
    /// request, stealing member bandwidth after it completed.
    pub rebuild: Option<(u64, Micros)>,
}

impl ServiceOutcome {
    /// A faultless attempt.
    pub fn ok(breakdown: ServiceBreakdown) -> Self {
        ServiceOutcome {
            breakdown,
            fault: None,
            remap_penalty_us: 0,
            degraded: None,
            rebuild: None,
        }
    }
}

/// Something that can serve a request and report where its head is.
pub trait ServiceProvider {
    /// Current head cylinder.
    fn head(&self) -> u32;
    /// Number of cylinders (for [`sched::HeadState`]).
    fn cylinders(&self) -> u32;
    /// Serve `req`, advancing internal state; returns the time breakdown.
    fn service(&mut self, req: &Request) -> ServiceBreakdown;
    /// Serve `req` through the fault layer at simulation time `now_us`.
    /// The default forwards to [`ServiceProvider::service`] and never
    /// faults — providers without an injector cost nothing extra.
    fn service_checked(&mut self, req: &Request, _now_us: Micros) -> ServiceOutcome {
        ServiceOutcome::ok(self.service(req))
    }
}

/// Scale a breakdown by a limping member's service-time multiplier.
fn limp(inj: &FaultInjector, b: ServiceBreakdown) -> ServiceBreakdown {
    ServiceBreakdown {
        seek_us: inj.limp_us(b.seek_us),
        rotation_us: inj.limp_us(b.rotation_us),
        transfer_us: inj.limp_us(b.transfer_us),
    }
}

/// The full Table-1 disk model (seek + tracked rotation + zoned transfer).
pub struct DiskService {
    disk: Disk,
    faults: Option<FaultInjector>,
}

impl DiskService {
    /// Wrap a disk.
    pub fn new(disk: Disk) -> Self {
        DiskService { disk, faults: None }
    }

    /// The paper's Table-1 disk.
    pub fn table1() -> Self {
        DiskService::new(Disk::table1())
    }

    /// Wrap a disk behind a fault plan (member index 0). With
    /// [`FaultPlan::none`] this is bit-identical to [`DiskService::new`].
    pub fn with_faults(disk: Disk, plan: FaultPlan) -> Self {
        DiskService::with_faults_as_member(disk, plan, 0)
    }

    /// Like [`DiskService::with_faults`], but drawing from the fault
    /// stream of RAID member `member` — the striped path gives each
    /// member disk its own independent stream of the shared plan.
    pub fn with_faults_as_member(disk: Disk, plan: FaultPlan, member: usize) -> Self {
        DiskService {
            disk,
            faults: Some(FaultInjector::new(plan, member)),
        }
    }

    /// Access the underlying disk (e.g. for statistics).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl ServiceProvider for DiskService {
    fn head(&self) -> u32 {
        self.disk.head()
    }

    fn cylinders(&self) -> u32 {
        self.disk.geometry().cylinders()
    }

    fn service(&mut self, req: &Request) -> ServiceBreakdown {
        self.disk.service(req.cylinder, req.bytes)
    }

    fn service_checked(&mut self, req: &Request, now_us: Micros) -> ServiceOutcome {
        let Some(inj) = self.faults.as_mut() else {
            return ServiceOutcome::ok(self.disk.service(req.cylinder, req.bytes));
        };
        if inj.down(now_us) {
            // A single disk has no parity path: the request cannot be
            // served at any cost. Zero-time failure keeps the retry
            // budget (not the clock) in charge of termination.
            return ServiceOutcome {
                breakdown: ServiceBreakdown::default(),
                fault: Some(ServiceFault::Down),
                remap_penalty_us: 0,
                degraded: None,
                rebuild: None,
            };
        }
        let draw = inj.draw();
        let mut b = limp(inj, self.disk.service(req.cylinder, req.bytes));
        if draw.transient {
            // The attempt pays its full service time — the head moved and
            // the platter turned — but returns no data. A retry re-pays
            // rotation from the disk's tracked angle: one extra
            // revolution, exactly the paper's recoverable-error cost.
            return ServiceOutcome {
                breakdown: b,
                fault: Some(ServiceFault::Transient),
                remap_penalty_us: 0,
                degraded: None,
                rebuild: None,
            };
        }
        let mut remap = 0;
        if draw.bad_sector {
            remap = inj.plan().remap_penalty_us;
            b.seek_us += remap;
        }
        ServiceOutcome {
            breakdown: b,
            fault: None,
            remap_penalty_us: remap,
            degraded: None,
            rebuild: None,
        }
    }
}

/// The transfer-dominated model of Figures 5–9: seek and rotation are
/// negligible, service time is `fixed_us + bytes · ns_per_byte`. The head
/// still tracks the served cylinder so SFC3/SCAN decisions remain
/// meaningful when mixed configurations are tested.
pub struct TransferDominated {
    head: u32,
    cylinders: u32,
    fixed_us: Micros,
    ns_per_byte: u64,
}

impl TransferDominated {
    /// Every request takes exactly `per_request_us`.
    pub fn uniform(per_request_us: Micros, cylinders: u32) -> Self {
        TransferDominated {
            head: 0,
            cylinders,
            fixed_us: per_request_us,
            ns_per_byte: 0,
        }
    }

    /// Service proportional to the transfer size (the §5.2 setting where
    /// high-priority requests are smaller and therefore faster):
    /// `fixed_us + bytes·ns_per_byte/1000` µs.
    pub fn scaled(fixed_us: Micros, ns_per_byte: u64, cylinders: u32) -> Self {
        TransferDominated {
            head: 0,
            cylinders,
            fixed_us,
            ns_per_byte,
        }
    }
}

impl ServiceProvider for TransferDominated {
    fn head(&self) -> u32 {
        self.head
    }

    fn cylinders(&self) -> u32 {
        self.cylinders
    }

    fn service(&mut self, req: &Request) -> ServiceBreakdown {
        self.head = req.cylinder;
        ServiceBreakdown {
            seek_us: 0,
            rotation_us: 0,
            transfer_us: self.fixed_us + req.bytes * self.ns_per_byte / 1000,
        }
    }
}

/// A RAID-5 group behind the scheduler, as in the PanaViss server.
///
/// The request's cylinder is reinterpreted as a logical stripe position:
/// reads touch the data disk owning that block, writes take the
/// read-modify-write path on the data and parity members. Head state
/// reported to the scheduler is the *data-path member average* — a
/// deliberate simplification (per-member scheduling is outside the
/// paper's scope; its experiments schedule a single disk and size the
/// workload to one member's share, see `workload::NewsByteConfig`).
pub struct Raid5Service {
    raid: diskmodel::Raid5,
    block_bytes: u64,
    last_cylinder: u32,
    faults: Option<RaidFaultState>,
}

/// Mutable fault-layer state of a [`Raid5Service`]: one deterministic
/// stream per member plus the rebuild progress cursor.
struct RaidFaultState {
    injectors: Vec<FaultInjector>,
    rebuilt_stripes: u64,
    since_rebuild: u32,
}

impl Raid5Service {
    /// The paper's 4+1 group of Table-1 disks with 64-KB blocks.
    pub fn table1() -> Self {
        Raid5Service {
            raid: diskmodel::Raid5::table1(),
            block_bytes: 64 * 1024,
            last_cylinder: 0,
            faults: None,
        }
    }

    /// The paper's group behind a fault plan: per-member media-error
    /// streams, degraded reads around a failed member (reconstructed from
    /// the survivors at the cost of the slowest), and an optional
    /// background rebuild interleaved with foreground service. With
    /// [`FaultPlan::none`] this is bit-identical to
    /// [`Raid5Service::table1`].
    pub fn with_faults(plan: FaultPlan) -> Self {
        let raid = diskmodel::Raid5::table1();
        let injectors = (0..raid.members())
            .map(|m| FaultInjector::new(plan.clone(), m))
            .collect();
        Raid5Service {
            raid,
            block_bytes: 64 * 1024,
            last_cylinder: 0,
            faults: Some(RaidFaultState {
                injectors,
                rebuilt_stripes: 0,
                since_rebuild: 0,
            }),
        }
    }

    /// Access the underlying array.
    pub fn raid(&self) -> &diskmodel::Raid5 {
        &self.raid
    }

    /// Stripes reconstructed so far by the background rebuild.
    pub fn rebuilt_stripes(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.rebuilt_stripes)
    }
}

impl ServiceProvider for Raid5Service {
    fn head(&self) -> u32 {
        self.last_cylinder
    }

    fn cylinders(&self) -> u32 {
        self.raid.disk(0).geometry().cylinders()
    }

    fn service(&mut self, req: &Request) -> ServiceBreakdown {
        self.last_cylinder = req.cylinder;
        let lba = req.cylinder as u64;
        match req.kind {
            sched::OpKind::Read => {
                let blocks = req.bytes.div_ceil(self.block_bytes).max(1);
                let mut total = ServiceBreakdown::default();
                for i in 0..blocks {
                    let b = self.raid.read(lba + i, self.block_bytes.min(req.bytes));
                    total.seek_us += b.seek_us;
                    total.rotation_us += b.rotation_us;
                    total.transfer_us += b.transfer_us;
                }
                total
            }
            sched::OpKind::Write => {
                // The write completes when the slower of the data/parity
                // RMW pairs does; attribute seek vs. rotation to that
                // gating member.
                self.raid
                    .write(lba, self.block_bytes.min(req.bytes.max(1)))
                    .critical()
            }
        }
    }

    fn service_checked(&mut self, req: &Request, now_us: Micros) -> ServiceOutcome {
        if self.faults.is_none() {
            return ServiceOutcome::ok(self.service(req));
        }
        self.last_cylinder = req.cylinder;
        let lba = req.cylinder as u64;
        let state = self.faults.as_mut().expect("checked above");
        let plan = state.injectors[0].plan().clone();
        let failed_member = plan
            .member_failure
            .filter(|f| now_us >= f.at_us)
            .map(|f| f.member);

        let mut total = ServiceBreakdown::default();
        let mut degraded: Option<u32> = None;
        let mut remap_total: Micros = 0;
        if matches!(req.kind, sched::OpKind::Read) {
            let blocks = req.bytes.div_ceil(self.block_bytes).max(1);
            let bytes = self.block_bytes.min(req.bytes);
            for i in 0..blocks {
                let block_lba = lba + i;
                let member = self.raid.locate(block_lba).data_disk;
                if failed_member == Some(member) {
                    // Reconstruct from the N−1 survivors; pays the max of
                    // their services. Survivors draw no media faults here
                    // — a reconstruction-time error would need two
                    // concurrent failures, outside this model's scope.
                    let b = self.raid.degraded_read(block_lba, bytes, member);
                    degraded = Some(member as u32);
                    total.seek_us += b.seek_us;
                    total.rotation_us += b.rotation_us;
                    total.transfer_us += b.transfer_us;
                    continue;
                }
                let inj = &mut state.injectors[member];
                let draw = inj.draw();
                let mut b = limp(inj, self.raid.read(block_lba, bytes));
                if draw.transient {
                    total.seek_us += b.seek_us;
                    total.rotation_us += b.rotation_us;
                    total.transfer_us += b.transfer_us;
                    return ServiceOutcome {
                        breakdown: total,
                        fault: Some(ServiceFault::Transient),
                        remap_penalty_us: 0,
                        degraded,
                        rebuild: None,
                    };
                }
                if draw.bad_sector {
                    let penalty = plan.remap_penalty_us;
                    b.seek_us += penalty;
                    remap_total += penalty;
                }
                total.seek_us += b.seek_us;
                total.rotation_us += b.rotation_us;
                total.transfer_us += b.transfer_us;
            }
        } else {
            // Writes: the fault stream of the data member covers the RMW
            // pair; degraded writes (data or parity member down) are
            // served at healthy cost — the array's write-back buffering
            // is outside this model (see DESIGN.md §6d).
            let member = self.raid.locate(lba).data_disk;
            let inj = &mut state.injectors[member];
            let draw = inj.draw();
            let mut b = limp(
                inj,
                self.raid
                    .write(lba, self.block_bytes.min(req.bytes.max(1)))
                    .critical(),
            );
            if draw.transient {
                return ServiceOutcome {
                    breakdown: b,
                    fault: Some(ServiceFault::Transient),
                    remap_penalty_us: 0,
                    degraded: None,
                    rebuild: None,
                };
            }
            if draw.bad_sector {
                let penalty = plan.remap_penalty_us;
                b.seek_us += penalty;
                remap_total += penalty;
            }
            total = b;
        }

        // Background rebuild: once the member is down, every `every`-th
        // foreground completion tows one stripe reconstruction behind it.
        let mut rebuild = None;
        if let (Some(failed), Some(spec)) = (failed_member, plan.rebuild) {
            if state.rebuilt_stripes < spec.stripes {
                state.since_rebuild += 1;
                if state.since_rebuild >= spec.every {
                    state.since_rebuild = 0;
                    let stripe = state.rebuilt_stripes;
                    state.rebuilt_stripes += 1;
                    let b = self.raid.rebuild_stripe(stripe, self.block_bytes, failed);
                    rebuild = Some((stripe, b.total_us()));
                }
            }
        }

        ServiceOutcome {
            breakdown: total,
            fault: None,
            remap_penalty_us: remap_total,
            degraded,
            rebuild,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::QosVector;

    fn req(cyl: u32, bytes: u64) -> Request {
        Request::read(0, 0, u64::MAX, cyl, bytes, QosVector::none())
    }

    #[test]
    fn transfer_dominated_uniform() {
        let mut s = TransferDominated::uniform(20_000, 3832);
        let b = s.service(&req(100, 64 * 1024));
        assert_eq!(b.total_us(), 20_000);
        assert_eq!(s.head(), 100);
    }

    #[test]
    fn transfer_dominated_scales_with_bytes() {
        // 150 ns/byte ≈ 6.7 MB/s.
        let mut s = TransferDominated::scaled(1_000, 150, 3832);
        let small = s.service(&req(0, 16 * 1024)).total_us();
        let large = s.service(&req(0, 128 * 1024)).total_us();
        assert!(large > 7 * small / 2, "large {large} vs small {small}");
    }

    #[test]
    fn raid_service_reads_and_writes() {
        let mut s = Raid5Service::table1();
        let read = s.service(&req(100, 64 * 1024));
        assert!(read.total_us() > 0);
        assert_eq!(s.head(), 100);
        let mut w = Request::read(1, 0, u64::MAX, 200, 64 * 1024, QosVector::none());
        w.kind = sched::OpKind::Write;
        let write = s.service(&w);
        assert!(
            write.total_us() > read.total_us(),
            "RMW write {} should cost more than a read {}",
            write.total_us(),
            read.total_us()
        );
    }

    #[test]
    fn raid_large_read_spans_blocks() {
        let mut s = Raid5Service::table1();
        let one = s.service(&req(0, 64 * 1024)).total_us();
        let four = s.service(&req(0, 256 * 1024)).total_us();
        assert!(four > 2 * one, "4-block read {four} vs 1-block {one}");
    }

    #[test]
    fn disk_service_moves_head() {
        let mut s = DiskService::table1();
        s.service(&req(1234, 512));
        assert_eq!(s.head(), 1234);
        assert_eq!(s.cylinders(), 3832);
        assert_eq!(s.disk().stats().requests, 1);
    }
}
