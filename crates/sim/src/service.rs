//! Service-time models the simulator can drive schedulers against.

use diskmodel::{Disk, ServiceBreakdown};
use sched::{Micros, Request};

/// Something that can serve a request and report where its head is.
pub trait ServiceProvider {
    /// Current head cylinder.
    fn head(&self) -> u32;
    /// Number of cylinders (for [`sched::HeadState`]).
    fn cylinders(&self) -> u32;
    /// Serve `req`, advancing internal state; returns the time breakdown.
    fn service(&mut self, req: &Request) -> ServiceBreakdown;
}

/// The full Table-1 disk model (seek + tracked rotation + zoned transfer).
pub struct DiskService {
    disk: Disk,
}

impl DiskService {
    /// Wrap a disk.
    pub fn new(disk: Disk) -> Self {
        DiskService { disk }
    }

    /// The paper's Table-1 disk.
    pub fn table1() -> Self {
        DiskService::new(Disk::table1())
    }

    /// Access the underlying disk (e.g. for statistics).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }
}

impl ServiceProvider for DiskService {
    fn head(&self) -> u32 {
        self.disk.head()
    }

    fn cylinders(&self) -> u32 {
        self.disk.geometry().cylinders()
    }

    fn service(&mut self, req: &Request) -> ServiceBreakdown {
        self.disk.service(req.cylinder, req.bytes)
    }
}

/// The transfer-dominated model of Figures 5–9: seek and rotation are
/// negligible, service time is `fixed_us + bytes · ns_per_byte`. The head
/// still tracks the served cylinder so SFC3/SCAN decisions remain
/// meaningful when mixed configurations are tested.
pub struct TransferDominated {
    head: u32,
    cylinders: u32,
    fixed_us: Micros,
    ns_per_byte: u64,
}

impl TransferDominated {
    /// Every request takes exactly `per_request_us`.
    pub fn uniform(per_request_us: Micros, cylinders: u32) -> Self {
        TransferDominated {
            head: 0,
            cylinders,
            fixed_us: per_request_us,
            ns_per_byte: 0,
        }
    }

    /// Service proportional to the transfer size (the §5.2 setting where
    /// high-priority requests are smaller and therefore faster):
    /// `fixed_us + bytes·ns_per_byte/1000` µs.
    pub fn scaled(fixed_us: Micros, ns_per_byte: u64, cylinders: u32) -> Self {
        TransferDominated {
            head: 0,
            cylinders,
            fixed_us,
            ns_per_byte,
        }
    }
}

impl ServiceProvider for TransferDominated {
    fn head(&self) -> u32 {
        self.head
    }

    fn cylinders(&self) -> u32 {
        self.cylinders
    }

    fn service(&mut self, req: &Request) -> ServiceBreakdown {
        self.head = req.cylinder;
        ServiceBreakdown {
            seek_us: 0,
            rotation_us: 0,
            transfer_us: self.fixed_us + req.bytes * self.ns_per_byte / 1000,
        }
    }
}

/// A RAID-5 group behind the scheduler, as in the PanaViss server.
///
/// The request's cylinder is reinterpreted as a logical stripe position:
/// reads touch the data disk owning that block, writes take the
/// read-modify-write path on the data and parity members. Head state
/// reported to the scheduler is the *data-path member average* — a
/// deliberate simplification (per-member scheduling is outside the
/// paper's scope; its experiments schedule a single disk and size the
/// workload to one member's share, see `workload::NewsByteConfig`).
pub struct Raid5Service {
    raid: diskmodel::Raid5,
    block_bytes: u64,
    last_cylinder: u32,
}

impl Raid5Service {
    /// The paper's 4+1 group of Table-1 disks with 64-KB blocks.
    pub fn table1() -> Self {
        Raid5Service {
            raid: diskmodel::Raid5::table1(),
            block_bytes: 64 * 1024,
            last_cylinder: 0,
        }
    }

    /// Access the underlying array.
    pub fn raid(&self) -> &diskmodel::Raid5 {
        &self.raid
    }
}

impl ServiceProvider for Raid5Service {
    fn head(&self) -> u32 {
        self.last_cylinder
    }

    fn cylinders(&self) -> u32 {
        self.raid.disk(0).geometry().cylinders()
    }

    fn service(&mut self, req: &Request) -> ServiceBreakdown {
        self.last_cylinder = req.cylinder;
        let lba = req.cylinder as u64;
        match req.kind {
            sched::OpKind::Read => {
                let blocks = req.bytes.div_ceil(self.block_bytes).max(1);
                let mut total = ServiceBreakdown::default();
                for i in 0..blocks {
                    let b = self.raid.read(lba + i, self.block_bytes.min(req.bytes));
                    total.seek_us += b.seek_us;
                    total.rotation_us += b.rotation_us;
                    total.transfer_us += b.transfer_us;
                }
                total
            }
            sched::OpKind::Write => {
                let us = self.raid.write(lba, self.block_bytes.min(req.bytes.max(1)));
                // The RMW path has no clean per-phase split; report it as
                // transfer time.
                ServiceBreakdown {
                    seek_us: 0,
                    rotation_us: 0,
                    transfer_us: us,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::QosVector;

    fn req(cyl: u32, bytes: u64) -> Request {
        Request::read(0, 0, u64::MAX, cyl, bytes, QosVector::none())
    }

    #[test]
    fn transfer_dominated_uniform() {
        let mut s = TransferDominated::uniform(20_000, 3832);
        let b = s.service(&req(100, 64 * 1024));
        assert_eq!(b.total_us(), 20_000);
        assert_eq!(s.head(), 100);
    }

    #[test]
    fn transfer_dominated_scales_with_bytes() {
        // 150 ns/byte ≈ 6.7 MB/s.
        let mut s = TransferDominated::scaled(1_000, 150, 3832);
        let small = s.service(&req(0, 16 * 1024)).total_us();
        let large = s.service(&req(0, 128 * 1024)).total_us();
        assert!(large > 7 * small / 2, "large {large} vs small {small}");
    }

    #[test]
    fn raid_service_reads_and_writes() {
        let mut s = Raid5Service::table1();
        let read = s.service(&req(100, 64 * 1024));
        assert!(read.total_us() > 0);
        assert_eq!(s.head(), 100);
        let mut w = Request::read(1, 0, u64::MAX, 200, 64 * 1024, QosVector::none());
        w.kind = sched::OpKind::Write;
        let write = s.service(&w);
        assert!(
            write.total_us() > read.total_us(),
            "RMW write {} should cost more than a read {}",
            write.total_us(),
            read.total_us()
        );
    }

    #[test]
    fn raid_large_read_spans_blocks() {
        let mut s = Raid5Service::table1();
        let one = s.service(&req(0, 64 * 1024)).total_us();
        let four = s.service(&req(0, 256 * 1024)).total_us();
        assert!(four > 2 * one, "4-block read {four} vs 1-block {one}");
    }

    #[test]
    fn disk_service_moves_head() {
        let mut s = DiskService::table1();
        s.service(&req(1234, 512));
        assert_eq!(s.head(), 1234);
        assert_eq!(s.cylinders(), 3832);
        assert_eq!(s.disk().stats().requests, 1);
    }
}
