//! The discrete-event simulation loop.
//!
//! One disk, one scheduler, one pre-generated arrival trace. The loop
//! alternates between delivering arrivals to the scheduler (at their
//! arrival times, with the head state of that moment) and letting the
//! disk serve the scheduler's next pick. Priority inversions are counted
//! at each service start against the requests still waiting, per the
//! paper's definition.

use crate::metrics::Metrics;
use crate::service::{ServiceFault, ServiceProvider};
use obs::{NullSink, TraceEvent, TraceSink};
use sched::{DiskScheduler, HeadState, Micros, Request};

/// Bounded, deadline-aware retry policy for failed service attempts.
///
/// A transient media error is retried only while both budgets hold:
/// fewer than `max_attempts` attempts made, *and* the request's deadline
/// has not yet passed — a retry that cannot possibly meet the deadline is
/// pointless disk work, so the request is abandoned as a loss instead.
/// An exhausted budget is a loss ([`Metrics::failed`]), never a hang.
///
/// Retries are immediate by default. With `backoff_base_us > 0` the
/// engine waits a seeded-deterministic jittered exponential delay before
/// each retry (see [`crate::jittered_backoff_us`]): the k-th retry of a
/// request waits `base · 2^(k-1)` µs plus up to `jitter_permille`‰ of
/// that, keyed by `(seed, request id, k)`. The deadline check accounts
/// for the delay, so a retry is only taken when it can still *start*
/// within the deadline. With `backoff_base_us == 0` the engine is
/// bit-identical to the immediate-retry behavior regardless of the
/// jitter and seed fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per request (1 = never retry).
    pub max_attempts: u32,
    /// Base backoff delay before the first retry (µs); 0 = retry
    /// immediately (the default, bit-identical to the pre-backoff
    /// engine).
    pub backoff_base_us: u64,
    /// Jitter amplitude in permille of the exponential delay (0 = pure
    /// exponential).
    pub jitter_permille: u32,
    /// Seed keying the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_us: 0,
            jitter_permille: 0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Delay (µs) to wait before retry number `retry` (1-based) of
    /// request `req_id`; 0 when backoff is disabled.
    #[inline]
    pub fn backoff_us(&self, retry: u32, req_id: u64) -> u64 {
        crate::backoff::jittered_backoff_us(
            self.backoff_base_us,
            retry,
            self.jitter_permille,
            self.seed,
            req_id,
        )
    }
}

/// Simulation policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Drop requests whose deadline has already passed when they are
    /// dispatched, without serving them (§6: "a request not serviced
    /// prior to this deadline is considered lost"). When `false`, late
    /// requests are still served and counted as late.
    pub drop_past_due: bool,
    /// Count priority inversions (the dominant per-service cost; disable
    /// for throughput benchmarks).
    pub count_inversions: bool,
    /// QoS dimensions to track in the metrics.
    pub dims: usize,
    /// Priority levels per dimension to track in the metrics.
    pub levels: usize,
    /// Warm-up window (µs): requests *arriving* before this instant are
    /// simulated normally but excluded from every metric, so steady-state
    /// measurements are not polluted by the empty-queue start-up
    /// transient.
    pub warmup_us: Micros,
    /// Retry policy for transient media errors (default: never retry).
    pub retry: RetryPolicy,
    /// Emit wall-clock [`TraceEvent::StageSpan`]s over the engine's
    /// enqueue/dispatch/service stages, sampled 1-in-`2^shift` per stage
    /// (`None` = off, the default). Span *durations* are wall-clock and
    /// therefore nondeterministic; span *counts* are a deterministic
    /// function of the trace, so event-reconciliation invariants still
    /// hold. Ignored when the sink is [`obs::NullSink`].
    pub stage_spans: Option<u32>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            drop_past_due: false,
            count_inversions: true,
            dims: sched::MAX_QOS_DIMS,
            levels: 16,
            warmup_us: 0,
            retry: RetryPolicy::default(),
            stage_spans: None,
        }
    }
}

impl SimOptions {
    /// Track `dims` dimensions of `levels` levels.
    pub fn with_shape(dims: usize, levels: usize) -> Self {
        SimOptions {
            dims,
            levels,
            ..Default::default()
        }
    }

    /// Enable §6-style dropping of past-due requests.
    pub fn dropping(mut self) -> Self {
        self.drop_past_due = true;
        self
    }

    /// Disable inversion accounting (for throughput benchmarks).
    pub fn without_inversions(mut self) -> Self {
        self.count_inversions = false;
        self
    }

    /// Exclude requests arriving before `warmup_us` from the metrics.
    pub fn with_warmup(mut self, warmup_us: Micros) -> Self {
        self.warmup_us = warmup_us;
        self
    }

    /// Allow up to `max_attempts` total service attempts per request
    /// (retries stop early once the deadline has passed).
    pub fn with_retries(mut self, max_attempts: u32) -> Self {
        self.retry.max_attempts = max_attempts.max(1);
        self
    }

    /// Wait a seeded-deterministic jittered exponential backoff before
    /// each retry instead of retrying immediately. See [`RetryPolicy`].
    pub fn with_retry_backoff(mut self, base_us: u64, jitter_permille: u32, seed: u64) -> Self {
        self.retry.backoff_base_us = base_us;
        self.retry.jitter_permille = jitter_permille;
        self.retry.seed = seed;
        self
    }

    /// Emit sampled wall-clock stage spans (1-in-`2^shift` per stage)
    /// into the trace sink. See [`SimOptions::stage_spans`].
    pub fn with_stage_spans(mut self, shift: u32) -> Self {
        self.stage_spans = Some(shift);
        self
    }
}

/// The fate of one request, produced by [`simulate_logged`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id from the trace.
    pub id: u64,
    /// Arrival time (µs).
    pub arrival_us: Micros,
    /// Completion time (µs); `None` when the request was dropped unserved.
    pub completion_us: Option<Micros>,
    /// Whether the deadline was lost (dropped, or completed late).
    pub lost: bool,
}

/// Run `scheduler` over `trace` against `service`; returns the metrics.
///
/// The trace must be sorted by arrival time (see
/// [`workload::validate_trace`]); ids need not be dense.
pub fn simulate(
    scheduler: &mut dyn DiskScheduler,
    trace: &[Request],
    service: &mut dyn ServiceProvider,
    options: SimOptions,
) -> Metrics {
    simulate_inner(scheduler, trace, service, options, None, &mut NullSink)
}

/// Like [`simulate`], additionally returning one [`RequestRecord`] per
/// request in service order (dropped requests included) — the raw
/// material for response-time distributions and per-request analysis.
pub fn simulate_logged(
    scheduler: &mut dyn DiskScheduler,
    trace: &[Request],
    service: &mut dyn ServiceProvider,
    options: SimOptions,
) -> (Metrics, Vec<RequestRecord>) {
    let mut log = Vec::with_capacity(trace.len());
    let m = simulate_inner(
        scheduler,
        trace,
        service,
        options,
        Some(&mut log),
        &mut NullSink,
    );
    (m, log)
}

/// Like [`simulate`], additionally emitting the engine-level event
/// timeline ([`TraceEvent::Arrival`], [`TraceEvent::Dispatch`],
/// [`TraceEvent::ServiceStart`], [`TraceEvent::ServiceComplete`],
/// [`TraceEvent::Drop`]) into `sink`.
///
/// To see scheduler-internal events (preemptions, sweep reversals) in
/// the same stream, build the scheduler over an [`obs::SharedSink`]
/// clone of `sink` — see the `trace` bench binary for the full wiring.
/// With [`obs::NullSink`] this monomorphizes to exactly [`simulate`].
pub fn simulate_traced<S: TraceSink>(
    scheduler: &mut dyn DiskScheduler,
    trace: &[Request],
    service: &mut dyn ServiceProvider,
    options: SimOptions,
    sink: &mut S,
) -> Metrics {
    simulate_inner(scheduler, trace, service, options, None, sink)
}

/// Per-stage samplers for the engine's wall-clock spans; `None` unless
/// [`SimOptions::stage_spans`] is set *and* the sink is live.
struct EngineSpans {
    enqueue: obs::StageSampler,
    dispatch: obs::StageSampler,
    service: obs::StageSampler,
}

impl EngineSpans {
    fn new(shift: u32) -> Self {
        EngineSpans {
            enqueue: obs::StageSampler::every_pow2(shift),
            dispatch: obs::StageSampler::every_pow2(shift),
            service: obs::StageSampler::every_pow2(shift),
        }
    }
}

/// Start a wall clock for this stage occurrence if the sampler picks it.
#[inline]
fn span_clock(sampler: Option<&mut obs::StageSampler>) -> Option<std::time::Instant> {
    let s = sampler?;
    if s.tick() {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// The engine's mutable spine, shared between the batch loop
/// ([`simulate`] and friends) and the incremental stepper
/// ([`crate::EngineStepper`]): policy knobs, accumulated metrics, the
/// simulation clock and the span samplers. Both drivers funnel arrival
/// delivery through [`EngineCore::enqueue_chunk`] and service through
/// [`EngineCore::step`], so a stepper-driven run over the same arrivals
/// is bit-identical to a batch run.
pub(crate) struct EngineCore {
    pub(crate) options: SimOptions,
    pub(crate) metrics: Metrics,
    pub(crate) now: Micros,
    pub(crate) cylinders: u32,
    spans: Option<EngineSpans>,
}

impl EngineCore {
    pub(crate) fn new(options: SimOptions, cylinders: u32, sink_live: bool) -> Self {
        EngineCore {
            metrics: Metrics::new(options.dims, options.levels),
            now: 0,
            cylinders,
            spans: if sink_live {
                options.stage_spans.map(EngineSpans::new)
            } else {
                None
            },
            options,
        }
    }

    /// Whether `r` falls inside the measurement window (past warm-up).
    #[inline]
    pub(crate) fn measured(&self, r: &Request) -> bool {
        r.arrival_us >= self.options.warmup_us
    }

    /// Deliver one arrival chunk. The head does not move between the
    /// arrivals of a chunk (no service runs in between), so the whole
    /// chunk shares one head position anchored at its first arrival; the
    /// scheduler anchors each request at its own arrival time.
    pub(crate) fn enqueue_chunk<S: TraceSink>(
        &mut self,
        chunk: &[Request],
        scheduler: &mut dyn DiskScheduler,
        service: &dyn ServiceProvider,
        sink: &mut S,
    ) {
        if chunk.is_empty() {
            return;
        }
        if S::ENABLED {
            for r in chunk {
                sink.emit(&TraceEvent::Arrival {
                    now_us: r.arrival_us,
                    req: r.id,
                    cylinder: r.cylinder,
                    deadline_us: r.deadline_us,
                });
            }
        }
        let head = HeadState::new(service.head(), chunk[0].arrival_us, self.cylinders);
        let clock = span_clock(self.spans.as_mut().map(|s| &mut s.enqueue));
        scheduler.enqueue_batch(chunk, &head);
        if let Some(t0) = clock {
            sink.emit(&TraceEvent::StageSpan {
                now_us: head.now_us,
                stage: obs::Stage::Enqueue,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
    }

    /// One dequeue-and-serve step at the current clock. Returns `false`
    /// when the scheduler had nothing to dispatch (the driver decides
    /// whether to idle-jump or stop).
    pub(crate) fn step<S: TraceSink>(
        &mut self,
        scheduler: &mut dyn DiskScheduler,
        service: &mut dyn ServiceProvider,
        log: Option<&mut Vec<RequestRecord>>,
        sink: &mut S,
    ) -> bool {
        let head = HeadState::new(service.head(), self.now, self.cylinders);
        let clock = span_clock(self.spans.as_mut().map(|s| &mut s.dispatch));
        let picked = scheduler.dequeue(&head);
        if let Some(t0) = clock {
            sink.emit(&TraceEvent::StageSpan {
                now_us: self.now,
                stage: obs::Stage::Dispatch,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        match picked {
            Some(req) => {
                self.serve(req, scheduler, service, log, sink);
                true
            }
            None => false,
        }
    }

    /// Drive one dispatched request to its terminal fate — completed,
    /// dropped or failed — advancing the clock past every service
    /// attempt.
    fn serve<S: TraceSink>(
        &mut self,
        req: Request,
        scheduler: &mut dyn DiskScheduler,
        service: &mut dyn ServiceProvider,
        mut log: Option<&mut Vec<RequestRecord>>,
        sink: &mut S,
    ) {
        let in_window = self.measured(&req);
        if S::ENABLED {
            let slack = (req.deadline_us as i128 - self.now as i128)
                .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            sink.emit(&TraceEvent::Dispatch {
                now_us: self.now,
                req: req.id,
                cylinder: req.cylinder,
                // The dispatched request itself still counts.
                queue_depth: scheduler.len() as u64 + 1,
                slack_us: slack,
            });
        }
        if self.options.drop_past_due && req.is_late(self.now) {
            if in_window {
                self.metrics.dropped += 1;
                self.metrics.record_loss(&req);
            }
            if S::ENABLED {
                sink.emit(&TraceEvent::Drop {
                    now_us: self.now,
                    req: req.id,
                    missed_by_us: self.now.saturating_sub(req.deadline_us),
                });
            }
            if let Some(log) = log.as_mut() {
                log.push(RequestRecord {
                    id: req.id,
                    arrival_us: req.arrival_us,
                    completion_us: None,
                    lost: true,
                });
            }
            return;
        }
        if self.options.count_inversions && in_window {
            count_inversions(scheduler, &req, &mut self.metrics);
        }
        if S::ENABLED {
            sink.emit(&TraceEvent::ServiceStart {
                now_us: self.now,
                req: req.id,
                cylinder: req.cylinder,
                seek_cylinders: service.head().abs_diff(req.cylinder),
            });
        }
        // Serve, retrying transient media errors within the bounded,
        // deadline-aware budget. Every attempt — failed or not — pays
        // its disk time (the head moved, the platter turned), so
        // busy-time accounting covers the whole failure path.
        let max_attempts = self.options.retry.max_attempts.max(1);
        let mut attempt: u32 = 1;
        let service_clock = span_clock(self.spans.as_mut().map(|s| &mut s.service));
        let outcome = loop {
            let o = service.service_checked(&req, self.now);
            self.now += o.breakdown.total_us();
            if in_window {
                self.metrics.seek_us += o.breakdown.seek_us;
                self.metrics.rotation_us += o.breakdown.rotation_us;
                self.metrics.transfer_us += o.breakdown.transfer_us;
            }
            let Some(fault) = o.fault else {
                break Some(o);
            };
            if S::ENABLED {
                sink.emit(&TraceEvent::MediaError {
                    now_us: self.now,
                    req: req.id,
                    attempt,
                    transient: fault == ServiceFault::Transient,
                });
            }
            if in_window {
                self.metrics.media_errors += 1;
            }
            // Never retry past the deadline: a retry that cannot
            // complete in time only steals bandwidth from requests that
            // still can. An opt-in backoff wait counts against the same
            // budget — the retry must still *start* in time.
            let mut delay = 0u64;
            let retryable = fault == ServiceFault::Transient && attempt < max_attempts && {
                delay = self.options.retry.backoff_us(attempt, req.id);
                !req.is_late(self.now.saturating_add(delay))
            };
            if !retryable {
                break None;
            }
            self.now += delay;
            attempt += 1;
            if in_window {
                self.metrics.retries += 1;
            }
            if S::ENABLED {
                let slack = (req.deadline_us as i128 - self.now as i128)
                    .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                sink.emit(&TraceEvent::Retry {
                    now_us: self.now,
                    req: req.id,
                    attempt,
                    slack_us: slack,
                });
            }
        };
        if let Some(t0) = service_clock {
            sink.emit(&TraceEvent::StageSpan {
                now_us: self.now,
                stage: obs::Stage::Service,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        match outcome {
            Some(o) => {
                if o.remap_penalty_us > 0 {
                    if S::ENABLED {
                        sink.emit(&TraceEvent::SectorRemap {
                            now_us: self.now,
                            req: req.id,
                            penalty_us: o.remap_penalty_us,
                        });
                    }
                    if in_window {
                        self.metrics.sector_remaps += 1;
                    }
                }
                if let Some(member) = o.degraded {
                    if S::ENABLED {
                        sink.emit(&TraceEvent::DegradedRead {
                            now_us: self.now,
                            req: req.id,
                            failed_member: member,
                        });
                    }
                    if in_window {
                        self.metrics.degraded_reads += 1;
                    }
                }
                let late = req.is_late(self.now);
                if S::ENABLED {
                    sink.emit(&TraceEvent::ServiceComplete {
                        now_us: self.now,
                        req: req.id,
                        response_us: self.now - req.arrival_us,
                        late,
                    });
                }
                if in_window {
                    self.metrics.served += 1;
                    let response = self.now - req.arrival_us;
                    self.metrics.response_total_us += response as u128;
                    self.metrics.max_response_us = self.metrics.max_response_us.max(response);
                    self.metrics.makespan_us = self.now;
                    if late {
                        self.metrics.late += 1;
                        self.metrics.record_loss(&req);
                    }
                }
                if let Some(log) = log.as_mut() {
                    log.push(RequestRecord {
                        id: req.id,
                        arrival_us: req.arrival_us,
                        completion_us: Some(self.now),
                        lost: late,
                    });
                }
                // A background rebuild I/O towed behind this request
                // occupies the member after the foreground completion.
                if let Some((stripe, service_us)) = o.rebuild {
                    self.now += service_us;
                    if S::ENABLED {
                        sink.emit(&TraceEvent::RebuildIo {
                            now_us: self.now,
                            stripe,
                            service_us,
                        });
                    }
                    if in_window {
                        self.metrics.rebuild_ios += 1;
                        self.metrics.rebuild_us += service_us;
                    }
                }
            }
            None => {
                // Retry budget exhausted (or the error was not
                // recoverable): the request is abandoned — a loss, never
                // a hang.
                if S::ENABLED {
                    sink.emit(&TraceEvent::RequestFailed {
                        now_us: self.now,
                        req: req.id,
                        attempts: attempt,
                    });
                }
                if in_window {
                    self.metrics.failed += 1;
                    self.metrics.record_loss(&req);
                }
                if let Some(log) = log.as_mut() {
                    log.push(RequestRecord {
                        id: req.id,
                        arrival_us: req.arrival_us,
                        completion_us: None,
                        lost: true,
                    });
                }
            }
        }
    }
}

fn simulate_inner<S: TraceSink>(
    scheduler: &mut dyn DiskScheduler,
    trace: &[Request],
    service: &mut dyn ServiceProvider,
    options: SimOptions,
    mut log: Option<&mut Vec<RequestRecord>>,
    sink: &mut S,
) -> Metrics {
    let mut core = EngineCore::new(options, service.cylinders(), S::ENABLED);
    for r in trace {
        if core.measured(r) {
            core.metrics.record_request(r);
        }
    }

    let mut next_arrival = 0usize;
    loop {
        // Deliver every arrival up to `now` as one chunk.
        let first_arrival = next_arrival;
        while next_arrival < trace.len() && trace[next_arrival].arrival_us <= core.now {
            next_arrival += 1;
        }
        core.enqueue_chunk(
            &trace[first_arrival..next_arrival],
            scheduler,
            &*service,
            sink,
        );

        if !core.step(scheduler, service, log.as_deref_mut(), sink) {
            // Idle: jump to the next arrival, or finish.
            if next_arrival < trace.len() {
                core.now = core.now.max(trace[next_arrival].arrival_us);
            } else if scheduler.is_empty() {
                break;
            } else {
                unreachable!("scheduler returned None while non-empty");
            }
        }
    }
    core.metrics
}

/// §5.1: serving `served` adds, per dimension, the number of waiting
/// requests with strictly higher priority in that dimension.
fn count_inversions(scheduler: &dyn DiskScheduler, served: &Request, metrics: &mut Metrics) {
    let dims = served.qos.dims().min(metrics.inversions_per_dim.len());
    if dims == 0 {
        return;
    }
    let mut per_dim = vec![0u64; dims];
    scheduler.for_each_pending(&mut |waiting: &Request| {
        for (k, slot) in per_dim.iter_mut().enumerate() {
            if waiting.qos.dims() > k && waiting.qos.beats_in_dim(&served.qos, k) {
                *slot += 1;
            }
        }
    });
    for (k, v) in per_dim.into_iter().enumerate() {
        metrics.inversions_per_dim[k] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TransferDominated;
    use sched::{Edf, Fcfs, QosVector, Sstf};

    fn req(id: u64, arrival: Micros, deadline: Micros, cyl: u32, qos: &[u8]) -> Request {
        Request::read(id, arrival, deadline, cyl, 512, QosVector::new(qos))
    }

    #[test]
    fn serves_everything_once() {
        let trace: Vec<Request> = (0..20)
            .map(|i| req(i, i * 1_000, u64::MAX, (i * 100 % 3832) as u32, &[0]))
            .collect();
        let mut service = TransferDominated::uniform(5_000, 3832);
        let m = simulate(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 16),
        );
        assert_eq!(m.served, 20);
        assert_eq!(m.dropped, 0);
        assert!(m.makespan_us >= 20 * 5_000);
    }

    #[test]
    fn fcfs_has_no_arrival_inversion_but_priority_inversion_exists() {
        // Alternating priorities: FCFS serves in arrival order, so the
        // later high-priority requests wait behind low-priority ones.
        let trace: Vec<Request> = (0..10)
            .map(|i| req(i, 0, u64::MAX, 0, &[(i % 2) as u8]))
            .collect();
        let mut service = TransferDominated::uniform(1_000, 3832);
        let m = simulate(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2),
        );
        assert!(m.inversions_per_dim[0] > 0);
    }

    #[test]
    fn edf_misses_fewer_deadlines_than_fcfs_under_pressure() {
        // Deadlines force reordering: the i-th request has deadline
        // inversely related to arrival.
        let n = 40u64;
        let trace: Vec<Request> = (0..n)
            .map(|i| {
                let deadline = 1_000 + (n - i) * 2_000;
                req(i, i * 10, deadline, 0, &[0])
            })
            .collect();
        let run = |s: &mut dyn DiskScheduler| {
            let mut service = TransferDominated::uniform(1_500, 3832);
            simulate(s, &trace, &mut service, SimOptions::with_shape(1, 2))
        };
        let fcfs = run(&mut Fcfs::new());
        let edf = run(&mut Edf::new());
        assert!(
            edf.losses_total() <= fcfs.losses_total(),
            "edf {} vs fcfs {}",
            edf.losses_total(),
            fcfs.losses_total()
        );
    }

    #[test]
    fn sstf_beats_fcfs_on_seek_time() {
        let trace: Vec<Request> = (0..60)
            .map(|i| req(i, 0, u64::MAX, ((i * 2711) % 3832) as u32, &[0]))
            .collect();
        let run = |s: &mut dyn DiskScheduler| {
            let mut service = crate::DiskService::table1();
            simulate(s, &trace, &mut service, SimOptions::with_shape(1, 2))
        };
        let fcfs = run(&mut Fcfs::new());
        let sstf = run(&mut Sstf::new());
        assert!(
            sstf.seek_us < fcfs.seek_us / 2,
            "sstf {} vs fcfs {}",
            sstf.seek_us,
            fcfs.seek_us
        );
    }

    #[test]
    fn drop_past_due_counts_losses() {
        // Hopeless deadlines: everything arrives at once with 1 µs slack.
        let trace: Vec<Request> = (0..10).map(|i| req(i, 0, 1, 0, &[0])).collect();
        let mut service = TransferDominated::uniform(1_000, 3832);
        let m = simulate(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2).dropping(),
        );
        // The first is dispatched at t=0 (not yet late), the rest drop.
        assert_eq!(m.served, 1);
        assert_eq!(m.dropped, 9);
        assert_eq!(m.losses_total(), 10); // the served one completed late
    }

    #[test]
    fn warmup_excludes_early_arrivals() {
        // 10 requests at t=0..9ms, warmup at 5ms: only the last 5 count.
        let trace: Vec<Request> = (0..10)
            .map(|i| req(i, i * 1_000, u64::MAX, 0, &[0]))
            .collect();
        let mut service = TransferDominated::uniform(500, 3832);
        let m = simulate(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2).with_warmup(5_000),
        );
        assert_eq!(m.served, 5);
        assert_eq!(m.requests_by_dim_level[0][0], 5);
    }

    #[test]
    fn logged_records_every_request_in_service_order() {
        let trace: Vec<Request> = (0..8)
            .map(|i| req(i, 0, u64::MAX, (i * 400) as u32, &[0]))
            .collect();
        let mut service = TransferDominated::uniform(1_000, 3832);
        let mut s = Sstf::new();
        let (m, log) = simulate_logged(&mut s, &trace, &mut service, SimOptions::with_shape(1, 2));
        assert_eq!(m.served, 8);
        assert_eq!(log.len(), 8);
        // Completion times are strictly increasing in service order.
        let times: Vec<_> = log.iter().map(|r| r.completion_us.unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        // SSTF from cylinder 0 serves in cylinder order here.
        let ids: Vec<u64> = log.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert!(log.iter().all(|r| !r.lost));
    }

    #[test]
    fn logged_marks_drops() {
        let trace: Vec<Request> = (0..5).map(|i| req(i, 0, 1, 0, &[0])).collect();
        let mut service = TransferDominated::uniform(1_000, 3832);
        let (m, log) = simulate_logged(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2).dropping(),
        );
        assert_eq!(m.dropped, 4);
        assert_eq!(log.iter().filter(|r| r.completion_us.is_none()).count(), 4);
        assert!(log.iter().all(|r| r.lost));
    }

    #[test]
    fn traced_run_reconciles_with_metrics() {
        use obs::Snapshot;
        // A deadline mix that produces served, late and dropped requests.
        let trace: Vec<Request> = (0..30)
            .map(|i| {
                let deadline = if i % 3 == 0 { 1 + i * 10 } else { u64::MAX };
                req(i, i * 500, deadline, ((i * 733) % 3832) as u32, &[0])
            })
            .collect();
        let options = SimOptions::with_shape(1, 2).dropping();
        let plain = {
            let mut service = TransferDominated::uniform(2_000, 3832);
            simulate(&mut Fcfs::new(), &trace, &mut service, options)
        };
        let mut snapshot = Snapshot::new();
        let traced = {
            let mut service = TransferDominated::uniform(2_000, 3832);
            simulate_traced(
                &mut Fcfs::new(),
                &trace,
                &mut service,
                options,
                &mut snapshot,
            )
        };
        // Tracing must not change the simulation.
        assert_eq!(plain, traced);
        // And the event counters must reconcile with the metrics exactly.
        let c = snapshot.counters;
        assert_eq!(c.arrivals, 30);
        assert_eq!(c.dispatches, traced.served + traced.dropped);
        assert_eq!(c.service_starts, traced.served);
        assert_eq!(c.service_completes, traced.served);
        assert_eq!(c.drops, traced.dropped);
        assert_eq!(c.late_completions, traced.late);
        assert!(traced.dropped > 0, "workload produced no drops");
        assert_eq!(snapshot.response_us.count(), traced.served);
        assert_eq!(snapshot.response_us.max(), Some(traced.max_response_us));
        assert_eq!(snapshot.seek_cylinders.count(), traced.served);
        assert_eq!(snapshot.queue_depth.count(), c.dispatches);
    }

    #[test]
    fn traced_timeline_orders_each_request() {
        use obs::{RingSink, TraceEvent};
        let trace: Vec<Request> = (0..10)
            .map(|i| req(i, i * 100, u64::MAX, (i * 311 % 3832) as u32, &[0]))
            .collect();
        let mut ring = RingSink::new(4096);
        let mut service = TransferDominated::uniform(1_000, 3832);
        simulate_traced(
            &mut Sstf::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2),
            &mut ring,
        );
        // Per request: arrival <= dispatch == service_start <= complete.
        for id in 0..10u64 {
            let times: Vec<(&'static str, u64)> = ring
                .events()
                .filter(|e| e.req() == Some(id))
                .map(|e| (e.name(), e.now_us()))
                .collect();
            let names: Vec<&str> = times.iter().map(|(n, _)| *n).collect();
            assert_eq!(
                names,
                vec!["arrival", "dispatch", "service_start", "service_complete"],
                "request {id}"
            );
            assert!(times.windows(2).all(|w| w[0].1 <= w[1].1), "request {id}");
        }
        // Scheduling events are globally time-ordered. Arrivals are not:
        // they are delivered in batches between services, so an arrival
        // that happened mid-service is emitted after that service's
        // completion event with an earlier stamp.
        let stamps: Vec<u64> = ring
            .events()
            .filter(|e| e.name() != "arrival")
            .map(TraceEvent::now_us)
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_fault_plan_is_bit_identical() {
        use crate::DiskService;
        use diskmodel::{Disk, FaultPlan};
        let trace: Vec<Request> = (0..50)
            .map(|i| {
                req(
                    i,
                    i * 800,
                    60_000 + i * 800,
                    ((i * 977) % 3832) as u32,
                    &[0],
                )
            })
            .collect();
        let options = SimOptions::with_shape(1, 2).dropping().with_retries(3);
        let plain = {
            let mut service = DiskService::table1();
            simulate(&mut Fcfs::new(), &trace, &mut service, options)
        };
        let faulted = {
            let mut service = DiskService::with_faults(Disk::table1(), FaultPlan::none());
            simulate(&mut Fcfs::new(), &trace, &mut service, options)
        };
        assert_eq!(plain, faulted, "zero-fault plan must cost nothing");
        assert_eq!(faulted.media_errors, 0);
        assert_eq!(faulted.failed, 0);
    }

    #[test]
    fn transient_errors_fail_without_retries_and_recover_with_them() {
        use crate::DiskService;
        use diskmodel::{Disk, FaultPlan};
        // 20% transient rate, generous deadlines.
        let trace: Vec<Request> = (0..200)
            .map(|i| req(i, i * 100, u64::MAX, ((i * 733) % 3832) as u32, &[0]))
            .collect();
        let plan = FaultPlan::media(99, 200_000, 0);
        let run = |retries: u32| {
            let mut service = DiskService::with_faults(Disk::table1(), plan.clone());
            simulate(
                &mut Fcfs::new(),
                &trace,
                &mut service,
                SimOptions::with_shape(1, 2).with_retries(retries),
            )
        };
        let no_retry = run(1);
        assert!(no_retry.media_errors > 10, "rate should fire");
        assert_eq!(no_retry.failed, no_retry.media_errors, "every error fatal");
        assert_eq!(no_retry.retries, 0);
        assert_eq!(no_retry.served + no_retry.failed, 200);
        let with_retry = run(5);
        assert!(with_retry.retries > 0);
        assert!(
            with_retry.failed < no_retry.failed / 4,
            "retries should recover most transients: {} vs {}",
            with_retry.failed,
            no_retry.failed
        );
        assert_eq!(with_retry.served + with_retry.failed, 200);
    }

    #[test]
    fn retries_never_pass_the_deadline() {
        use crate::DiskService;
        use diskmodel::{Disk, FaultPlan};
        use obs::RingSink;
        // Half the requests get tight deadlines; a third of attempts fail.
        let trace: Vec<Request> = (0..150)
            .map(|i| {
                let deadline = if i % 2 == 0 {
                    i * 400 + 30_000
                } else {
                    u64::MAX
                };
                req(i, i * 400, deadline, ((i * 547) % 3832) as u32, &[0])
            })
            .collect();
        let mut ring = RingSink::new(1 << 16);
        let mut service = DiskService::with_faults(Disk::table1(), FaultPlan::media(5, 330_000, 0));
        let m = simulate_traced(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2).with_retries(8),
            &mut ring,
        );
        assert!(m.retries > 0, "workload produced no retries");
        // Every retry was issued with non-negative slack: the engine
        // never spends disk time on a request that is already late.
        for e in ring.events() {
            if let TraceEvent::Retry { slack_us, .. } = e {
                assert!(*slack_us >= 0, "retry issued past deadline: {slack_us}");
            }
        }
        // Termination + accounting: everything is served, dropped, or
        // failed — never hung.
        assert_eq!(m.served + m.failed, 150);
    }

    #[test]
    fn fault_run_reconciles_events_with_metrics() {
        use crate::DiskService;
        use diskmodel::{Disk, FaultPlan};
        use obs::Snapshot;
        let trace: Vec<Request> = (0..300)
            .map(|i| req(i, i * 200, u64::MAX, ((i * 311) % 3832) as u32, &[0]))
            .collect();
        let mut snapshot = Snapshot::new();
        let mut service =
            DiskService::with_faults(Disk::table1(), FaultPlan::media(11, 100_000, 50_000));
        let m = simulate_traced(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2).with_retries(3),
            &mut snapshot,
        );
        let c = snapshot.counters;
        assert!(m.media_errors > 0 && m.sector_remaps > 0);
        assert_eq!(c.media_errors, m.media_errors);
        assert_eq!(c.retries, m.retries);
        assert_eq!(c.request_failures, m.failed);
        assert_eq!(c.sector_remaps, m.sector_remaps);
        assert_eq!(c.dispatches, m.served + m.dropped + m.failed);
        assert_eq!(c.service_starts, m.served + m.failed);
        assert_eq!(c.service_completes, m.served);
    }

    #[test]
    fn member_failure_degrades_reads_and_rebuilds() {
        use crate::Raid5Service;
        use diskmodel::FaultPlan;
        // Member 2 dies at t=0; rebuild one stripe per 4 foreground
        // completions, 20 stripes total.
        let plan = FaultPlan::none()
            .with_member_failure(2, 0)
            .with_rebuild(20, 4);
        let trace: Vec<Request> = (0..160)
            .map(|i| req(i, i * 2_000, u64::MAX, (i % 500) as u32, &[0]))
            .collect();
        let mut service = Raid5Service::with_faults(plan);
        let m = simulate(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2),
        );
        assert_eq!(m.served, 160, "degraded group must still serve");
        assert!(m.degraded_reads > 0, "no read hit the failed member");
        assert_eq!(m.rebuild_ios, 20, "rebuild should finish its stripes");
        assert!(m.rebuild_us > 0);
        assert_eq!(service.rebuilt_stripes(), 20);
    }

    #[test]
    fn limping_member_slows_service() {
        use crate::DiskService;
        use diskmodel::{Disk, FaultPlan};
        let trace: Vec<Request> = (0..80)
            .map(|i| req(i, 0, u64::MAX, ((i * 433) % 3832) as u32, &[0]))
            .collect();
        let run = |plan: FaultPlan| {
            let mut service = DiskService::with_faults(Disk::table1(), plan);
            simulate(
                &mut Fcfs::new(),
                &trace,
                &mut service,
                SimOptions::with_shape(1, 2),
            )
        };
        let healthy = run(FaultPlan::none());
        let limping = run(FaultPlan::none().with_limp(0, 2000));
        assert!(
            limping.busy_us() > healthy.busy_us() * 3 / 2,
            "2x limp should dilate busy time: {} vs {}",
            limping.busy_us(),
            healthy.busy_us()
        );
    }

    #[test]
    fn stage_spans_populate_stage_histograms_deterministically() {
        use obs::{Snapshot, Stage};
        let trace: Vec<Request> = (0..40)
            .map(|i| req(i, i * 700, u64::MAX, ((i * 433) % 3832) as u32, &[0]))
            .collect();
        let options = SimOptions::with_shape(1, 2).with_stage_spans(0);
        let run = || {
            let mut snap = Snapshot::new();
            let mut service = TransferDominated::uniform(1_000, 3832);
            let m = simulate_traced(&mut Fcfs::new(), &trace, &mut service, options, &mut snap);
            (m, snap)
        };
        let (m, snap) = run();
        assert!(snap.counters.stage_spans > 0);
        // Shift 0 samples every occurrence: one dispatch span per
        // dequeue attempt, one service span per service.
        let engine_stages = [Stage::Enqueue, Stage::Dispatch, Stage::Service];
        let span_total: u64 = engine_stages
            .iter()
            .map(|s| snap.stage_ns[s.index()].count())
            .sum();
        assert_eq!(span_total, snap.counters.stage_spans);
        assert_eq!(snap.stage_ns[Stage::Service.index()].count(), m.served);
        assert!(snap.stage_ns[Stage::Enqueue.index()].count() > 0);
        // Span counts (not durations) are deterministic across runs.
        let (_, again) = run();
        assert_eq!(again.counters.stage_spans, snap.counters.stage_spans);
        // Untraced metrics are untouched by span emission.
        let mut service = TransferDominated::uniform(1_000, 3832);
        let plain = simulate(&mut Fcfs::new(), &trace, &mut service, options);
        assert_eq!(plain, m);
    }

    #[test]
    fn response_time_accumulates() {
        let trace = vec![req(0, 0, u64::MAX, 0, &[0])];
        let mut service = TransferDominated::uniform(7_000, 3832);
        let m = simulate(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::default(),
        );
        assert_eq!(m.mean_response_us(), 7_000.0);
    }
}
