//! Seeded-deterministic jittered exponential backoff.
//!
//! One pure function shared by the retry engine ([`crate::RetryPolicy`])
//! and the farm supervisor's quarantine re-probe: doubling delays with an
//! optional bounded jitter drawn from a splitmix64 hash of
//! `(seed, salt, attempt)`. No RNG state is threaded anywhere — the same
//! inputs always produce the same delay, so every replay (oracle
//! differential runs, corpus cases, CI smokes) stays bit-for-bit
//! reproducible.

/// The jittered exponential backoff delay for the `attempt`-th retry
/// (1-based), in microseconds.
///
/// * `base_us == 0` disables backoff entirely: the delay is 0 for every
///   attempt, reproducing immediate-retry behavior bit-for-bit.
/// * Otherwise the un-jittered delay doubles per attempt
///   (`base_us << (attempt - 1)`, exponent capped at 20 and the shift
///   saturating, so pathological attempt counts cannot overflow).
/// * `jitter_permille` adds a deterministic pseudo-random extension of up
///   to `delay · jitter_permille / 1000`, keyed by `(seed, salt,
///   attempt)`. Zero jitter keeps the pure doubling schedule.
///
/// `salt` distinguishes independent backoff streams sharing one seed —
/// the retry engine salts with the request id, the farm supervisor with
/// the shard index — so co-failing entities do not retry in lockstep.
pub fn jittered_backoff_us(
    base_us: u64,
    attempt: u32,
    jitter_permille: u32,
    seed: u64,
    salt: u64,
) -> u64 {
    if base_us == 0 {
        return 0;
    }
    let exp = attempt.saturating_sub(1).min(20);
    let delay = base_us.saturating_mul(1u64 << exp);
    if jitter_permille == 0 {
        return delay;
    }
    let span = delay.saturating_mul(jitter_permille as u64) / 1000;
    let h = splitmix64(
        seed ^ salt.rotate_left(17) ^ ((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    delay.saturating_add(h % (span + 1))
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_base_is_always_zero() {
        for attempt in 0..64 {
            assert_eq!(jittered_backoff_us(0, attempt, 500, 42, 7), 0);
        }
    }

    #[test]
    fn zero_jitter_doubles_exactly() {
        assert_eq!(jittered_backoff_us(100, 1, 0, 0, 0), 100);
        assert_eq!(jittered_backoff_us(100, 2, 0, 0, 0), 200);
        assert_eq!(jittered_backoff_us(100, 3, 0, 0, 0), 400);
        assert_eq!(jittered_backoff_us(100, 10, 0, 0, 0), 51_200);
    }

    #[test]
    fn exponent_caps_and_shift_saturates() {
        // Attempt 21 and attempt 10_000 hit the same capped exponent.
        assert_eq!(
            jittered_backoff_us(3, 21, 0, 0, 0),
            jittered_backoff_us(3, 10_000, 0, 0, 0)
        );
        // A huge base saturates instead of overflowing.
        assert_eq!(jittered_backoff_us(u64::MAX / 2, 21, 0, 0, 0), u64::MAX);
        // Max jitter on a saturated delay stays saturated, no panic.
        assert_eq!(jittered_backoff_us(u64::MAX / 2, 21, 1000, 9, 9), u64::MAX);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        for attempt in 1..12 {
            let bare = jittered_backoff_us(250, attempt, 0, 0, 0);
            let a = jittered_backoff_us(250, attempt, 300, 42, 7);
            let b = jittered_backoff_us(250, attempt, 300, 42, 7);
            assert_eq!(a, b, "same inputs must give the same delay");
            assert!(a >= bare, "jitter only extends the delay");
            assert!(a <= bare + bare * 300 / 1000, "jitter bounded by permille");
        }
    }

    #[test]
    fn salts_decorrelate_streams() {
        // Two salts sharing a seed should not produce identical jitter on
        // every attempt (lockstep retries are what jitter exists to break).
        let same = (1..16).all(|attempt| {
            jittered_backoff_us(1_000, attempt, 1000, 99, 1)
                == jittered_backoff_us(1_000, attempt, 1000, 99, 2)
        });
        assert!(!same, "salted streams must diverge somewhere");
    }
}
