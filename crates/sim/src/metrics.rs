//! The paper's evaluation metrics, accumulated per simulation run.

use sched::{Micros, Request};

/// Everything the paper measures, in one accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Requests actually serviced by the disk.
    pub served: u64,
    /// Requests dropped unserved because their deadline had already
    /// passed at dispatch time (the §6 "lost" notion).
    pub dropped: u64,
    /// Requests whose service *completed* after their deadline.
    pub late: u64,
    /// Requests abandoned after exhausting their retry budget (or hitting
    /// an unrecoverable fault) — the fault-layer loss class.
    pub failed: u64,
    /// Media errors observed (failed service attempts, transient or not).
    pub media_errors: u64,
    /// Retries issued after transient media errors.
    pub retries: u64,
    /// Reads reconstructed from parity around a failed member.
    pub degraded_reads: u64,
    /// Latent bad sectors remapped (with their relocation penalty paid).
    pub sector_remaps: u64,
    /// Background rebuild I/Os interleaved with foreground service.
    pub rebuild_ios: u64,
    /// Member time consumed by background rebuild I/Os (µs).
    pub rebuild_us: Micros,
    /// Priority inversions per QoS dimension: serving `T` counts, for
    /// each dimension `k`, the waiting requests with higher priority in
    /// `k` (§5.1's definition).
    pub inversions_per_dim: Vec<u64>,
    /// Deadline losses (dropped + late) per `[dimension][priority level]`.
    pub losses_by_dim_level: Vec<Vec<u64>>,
    /// Requests per `[dimension][priority level]` (denominators for miss
    /// ratios).
    pub requests_by_dim_level: Vec<Vec<u64>>,
    /// Total seek time (µs).
    pub seek_us: Micros,
    /// Total rotational latency (µs).
    pub rotation_us: Micros,
    /// Total transfer time (µs).
    pub transfer_us: Micros,
    /// Sum of response times (completion − arrival) over served requests.
    pub response_total_us: u128,
    /// Largest response time of any served request — the starvation
    /// indicator the ER policy (§3.3) is designed to bound.
    pub max_response_us: Micros,
    /// Simulated time at which the last request completed.
    pub makespan_us: Micros,
}

impl Metrics {
    /// Accumulator sized for `dims` QoS dimensions of `levels` levels.
    pub fn new(dims: usize, levels: usize) -> Self {
        Metrics {
            inversions_per_dim: vec![0; dims],
            losses_by_dim_level: vec![vec![0; levels]; dims],
            requests_by_dim_level: vec![vec![0; levels]; dims],
            ..Default::default()
        }
    }

    /// Record that `request` exists (fills the per-level denominators).
    pub fn record_request(&mut self, request: &Request) {
        for k in 0..self.requests_by_dim_level.len().min(request.qos.dims()) {
            let level = request.qos.level(k) as usize;
            if let Some(slot) = self.requests_by_dim_level[k].get_mut(level) {
                *slot += 1;
            }
        }
    }

    /// Record a deadline loss (drop or late completion) for `request`.
    pub fn record_loss(&mut self, request: &Request) {
        for k in 0..self.losses_by_dim_level.len().min(request.qos.dims()) {
            let level = request.qos.level(k) as usize;
            if let Some(slot) = self.losses_by_dim_level[k].get_mut(level) {
                *slot += 1;
            }
        }
    }

    /// Fold another accumulator into this one, as if both runs' events
    /// had been recorded here: counts and times add, extrema take the
    /// max, per-dimension tables widen to the larger shape. The striped
    /// RAID path uses this to aggregate per-member runs into one group
    /// view (`makespan_us` becomes the slowest member's makespan).
    pub fn merge(&mut self, other: &Metrics) {
        self.served += other.served;
        self.dropped += other.dropped;
        self.late += other.late;
        self.failed += other.failed;
        self.media_errors += other.media_errors;
        self.retries += other.retries;
        self.degraded_reads += other.degraded_reads;
        self.sector_remaps += other.sector_remaps;
        self.rebuild_ios += other.rebuild_ios;
        self.rebuild_us += other.rebuild_us;
        if self.inversions_per_dim.len() < other.inversions_per_dim.len() {
            self.inversions_per_dim
                .resize(other.inversions_per_dim.len(), 0);
        }
        for (k, v) in other.inversions_per_dim.iter().enumerate() {
            self.inversions_per_dim[k] += v;
        }
        let merge_table = |mine: &mut Vec<Vec<u64>>, theirs: &Vec<Vec<u64>>| {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), Vec::new());
            }
            for (row, other_row) in mine.iter_mut().zip(theirs.iter()) {
                if row.len() < other_row.len() {
                    row.resize(other_row.len(), 0);
                }
                for (slot, v) in row.iter_mut().zip(other_row.iter()) {
                    *slot += v;
                }
            }
        };
        merge_table(&mut self.losses_by_dim_level, &other.losses_by_dim_level);
        merge_table(
            &mut self.requests_by_dim_level,
            &other.requests_by_dim_level,
        );
        self.seek_us += other.seek_us;
        self.rotation_us += other.rotation_us;
        self.transfer_us += other.transfer_us;
        self.response_total_us += other.response_total_us;
        self.max_response_us = self.max_response_us.max(other.max_response_us);
        self.makespan_us = self.makespan_us.max(other.makespan_us);
    }

    /// Total priority inversions over all dimensions.
    pub fn inversions_total(&self) -> u64 {
        self.inversions_per_dim.iter().sum()
    }

    /// Total deadline losses (dropped + late completions + failed).
    pub fn losses_total(&self) -> u64 {
        self.dropped + self.late + self.failed
    }

    /// Total requests seen.
    pub fn requests_total(&self) -> u64 {
        self.served + self.dropped + self.failed
    }

    /// Fraction of requests that lost their deadline.
    pub fn loss_ratio(&self) -> f64 {
        let n = self.requests_total();
        if n == 0 {
            0.0
        } else {
            self.losses_total() as f64 / n as f64
        }
    }

    /// Mean response time over served requests, µs.
    pub fn mean_response_us(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.response_total_us as f64 / self.served as f64
        }
    }

    /// Standard deviation of per-dimension inversion counts — the paper's
    /// fairness measure (Figure 7a): lower is fairer.
    pub fn inversion_stddev(&self) -> f64 {
        let d = self.inversions_per_dim.len();
        if d == 0 {
            return 0.0;
        }
        let mean = self.inversions_total() as f64 / d as f64;
        let var = self
            .inversions_per_dim
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / d as f64;
        var.sqrt()
    }

    /// The most-favored dimension: index and inversion count of the
    /// dimension with the fewest inversions (Figure 7b).
    pub fn favored_dimension(&self) -> Option<(usize, u64)> {
        self.inversions_per_dim
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, v)| v)
    }

    /// §6's aggregate cost: the weighted sum of per-level miss ratios on
    /// QoS dimension `dim`, with weights decreasing linearly so that the
    /// highest level costs `top_to_bottom` times the lowest (the paper
    /// uses 11).
    pub fn weighted_loss(&self, dim: usize, top_to_bottom: f64) -> f64 {
        let levels = self.requests_by_dim_level[dim].len();
        if levels == 0 {
            return 0.0;
        }
        let mut cost = 0.0;
        for level in 0..levels {
            let r = self.requests_by_dim_level[dim][level];
            if r == 0 {
                continue;
            }
            let m = self.losses_by_dim_level[dim][level];
            // Level 0 (highest priority) weight = top_to_bottom, lowest = 1.
            let w = if levels == 1 {
                top_to_bottom
            } else {
                top_to_bottom - (top_to_bottom - 1.0) * level as f64 / (levels as f64 - 1.0)
            };
            cost += w * m as f64 / r as f64;
        }
        cost
    }

    /// Fold a set of per-member (or per-shard) runs into one group view —
    /// [`Metrics::merge`] applied across the whole set.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Metrics>) -> Metrics {
        let mut total = Metrics::default();
        for m in parts {
            total.merge(m);
        }
        total
    }

    /// Requests served across a set of per-member runs.
    pub fn total_served<'a>(parts: impl IntoIterator<Item = &'a Metrics>) -> u64 {
        parts.into_iter().map(|m| m.served).sum()
    }

    /// Deadline losses (dropped + late + failed) across a set of runs.
    pub fn total_losses<'a>(parts: impl IntoIterator<Item = &'a Metrics>) -> u64 {
        parts.into_iter().map(|m| m.losses_total()).sum()
    }

    /// Requests seen across a set of runs.
    pub fn total_requests<'a>(parts: impl IntoIterator<Item = &'a Metrics>) -> u64 {
        parts.into_iter().map(|m| m.requests_total()).sum()
    }

    /// Loss ratio across a set of runs (0 when the set is empty).
    pub fn group_loss_ratio<'a>(parts: impl IntoIterator<Item = &'a Metrics> + Clone) -> f64 {
        let n = Self::total_requests(parts.clone());
        if n == 0 {
            0.0
        } else {
            Self::total_losses(parts) as f64 / n as f64
        }
    }

    /// Total disk busy time, µs.
    pub fn busy_us(&self) -> Micros {
        self.seek_us + self.rotation_us + self.transfer_us
    }

    /// Disk utilization over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan_us == 0 {
            0.0
        } else {
            self.busy_us() as f64 / self.makespan_us as f64
        }
    }
}

/// Convenience: run FCFS over a trace with the same service model factory
/// and return its total inversions — the normalization denominator the
/// paper uses everywhere ("as a percentage of the number of priority
/// inversions that occurs in the FIFO policy").
pub fn fifo_inversion_baseline(
    trace: &[Request],
    make_service: impl FnOnce() -> Box<dyn crate::ServiceProvider>,
    options: crate::SimOptions,
) -> u64 {
    let mut fifo = sched::Fcfs::new();
    let mut service = make_service();
    let m = crate::simulate(&mut fifo, trace, service.as_mut(), options);
    m.inversions_total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::QosVector;

    fn req(levels: &[u8]) -> Request {
        Request::read(0, 0, u64::MAX, 0, 512, QosVector::new(levels))
    }

    #[test]
    fn record_and_totals() {
        let mut m = Metrics::new(2, 8);
        m.record_request(&req(&[0, 7]));
        m.record_request(&req(&[3, 3]));
        m.record_loss(&req(&[0, 7]));
        assert_eq!(m.requests_by_dim_level[0][0], 1);
        assert_eq!(m.requests_by_dim_level[1][7], 1);
        assert_eq!(m.losses_by_dim_level[0][0], 1);
        assert_eq!(m.losses_by_dim_level[1][7], 1);
    }

    #[test]
    fn stddev_zero_when_balanced() {
        let mut m = Metrics::new(3, 4);
        m.inversions_per_dim = vec![10, 10, 10];
        assert_eq!(m.inversion_stddev(), 0.0);
        m.inversions_per_dim = vec![0, 10, 20];
        assert!(m.inversion_stddev() > 0.0);
        assert_eq!(m.favored_dimension(), Some((0, 0)));
    }

    #[test]
    fn weighted_loss_prefers_low_priority_losses() {
        // Two schedulers, same total losses; one loses high-priority
        // requests, the other low-priority ones.
        let mut loses_high = Metrics::new(1, 8);
        let mut loses_low = Metrics::new(1, 8);
        for level in 0..8u8 {
            for _ in 0..10 {
                loses_high.record_request(&req(&[level]));
                loses_low.record_request(&req(&[level]));
            }
        }
        for _ in 0..5 {
            loses_high.record_loss(&req(&[0]));
            loses_low.record_loss(&req(&[7]));
        }
        assert!(loses_high.weighted_loss(0, 11.0) > loses_low.weighted_loss(0, 11.0));
        // Ratio should be about 11:1.
        let ratio = loses_high.weighted_loss(0, 11.0) / loses_low.weighted_loss(0, 11.0);
        assert!((10.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn merge_adds_counts_and_takes_extrema() {
        let mut a = Metrics::new(2, 4);
        a.served = 5;
        a.late = 1;
        a.inversions_per_dim = vec![3, 1];
        a.requests_by_dim_level[0][2] = 4;
        a.seek_us = 100;
        a.response_total_us = 1_000;
        a.max_response_us = 400;
        a.makespan_us = 900;
        let mut b = Metrics::new(2, 4);
        b.served = 2;
        b.dropped = 3;
        b.inversions_per_dim = vec![1, 7];
        b.requests_by_dim_level[0][2] = 1;
        b.losses_by_dim_level[1][0] = 2;
        b.seek_us = 50;
        b.response_total_us = 500;
        b.max_response_us = 800;
        b.makespan_us = 700;
        a.merge(&b);
        assert_eq!(a.served, 7);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.late, 1);
        assert_eq!(a.inversions_per_dim, vec![4, 8]);
        assert_eq!(a.requests_by_dim_level[0][2], 5);
        assert_eq!(a.losses_by_dim_level[1][0], 2);
        assert_eq!(a.seek_us, 150);
        assert_eq!(a.response_total_us, 1_500);
        assert_eq!(a.max_response_us, 800); // max, not sum
        assert_eq!(a.makespan_us, 900); // slowest member
    }

    #[test]
    fn merge_widens_mismatched_shapes() {
        let mut narrow = Metrics::new(1, 2);
        narrow.inversions_per_dim = vec![5];
        let mut wide = Metrics::new(3, 4);
        wide.inversions_per_dim = vec![1, 2, 3];
        wide.requests_by_dim_level[2][3] = 9;
        narrow.merge(&wide);
        assert_eq!(narrow.inversions_per_dim, vec![6, 2, 3]);
        assert_eq!(narrow.requests_by_dim_level[2][3], 9);
    }

    #[test]
    fn aggregate_helpers_match_pairwise_merge() {
        let mut a = Metrics::new(1, 2);
        a.served = 8;
        a.dropped = 2;
        a.makespan_us = 500;
        let mut b = Metrics::new(1, 2);
        b.served = 4;
        b.late = 1;
        b.failed = 1;
        b.makespan_us = 900;
        let parts = [a.clone(), b.clone()];
        assert_eq!(Metrics::total_served(&parts), 12);
        assert_eq!(Metrics::total_losses(&parts), 4);
        // requests = served + dropped + failed (late completions are
        // already inside served).
        assert_eq!(Metrics::total_requests(&parts), 15);
        assert!((Metrics::group_loss_ratio(&parts) - 4.0 / 15.0).abs() < 1e-12);
        let mut pairwise = a;
        pairwise.merge(&b);
        assert_eq!(Metrics::merged(&parts), pairwise);
    }

    #[test]
    fn loss_ratio_and_utilization() {
        let mut m = Metrics::new(1, 2);
        m.served = 8;
        m.dropped = 2;
        m.late = 1;
        assert_eq!(m.requests_total(), 10);
        assert!((m.loss_ratio() - 0.3).abs() < 1e-12);
        m.seek_us = 100;
        m.transfer_us = 400;
        m.makespan_us = 1000;
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }
}
