//! # sim — discrete-event disk-scheduling simulator and QoS metrics
//!
//! Drives any [`sched::DiskScheduler`] over a workload trace against a
//! service-time model, collecting the paper's evaluation metrics:
//!
//! * **priority inversion** per QoS dimension (normalized to FCFS, §5.1),
//! * **deadline misses**, broken down per priority level per dimension
//!   (the selectivity analysis of Figure 9),
//! * **fairness** — the standard deviation of per-dimension inversion,
//! * **disk utilization** — seek/rotation/transfer breakdowns,
//! * §6's **weighted aggregate loss** cost function
//!   `f = Σ wᵢ·mᵢ/rᵢ` with linearly decreasing weights.
//!
//! Two service models mirror the paper's experimental assumptions: the
//! full Table-1 [`diskmodel::Disk`] (Figures 10–11), and a
//! transfer-dominated model where seek time is negligible (Figures 5–9:
//! "the disk block size is large enough to make the transfer time of disk
//! requests dominate the seek time").
//!
//! ```
//! use sched::Fcfs;
//! use sim::{simulate, SimOptions, TransferDominated};
//! use workload::PoissonConfig;
//!
//! let trace = PoissonConfig::figure5(2, 500).generate(42);
//! let mut service = TransferDominated::uniform(20_000, 3832);
//! let m = simulate(&mut Fcfs::new(), &trace, &mut service, SimOptions::default());
//! assert_eq!(m.served + m.dropped, 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod analysis;
mod backoff;
mod engine;
mod exec;
mod metrics;
mod service;
mod step;
mod striped;

pub use backoff::jittered_backoff_us;
pub use engine::{
    simulate, simulate_logged, simulate_traced, RequestRecord, RetryPolicy, SimOptions,
};
pub use exec::{ingest_concurrent, run_indexed, Parallelism};
pub use metrics::{fifo_inversion_baseline, Metrics};
pub use service::{
    DiskService, Raid5Service, ServiceFault, ServiceOutcome, ServiceProvider, TransferDominated,
};
pub use step::EngineStepper;
pub use striped::{
    simulate_striped, simulate_striped_faulted, simulate_striped_observed,
    simulate_striped_observed_on, simulate_striped_on, StripedOutcome,
};

pub use sched::Micros;
