//! Deterministic fan-out of independent shard/member timelines.
//!
//! The striped RAID group and the farm layer both run N mutually
//! independent single-disk simulations and fold the results. This module
//! owns the one primitive they share: map an index range through a worker
//! function, either serially or on `std::thread` scoped threads, and hand
//! the results back **in index order** regardless of completion order.
//!
//! Because the timelines share no mutable state and the merge order is
//! fixed, the parallel path is bit-identical to the serial one — callers
//! pick [`Parallelism`] purely on wall-clock grounds.

use cascade::{CascadedSfc, IngestRing};
use obs::TraceSink;
use sched::{HeadState, Request};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How [`run_indexed`] executes its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run every index on the calling thread, in order. The reference
    /// behaviour: traced runs stay reproducible down to the event stream.
    Serial,
    /// Fan out over up to this many scoped worker threads.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// One thread per available core (serial on single-core machines or
    /// when availability cannot be determined).
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Parallelism::Threads(n),
            _ => Parallelism::Serial,
        }
    }

    /// `n` worker threads; `n <= 1` degrades to [`Parallelism::Serial`].
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) if n.get() > 1 => Parallelism::Threads(n),
            _ => Parallelism::Serial,
        }
    }

    /// Worker threads that would actually be spawned for `jobs` jobs.
    pub fn worker_count(self, jobs: usize) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get().min(jobs).max(1),
        }
    }
}

/// Run `job(0..n)` under the given parallelism and return the results in
/// index order.
///
/// Workers pull indices from a shared atomic counter, so an uneven load
/// (one hot shard) does not idle the other threads. Results land in
/// per-index slots; nothing about thread scheduling can reorder them.
pub fn run_indexed<R, F>(n: usize, parallelism: Parallelism, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = parallelism.worker_count(n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// Ingest one arrival chunk into a Cascaded-SFC scheduler through
/// multiple producer threads, bit-identical to a serial
/// [`sched::DiskScheduler::enqueue_batch`] of the same chunk.
///
/// The chunk is split into `producers` contiguous slices. Each producer
/// thread characterizes its slice through the shared encapsulator
/// ([`cascade::Encapsulator::map_batch_into`], the lane-parallel batch
/// pass) and pushes the resulting characterization values onto its own
/// lane of a value-only [`IngestRing`] — the requests themselves stay in
/// the borrowed chunk, so the hot hand-off moves 16 bytes per request.
/// The ring is then drained serially into the dispatcher in
/// (producer-index, sequence) order against the original chunk
/// ([`cascade::CascadedSfc::drain_value_ring`]). Contiguous slices in
/// producer order concatenate back to the original chunk, so the drained
/// insertion sequence — each request anchored at its own arrival time —
/// is exactly the serial one, regardless of thread interleaving. This is
/// what lets a farm shard accept arrivals from several router threads
/// without forking its dispatch order from the single-threaded
/// reference.
///
/// `parallelism` bounds the producer count ([`Parallelism::Serial`] or a
/// sub-lane-width chunk short-circuits to the plain batched enqueue).
/// Returns the number of producer threads used.
pub fn ingest_concurrent<S: TraceSink>(
    scheduler: &mut CascadedSfc<S>,
    chunk: &[Request],
    head: &HeadState,
    parallelism: Parallelism,
) -> usize {
    use sched::DiskScheduler;
    let producers = parallelism.worker_count(chunk.len());
    if producers <= 1 || chunk.len() < 2 {
        scheduler.enqueue_batch(chunk, head);
        return 1;
    }
    let ring = IngestRing::<u128>::new(producers);
    let enc = scheduler.encapsulator();
    let base = chunk.len() / producers;
    let extra = chunk.len() % producers;
    std::thread::scope(|scope| {
        let mut start = 0usize;
        let mut own = None;
        for p in 0..producers {
            let len = base + usize::from(p < extra);
            let slice = &chunk[start..start + len];
            start += len;
            // The calling thread is producer 0: it would otherwise idle
            // in the scope join while the others characterize.
            if p == 0 {
                own = Some(slice);
                continue;
            }
            let ring = &ring;
            // Producer threads run a shallow, iterative batch pass; the
            // default 8 MiB stacks would dominate the spawn cost (page
            // table setup) for chunk-sized work, so keep them small.
            std::thread::Builder::new()
                .stack_size(64 * 1024)
                .spawn_scoped(scope, move || {
                    ring.push_with(p, |vs| enc.map_batch_into(slice, head, vs));
                })
                .expect("spawn ingest producer");
        }
        let slice = own.expect("at least one producer slice");
        ring.push_with(0, |vs| enc.map_batch_into(slice, head, vs));
    });
    let mut ring = ring;
    scheduler.drain_value_ring(chunk, &mut ring);
    producers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_degrade_to_serial() {
        assert_eq!(Parallelism::threads(0), Parallelism::Serial);
        assert_eq!(Parallelism::threads(1), Parallelism::Serial);
        assert!(matches!(Parallelism::threads(4), Parallelism::Threads(_)));
        assert_eq!(Parallelism::threads(4).worker_count(2), 2);
        assert_eq!(Parallelism::Serial.worker_count(8), 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        for p in [Parallelism::Serial, Parallelism::threads(4)] {
            let out = run_indexed(17, p, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_jobs() {
        assert!(run_indexed(0, Parallelism::threads(4), |i| i).is_empty());
        assert_eq!(run_indexed(1, Parallelism::threads(4), |i| i), vec![0]);
    }

    #[test]
    fn parallel_matches_serial_on_nontrivial_work() {
        let work = |i: usize| {
            // Deterministic mixing so a reordering bug shows up.
            let mut x = i as u64 + 1;
            for _ in 0..1_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let serial = run_indexed(32, Parallelism::Serial, work);
        let parallel = run_indexed(32, Parallelism::threads(8), work);
        assert_eq!(serial, parallel);
    }
}
