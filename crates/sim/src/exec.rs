//! Deterministic fan-out of independent shard/member timelines.
//!
//! The striped RAID group and the farm layer both run N mutually
//! independent single-disk simulations and fold the results. This module
//! owns the one primitive they share: map an index range through a worker
//! function, either serially or on `std::thread` scoped threads, and hand
//! the results back **in index order** regardless of completion order.
//!
//! Because the timelines share no mutable state and the merge order is
//! fixed, the parallel path is bit-identical to the serial one — callers
//! pick [`Parallelism`] purely on wall-clock grounds.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How [`run_indexed`] executes its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run every index on the calling thread, in order. The reference
    /// behaviour: traced runs stay reproducible down to the event stream.
    Serial,
    /// Fan out over up to this many scoped worker threads.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// One thread per available core (serial on single-core machines or
    /// when availability cannot be determined).
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Parallelism::Threads(n),
            _ => Parallelism::Serial,
        }
    }

    /// `n` worker threads; `n <= 1` degrades to [`Parallelism::Serial`].
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) if n.get() > 1 => Parallelism::Threads(n),
            _ => Parallelism::Serial,
        }
    }

    /// Worker threads that would actually be spawned for `jobs` jobs.
    pub fn worker_count(self, jobs: usize) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get().min(jobs).max(1),
        }
    }
}

/// Run `job(0..n)` under the given parallelism and return the results in
/// index order.
///
/// Workers pull indices from a shared atomic counter, so an uneven load
/// (one hot shard) does not idle the other threads. Results land in
/// per-index slots; nothing about thread scheduling can reorder them.
pub fn run_indexed<R, F>(n: usize, parallelism: Parallelism, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = parallelism.worker_count(n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_degrade_to_serial() {
        assert_eq!(Parallelism::threads(0), Parallelism::Serial);
        assert_eq!(Parallelism::threads(1), Parallelism::Serial);
        assert!(matches!(Parallelism::threads(4), Parallelism::Threads(_)));
        assert_eq!(Parallelism::threads(4).worker_count(2), 2);
        assert_eq!(Parallelism::Serial.worker_count(8), 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        for p in [Parallelism::Serial, Parallelism::threads(4)] {
            let out = run_indexed(17, p, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_jobs() {
        assert!(run_indexed(0, Parallelism::threads(4), |i| i).is_empty());
        assert_eq!(run_indexed(1, Parallelism::threads(4), |i| i), vec![0]);
    }

    #[test]
    fn parallel_matches_serial_on_nontrivial_work() {
        let work = |i: usize| {
            // Deterministic mixing so a reordering bug shows up.
            let mut x = i as u64 + 1;
            for _ in 0..1_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            x
        };
        let serial = run_indexed(32, Parallelism::Serial, work);
        let parallel = run_indexed(32, Parallelism::threads(8), work);
        assert_eq!(serial, parallel);
    }
}
