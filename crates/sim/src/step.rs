//! Incremental driver for the simulation engine.
//!
//! [`EngineStepper`] exposes the batch engine ([`crate::simulate`]) as a
//! push/pump state machine: a caller **submits** arrivals as it learns
//! about them and **pumps** the engine up to a time horizon, interleaving
//! control actions (membership churn, quarantine, migration) between
//! pumps. The farm daemon builds on this to run one stepper per shard.
//!
//! ## Bit-identity with the batch engine
//!
//! Both drivers funnel through the same [`EngineCore`] delivery/serve
//! code, and the stepper only dequeues once every arrival at or before
//! the current clock has been submitted (callers must pump to an event's
//! time *before* applying the event). Arrival chunks therefore break at
//! exactly the same points as the batch loop's, and the stepper attempts
//! a dispatch even on an apparently empty queue exactly where the batch
//! loop would (an empty dequeue resets dispatcher-internal state such as
//! the conditional preemption anchor), so a stepper fed a whole trace
//! produces bit-identical metrics, events and completion times to
//! [`crate::simulate`] over that trace — the property the oracle's
//! daemon replay gate enforces. Stage spans are a batch-driver feature
//! and are never sampled here.

use std::collections::VecDeque;

use obs::TraceSink;
use sched::{DiskScheduler, Micros, Request};

use crate::engine::EngineCore;
use crate::metrics::Metrics;
use crate::service::ServiceProvider;
use crate::SimOptions;

/// The incremental engine driver: owns the engine state and the not yet
/// delivered arrival backlog; the caller owns the scheduler, the service
/// model and the sink, passing them to every pump so the same stepper
/// can outlive any one of them.
pub struct EngineStepper {
    core: EngineCore,
    pending: VecDeque<Request>,
    last_arrival_us: Micros,
}

impl EngineStepper {
    /// A fresh stepper at time 0.
    pub fn new(options: SimOptions, cylinders: u32) -> Self {
        EngineStepper {
            core: EngineCore::new(options, cylinders, false),
            pending: VecDeque::new(),
            last_arrival_us: 0,
        }
    }

    /// The engine clock: everything dispatched so far started at or
    /// before this time.
    pub fn now(&self) -> Micros {
        self.core.now
    }

    /// Accumulated metrics (submitted-and-delivered requests only).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Consume the stepper, yielding its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.core.metrics
    }

    /// Arrivals submitted but not yet delivered to the scheduler.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submit one arrival. Arrivals must come in non-decreasing
    /// `arrival_us` order (the streaming contract; violating it would
    /// desynchronize the stepper from the batch engine).
    ///
    /// # Panics
    /// If `r.arrival_us` precedes an earlier submission's.
    pub fn submit(&mut self, r: Request) {
        assert!(
            r.arrival_us >= self.last_arrival_us,
            "arrivals must be submitted in order: {} after {}",
            r.arrival_us,
            self.last_arrival_us
        );
        self.last_arrival_us = r.arrival_us;
        self.pending.push_back(r);
    }

    /// Remove and return every submitted-but-undelivered arrival, in
    /// submission order — the migration hook: a draining shard hands
    /// these off without them ever touching its scheduler or metrics.
    pub fn take_pending(&mut self) -> Vec<Request> {
        self.pending.drain(..).collect()
    }

    /// Pump the engine until the clock reaches `horizon_us`: every
    /// dispatch decided strictly *before* the horizon is served (service
    /// is non-preemptive, so a served request may complete past it).
    /// The horizon itself is excluded so a caller can pump to an event's
    /// timestamp, apply the event (submit the arrival, drain the shard),
    /// and resume — without the engine ever dequeuing at an instant
    /// whose arrivals it has not seen yet.
    ///
    /// Streaming contract: every arrival with `arrival_us < horizon_us`
    /// must have been submitted before the pump.
    pub fn run_until<S: TraceSink>(
        &mut self,
        horizon_us: Micros,
        scheduler: &mut dyn DiskScheduler,
        service: &mut dyn ServiceProvider,
        sink: &mut S,
    ) {
        self.core.cylinders = service.cylinders();
        loop {
            if self.core.now >= horizon_us {
                return;
            }
            // Deliver every submitted arrival up to `now` as one chunk —
            // the same chunk boundaries the batch loop produces, because
            // callers pump to an event's time before acting on it, so no
            // later-submitted arrival could have joined this chunk.
            let mut n = 0;
            while n < self.pending.len() && self.pending[n].arrival_us <= self.core.now {
                n += 1;
            }
            if n > 0 {
                let chunk: Vec<Request> = self.pending.drain(..n).collect();
                for r in &chunk {
                    if self.core.measured(r) {
                        self.core.metrics.record_request(r);
                    }
                }
                self.core.enqueue_chunk(&chunk, scheduler, &*service, sink);
            }
            // Attempt a dispatch even when the queue looks empty — the
            // batch loop does, and an empty dequeue is a real scheduler
            // interaction (the conditional dispatcher resets its
            // preemption anchor on one). Skipping it here would let the
            // two drivers diverge after any idle period.
            if !self.core.step(scheduler, service, None, sink) {
                // Idle: jump to the next submitted arrival inside the
                // horizon, or yield back to the caller.
                match self.pending.front() {
                    Some(r) if r.arrival_us <= horizon_us => {
                        self.core.now = self.core.now.max(r.arrival_us);
                    }
                    _ => return,
                }
            }
        }
    }

    /// Drain a pull-based [`workload::stream::TraceSource`] through the
    /// engine to completion — the streaming analogue of handing
    /// [`crate::simulate`] a whole trace, in memory proportional to the
    /// in-flight backlog instead of the trace length. Each arrival is
    /// pumped-to and submitted exactly where the batch loop would chunk
    /// it, so a churn-free source yields bit-identical metrics and
    /// events to the batch engine on the materialized trace. After each
    /// absorbed arrival the source's `observe` hook is fed the engine's
    /// current backlog (undelivered submissions plus the scheduler's
    /// queue), closing the loop for adaptive sources. Returns the
    /// number of requests pulled.
    pub fn run_source<T: workload::TraceSource, S: TraceSink>(
        &mut self,
        source: &mut T,
        scheduler: &mut dyn DiskScheduler,
        service: &mut dyn ServiceProvider,
        sink: &mut S,
    ) -> u64 {
        let mut pulled = 0;
        while let Some(r) = source.next() {
            self.run_until(r.arrival_us, scheduler, service, sink);
            self.submit(r);
            pulled += 1;
            source.observe(self.pending.len() + scheduler.len());
        }
        self.finish(scheduler, service, sink);
        pulled
    }

    /// Pump until both the queue and the submitted backlog are empty —
    /// the stepper equivalent of letting the batch engine run out.
    pub fn finish<S: TraceSink>(
        &mut self,
        scheduler: &mut dyn DiskScheduler,
        service: &mut dyn ServiceProvider,
        sink: &mut S,
    ) {
        self.run_until(Micros::MAX, scheduler, service, sink);
        debug_assert!(self.pending.is_empty() && scheduler.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, simulate_traced, TransferDominated};
    use obs::{NullSink, RingSink};
    use sched::{Fcfs, QosVector, ScanEdf, Sstf};

    fn trace(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::read(
                    i,
                    i * 700,
                    i * 700 + 90_000,
                    ((i * 911) % 3832) as u32,
                    64 * 1024,
                    QosVector::new(&[(i % 5) as u8]),
                )
            })
            .collect()
    }

    fn schedulers() -> Vec<Box<dyn DiskScheduler>> {
        vec![
            Box::new(Fcfs::new()),
            Box::new(Sstf::new()),
            Box::new(ScanEdf::new(5_000)),
        ]
    }

    #[test]
    fn full_submission_matches_batch_engine() {
        let t = trace(300);
        let options = SimOptions::with_shape(1, 8).dropping();
        for (mut batch_s, mut step_s) in schedulers().into_iter().zip(schedulers()) {
            let batch = {
                let mut service = TransferDominated::uniform(5_000, 3832);
                simulate(batch_s.as_mut(), &t, &mut service, options)
            };
            let mut service = TransferDominated::uniform(5_000, 3832);
            let mut stepper = EngineStepper::new(options, service.cylinders());
            for r in &t {
                stepper.submit(r.clone());
            }
            stepper.finish(step_s.as_mut(), &mut service, &mut NullSink);
            assert_eq!(stepper.into_metrics(), batch, "policy {}", batch_s.name());
        }
    }

    #[test]
    fn incremental_pumping_matches_batch_engine() {
        // Submit arrivals in dribbles and pump to staggered horizons —
        // the chunk boundaries must still match the batch run exactly,
        // including the emitted event stream.
        let t = trace(200);
        let options = SimOptions::with_shape(1, 8).dropping();
        let mut batch_ring = RingSink::new(1 << 14);
        let batch = {
            let mut service = TransferDominated::scaled(1_500, 40, 3832);
            simulate_traced(
                &mut ScanEdf::new(5_000),
                &t,
                &mut service,
                options,
                &mut batch_ring,
            )
        };

        let mut step_ring = RingSink::new(1 << 14);
        let mut service = TransferDominated::scaled(1_500, 40, 3832);
        let mut scheduler = ScanEdf::new(5_000);
        let mut stepper = EngineStepper::new(options, service.cylinders());
        for (i, r) in t.iter().enumerate() {
            // Pump to each arrival's time before submitting it — the
            // streaming contract — with ragged extra horizons thrown in.
            stepper.run_until(r.arrival_us, &mut scheduler, &mut service, &mut step_ring);
            stepper.submit(r.clone());
            if i % 7 == 3 {
                // An extra pump, capped at the next arrival's time so the
                // streaming contract (all arrivals before the horizon are
                // submitted) still holds.
                let cap = t.get(i + 1).map_or(Micros::MAX, |n| n.arrival_us);
                stepper.run_until(
                    cap.min(r.arrival_us + 11_000),
                    &mut scheduler,
                    &mut service,
                    &mut step_ring,
                );
            }
        }
        stepper.finish(&mut scheduler, &mut service, &mut step_ring);
        assert_eq!(stepper.metrics(), &batch);
        let batch_events: Vec<String> = batch_ring.events().map(|e| format!("{e:?}")).collect();
        let step_events: Vec<String> = step_ring.events().map(|e| format!("{e:?}")).collect();
        assert_eq!(step_events, batch_events);
    }

    #[test]
    fn lazy_source_matches_batch_engine_bit_for_bit() {
        // The streaming ingest pumped from a lazy iterator must be
        // indistinguishable from the batch engine on the materialized
        // trace: metrics AND the emitted event stream.
        let t = trace(250);
        let options = SimOptions::with_shape(1, 8).dropping();
        let mut batch_ring = RingSink::new(1 << 14);
        let batch = {
            let mut service = TransferDominated::scaled(1_500, 40, 3832);
            simulate_traced(
                &mut ScanEdf::new(5_000),
                &t,
                &mut service,
                options,
                &mut batch_ring,
            )
        };

        let mut step_ring = RingSink::new(1 << 14);
        let mut service = TransferDominated::scaled(1_500, 40, 3832);
        let mut scheduler = ScanEdf::new(5_000);
        let mut stepper = EngineStepper::new(options, service.cylinders());
        let mut source = workload::VecSource::new(t.clone());
        let pulled = stepper.run_source(&mut source, &mut scheduler, &mut service, &mut step_ring);
        assert_eq!(pulled as usize, t.len());
        assert_eq!(stepper.metrics(), &batch);
        let batch_events: Vec<String> = batch_ring.events().map(|e| format!("{e:?}")).collect();
        let step_events: Vec<String> = step_ring.events().map(|e| format!("{e:?}")).collect();
        assert_eq!(step_events, batch_events);
    }

    #[test]
    fn closed_loop_source_drains_in_bounded_memory() {
        // A live closed-loop population pumped straight into the engine:
        // everything the source emits is accounted for, and the source
        // felt backpressure (its observe hook ran).
        let cfg = workload::SessionConfig::mixed(300, 300_000_000);
        let mut source = workload::SessionSource::new(cfg, 17);
        let options = SimOptions::with_shape(1, 8).dropping();
        let mut service = TransferDominated::uniform(5_000, 3832);
        let mut scheduler = Sstf::new();
        let mut stepper = EngineStepper::new(options, service.cylinders());
        let pulled = stepper.run_source(&mut source, &mut scheduler, &mut service, &mut NullSink);
        assert_eq!(pulled, source.emitted());
        assert_eq!(source.sessions_started(), 300);
        let m = stepper.into_metrics();
        assert_eq!(m.served + m.dropped + m.failed, pulled);
    }

    #[test]
    fn take_pending_withholds_undelivered_arrivals() {
        let options = SimOptions::with_shape(1, 2);
        let mut service = TransferDominated::uniform(2_000, 3832);
        let mut scheduler = Fcfs::new();
        let mut stepper = EngineStepper::new(options, service.cylinders());
        let t = trace(10);
        for r in &t {
            stepper.submit(r.clone());
        }
        // Pump only past the first few arrivals.
        stepper.run_until(1_500, &mut scheduler, &mut service, &mut NullSink);
        let left = stepper.take_pending();
        assert!(!left.is_empty(), "some arrivals must still be pending");
        stepper.finish(&mut scheduler, &mut service, &mut NullSink);
        let m = stepper.into_metrics();
        // Only delivered requests count anywhere in the ledger.
        assert_eq!(
            (m.served + m.dropped + m.failed) as usize + left.len(),
            t.len()
        );
        assert_eq!(m.requests_total() as usize + left.len(), t.len());
    }

    #[test]
    #[should_panic(expected = "arrivals must be submitted in order")]
    fn out_of_order_submission_panics() {
        let mut stepper = EngineStepper::new(SimOptions::with_shape(1, 2), 3832);
        let t = trace(2);
        stepper.submit(t[1].clone());
        stepper.submit(t[0].clone());
    }
}
