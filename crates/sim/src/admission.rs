//! Admission control for periodic streams — the question a video server
//! asks *before* the disk scheduler ever sees a request: how many
//! concurrent streams can this disk sustain without missing deadlines?
//!
//! The classic round-based bound (used by the PanaViss-era VoD
//! literature): with `n` streams fetching one block per period `T`, a
//! SCAN-family scheduler serves each round of `n` requests in at most
//!
//! ```text
//! t_round(n) = n · (t_transfer + t_rotation) + t_sweep(n)
//! ```
//!
//! where `t_sweep(n)` bounds the total seek time of one sweep over `n`
//! requests (a full stroke is split into at most `n + 1` sub-seeks, and
//! the concave seek curve makes equal splits the worst case). The stream
//! count is admissible when `t_round(n) ≤ T`.
//!
//! The bound is validated against the discrete-event simulator by the
//! VoD scenario tests: admitted loads must simulate loss-free.

use diskmodel::{DiskGeometry, SeekModel};

/// Worst-case duration of one service round of `n` block requests under a
/// sweep-order scheduler, in milliseconds.
pub fn round_ms(geometry: &DiskGeometry, seek: &SeekModel, n: u32, block_bytes: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    // Worst-case transfer: the innermost (slowest) zone.
    let slow_cyl = geometry.cylinders() - 1;
    let transfer = geometry.transfer_ms(slow_cyl, block_bytes);
    // Full rotational latency per request (worst case).
    let rotation = geometry.revolution_ms();
    // One sweep over n requests: n+1 sub-seeks of at most stroke/(n+1)
    // cylinders each — the concave seek curve peaks at the equal split.
    let stroke = geometry.cylinders().saturating_sub(1);
    let sub = stroke.div_ceil(n + 1);
    let sweep = (n + 1) as f64 * seek.seek_ms(sub.max(1));
    n as f64 * (transfer + rotation) + sweep
}

/// Largest stream count `n` such that a round of `n` block fetches fits
/// within the streams' common period `period_ms`.
///
/// The bracket grows by doubling until it contains the answer, then a
/// binary search over the monotone round bound pins it down — no
/// arbitrary upper sentinel to saturate at silently.
///
/// # Panics
///
/// Panics if the bracket cannot be grown to contain the answer (more
/// than `u32::MAX / 2` streams fit the period) — that means the round
/// bound is not increasing for this geometry, which is a modeling bug,
/// not an admission decision.
pub fn max_streams(
    geometry: &DiskGeometry,
    seek: &SeekModel,
    block_bytes: u64,
    period_ms: f64,
) -> u32 {
    assert!(period_ms > 0.0 && period_ms.is_finite());
    let fits = |n: u32| round_ms(geometry, seek, n, block_bytes) <= period_ms;
    // Grow until `hi` no longer fits (so the answer is in [hi/2, hi)).
    let mut hi = 1u32;
    while fits(hi) {
        hi = hi.checked_mul(2).unwrap_or_else(|| {
            panic!(
                "max_streams bracket overflow: {hi} streams of {block_bytes} bytes \
                 still fit a {period_ms} ms period — the round bound is not \
                 increasing for this geometry"
            )
        });
    }
    let (mut lo, mut hi) = (hi / 2, hi - 1);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Admission decision for MPEG-style streams of `bits_per_second`
/// fetching `block_bytes` blocks: the period is `block_bytes·8/rate`.
pub fn admissible_streams(
    geometry: &DiskGeometry,
    seek: &SeekModel,
    block_bytes: u64,
    bits_per_second: u64,
) -> u32 {
    let period_ms = block_bytes as f64 * 8.0 / bits_per_second as f64 * 1000.0;
    max_streams(geometry, seek, block_bytes, period_ms)
}

/// The *online* side of admission control: the offline bound above says
/// how many concurrent streams a disk sustains; this gate enforces that
/// number at ingest, request by request, as the farm daemon sees
/// arrivals. A stream occupies a slot from its first admitted request
/// until it has been idle for `idle_timeout_us`; requests from streams
/// beyond the capacity are rejected at the door (never reaching a
/// scheduler queue). Entirely deterministic: the decision depends only
/// on the arrival sequence, never on wall-clock or iteration order.
#[derive(Debug, Clone)]
pub struct StreamGate {
    max_streams: u32,
    idle_timeout_us: u64,
    last_seen: std::collections::HashMap<u64, u64>,
    // Min-heap of (candidate expiry, stream); stale entries are skipped
    // lazily when a stream refreshes — each admit is amortized O(log n).
    expiries: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rejections: u64,
}

impl StreamGate {
    /// A gate admitting at most `max_streams` concurrently active
    /// streams, where a stream stays active until idle for
    /// `idle_timeout_us`.
    pub fn new(max_streams: u32, idle_timeout_us: u64) -> Self {
        StreamGate {
            max_streams,
            idle_timeout_us,
            last_seen: std::collections::HashMap::new(),
            expiries: std::collections::BinaryHeap::new(),
            rejections: 0,
        }
    }

    /// An unbounded gate: admits everything, tracks nothing.
    pub fn open() -> Self {
        StreamGate::new(u32::MAX, u64::MAX)
    }

    /// Decide a request from `stream` arriving at `now_us`. `true`
    /// admits (and occupies/refreshes the stream's slot); `false`
    /// rejects.
    pub fn admit(&mut self, stream: u64, now_us: u64) -> bool {
        if self.max_streams == u32::MAX {
            return true; // open gate: admit without tracking
        }
        // Retire streams idle past the timeout, lazily skipping entries
        // superseded by a later refresh (an entry is current only if it
        // matches the stream's latest activity).
        while let Some(&std::cmp::Reverse((expiry, s))) = self.expiries.peek() {
            if expiry > now_us {
                break;
            }
            self.expiries.pop();
            let current = self
                .last_seen
                .get(&s)
                .map(|t| t.saturating_add(self.idle_timeout_us))
                == Some(expiry);
            if current {
                self.last_seen.remove(&s);
            }
        }
        if let Some(seen) = self.last_seen.get_mut(&stream) {
            *seen = now_us;
            self.expiries.push(std::cmp::Reverse((
                now_us.saturating_add(self.idle_timeout_us),
                stream,
            )));
            return true;
        }
        if self.last_seen.len() as u64 >= self.max_streams as u64 {
            self.rejections += 1;
            return false;
        }
        self.last_seen.insert(stream, now_us);
        self.expiries.push(std::cmp::Reverse((
            now_us.saturating_add(self.idle_timeout_us),
            stream,
        )));
        true
    }

    /// Streams currently holding a slot.
    pub fn active_streams(&self) -> usize {
        self.last_seen.len()
    }

    /// Requests turned away so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> (DiskGeometry, SeekModel) {
        (DiskGeometry::table1(), SeekModel::table1())
    }

    #[test]
    fn round_grows_linearly_in_n() {
        let (g, s) = table1();
        let r10 = round_ms(&g, &s, 10, 64 * 1024);
        let r20 = round_ms(&g, &s, 20, 64 * 1024);
        assert!(r20 > r10 * 1.5 && r20 < r10 * 2.5);
        assert_eq!(round_ms(&g, &s, 0, 64 * 1024), 0.0);
    }

    #[test]
    fn table1_admits_a_plausible_mpeg1_count() {
        // MPEG-1 at 1.5 Mb/s, 64-KB blocks, period ≈ 349.5 ms. With
        // ~21 ms worst-case per request (12.6 ms slow-zone transfer +
        // 8.3 ms rotation) plus sweep overhead, expect roughly 14-16
        // streams per member disk.
        let (g, s) = table1();
        let n = admissible_streams(&g, &s, 64 * 1024, 1_500_000);
        assert!(
            (10..20).contains(&n),
            "admitted {n} streams (round at n: {:.1} ms)",
            round_ms(&g, &s, n, 64 * 1024)
        );
        // The next stream would not fit.
        let period = 64.0 * 1024.0 * 8.0 / 1_500_000.0 * 1000.0;
        assert!(round_ms(&g, &s, n + 1, 64 * 1024) > period);
    }

    #[test]
    fn admitted_load_simulates_loss_free() {
        // The whole point of a worst-case bound: anything it admits must
        // survive the simulator under a SCAN-family scheduler, even with
        // deadlines of one period.
        use crate::{simulate, DiskService, SimOptions};
        use sched::{Batched, CScan};
        use workload::VodConfig;

        let (g, s) = table1();
        let n = admissible_streams(&g, &s, 64 * 1024, 1_500_000);
        let mut cfg = VodConfig::mpeg1(n);
        cfg.duration_us = 20_000_000;
        let trace = cfg.generate(3);
        let mut sched = Batched::new(CScan::new(), "batched-c-scan");
        let mut service = DiskService::table1();
        let m = simulate(
            &mut sched,
            &trace,
            &mut service,
            SimOptions::with_shape(1, 4).dropping(),
        );
        assert_eq!(
            m.losses_total(),
            0,
            "admission bound admitted a lossy load of {n} streams"
        );
    }

    #[test]
    fn modern_drive_admits_more_but_rotation_bound() {
        let n_old = admissible_streams(
            &DiskGeometry::table1(),
            &SeekModel::table1(),
            64 * 1024,
            1_500_000,
        );
        let n_new = admissible_streams(
            &DiskGeometry::modern(),
            &SeekModel::modern(),
            64 * 1024,
            1_500_000,
        );
        // Transfer and seek times collapsed over two decades, but the
        // worst-case rotation (still 7200 RPM) did not — it now dominates
        // the per-request bound, so the admitted count only roughly
        // doubles (13 → 28). A nice illustration of why the bound's
        // structure matters more than raw bandwidth.
        assert!(
            n_new > n_old * 3 / 2,
            "modern {n_new} vs table-1 {n_old} streams"
        );
    }

    #[test]
    fn huge_periods_are_not_silently_capped() {
        // The old implementation saturated at a hidden hi = 100_000
        // sentinel; the growing bracket must push well past it.
        let (g, s) = table1();
        let n = max_streams(&g, &s, 64 * 1024, 1.0e8);
        assert!(n > 100_000, "bracket stuck at the old sentinel: {n}");
        // And the answer is still tight: one more stream must not fit.
        assert!(round_ms(&g, &s, n, 64 * 1024) <= 1.0e8);
        assert!(round_ms(&g, &s, n + 1, 64 * 1024) > 1.0e8);
    }

    #[test]
    fn tiny_period_admits_zero() {
        let (g, s) = table1();
        assert_eq!(max_streams(&g, &s, 64 * 1024, 0.001), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_period() {
        max_streams(&DiskGeometry::table1(), &SeekModel::table1(), 65536, 0.0);
    }

    #[test]
    fn gate_caps_concurrent_streams() {
        let mut g = StreamGate::new(2, 1_000);
        assert!(g.admit(10, 0));
        assert!(g.admit(11, 10));
        // A third stream is over capacity; existing ones keep flowing.
        assert!(!g.admit(12, 20));
        assert!(g.admit(10, 30));
        assert_eq!(g.active_streams(), 2);
        assert_eq!(g.rejections(), 1);
    }

    #[test]
    fn gate_retires_idle_streams_at_the_timeout() {
        let mut g = StreamGate::new(1, 1_000);
        assert!(g.admit(1, 0));
        // Stream 2 is blocked until stream 1 has idled a full timeout —
        // the boundary instant itself retires it.
        assert!(!g.admit(2, 999));
        assert!(g.admit(2, 1_000));
        assert_eq!(g.active_streams(), 1);
    }

    #[test]
    fn gate_refresh_extends_the_slot() {
        let mut g = StreamGate::new(1, 1_000);
        assert!(g.admit(1, 0));
        assert!(g.admit(1, 900)); // refresh: idle clock restarts
        assert!(!g.admit(2, 1_500)); // 1 only idle 600 µs — still active
        assert!(g.admit(2, 1_900)); // now idle a full timeout
    }

    #[test]
    fn zero_stream_gate_rejects_everything() {
        // max_streams = 0 is a valid configuration (a quarantined
        // member): every request bounces, nothing ever holds a slot,
        // and the rejection ledger counts each one.
        let mut g = StreamGate::new(0, 1_000);
        for (i, (s, t)) in [(1u64, 0u64), (1, 500), (2, 2_000), (3, 9_999)]
            .into_iter()
            .enumerate()
        {
            assert!(!g.admit(s, t), "request {i} slipped through a 0-slot gate");
            assert_eq!(g.active_streams(), 0);
        }
        assert_eq!(g.rejections(), 4);
    }

    #[test]
    fn single_stream_slot_cycles_through_reclamation() {
        // One slot, many claimants: the slot must pass cleanly from
        // stream to stream across idle reclamations, with refreshes in
        // between leaving no stale expiry behind to evict the new
        // holder early.
        let mut g = StreamGate::new(1, 1_000);
        assert!(g.admit(1, 0));
        assert!(g.admit(1, 400)); // refresh leaves a stale expiry at 1_000
        assert!(!g.admit(2, 1_000)); // stale entry must not free the slot
        assert!(g.admit(2, 1_400)); // true expiry: slot reclaimed, handed over
        assert_eq!(g.active_streams(), 1);
        // The slot's new holder is subject to the same clock: stream 1
        // cannot barge back in before 2 idles out…
        assert!(!g.admit(1, 2_000));
        // …but reclaims its old slot once 2 has idled a full timeout.
        assert!(g.admit(1, 2_400));
        assert_eq!(g.active_streams(), 1);
        assert_eq!(g.rejections(), 2);
    }

    #[test]
    fn open_gate_admits_everything_statelessly() {
        let mut g = StreamGate::open();
        for s in 0..10_000u64 {
            assert!(g.admit(s, s));
        }
        assert_eq!(g.active_streams(), 0);
        assert_eq!(g.rejections(), 0);
    }
}
