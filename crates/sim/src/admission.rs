//! Admission control for periodic streams — the question a video server
//! asks *before* the disk scheduler ever sees a request: how many
//! concurrent streams can this disk sustain without missing deadlines?
//!
//! The classic round-based bound (used by the PanaViss-era VoD
//! literature): with `n` streams fetching one block per period `T`, a
//! SCAN-family scheduler serves each round of `n` requests in at most
//!
//! ```text
//! t_round(n) = n · (t_transfer + t_rotation) + t_sweep(n)
//! ```
//!
//! where `t_sweep(n)` bounds the total seek time of one sweep over `n`
//! requests (a full stroke is split into at most `n + 1` sub-seeks, and
//! the concave seek curve makes equal splits the worst case). The stream
//! count is admissible when `t_round(n) ≤ T`.
//!
//! The bound is validated against the discrete-event simulator by the
//! VoD scenario tests: admitted loads must simulate loss-free.

use diskmodel::{DiskGeometry, SeekModel};

/// Worst-case duration of one service round of `n` block requests under a
/// sweep-order scheduler, in milliseconds.
pub fn round_ms(geometry: &DiskGeometry, seek: &SeekModel, n: u32, block_bytes: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    // Worst-case transfer: the innermost (slowest) zone.
    let slow_cyl = geometry.cylinders() - 1;
    let transfer = geometry.transfer_ms(slow_cyl, block_bytes);
    // Full rotational latency per request (worst case).
    let rotation = geometry.revolution_ms();
    // One sweep over n requests: n+1 sub-seeks of at most stroke/(n+1)
    // cylinders each — the concave seek curve peaks at the equal split.
    let stroke = geometry.cylinders().saturating_sub(1);
    let sub = stroke.div_ceil(n + 1);
    let sweep = (n + 1) as f64 * seek.seek_ms(sub.max(1));
    n as f64 * (transfer + rotation) + sweep
}

/// Largest stream count `n` such that a round of `n` block fetches fits
/// within the streams' common period `period_ms`.
///
/// The bracket grows by doubling until it contains the answer, then a
/// binary search over the monotone round bound pins it down — no
/// arbitrary upper sentinel to saturate at silently.
///
/// # Panics
///
/// Panics if the bracket cannot be grown to contain the answer (more
/// than `u32::MAX / 2` streams fit the period) — that means the round
/// bound is not increasing for this geometry, which is a modeling bug,
/// not an admission decision.
pub fn max_streams(
    geometry: &DiskGeometry,
    seek: &SeekModel,
    block_bytes: u64,
    period_ms: f64,
) -> u32 {
    assert!(period_ms > 0.0 && period_ms.is_finite());
    let fits = |n: u32| round_ms(geometry, seek, n, block_bytes) <= period_ms;
    // Grow until `hi` no longer fits (so the answer is in [hi/2, hi)).
    let mut hi = 1u32;
    while fits(hi) {
        hi = hi.checked_mul(2).unwrap_or_else(|| {
            panic!(
                "max_streams bracket overflow: {hi} streams of {block_bytes} bytes \
                 still fit a {period_ms} ms period — the round bound is not \
                 increasing for this geometry"
            )
        });
    }
    let (mut lo, mut hi) = (hi / 2, hi - 1);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Admission decision for MPEG-style streams of `bits_per_second`
/// fetching `block_bytes` blocks: the period is `block_bytes·8/rate`.
pub fn admissible_streams(
    geometry: &DiskGeometry,
    seek: &SeekModel,
    block_bytes: u64,
    bits_per_second: u64,
) -> u32 {
    let period_ms = block_bytes as f64 * 8.0 / bits_per_second as f64 * 1000.0;
    max_streams(geometry, seek, block_bytes, period_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> (DiskGeometry, SeekModel) {
        (DiskGeometry::table1(), SeekModel::table1())
    }

    #[test]
    fn round_grows_linearly_in_n() {
        let (g, s) = table1();
        let r10 = round_ms(&g, &s, 10, 64 * 1024);
        let r20 = round_ms(&g, &s, 20, 64 * 1024);
        assert!(r20 > r10 * 1.5 && r20 < r10 * 2.5);
        assert_eq!(round_ms(&g, &s, 0, 64 * 1024), 0.0);
    }

    #[test]
    fn table1_admits_a_plausible_mpeg1_count() {
        // MPEG-1 at 1.5 Mb/s, 64-KB blocks, period ≈ 349.5 ms. With
        // ~21 ms worst-case per request (12.6 ms slow-zone transfer +
        // 8.3 ms rotation) plus sweep overhead, expect roughly 14-16
        // streams per member disk.
        let (g, s) = table1();
        let n = admissible_streams(&g, &s, 64 * 1024, 1_500_000);
        assert!(
            (10..20).contains(&n),
            "admitted {n} streams (round at n: {:.1} ms)",
            round_ms(&g, &s, n, 64 * 1024)
        );
        // The next stream would not fit.
        let period = 64.0 * 1024.0 * 8.0 / 1_500_000.0 * 1000.0;
        assert!(round_ms(&g, &s, n + 1, 64 * 1024) > period);
    }

    #[test]
    fn admitted_load_simulates_loss_free() {
        // The whole point of a worst-case bound: anything it admits must
        // survive the simulator under a SCAN-family scheduler, even with
        // deadlines of one period.
        use crate::{simulate, DiskService, SimOptions};
        use sched::{Batched, CScan};
        use workload::VodConfig;

        let (g, s) = table1();
        let n = admissible_streams(&g, &s, 64 * 1024, 1_500_000);
        let mut cfg = VodConfig::mpeg1(n);
        cfg.duration_us = 20_000_000;
        let trace = cfg.generate(3);
        let mut sched = Batched::new(CScan::new(), "batched-c-scan");
        let mut service = DiskService::table1();
        let m = simulate(
            &mut sched,
            &trace,
            &mut service,
            SimOptions::with_shape(1, 4).dropping(),
        );
        assert_eq!(
            m.losses_total(),
            0,
            "admission bound admitted a lossy load of {n} streams"
        );
    }

    #[test]
    fn modern_drive_admits_more_but_rotation_bound() {
        let n_old = admissible_streams(
            &DiskGeometry::table1(),
            &SeekModel::table1(),
            64 * 1024,
            1_500_000,
        );
        let n_new = admissible_streams(
            &DiskGeometry::modern(),
            &SeekModel::modern(),
            64 * 1024,
            1_500_000,
        );
        // Transfer and seek times collapsed over two decades, but the
        // worst-case rotation (still 7200 RPM) did not — it now dominates
        // the per-request bound, so the admitted count only roughly
        // doubles (13 → 28). A nice illustration of why the bound's
        // structure matters more than raw bandwidth.
        assert!(
            n_new > n_old * 3 / 2,
            "modern {n_new} vs table-1 {n_old} streams"
        );
    }

    #[test]
    fn huge_periods_are_not_silently_capped() {
        // The old implementation saturated at a hidden hi = 100_000
        // sentinel; the growing bracket must push well past it.
        let (g, s) = table1();
        let n = max_streams(&g, &s, 64 * 1024, 1.0e8);
        assert!(n > 100_000, "bracket stuck at the old sentinel: {n}");
        // And the answer is still tight: one more stream must not fit.
        assert!(round_ms(&g, &s, n, 64 * 1024) <= 1.0e8);
        assert!(round_ms(&g, &s, n + 1, 64 * 1024) > 1.0e8);
    }

    #[test]
    fn tiny_period_admits_zero() {
        let (g, s) = table1();
        assert_eq!(max_streams(&g, &s, 64 * 1024, 0.001), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_period() {
        max_streams(&DiskGeometry::table1(), &SeekModel::table1(), 65536, 0.0);
    }
}
