//! Post-run analysis over per-request logs (see
//! [`crate::simulate_logged`]): response-time distributions and
//! per-quantile summaries, the standard complement to the paper's
//! aggregate metrics.
//!
//! Percentiles are exact nearest-rank over the logged samples, computed
//! by [`obs::nearest_rank`] — the same definition the `obs` crate's
//! [`obs::Histogram`] approximates at log2-bucket resolution, so a
//! logged run and a traced run report comparable quantiles.

use crate::engine::RequestRecord;
use obs::nearest_rank;
use sched::Micros;

/// Response-time distribution summary of one logged run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSummary {
    /// Served requests contributing to the distribution.
    pub served: u64,
    /// Requests dropped unserved.
    pub dropped: u64,
    /// Median response (µs).
    pub p50_us: Micros,
    /// 95th percentile response (µs).
    pub p95_us: Micros,
    /// 99th percentile response (µs).
    pub p99_us: Micros,
    /// 99.9th percentile response (µs) — the tail the paper's
    /// starvation discussion cares about.
    pub p999_us: Micros,
    /// Maximum response (µs).
    pub max_us: Micros,
    /// Mean response (µs).
    pub mean_us: f64,
    /// Peak number of served requests simultaneously in flight
    /// (arrived but not yet completed). Dropped requests are excluded:
    /// the log does not record when they left the queue.
    pub max_queue_depth: u64,
}

/// Response time of a served record.
fn response(r: &RequestRecord) -> Option<Micros> {
    r.completion_us.map(|c| c - r.arrival_us)
}

/// The response at quantile `q ∈ [0, 1]` (nearest-rank), or `None` when
/// nothing was served.
pub fn response_percentile(log: &[RequestRecord], q: f64) -> Option<Micros> {
    let mut responses: Vec<Micros> = log.iter().filter_map(response).collect();
    responses.sort_unstable();
    nearest_rank(&responses, q)
}

/// Peak concurrency among served records: sweep +1 at each arrival and
/// −1 at each completion, counting a completion at time `t` *before* an
/// arrival at the same `t` (a zero-length handoff is not an overlap).
fn max_in_flight(log: &[RequestRecord]) -> u64 {
    let mut deltas: Vec<(Micros, i64)> = Vec::with_capacity(2 * log.len());
    for r in log {
        if let Some(c) = r.completion_us {
            deltas.push((r.arrival_us, 1));
            deltas.push((c, -1));
        }
    }
    // Sort by (time, delta): at equal times −1 precedes +1.
    deltas.sort_unstable();
    let mut depth = 0i64;
    let mut peak = 0i64;
    for (_, d) in deltas {
        depth += d;
        peak = peak.max(depth);
    }
    peak as u64
}

/// Summarize a logged run; `None` when nothing was served.
pub fn summarize(log: &[RequestRecord]) -> Option<ResponseSummary> {
    let mut responses: Vec<Micros> = log.iter().filter_map(response).collect();
    if responses.is_empty() {
        return None;
    }
    responses.sort_unstable();
    let dropped = log.iter().filter(|r| r.completion_us.is_none()).count() as u64;
    let total: u128 = responses.iter().map(|&r| r as u128).sum();
    Some(ResponseSummary {
        served: responses.len() as u64,
        dropped,
        p50_us: nearest_rank(&responses, 0.50).unwrap(),
        p95_us: nearest_rank(&responses, 0.95).unwrap(),
        p99_us: nearest_rank(&responses, 0.99).unwrap(),
        p999_us: nearest_rank(&responses, 0.999).unwrap(),
        max_us: *responses.last().unwrap(),
        mean_us: total as f64 / responses.len() as f64,
        max_queue_depth: max_in_flight(log),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: Micros, completion: Option<Micros>) -> RequestRecord {
        RequestRecord {
            id,
            arrival_us: arrival,
            completion_us: completion,
            lost: completion.is_none(),
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        // Responses 10, 20, ..., 100.
        let log: Vec<RequestRecord> = (1..=10).map(|i| rec(i, 0, Some(i * 10))).collect();
        assert_eq!(response_percentile(&log, 0.50), Some(50));
        assert_eq!(response_percentile(&log, 0.95), Some(100));
        assert_eq!(response_percentile(&log, 0.0), Some(10));
        assert_eq!(response_percentile(&log, 1.0), Some(100));
    }

    #[test]
    fn summary_ignores_drops_but_counts_them() {
        let mut log: Vec<RequestRecord> = (1..=4).map(|i| rec(i, 0, Some(i * 100))).collect();
        log.push(rec(5, 0, None));
        let s = summarize(&log).unwrap();
        assert_eq!(s.served, 4);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.max_us, 400);
        assert_eq!(s.p999_us, 400);
        assert!((s.mean_us - 250.0).abs() < 1e-9);
        // All four arrive at 0 and overlap until the first completes.
        assert_eq!(s.max_queue_depth, 4);
    }

    #[test]
    fn tail_quantile_separates_from_p99_on_large_logs() {
        // 10 000 samples: one extreme outlier sits between p999 and max.
        let mut log: Vec<RequestRecord> =
            (0..9_999).map(|i| rec(i, 0, Some(100 + i % 10))).collect();
        log.push(rec(9_999, 0, Some(1_000_000)));
        let s = summarize(&log).unwrap();
        assert!(s.p99_us < 1_000_000);
        assert!(s.p999_us < 1_000_000);
        assert_eq!(s.max_us, 1_000_000);
    }

    #[test]
    fn queue_depth_counts_only_true_overlaps() {
        // Back-to-back handoffs (complete at t, arrive at t) never
        // overlap; a genuine overlap of two does.
        let log = vec![
            rec(1, 0, Some(10)),
            rec(2, 10, Some(20)),
            rec(3, 15, Some(30)),
        ];
        assert_eq!(summarize(&log).unwrap().max_queue_depth, 2);
    }

    #[test]
    fn empty_log_yields_none() {
        assert!(summarize(&[]).is_none());
        assert_eq!(response_percentile(&[], 0.5), None);
        let only_drops = vec![rec(1, 0, None)];
        assert!(summarize(&only_drops).is_none());
    }

    #[test]
    fn end_to_end_with_logged_simulation() {
        use crate::{simulate_logged, SimOptions, TransferDominated};
        use sched::{Fcfs, QosVector, Request};
        let trace: Vec<Request> = (0..10)
            .map(|i| Request::read(i, 0, u64::MAX, 0, 512, QosVector::none()))
            .collect();
        let mut service = TransferDominated::uniform(1_000, 100);
        let (_, log) = simulate_logged(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2),
        );
        let s = summarize(&log).unwrap();
        // FCFS on a batch: responses 1, 2, ..., 10 ms.
        assert_eq!(s.p50_us, 5_000);
        assert_eq!(s.max_us, 10_000);
        // The whole batch arrives at t=0 and drains one at a time.
        assert_eq!(s.max_queue_depth, 10);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        response_percentile(&[], 1.5);
    }
}
