//! Post-run analysis over per-request logs (see
//! [`crate::simulate_logged`]): response-time distributions and
//! per-quantile summaries, the standard complement to the paper's
//! aggregate metrics.

use crate::engine::RequestRecord;
use sched::Micros;

/// Response-time distribution summary of one logged run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSummary {
    /// Served requests contributing to the distribution.
    pub served: u64,
    /// Requests dropped unserved.
    pub dropped: u64,
    /// Median response (µs).
    pub p50_us: Micros,
    /// 95th percentile response (µs).
    pub p95_us: Micros,
    /// 99th percentile response (µs).
    pub p99_us: Micros,
    /// Maximum response (µs).
    pub max_us: Micros,
    /// Mean response (µs).
    pub mean_us: f64,
}

/// Response time of a served record.
fn response(r: &RequestRecord) -> Option<Micros> {
    r.completion_us.map(|c| c - r.arrival_us)
}

/// The response at quantile `q ∈ [0, 1]` (nearest-rank), or `None` when
/// nothing was served.
pub fn response_percentile(log: &[RequestRecord], q: f64) -> Option<Micros> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut responses: Vec<Micros> = log.iter().filter_map(response).collect();
    if responses.is_empty() {
        return None;
    }
    responses.sort_unstable();
    let rank = ((q * responses.len() as f64).ceil() as usize)
        .clamp(1, responses.len());
    Some(responses[rank - 1])
}

/// Summarize a logged run; `None` when nothing was served.
pub fn summarize(log: &[RequestRecord]) -> Option<ResponseSummary> {
    let responses: Vec<Micros> = log.iter().filter_map(response).collect();
    if responses.is_empty() {
        return None;
    }
    let dropped = log.iter().filter(|r| r.completion_us.is_none()).count() as u64;
    let total: u128 = responses.iter().map(|&r| r as u128).sum();
    Some(ResponseSummary {
        served: responses.len() as u64,
        dropped,
        p50_us: response_percentile(log, 0.50).unwrap(),
        p95_us: response_percentile(log, 0.95).unwrap(),
        p99_us: response_percentile(log, 0.99).unwrap(),
        max_us: *responses.iter().max().unwrap(),
        mean_us: total as f64 / responses.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, arrival: Micros, completion: Option<Micros>) -> RequestRecord {
        RequestRecord {
            id,
            arrival_us: arrival,
            completion_us: completion,
            lost: completion.is_none(),
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        // Responses 10, 20, ..., 100.
        let log: Vec<RequestRecord> = (1..=10)
            .map(|i| rec(i, 0, Some(i * 10)))
            .collect();
        assert_eq!(response_percentile(&log, 0.50), Some(50));
        assert_eq!(response_percentile(&log, 0.95), Some(100));
        assert_eq!(response_percentile(&log, 0.0), Some(10));
        assert_eq!(response_percentile(&log, 1.0), Some(100));
    }

    #[test]
    fn summary_ignores_drops_but_counts_them() {
        let mut log: Vec<RequestRecord> = (1..=4).map(|i| rec(i, 0, Some(i * 100))).collect();
        log.push(rec(5, 0, None));
        let s = summarize(&log).unwrap();
        assert_eq!(s.served, 4);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.max_us, 400);
        assert!((s.mean_us - 250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_yields_none() {
        assert!(summarize(&[]).is_none());
        assert_eq!(response_percentile(&[], 0.5), None);
        let only_drops = vec![rec(1, 0, None)];
        assert!(summarize(&only_drops).is_none());
    }

    #[test]
    fn end_to_end_with_logged_simulation() {
        use crate::{simulate_logged, SimOptions, TransferDominated};
        use sched::{Fcfs, QosVector, Request};
        let trace: Vec<Request> = (0..10)
            .map(|i| Request::read(i, 0, u64::MAX, 0, 512, QosVector::none()))
            .collect();
        let mut service = TransferDominated::uniform(1_000, 100);
        let (_, log) = simulate_logged(
            &mut Fcfs::new(),
            &trace,
            &mut service,
            SimOptions::with_shape(1, 2),
        );
        let s = summarize(&log).unwrap();
        // FCFS on a batch: responses 1, 2, ..., 10 ms.
        assert_eq!(s.p50_us, 5_000);
        assert_eq!(s.max_us, 10_000);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        response_percentile(&[], 1.5);
    }
}
